(* Bechamel micro-benchmarks of the hot paths: codec, CRC, heap, WAL,
   tokens, and the full in-simulator send path.  One Test.make per row.

   Besides the console table, [run] writes BENCH_micro.json (schema
   documented in DESIGN.md §6) so the perf trajectory is machine-readable
   across PRs. *)

open Bechamel
open Toolkit
open Dcp_wire
module Heap = Dcp_sim.Heap
module Crc32 = Dcp_net.Crc32
module Packet = Dcp_net.Packet
module Wal = Dcp_stable.Wal
module Rng = Dcp_rng.Rng
module Runtime = Dcp_core.Runtime
module Topology = Dcp_net.Topology
module Clock = Dcp_sim.Clock

let sample_value =
  Value.record
    [
      ("command", Value.str "reserve");
      ("args", Value.list [ Value.int 123456; Value.str "passenger-007"; Value.int 42 ]);
      ("reply", Value.option (Some (Value.port (Port_name.make ~node:1 ~guardian:2 ~index:3 ~uid:4))));
    ]

let sample_encoded = Codec.encode_exn sample_value
let kilobyte = String.init 1024 (fun i -> Char.chr (i mod 256))
let bytes64 = String.init 64 (fun i -> Char.chr ((i * 7) mod 256))
let fourkib = String.init 4096 (fun i -> Char.chr ((i * 13) mod 256))

let test_codec_encode =
  Test.make ~name:"codec.encode message" (Staged.stage (fun () -> Codec.encode_exn sample_value))

let test_codec_encode_reused =
  Test.make ~name:"codec.encode message (reused encoder)"
    (Staged.stage
       (let enc = Codec.encoder () in
        fun () -> Codec.encode_with_exn enc sample_value))

let test_codec_decode =
  Test.make ~name:"codec.decode message" (Staged.stage (fun () -> Codec.decode_exn sample_encoded))

let test_crc32_64 =
  Test.make ~name:"crc32 64B" (Staged.stage (fun () -> Crc32.digest_string bytes64))

let test_crc32 =
  Test.make ~name:"crc32 1KiB" (Staged.stage (fun () -> Crc32.digest_string kilobyte))

let test_crc32_4k =
  Test.make ~name:"crc32 4KiB" (Staged.stage (fun () -> Crc32.digest_string fourkib))

let test_fragment =
  Test.make ~name:"packet.fragment 1KiB mtu=256"
    (Staged.stage (fun () -> Packet.fragment ~src:0 ~dst:1 ~msg_id:1 ~mtu:256 kilobyte))

let test_fragment_reassemble =
  Test.make ~name:"packet.fragment+reassemble 1KiB mtu=256"
    (Staged.stage (fun () ->
         let frags = Packet.fragment ~src:0 ~dst:1 ~msg_id:1 ~mtu:256 kilobyte in
         let r = Packet.Reassembly.create () in
         List.iter (fun f -> ignore (Packet.Reassembly.offer r ~now:0 f)) frags))

let test_heap =
  Test.make ~name:"heap push+pop x64"
    (Staged.stage (fun () ->
         let h = Heap.create ~cmp:Int.compare in
         for i = 0 to 63 do
           Heap.push h ((i * 37) mod 64)
         done;
         for _ = 0 to 63 do
           ignore (Heap.pop h)
         done))

(* Depth matters to the sift: 1k keys is ~5 levels of the 4-ary heap
   (vs ~10 of a binary one), so this row tracks the per-level cost the
   shallow x64 row can hide. *)
let test_heap_1k =
  Test.make ~name:"heap push+pop x1k"
    (Staged.stage (fun () ->
         let h = Heap.create ~cmp:Int.compare in
         for i = 0 to 1023 do
           Heap.push h ((i * 997) mod 1024)
         done;
         for _ = 0 to 1023 do
           ignore (Heap.pop h)
         done))

let test_wal_append =
  Test.make ~name:"wal.append 64B"
    (Staged.stage
       (let wal = Wal.create () in
        let payload = String.make 64 'x' in
        fun () -> ignore (Wal.append wal payload)))

(* Replay of a standing 1k-record log: with the verified-prefix cache this
   is pure iteration (each CRC was checked once, on the first replay);
   without it every call re-digests all 1000 records. *)
let test_wal_replay_1k =
  Test.make ~name:"wal.replay 1k"
    (Staged.stage
       (let wal = Wal.create () in
        let payload = String.make 64 'y' in
        let () =
          for _ = 1 to 1000 do
            ignore (Wal.append wal payload)
          done
        in
        fun () ->
          let n = ref 0 in
          Wal.replay wal (fun _ _ -> incr n)))

(* Recovery of a checkpointed store: crash + rebuild from the newest
   checkpoint plus the log suffix.  The 1k and 10k rows must track each
   other — recovery is O(suffix), and the suffix length is bounded by
   [checkpoint_every], not by history. *)
let recover_bench entries =
  let store = Dcp_stable.Store.create ~checkpoint_every:100 () in
  let () =
    for i = 1 to entries do
      Dcp_stable.Store.set store ~key:(string_of_int (i mod 250)) (string_of_int i)
    done;
    Dcp_stable.Store.flush store
  in
  fun () ->
    Dcp_stable.Store.crash store ();
    ignore (Dcp_stable.Store.recover store)

let test_wal_recover_1k =
  Test.make ~name:"wal.recover (1k entries, checkpointed)" (Staged.stage (recover_bench 1_000))

let test_wal_recover_10k =
  Test.make ~name:"wal.recover (10k entries, checkpointed)" (Staged.stage (recover_bench 10_000))

(* Framing a 250-key table as a CRC'd checkpoint blob plus compacting the
   log prefix — the cost a guardian pays every [checkpoint_every]
   mutations. *)
let test_checkpoint_write =
  Test.make ~name:"checkpoint.write (250 keys)"
    (Staged.stage
       (let store = Dcp_stable.Store.create () in
        let () =
          for i = 1 to 1_000 do
            Dcp_stable.Store.set store ~key:(string_of_int (i mod 250)) (string_of_int i)
          done
        in
        fun () -> Dcp_stable.Store.checkpoint store))

let test_token =
  Test.make ~name:"token seal+unseal"
    (Staged.stage (fun () ->
         let token = Token.seal ~secret:0x1234L ~owner:7 ~obj:99 in
         ignore (Token.unseal ~secret:0x1234L ~owner:7 token)))

let test_rng =
  Test.make ~name:"rng.int"
    (Staged.stage
       (let rng = Rng.create ~seed:1 in
        fun () -> ignore (Rng.int rng 1_000_000)))

(* One full exchange through the runtime per run: a fresh client guardian
   sends to a long-lived echo guardian and receives the reply; the engine
   drains to quiescence.  Covers guardian creation, both codec directions,
   routing, port machinery and two process switches. *)
let test_send_path =
  Test.make ~name:"runtime round-trip (+guardian)"
    (Staged.stage
       (let world =
          Runtime.create_world ~seed:1
            ~topology:(Topology.full_mesh ~n:1 Dcp_net.Link.perfect)
            ()
        in
        let echo_def =
          {
            Runtime.def_name = "bench_echo";
            provides = [ ([ Vtype.wildcard ], 64) ];
            init =
              (fun ctx _ ->
                let rec loop () =
                  (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
                  | `Timeout -> ()
                  | `Msg (_, msg) -> (
                      match msg.Dcp_core.Message.reply_to with
                      | Some reply -> Runtime.send ctx ~to_:reply "pong" []
                      | None -> ()));
                  loop ()
                in
                loop ());
            recover = None;
          }
        in
        Runtime.register_def world echo_def;
        let echo = Runtime.create_guardian world ~at:0 ~def_name:"bench_echo" ~args:[] in
        let echo_port = List.hd (Runtime.guardian_ports echo) in
        let client_def =
          {
            Runtime.def_name = "bench_client";
            provides = [];
            init =
              (fun ctx _ ->
                let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
                Runtime.send ctx ~to_:echo_port ~reply_to:(Dcp_core.Port.name reply) "ping" [];
                match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
                | `Msg _ | `Timeout -> ());
            recover = None;
          }
        in
        Runtime.register_def world client_def;
        Runtime.run world;
        fun () ->
          ignore (Runtime.create_guardian world ~at:0 ~def_name:"bench_client" ~args:[]);
          Runtime.run world))

(* Same round trip against a world that already hosts 1k guardians on the
   node: with any O(#guardians) work left on the delivery path this row
   collapses; with the indexed hot path it tracks the row above. *)
let test_send_path_1k =
  Test.make ~name:"runtime round-trip @1k guardians"
    (Staged.stage
       (let world =
          Runtime.create_world ~seed:2
            ~topology:(Topology.full_mesh ~n:1 Dcp_net.Link.perfect)
            ()
        in
        let idle_def =
          {
            Runtime.def_name = "bench_idle";
            provides = [];
            init = (fun _ _ -> ());
            recover = None;
          }
        in
        let echo_def =
          {
            Runtime.def_name = "bench_echo";
            provides = [ ([ Vtype.wildcard ], 64) ];
            init =
              (fun ctx _ ->
                let rec loop () =
                  (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
                  | `Timeout -> ()
                  | `Msg (_, msg) -> (
                      match msg.Dcp_core.Message.reply_to with
                      | Some reply -> Runtime.send ctx ~to_:reply "pong" []
                      | None -> ()));
                  loop ()
                in
                loop ());
            recover = None;
          }
        in
        Runtime.register_def world idle_def;
        Runtime.register_def world echo_def;
        let echo = Runtime.create_guardian world ~at:0 ~def_name:"bench_echo" ~args:[] in
        let echo_port = List.hd (Runtime.guardian_ports echo) in
        for _ = 1 to 999 do
          ignore (Runtime.create_guardian world ~at:0 ~def_name:"bench_idle" ~args:[])
        done;
        let client_def =
          {
            Runtime.def_name = "bench_client";
            provides = [];
            init =
              (fun ctx _ ->
                let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
                Runtime.send ctx ~to_:echo_port ~reply_to:(Dcp_core.Port.name reply) "ping" [];
                match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
                | `Msg _ | `Timeout -> ());
            recover = None;
          }
        in
        Runtime.register_def world client_def;
        Runtime.run world;
        fun () ->
          ignore (Runtime.create_guardian world ~at:0 ~def_name:"bench_client" ~args:[]);
          Runtime.run world))

(* The pure half of one anti-entropy round: merge-diff of two 1k-entry
   key-sorted digests.  This is what every replica runs per received
   digest, so its cost bounds sync CPU at scale. *)
let test_reconcile_diff =
  Test.make ~name:"reconcile.diff 1k entries"
    (Staged.stage
       (let module Reconcile = Dcp_primitives.Reconcile in
        let claimed =
          List.init 1000 (fun i -> (Printf.sprintf "key%04d" i, ((i mod 7) + 1, i mod 3)))
        in
        let held =
          List.init 1000 (fun i -> (Printf.sprintf "key%04d" i, ((i mod 5) + 1, i mod 3)))
        in
        fun () -> ignore (Reconcile.diff ~claimed ~held)))

let all_tests =
  [
    test_codec_encode;
    test_codec_encode_reused;
    test_codec_decode;
    test_crc32_64;
    test_crc32;
    test_crc32_4k;
    test_fragment;
    test_fragment_reassemble;
    test_heap;
    test_heap_1k;
    test_wal_append;
    test_wal_replay_1k;
    test_wal_recover_1k;
    test_wal_recover_10k;
    test_checkpoint_write;
    test_token;
    test_rng;
    test_reconcile_diff;
    test_send_path;
    test_send_path_1k;
  ]

(* ---- deterministic replica macro rows ----

   Whole-protocol cost of anti-entropy convergence, measured in virtual
   units: a 32-replica group on a 10%-loss LAN, 60 keys written through
   random replicas, then probed until every mirrored key → stamp table is
   identical.  Virtual time and byte counts are pure functions of the seed
   — the same number on every run and every machine — so the 25% bench-diff
   tolerance effectively pins these rows exactly: any protocol change that
   alters convergence behaviour or sync cost trips the gate. *)
let replica_rows () =
  let module Replica = Dcp_primitives.Replica in
  let module Rpc = Dcp_primitives.Rpc in
  let module Metrics = Dcp_sim.Metrics in
  let n = 32 in
  let keys = 60 in
  let horizon = Clock.s 2 in
  let world =
    Runtime.create_world ~seed:11
      ~topology:(Topology.full_mesh ~n:(n + 1) (Dcp_net.Link.lossy 0.1))
      ()
  in
  let replicas =
    Array.of_list
      (Replica.create_group world
         ~nodes:(List.init n Fun.id)
         ~sync_every:(Clock.ms 250) ~fanout:2 ~byte_budget:2048 ())
  in
  let driver_def =
    {
      Runtime.def_name = "bench_replica_driver";
      provides = [];
      init =
        (fun ctx _ ->
          Runtime.sleep ctx (Clock.ms 50);
          for i = 1 to keys do
            (match
               Rpc.call ctx
                 ~to_:replicas.(i mod n)
                 ~timeout:(Clock.ms 500) ~attempts:3 ~request_id:(4_000_000_000 + i) "write"
                 [ Value.str (Printf.sprintf "key%02d" i); Value.int i ]
             with
            | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ());
            Runtime.sleep ctx (Clock.ms 25)
          done);
      recover = None;
    }
  in
  Runtime.register_def world driver_def;
  ignore (Runtime.create_guardian world ~at:n ~def_name:"bench_replica_driver" ~args:[]);
  Runtime.run_for world horizon;
  let tables () =
    List.map
      (fun g -> Replica.table_in_store (Runtime.guardian_store g))
      (Runtime.find_guardians world ~def_name:Replica.def_name)
  in
  let converged () =
    match tables () with
    | [] -> false
    | reference :: rest ->
        List.length reference = keys && List.for_all (fun t -> t = reference) rest
  in
  let step = Clock.ms 100 in
  let rec probe i =
    if converged () then Some i
    else if i >= 1000 then None
    else begin
      Runtime.run_for world step;
      probe (i + 1)
    end
  in
  let convergence_ms =
    match probe 0 with
    | Some _ -> (Runtime.now world - horizon) / Clock.ms 1
    | None -> -1
  in
  let sync_bytes =
    Metrics.count (Metrics.counter (Runtime.metrics world) Replica.metric_sync_bytes)
  in
  Printf.printf "  %-32s %12.1f virtual ms\n%!" "replica.convergence 32x lossy"
    (float_of_int convergence_ms);
  Printf.printf "  %-32s %12.1f bytes\n%!" "replica.sync bytes to converge" (float_of_int sync_bytes);
  [
    ("replica.convergence 32x lossy (virtual ms)", Some (float_of_int convergence_ms));
    ("replica.sync bytes to converge (bytes)", Some (float_of_int sync_bytes));
  ]

(* ---- deterministic message-cost rows ----

   The paper's primitive-cost comparison, §3: what one client-visible
   operation costs in messages on the wire.  A synchronized send is two
   messages (payload + ack); a remote procedure call is two (request +
   reply); an SCD-register write on an n-member group is the broadcast to
   the other members, the client exchange, and its share of the status
   gossip that drives the delivery frontier.  Perfect links and pinned
   seeds make every count an exact function of the code, so the bench gate
   pins these rows at threshold 1. *)
let sendcost_rows () =
  let module Rpc = Dcp_primitives.Rpc in
  let module Sync_send = Dcp_primitives.Sync_send in
  let module Register = Dcp_primitives.Register in
  let module Network = Dcp_net.Network in
  let module Message = Dcp_core.Message in
  let ops = 20 in
  let measure ctx body =
    let net = Runtime.network (Runtime.ctx_world ctx) in
    let before = (Network.stats net).Network.messages_sent in
    body ();
    let after = (Network.stats net).Network.messages_sent in
    float_of_int (after - before) /. float_of_int ops
  in
  let driver world ~at ~name body =
    let def =
      { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
    in
    Runtime.register_def world def;
    ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])
  in
  (* sync_send: a cooperating receiver acknowledges each message. *)
  let sync_cost =
    let world =
      Runtime.create_world ~seed:17 ~topology:(Topology.full_mesh ~n:2 Dcp_net.Link.perfect) ()
    in
    let receiver =
      {
        Runtime.def_name = "bench_sync_target";
        provides = [ ([ Vtype.wildcard ], 16) ];
        init =
          (fun ctx _ ->
            let port = Runtime.port ctx 0 in
            let rec loop () =
              (match Runtime.receive ctx [ port ] with
              | `Timeout -> ()
              | `Msg (_, msg) -> Sync_send.acknowledge ctx msg);
              loop ()
            in
            loop ());
        recover = None;
      }
    in
    Runtime.register_def world receiver;
    let target =
      List.hd
        (Runtime.guardian_ports
           (Runtime.create_guardian world ~at:0 ~def_name:"bench_sync_target" ~args:[]))
    in
    let cost = ref 0.0 in
    driver world ~at:1 ~name:"bench_sync_driver" (fun ctx ->
        Runtime.sleep ctx (Clock.ms 50);
        cost :=
          measure ctx (fun () ->
              for i = 1 to ops do
                ignore (Sync_send.send ctx ~to_:target "note" [ Value.int i ])
              done));
    Runtime.run_for world (Clock.s 5);
    !cost
  in
  (* rpc: request out, reply back. *)
  let rpc_cost =
    let world =
      Runtime.create_world ~seed:19 ~topology:(Topology.full_mesh ~n:2 Dcp_net.Link.perfect) ()
    in
    let server =
      {
        Runtime.def_name = "bench_rpc_server";
        provides = [ ([ Vtype.wildcard ], 16) ];
        init =
          (fun ctx _ ->
            let port = Runtime.port ctx 0 in
            let rec loop () =
              (match Runtime.receive ctx [ port ] with
              | `Timeout -> ()
              | `Msg (_, msg) -> (
                  match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
                  | "ping", [ Value.Int rid ], Some reply ->
                      Runtime.send ctx ~to_:reply "pong" [ Value.int rid ]
                  | _ -> ()));
              loop ()
            in
            loop ());
        recover = None;
      }
    in
    Runtime.register_def world server;
    let target =
      List.hd
        (Runtime.guardian_ports
           (Runtime.create_guardian world ~at:0 ~def_name:"bench_rpc_server" ~args:[]))
    in
    let cost = ref 0.0 in
    driver world ~at:1 ~name:"bench_rpc_driver" (fun ctx ->
        Runtime.sleep ctx (Clock.ms 50);
        cost :=
          measure ctx (fun () ->
              for i = 1 to ops do
                ignore
                  (Rpc.call ctx ~to_:target ~timeout:(Clock.s 1) ~attempts:1
                     ~request_id:(4_300_000_000 + i) "ping" [])
              done));
    Runtime.run_for world (Clock.s 5);
    !cost
  in
  (* scd register write on a 5-member group: broadcast + client exchange +
     the status gossip share over the acked-write window. *)
  let scd_cost =
    let members = 5 in
    let world =
      Runtime.create_world ~seed:23
        ~topology:(Topology.full_mesh ~n:(members + 1) Dcp_net.Link.perfect)
        ()
    in
    let regs =
      Array.of_list
        (Register.create_group world ~nodes:(List.init members Fun.id) ~introduce_at:members ())
    in
    let cost = ref 0.0 in
    driver world ~at:members ~name:"bench_scd_driver" (fun ctx ->
        (* Past the bootstrap: the measured window holds only writes and
           steady-state gossip. *)
        Runtime.sleep ctx (Clock.s 2);
        cost :=
          measure ctx (fun () ->
              for i = 1 to ops do
                ignore
                  (Register.write ctx
                     ~register:regs.(i mod members)
                     ~key:(Printf.sprintf "k%d" (i mod 4))
                     ~value:(Value.int i) ~timeout:(Clock.s 2))
              done));
    Runtime.run_for world (Clock.s 30);
    !cost
  in
  (* snapshot-object update on a 4-member group: same SCD broadcast
     skeleton as the register write, but the group serves no per-key
     reads, so the row isolates the pure update/gossip cost at a
     different group size. *)
  let snapshot_cost =
    let module Snapshot = Dcp_primitives.Snapshot in
    let members = 4 in
    let world =
      Runtime.create_world ~seed:29
        ~topology:(Topology.full_mesh ~n:(members + 1) Dcp_net.Link.perfect)
        ()
    in
    let snaps =
      Array.of_list
        (Snapshot.create_group world ~nodes:(List.init members Fun.id) ~introduce_at:members ())
    in
    let cost = ref 0.0 in
    driver world ~at:members ~name:"bench_snapshot_driver" (fun ctx ->
        Runtime.sleep ctx (Clock.s 2);
        cost :=
          measure ctx (fun () ->
              for i = 1 to ops do
                ignore
                  (Snapshot.update ctx
                     ~snapshot:snaps.(i mod members)
                     ~key:(Printf.sprintf "k%d" (i mod 4))
                     ~value:(Value.int i) ~timeout:(Clock.s 2))
              done));
    Runtime.run_for world (Clock.s 30);
    !cost
  in
  Printf.printf "  %-40s %12.1f msgs/op\n%!" "sendcost.sync_send (pair)" sync_cost;
  Printf.printf "  %-40s %12.1f msgs/op\n%!" "sendcost.rpc (pair)" rpc_cost;
  Printf.printf "  %-40s %12.1f msgs/op\n%!" "sendcost.scd register write (5 members)" scd_cost;
  Printf.printf "  %-40s %12.1f msgs/op\n%!" "sendcost.scd snapshot update (4 members)" snapshot_cost;
  [
    ("sendcost.sync_send (pair) (msgs/op)", Some sync_cost);
    ("sendcost.rpc (pair) (msgs/op)", Some rpc_cost);
    ("sendcost.scd register write (5 members) (msgs/op)", Some scd_cost);
    ("sendcost.scd snapshot update (4 members) (msgs/op)", Some snapshot_cost);
  ]

let json_path = "BENCH_micro.json"

(* Row names are controlled strings (no quotes/backslashes), but escape
   defensively so the JSON stays well-formed whatever a row is called. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ?(path = json_path) rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"dcp.bench.micro/v1\",\n  \"unit\": \"ns_per_op\",\n  \"results\": [";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "%s\n    { \"name\": \"%s\", \"ns_per_op\": %s }"
        (if i = 0 then "" else ",")
        (json_escape name)
        (match est with Some v -> Printf.sprintf "%.1f" v | None -> "null"))
    rows;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc

(* One bechamel pass over [all_tests], silent: (name, ns/run option) in
   test order. *)
let timing_pass () =
  List.concat_map
    (fun test ->
      let instance = Instance.monotonic_clock in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
      let raw = Benchmark.all cfg [ instance ] test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let results = Analyze.all ols instance raw in
      let pass = ref [] in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> pass := (name, Some est) :: !pass
          | Some _ | None -> pass := (name, None) :: !pass)
        results;
      (* one row per Test.make, so the hashtable holds a single binding *)
      List.rev !pass)
    all_tests

(* A wall-clock estimate is only as good as the quietest window it saw:
   co-tenant interference inflates a pass one-sidedly, so the per-row
   minimum over a few full passes converges on the undisturbed cost —
   which is the quantity the @bench-diff timing gate means to pin. *)
let timing_passes = 3

let timing_rows () =
  let merged = ref (timing_pass ()) in
  for _ = 2 to timing_passes do
    merged :=
      List.map2
        (fun (name, best) (name', est) ->
          assert (String.equal name name');
          ( name,
            match (best, est) with
            | Some a, Some b -> Some (Float.min a b)
            | (Some _ as v), None | None, v -> v ))
        !merged (timing_pass ())
  done;
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "  %-32s %12.1f ns/run\n%!" name est
      | None -> Printf.printf "  %-32s (no estimate)\n%!" name)
    !merged;
  !merged

let run () =
  print_newline ();
  Printf.printf "== Micro-benchmarks (bechamel, monotonic clock, min of %d passes) ==\n%!"
    timing_passes;
  let timing = timing_rows () in
  print_endline "== Replica macro rows (deterministic, virtual units) ==";
  let macro = replica_rows () in
  print_endline "== Message-cost rows (deterministic, msgs/op) ==";
  let sendcost = sendcost_rows () in
  print_endline "== Domain-scaling rows (wall clock, msgs/s) ==";
  let scaling = Scaling.rows () in
  write_json (timing @ macro @ sendcost @ scaling);
  Printf.printf "  wrote %s\n%!" json_path

(* The deterministic rows alone, written to their own file: being exact,
   they can be diffed against the committed baseline at a tight threshold
   inside `dune runtest` (see bench/dune), where the timing rows cannot. *)
let run_replica_gate () =
  print_newline ();
  print_endline "== Replica macro rows (deterministic, virtual units) ==";
  let macro = replica_rows () in
  print_endline "== Message-cost rows (deterministic, msgs/op) ==";
  let sendcost = sendcost_rows () in
  let path = "BENCH_replica.json" in
  write_json ~path (macro @ sendcost);
  Printf.printf "  wrote %s\n%!" path
