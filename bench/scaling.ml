(* Domain-scaling probe for the sharded engine: 10k guardians in
   pinger/echo pairs, each pair pinned to one node (= one shard), so the
   whole workload is intra-shard and embarrassingly parallel.  Every
   config runs the same virtual workload — the message count is pinned by
   construction — at a different shard/domain count, so the msgs/s spread
   across rows is pure wall clock.  The table lands in BENCH_micro.json
   as `scaling.*` rows and runs under `@bench-smoke` via `main.exe micro`
   (standalone: `dune exec bench/main.exe -- scaling`).

   Caveat: aggregate throughput only scales with *hardware* parallelism.
   On a single-core host every domain multiplexes onto the same core and
   the table degenerates to ~1x with barrier overhead — still useful as a
   regression baseline for the parallel path, not as a speedup demo. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Topology = Dcp_net.Topology
module Clock = Dcp_sim.Clock

let guardians = 10_000

(* Long enough that per-config wall time swamps warm-up and GC noise:
   the rows are gated by @bench-diff (throughput class: twice the timing
   threshold, downward only). *)
let rounds = 8

(* Per-config best-of: throughput noise on a shared host is one-sided
   (interference only slows a run down), so the max over a few attempts
   estimates the machine's actual capability far more stably than any
   single shot — and the @bench-diff throughput gate fails on the
   downside. *)
let attempts = 3
let domain_counts = [ 1; 2; 4; 8 ]

let run_config ~domains =
  let pairs = guardians / 2 in
  let world =
    Runtime.create_world ~seed:31
      ~topology:(Topology.full_mesh ~n:domains Dcp_net.Link.perfect)
      ~shards:domains ~parallel:(domains > 1) ()
  in
  let echo_def =
    {
      Runtime.def_name = "scale_echo";
      provides = [ ([ Vtype.wildcard ], 64) ];
      init =
        (fun ctx _ ->
          let rec loop () =
            (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
            | `Timeout -> ()
            | `Msg (_, msg) -> (
                match msg.Dcp_core.Message.reply_to with
                | Some reply -> Runtime.send ctx ~to_:reply "pong" []
                | None -> ()));
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world echo_def;
  (* Read-only after this loop, so sharing it with every shard's pinger
     closure is safe. *)
  let echo_ports =
    Array.init pairs (fun i ->
        List.hd
          (Runtime.guardian_ports
             (Runtime.create_guardian world ~at:(i mod domains) ~def_name:"scale_echo" ~args:[])))
  in
  let pinger_def =
    {
      Runtime.def_name = "scale_pinger";
      provides = [];
      init =
        (fun ctx args ->
          let target =
            match args with [ Value.Int i ] -> echo_ports.(i) | _ -> invalid_arg "scale_pinger"
          in
          let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
          for _ = 1 to rounds do
            Runtime.send ctx ~to_:target ~reply_to:(Dcp_core.Port.name reply) "ping" [];
            match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
            | `Msg _ | `Timeout -> ()
          done);
      recover = None;
    }
  in
  Runtime.register_def world pinger_def;
  for i = 0 to pairs - 1 do
    ignore
      (Runtime.create_guardian world ~at:(i mod domains) ~def_name:"scale_pinger"
         ~args:[ Value.int i ])
  done;
  let t0 = Unix.gettimeofday () in
  Runtime.run world;
  let dt = Unix.gettimeofday () -. t0 in
  (* Pair-local traffic never touches the (inter-node) network counters:
     the message count is pinned by the workload itself — one ping and
     one pong per round per pair. *)
  let msgs = pairs * rounds * 2 in
  (float_of_int msgs /. dt, Runtime.events_executed world)

let rows () =
  let results =
    List.map
      (fun d ->
        let best = ref 0.0 and events = ref 0 in
        for _ = 1 to attempts do
          let msgs_per_s, ev = run_config ~domains:d in
          if msgs_per_s > !best then best := msgs_per_s;
          events := ev
        done;
        Printf.printf "  %-44s %12.0f msgs/s  (best of %d, %d events)\n%!"
          (Printf.sprintf "scaling.pingpong 10k guardians @%d domains" d)
          !best attempts !events;
        (d, !best))
      domain_counts
  in
  let base = List.assoc 1 results in
  let speedup = List.assoc 4 results /. base in
  Printf.printf "  %-44s %12.2f x\n%!" "scaling.speedup @4 domains vs @1" speedup;
  List.map
    (fun (d, v) ->
      (Printf.sprintf "scaling.pingpong 10k guardians @%d domains (msgs/s)" d, Some v))
    results
  @ [ ("scaling.speedup @4 domains vs @1 (x)", Some speedup) ]

let run () = ignore (rows ())
