(* Direct (non-bechamel) measurement of the in-simulator message hot path:
   one client does [pings] ping/pong round trips against an echo guardian in
   a world also hosting [idle] other guardians.  Per-message cost that grows
   with [idle] means an O(#guardians) scan survives on the delivery path.

   Run with:  dune exec bench/probe.exe -- <idle> <pings>  *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Topology = Dcp_net.Topology
module Clock = Dcp_sim.Clock

let () =
  let idle = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 0 in
  let pings = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 50_000 in
  let world =
    Runtime.create_world ~seed:7 ~topology:(Topology.full_mesh ~n:1 Dcp_net.Link.perfect) ()
  in
  let idle_def =
    { Runtime.def_name = "probe_idle"; provides = []; init = (fun _ _ -> ()); recover = None }
  in
  let echo_def =
    {
      Runtime.def_name = "probe_echo";
      provides = [ ([ Vtype.wildcard ], 64) ];
      init =
        (fun ctx _ ->
          let rec loop () =
            (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
            | `Timeout -> ()
            | `Msg (_, msg) -> (
                match msg.Dcp_core.Message.reply_to with
                | Some reply -> Runtime.send ctx ~to_:reply "pong" []
                | None -> ()));
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world idle_def;
  Runtime.register_def world echo_def;
  let echo = Runtime.create_guardian world ~at:0 ~def_name:"probe_echo" ~args:[] in
  let echo_port = List.hd (Runtime.guardian_ports echo) in
  for _ = 1 to idle do
    ignore (Runtime.create_guardian world ~at:0 ~def_name:"probe_idle" ~args:[])
  done;
  let client_def =
    {
      Runtime.def_name = "probe_client";
      provides = [];
      init =
        (fun ctx _ ->
          let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
          for _ = 1 to pings do
            Runtime.send ctx ~to_:echo_port ~reply_to:(Dcp_core.Port.name reply) "ping" [];
            match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
            | `Msg _ | `Timeout -> ()
          done);
      recover = None;
    }
  in
  Runtime.register_def world client_def;
  Runtime.run world;
  let t0 = Sys.time () in
  ignore (Runtime.create_guardian world ~at:0 ~def_name:"probe_client" ~args:[]);
  Runtime.run world;
  let t1 = Sys.time () in
  Printf.printf "idle=%-6d pings=%d  %8.1f ns/round-trip\n" idle pings
    ((t1 -. t0) *. 1e9 /. float_of_int pings)
