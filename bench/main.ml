(* Benchmark harness: regenerates every experiment table of DESIGN.md §4
   (E1-E8) on the simulator, then runs the bechamel micro-benchmarks.

   Run with:  dune exec bench/main.exe
   Pass experiment ids (e1 ... e8, micro) to run a subset.

   `dune exec bench/main.exe -- micro` additionally writes BENCH_micro.json
   (ns/op per hot-path row; schema in DESIGN.md §6) — the machine-readable
   perf baseline compared across PRs.  `dune build @bench-smoke` runs it as
   a CI smoke check. *)

let registry =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e2b", Experiments.e2b);
    ("e3", Experiments.e3);
    ("e4a", Experiments.e4_crashes);
    ("e4b", Experiments.e4_idempotency);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("micro", Micro.run);
    ("replica-rows", Micro.run_replica_gate);
    ("scaling", Scaling.run);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    match requested with
    | [] -> registry
    | names ->
        List.filter_map
          (fun name ->
            match List.assoc_opt (String.lowercase_ascii name) registry with
            | Some f -> Some (name, f)
            | None ->
                Printf.eprintf "unknown experiment %S (known: %s)\n" name
                  (String.concat ", " (List.map fst registry));
                None)
          names
  in
  print_endline "Primitives for Distributed Computing (Liskov, SOSP 1979) — reproduction benches";
  List.iter
    (fun (name, f) ->
      Printf.printf "-- %s --\n%!" name;
      f ())
    to_run
