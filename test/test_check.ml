(* Self-tests for the checking harness itself.  The load-bearing one is the
   mutation test: a scenario whose reference model deliberately ignores one
   transfer MUST be flagged by the oracles and shrunk to a small
   counterexample — a harness that stays green on a known-broken model is
   worse than no harness at all. *)

module Check = Dcp_check
module Clock = Dcp_sim.Clock

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let profile name =
  match Check.Profile.find name with
  | Some p -> p
  | None -> Alcotest.failf "unknown profile %s" name

(* A calm profile keeps these tests fast; the mutation is detectable in any
   execution where at least one transfer commits. *)
let calm = profile "lan"

let test_mutation_detected () =
  let outcome = Check.Scenario.execute Check.Scenarios.bank_mutated ~seed:1 ~profile:calm () in
  match Check.Scenario.fail_reason outcome with
  | None -> Alcotest.fail "mutated bank model passed the oracles: the checker is blind"
  | Some reason ->
      Alcotest.(check bool)
        "failure implicates the model oracle" true
        (contains ~affix:"model" reason || contains ~affix:"balance" reason)

let test_honest_twin_passes () =
  (* Same seed, same profile, honest model: the failure above is the
     mutation's doing, not scenario noise. *)
  let outcome = Check.Scenario.execute Check.Scenarios.bank ~seed:1 ~profile:calm () in
  match Check.Scenario.fail_reason outcome with
  | None -> ()
  | Some reason -> Alcotest.failf "honest bank scenario failed: %s" reason

let test_mutation_shrinks () =
  match Check.Shrink.run Check.Scenarios.bank_mutated ~seed:1 ~profile:calm ~budget:40 () with
  | Error e -> Alcotest.failf "nothing to shrink: %s" e
  | Ok cx ->
      Alcotest.(check bool) "some shrink step accepted" true (cx.Check.Shrink.accepted > 0);
      Alcotest.(check bool) "workload minimised" true (cx.Check.Shrink.workload <= 2);
      Alcotest.(check bool) "trials within budget" true (cx.Check.Shrink.trials <= 40);
      (* The minimal point must itself replay to a failure — a shrinker
         that reports a passing configuration is lying. *)
      let replay =
        Check.Scenario.execute Check.Scenarios.bank_mutated ~seed:cx.Check.Shrink.seed
          ~profile:(profile cx.Check.Shrink.profile)
          ~horizon:cx.Check.Shrink.horizon ~workload:cx.Check.Shrink.workload
          ~intensity:cx.Check.Shrink.intensity ()
      in
      (match Check.Scenario.fail_reason replay with
      | Some _ -> ()
      | None -> Alcotest.fail "shrunk counterexample does not reproduce");
      let hint = Check.Shrink.replay_hint cx in
      Alcotest.(check bool)
        "replay hint names the scenario" true
        (contains ~affix:"bank_mutated" hint)

let test_sweep_deterministic_failures () =
  (* A sweep with a non-empty failure set must report the identical
     (profile, seed, reason) list on a second run. *)
  let sweep () =
    Check.Sweep.run Check.Scenarios.bank_mutated ~profiles:[ calm ] ~seed_base:1 ~seeds:5
  in
  let a = sweep () and b = sweep () in
  Alcotest.(check bool) "failures found" true (a.Check.Sweep.failures <> []);
  let strip t =
    List.map
      (fun f -> (f.Check.Sweep.profile, f.Check.Sweep.seed, f.Check.Sweep.reason))
      t.Check.Sweep.failures
  in
  Alcotest.(check (list (triple string int string))) "identical failure sets" (strip a) (strip b)

let test_outcome_fingerprint_deterministic () =
  let run () = Check.Scenario.execute Check.Scenarios.bank ~seed:42 ~profile:(profile "wan+crash") () in
  let a = run () and b = run () in
  Alcotest.(check string) "fingerprints agree" a.Check.Scenario.fingerprint b.Check.Scenario.fingerprint;
  Alcotest.(check bool) "verdicts agree"
    true
    (Check.Scenario.fail_reason a = Check.Scenario.fail_reason b)

let test_replica_fingerprint_deterministic () =
  (* The 100-replica scenario at a reduced horizon/workload: identical
     params must yield bit-identical fingerprints (the sweep determinism
     surface for the new scenario). *)
  let run () =
    Check.Scenario.execute Check.Scenarios.replica ~seed:9 ~profile:(profile "wan+lossy+crash")
      ~horizon:(Clock.s 2) ~workload:40 ()
  in
  let a = run () and b = run () in
  Alcotest.(check string) "fingerprints agree" a.Check.Scenario.fingerprint
    b.Check.Scenario.fingerprint;
  (match Check.Scenario.fail_reason a with
  | None -> ()
  | Some reason -> Alcotest.failf "replica scenario failed: %s" reason);
  Alcotest.(check bool) "convergence was measured" true
    (Check.Scenario.stat a "convergence_ms" >= 0)

let tests =
  [
    Alcotest.test_case "mutated model is detected" `Quick test_mutation_detected;
    Alcotest.test_case "honest twin passes" `Quick test_honest_twin_passes;
    Alcotest.test_case "mutation shrinks to a minimal counterexample" `Slow test_mutation_shrinks;
    Alcotest.test_case "failing sweep is deterministic" `Slow test_sweep_deterministic_failures;
    Alcotest.test_case "outcome fingerprint is deterministic" `Quick
      test_outcome_fingerprint_deterministic;
    Alcotest.test_case "replica fingerprint is deterministic" `Slow
      test_replica_fingerprint_deterministic;
  ]
