(* The sharded-runtime determinism contract, pinned.

   Three scenarios (bank, replica, register) under the harshest profile
   (wan+lossy+crash) at shard counts 1, 2 and 4, two seeds each.  The
   expected fingerprints are absolute: a fingerprint is a pure function of
   (seed, profile, horizon, workload, shards), so any drift — a changed
   RNG split order, a different outbox injection order, a placement tweak —
   fails here with a string diff rather than surfacing as flaky chaos runs.

   The shards=1 rows double as the refactor's no-regression proof: they are
   the fingerprints the unsharded runtime produced before sharding existed
   (captured at the commit introducing this file), so one shard still
   replays the historical traces bit for bit.

   On top of the absolute pins, two relative properties close the loop:
   running with [parallel:true] must reproduce the sequential fingerprint
   (domain execution is an implementation detail of an epoch), and
   executing the same params twice in one process must agree (no hidden
   global state). *)

module Check = Dcp_check
module Scenario = Check.Scenario
module Scenarios = Check.Scenarios
module Clock = Dcp_sim.Clock

let profile =
  match Check.Profile.find "wan+lossy+crash" with
  | Some p -> p
  | None -> Alcotest.fail "profile wan+lossy+crash missing"

(* Replica runs at the check-smoke sweep's reduced size (2 s horizon, 40
   writes over 100 replicas) to keep the matrix affordable; bank and
   register use their scenario defaults. *)
let execute name ~seed ~shards ~parallel =
  let scenario =
    match Scenarios.find name with
    | Some s -> s
    | None -> Alcotest.fail ("scenario missing: " ^ name)
  in
  let horizon, workload =
    if String.equal name "replica" then (Some (Clock.s 2), Some 40) else (None, None)
  in
  Scenario.execute scenario ~seed ~profile ?horizon ?workload ~shards ~parallel ()

(* (scenario, seed, shards, expected fingerprint); the shards=1 rows equal
   the pre-sharding runtime's output for the same params. *)
let pinned =
  [
    ("bank", 5, 1, "ev=296 sent=210 lost=12 ok=30 to=0");
    ("bank", 5, 2, "ev=542 sent=264 lost=17 ok=30 to=0");
    ("bank", 5, 4, "ev=566 sent=239 lost=11 ok=30 to=0");
    ("bank", 11, 1, "ev=294 sent=210 lost=14 ok=30 to=0");
    ("bank", 11, 2, "ev=574 sent=287 lost=17 ok=30 to=0");
    ("bank", 11, 4, "ev=554 sent=234 lost=11 ok=30 to=0");
    ("replica", 5, 1, "ev=7858 sent=3899 lost=183 keys=39 conv=7750 sync=991661");
    ("replica", 5, 2, "ev=11167 sent=4468 lost=224 keys=40 conv=9250 sync=1181302");
    ("replica", 5, 4, "ev=16895 sent=7773 lost=366 keys=40 conv=7000 sync=1741178");
    ("replica", 11, 1, "ev=9705 sent=5829 lost=274 keys=40 conv=7750 sync=1319087");
    ("replica", 11, 2, "ev=11535 sent=4599 lost=206 keys=39 conv=9500 sync=1104366");
    ("replica", 11, 4, "ev=12246 sent=4800 lost=220 keys=39 conv=7500 sync=1188500");
    ("register", 5, 1, "ev=15761 sent=13110 lost=621 ok=39 unk=6 ne=3 conv=60000");
    ("register", 5, 2, "ev=22929 sent=12958 lost=652 ok=37 unk=6 ne=5 conv=60000");
    ("register", 5, 4, "ev=26653 sent=12947 lost=619 ok=33 unk=11 ne=4 conv=60000");
    ("register", 11, 1, "ev=15709 sent=13075 lost=631 ok=39 unk=8 ne=1 conv=60000");
    ("register", 11, 2, "ev=22960 sent=12946 lost=622 ok=33 unk=8 ne=7 conv=60000");
    ("register", 11, 4, "ev=26661 sent=12922 lost=597 ok=30 unk=13 ne=5 conv=60000");
  ]

let test_pinned (name, seed, shards, expected) () =
  let outcome = execute name ~seed ~shards ~parallel:false in
  Alcotest.(check string)
    (Printf.sprintf "%s seed=%d shards=%d fingerprint" name seed shards)
    expected outcome.Scenario.fingerprint;
  match outcome.Scenario.verdict with
  | Scenario.Pass -> ()
  | Scenario.Fail reason -> Alcotest.fail ("oracle failed: " ^ reason)

(* Domain-parallel execution is observationally identical to running the
   shards in order on one domain: same fingerprint, same verdict. *)
let test_parallel_matches name seed () =
  let seq = execute name ~seed ~shards:4 ~parallel:false in
  let par = execute name ~seed ~shards:4 ~parallel:true in
  Alcotest.(check string)
    (Printf.sprintf "%s seed=%d: parallel == sequential" name seed)
    seq.Scenario.fingerprint par.Scenario.fingerprint

let test_repeat_identical () =
  let a = execute "bank" ~seed:5 ~shards:2 ~parallel:true in
  let b = execute "bank" ~seed:5 ~shards:2 ~parallel:true in
  Alcotest.(check string) "repeated parallel runs agree" a.Scenario.fingerprint
    b.Scenario.fingerprint

let tests =
  List.map
    (fun ((name, seed, shards, _) as row) ->
      Alcotest.test_case
        (Printf.sprintf "%s seed=%d shards=%d pinned" name seed shards)
        (if String.equal name "bank" then `Quick else `Slow)
        (test_pinned row))
    pinned
  @ [
      Alcotest.test_case "bank: 4-domain run matches sequential" `Quick
        (test_parallel_matches "bank" 5);
      Alcotest.test_case "register: 4-domain run matches sequential" `Slow
        (test_parallel_matches "register" 11);
      Alcotest.test_case "repeated parallel runs identical" `Quick test_repeat_identical;
    ]
