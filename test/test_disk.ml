(* The disk-fault plane: the injector's draw semantics, the checkpoint
   frame's total parser, mirror salvage vs sector-rot quarantine, the
   double-buffered checkpoint fallback, and qcheck properties tying
   compacted recovery to full-log replay. *)

module Disk = Dcp_stable.Disk
module Checkpoint = Dcp_stable.Checkpoint
module Wal = Dcp_stable.Wal
module Store = Dcp_stable.Store
module Rng = Dcp_rng.Rng

let dump store =
  List.sort compare (Store.fold store ~init:[] ~f:(fun ~key value acc -> (key, value) :: acc))

(* ---- injector draws ---- *)

let test_disk_none_draws_nothing () =
  let d = Disk.create Disk.none (Rng.create ~seed:1) in
  Alcotest.(check bool) "is_none" true (Disk.is_none Disk.none);
  Alcotest.(check bool) "flaky is not none" false (Disk.is_none Disk.flaky);
  for _ = 1 to 100 do
    Alcotest.(check (option int)) "no stall" None (Disk.draw_stall d);
    Alcotest.(check bool) "no drop" false (Disk.draw_drop d);
    Alcotest.(check bool) "no tear" false (Disk.draw_tear d);
    Alcotest.(check (option (pair int bool))) "no rot" None (Disk.draw_rot d ~targets:10)
  done

let test_disk_flaky_draws_bounded () =
  let d = Disk.create Disk.flaky (Rng.create ~seed:2) in
  let stalls = ref 0 in
  for _ = 1 to 1000 do
    (match Disk.draw_stall d with
    | None -> ()
    | Some ms ->
        incr stalls;
        Alcotest.(check bool) "stall within spec" true (ms >= 1 && ms <= Disk.flaky.Disk.stall_ms));
    match Disk.draw_rot d ~targets:7 with
    | None -> ()
    | Some (victim, sector) ->
        Alcotest.(check bool) "victim in range" true (victim >= 0 && victim < 7);
        (* flaky never destroys the mirror copy *)
        Alcotest.(check bool) "no sector loss under flaky" false sector
  done;
  Alcotest.(check bool) "stall probability bites" true (!stalls > 0)

let test_disk_deterministic () =
  let draw seed =
    let d = Disk.create Disk.flaky (Rng.create ~seed) in
    List.init 50 (fun _ -> (Disk.draw_stall d, Disk.draw_drop d, Disk.draw_rot d ~targets:5))
  in
  Alcotest.(check bool) "same seed, same draws" true (draw 42 = draw 42);
  Alcotest.(check bool) "different seed, different draws" true (draw 42 <> draw 43)

(* ---- checkpoint frames ---- *)

let test_checkpoint_roundtrip () =
  let pairs = [ ("a:b;c", "1;2:3"); ("binary", "\x00\xff\n"); ("z", "") ] in
  let pairs = List.sort compare pairs in
  let blob = Checkpoint.make ~upto:17 pairs in
  (match Checkpoint.restore blob with
  | None -> Alcotest.fail "restore failed on an intact frame"
  | Some (upto, restored) ->
      Alcotest.(check int) "upto" 17 upto;
      Alcotest.(check (list (pair string string))) "pairs" pairs restored);
  Alcotest.(check (option int)) "upto accessor" (Some 17) (Checkpoint.upto blob)

let test_checkpoint_any_flip_detected () =
  let blob = Checkpoint.make ~upto:3 [ ("key", "value"); ("k2", "v2") ] in
  for pos = 0 to String.length blob - 1 do
    let b = Bytes.of_string blob in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
    match Checkpoint.restore (Bytes.to_string b) with
    | None -> ()
    | Some (upto, pairs) ->
        Alcotest.failf "flip at byte %d went undetected (upto=%d, %d pairs)" pos upto
          (List.length pairs)
  done

let test_checkpoint_truncated_detected () =
  let blob = Checkpoint.make ~upto:5 [ ("k", "v") ] in
  for len = 0 to String.length blob - 1 do
    match Checkpoint.restore (String.sub blob 0 len) with
    | None -> ()
    | Some _ -> Alcotest.failf "truncation to %d bytes went undetected" len
  done

(* ---- crash-time faults through the store ---- *)

let spec_only f = f Disk.none

let store_with spec = Store.create ~disk:(spec, Rng.create ~seed:9) ()

let test_drop_loses_unflushed_only () =
  let s = store_with (spec_only (fun d -> { d with Disk.drop_p = 1.0 })) in
  Store.set s ~key:"old" "1";
  Store.flush s;
  Store.set s ~key:"lost1" "x";
  Store.set s ~key:"lost2" "y";
  Store.crash s ();
  let r = Store.recover_report s in
  Alcotest.(check int) "both unflushed dropped" 2 r.Store.dropped_unflushed;
  Alcotest.(check (list (pair string string))) "flushed prefix intact" [ ("old", "1") ] (dump s)

let test_tear_loses_last_unflushed_only () =
  let s = store_with (spec_only (fun d -> { d with Disk.tear_p = 1.0 })) in
  Store.set s ~key:"old" "1";
  Store.flush s;
  Store.set s ~key:"kept" "x";
  Store.set s ~key:"torn" "y";
  Store.crash s ();
  let r = Store.recover_report s in
  Alcotest.(check int) "torn record quarantined" 1 r.Store.quarantined;
  Alcotest.(check (list (pair string string)))
    "only the in-flight record lost"
    [ ("kept", "x"); ("old", "1") ]
    (dump s)

let test_rot_salvaged_from_mirror () =
  let s = store_with (spec_only (fun d -> { d with Disk.rot_p = 1.0 })) in
  Store.set s ~key:"a" "1";
  Store.set s ~key:"b" "2";
  Store.flush s;
  Store.crash s ();
  let r = Store.recover_report s in
  Alcotest.(check int) "rot healed from the mirror" 1 r.Store.salvaged;
  Alcotest.(check int) "nothing quarantined" 0 r.Store.quarantined;
  Alcotest.(check (list (pair string string))) "no data lost" [ ("a", "1"); ("b", "2") ] (dump s)

let test_sector_rot_quarantined () =
  (* sector_p = 1: the rot takes the mirror with it, so salvage is
     impossible and recovery must drop the record and keep going. *)
  let s = store_with (spec_only (fun d -> { d with Disk.rot_p = 1.0; sector_p = 1.0 })) in
  Store.set s ~key:"a" "1";
  Store.set s ~key:"b" "2";
  Store.flush s;
  Store.crash s ();
  let r = Store.recover_report s in
  Alcotest.(check int) "beyond salvage" 1 r.Store.quarantined;
  Alcotest.(check int) "exactly one key lost" 1 (Store.size s);
  Alcotest.(check (result unit string)) "still internally consistent" (Ok ())
    (Result.map_error (fun _ -> "durability_check failed") (Store.durability_check s))

let test_stall_handler_invoked () =
  let s = store_with (spec_only (fun d -> { d with Disk.stall_p = 1.0; stall_ms = 7 })) in
  let calls = ref 0 in
  Store.set_stall_handler s (fun ms ->
      incr calls;
      Alcotest.(check bool) "stall bounded" true (ms >= 1 && ms <= 7));
  Store.set s ~key:"k" "v";
  Store.remove s ~key:"k";
  Alcotest.(check int) "one stall per mutation" 2 !calls

(* ---- double-buffered checkpoints: satellite regression ---- *)

(* Damage inside the newest checkpoint frame must fall back to the previous
   generation plus the longer log suffix — never to an empty store. *)
let test_checkpoint_damage_falls_back () =
  let s = Store.create () in
  Store.set s ~key:"a" "1";
  Store.checkpoint s;
  Store.set s ~key:"b" "2";
  Store.checkpoint s;
  Store.set s ~key:"c" "3";
  Alcotest.(check int) "two generations retained" 2 (Store.checkpoint_count s);
  Alcotest.(check bool) "newest generation damaged" true (Store.damage_newest_checkpoint s);
  Store.crash s ();
  let r = Store.recover_report s in
  Alcotest.(check int) "one generation fell back" 1 r.Store.checkpoint_fallbacks;
  Alcotest.(check (list (pair string string)))
    "previous generation + suffix rebuild everything"
    [ ("a", "1"); ("b", "2"); ("c", "3") ]
    (dump s);
  (* Redundancy is restored immediately: damage consumed a generation, so
     recovery wrote a fresh one. *)
  Alcotest.(check int) "re-checkpointed after damage" 2 (Store.checkpoint_count s)

(* Before a second generation exists the log is never truncated, so even
   losing the only checkpoint loses nothing. *)
let test_first_checkpoint_damage_harmless () =
  let s = Store.create () in
  Store.set s ~key:"a" "1";
  Store.set s ~key:"b" "2";
  Store.checkpoint s;
  Alcotest.(check bool) "only generation damaged" true (Store.damage_newest_checkpoint s);
  Store.crash s ();
  let r = Store.recover_report s in
  Alcotest.(check int) "fallback counted" 1 r.Store.checkpoint_fallbacks;
  Alcotest.(check (list (pair string string)))
    "full log replay rebuilds the table"
    [ ("a", "1"); ("b", "2") ]
    (dump s)

(* ---- O(suffix) recovery gate ---- *)

(* Recovery cost is the log suffix past the checkpoint, independent of how
   much history came before it: a 10x longer history replays exactly the
   same number of records.  This is the cheap runtest twin of the
   wal.recover bench rows. *)
let test_recovery_is_o_suffix () =
  let replayed_after entries =
    let s = Store.create ~checkpoint_every:100 () in
    for i = 1 to entries do
      Store.set s ~key:(string_of_int (i mod 250)) (string_of_int i)
    done;
    Store.flush s;
    Store.crash s ();
    let r = Store.recover_report s in
    Alcotest.(check (result unit string)) "consistent after recovery" (Ok ())
      (Result.map_error (fun _ -> "durability_check failed") (Store.durability_check s));
    r.Store.replayed
  in
  let small = replayed_after 1_000 and large = replayed_after 10_000 in
  Alcotest.(check int) "replay count independent of history length" small large;
  Alcotest.(check bool) "suffix bounded by checkpoint interval" true (small <= 100)

(* ---- qcheck: compaction, salvage, and recovery idempotence ---- *)

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun k v -> `Set (string_of_int k, string_of_int v)) (int_range 0 20) small_nat;
        map (fun k -> `Remove (string_of_int k)) (int_range 0 20);
        return `Checkpoint;
        return `Crash_recover;
      ])

let apply_ops store ops =
  List.iter
    (function
      | `Set (k, v) -> Store.set store ~key:k v
      | `Remove k -> Store.remove store ~key:k
      | `Checkpoint -> Store.checkpoint store
      | `Crash_recover ->
          Store.crash store ();
          ignore (Store.recover store))
    ops

(* replay(checkpoint + suffix) ≡ replay(full log): a store compacting every
   few mutations and one that never checkpoints agree on every table, after
   arbitrary op sequences with crashes (fault-free disks). *)
let prop_compaction_equivalence =
  QCheck2.Test.make ~name:"compacted recovery equals full-log replay" ~count:200
    QCheck2.Gen.(list_size (int_range 0 80) op_gen)
    (fun ops ->
      let compacting = Store.create ~checkpoint_every:7 () in
      let plain = Store.create () in
      apply_ops compacting ops;
      apply_ops plain ops;
      Store.crash compacting ();
      ignore (Store.recover compacting);
      Store.crash plain ();
      ignore (Store.recover plain);
      dump compacting = dump plain)

(* Salvage floor: whatever was flushed at crash time survives a flaky-disk
   crash byte-for-byte (rot is mirror-salvageable; drop and tear only reach
   the un-flushed tail). *)
let prop_salvage_keeps_flushed =
  QCheck2.Test.make ~name:"flushed records survive flaky-disk crashes" ~count:200
    QCheck2.Gen.(pair small_int (list_size (int_range 0 60) op_gen))
    (fun (seed, ops) ->
      let s = Store.create ~disk:(Disk.flaky, Rng.create ~seed) ~checkpoint_every:11 () in
      apply_ops s ops;
      Store.flush s;
      let before = dump s in
      Store.crash s ();
      ignore (Store.recover s);
      dump s = before)

(* Recovery is idempotent: once a damaged store has recovered, further
   crash/recover cycles (no new mutations) keep the same table and report
   no un-flushed losses. *)
let prop_recovery_idempotent =
  QCheck2.Test.make ~name:"recovery is idempotent" ~count:200
    QCheck2.Gen.(pair small_int (list_size (int_range 0 60) op_gen))
    (fun (seed, ops) ->
      let s = Store.create ~disk:(Disk.flaky, Rng.create ~seed) ~checkpoint_every:11 () in
      apply_ops s ops;
      Store.crash s ();
      ignore (Store.recover s);
      let first = dump s in
      let stable = ref true in
      for _ = 1 to 3 do
        Store.crash s ();
        let r = Store.recover_report s in
        stable :=
          !stable && dump s = first && r.Store.dropped_unflushed = 0
          && Result.is_ok (Store.durability_check s)
      done;
      !stable)

let tests =
  [
    Alcotest.test_case "injector: none draws nothing" `Quick test_disk_none_draws_nothing;
    Alcotest.test_case "injector: flaky draws bounded" `Quick test_disk_flaky_draws_bounded;
    Alcotest.test_case "injector: deterministic in the seed" `Quick test_disk_deterministic;
    Alcotest.test_case "checkpoint frame round-trip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint: every byte flip detected" `Quick
      test_checkpoint_any_flip_detected;
    Alcotest.test_case "checkpoint: every truncation detected" `Quick
      test_checkpoint_truncated_detected;
    Alcotest.test_case "crash drop loses only the un-flushed tail" `Quick
      test_drop_loses_unflushed_only;
    Alcotest.test_case "crash tear loses only the in-flight record" `Quick
      test_tear_loses_last_unflushed_only;
    Alcotest.test_case "bit rot salvaged from the mirror" `Quick test_rot_salvaged_from_mirror;
    Alcotest.test_case "sector rot quarantined, store consistent" `Quick
      test_sector_rot_quarantined;
    Alcotest.test_case "append stalls reach the handler" `Quick test_stall_handler_invoked;
    Alcotest.test_case "damaged checkpoint falls back a generation (regression)" `Quick
      test_checkpoint_damage_falls_back;
    Alcotest.test_case "damaged first checkpoint loses nothing" `Quick
      test_first_checkpoint_damage_harmless;
    Alcotest.test_case "recovery is O(suffix), not O(log)" `Quick test_recovery_is_o_suffix;
    QCheck_alcotest.to_alcotest prop_compaction_equivalence;
    QCheck_alcotest.to_alcotest prop_salvage_keeps_flushed;
    QCheck_alcotest.to_alcotest prop_recovery_idempotent;
  ]
