(* WAL-backed recovery under repeated and dirty crashes: replaying the same
   log must converge to the same table (idempotence), and a torn tail — the
   on-disk shape of a partial write — must lose exactly the unflushed
   suffix, never anything before it. *)

module Wal = Dcp_stable.Wal
module Store = Dcp_stable.Store
module Rng = Dcp_rng.Rng

let dump store =
  List.sort compare (Store.fold store ~init:[] ~f:(fun ~key value acc -> (key, value) :: acc))

(* ---- replay idempotence ---- *)

let test_recover_idempotent () =
  let store = Store.create () in
  Store.set store ~key:"a" "1";
  Store.set store ~key:"b" "2";
  Store.remove store ~key:"a";
  Store.set store ~key:"a" "3";
  let before = dump store in
  Store.crash store ();
  let replayed = Store.recover store in
  Alcotest.(check int) "every mutation replayed" 4 replayed;
  Alcotest.(check (list (pair string string))) "first recovery" before (dump store);
  (* Crash/recover again without new writes: same log, same table, same
     replay count — replay is a pure function of the log. *)
  for round = 1 to 3 do
    Store.crash store ();
    let again = Store.recover store in
    Alcotest.(check int) (Printf.sprintf "round %d replay count" round) replayed again;
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "round %d table" round)
      before (dump store)
  done

let test_recover_without_crash_is_noop () =
  let store = Store.create () in
  Store.set store ~key:"k" "v";
  Alcotest.(check int) "no-op recover" 0 (Store.recover store);
  Alcotest.(check (option string)) "table untouched" (Some "v") (Store.get store ~key:"k")

let test_recover_idempotent_across_checkpoint () =
  let store = Store.create () in
  Store.set store ~key:"kept" "old";
  Store.set store ~key:"gone" "x";
  Store.checkpoint store;
  Store.set store ~key:"kept" "new";
  Store.remove store ~key:"gone";
  let before = dump store in
  for round = 1 to 2 do
    Store.crash store ();
    Alcotest.(check int)
      (Printf.sprintf "round %d: only post-checkpoint tail replays" round)
      2 (Store.recover store);
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "round %d: snapshot+tail table" round)
      before (dump store)
  done

(* ---- torn tail: the partial write ---- *)

let test_torn_tail_loses_only_last_record () =
  let store = Store.create () in
  Store.set store ~key:"a" "1";
  Store.set store ~key:"b" "2";
  Store.set store ~key:"c" "3";
  let rng = Rng.create ~seed:7 in
  (* p=1.0: the newest record's CRC is certainly damaged mid-write. *)
  Store.crash store ~tear:(rng, 1.0) ();
  let replayed = Store.recover store in
  Alcotest.(check int) "torn record not replayed" 2 replayed;
  Alcotest.(check (list (pair string string)))
    "prefix intact, unflushed suffix gone"
    [ ("a", "1"); ("b", "2") ]
    (dump store)

let test_torn_tail_then_new_writes_survive () =
  let store = Store.create () in
  Store.set store ~key:"a" "1";
  Store.set store ~key:"doomed" "x";
  let rng = Rng.create ~seed:7 in
  Store.crash store ~tear:(rng, 1.0) ();
  ignore (Store.recover store);
  Alcotest.(check (option string)) "torn write lost" None (Store.get store ~key:"doomed");
  (* recover must have repaired (physically dropped) the torn record:
     otherwise this append would sit behind a bad-CRC barrier and silently
     vanish on the next replay. *)
  Store.set store ~key:"after" "2";
  Store.crash store ();
  ignore (Store.recover store);
  Alcotest.(check (list (pair string string)))
    "post-repair appends durable"
    [ ("a", "1"); ("after", "2") ]
    (dump store)

let test_torn_tail_after_checkpoint () =
  let store = Store.create () in
  Store.set store ~key:"safe" "1";
  Store.checkpoint store;
  Store.set store ~key:"tail" "2";
  let rng = Rng.create ~seed:7 in
  Store.crash store ~tear:(rng, 1.0) ();
  Alcotest.(check int) "torn tail leaves nothing to replay" 0 (Store.recover store);
  Alcotest.(check (list (pair string string)))
    "checkpointed data immune to the tear"
    [ ("safe", "1") ]
    (dump store)

(* ---- WAL-level: a bad CRC is quarantined, scrub makes it physical ---- *)

let test_wal_bad_crc_quarantined () =
  let wal = Wal.create () in
  ignore (Wal.append wal "a");
  ignore (Wal.append wal "b");
  let rng = Rng.create ~seed:3 in
  ignore (Wal.tear_tail wal rng ~p:1.0);
  (* Appending past an unscrubbed tear: the damaged record is skipped but
     must never hide the intact suffix behind it. *)
  ignore (Wal.append wal "c");
  Alcotest.(check (list string)) "replay skips the bad CRC" [ "a"; "c" ] (Wal.records wal);
  let r = Wal.scrub wal in
  Alcotest.(check int) "scrub quarantines only the torn record" 1 r.Wal.quarantined;
  Alcotest.(check (list string)) "post-scrub replay" [ "a"; "c" ] (Wal.records wal);
  ignore (Wal.append wal "d");
  Alcotest.(check (list string)) "log usable again" [ "a"; "c"; "d" ] (Wal.records wal)

(* A long log exercises the verified-prefix cache where it matters: reads
   after the first must not change what replay sees, and a torn tail must
   still lose exactly the newest record. *)
let test_long_log_torn_tail () =
  let wal = Wal.create () in
  for i = 0 to 999 do
    ignore (Wal.append wal (string_of_int i))
  done;
  Alcotest.(check int) "all intact" 1000 (Wal.length wal);
  let rng = Rng.create ~seed:11 in
  ignore (Wal.tear_tail wal rng ~p:1.0);
  Alcotest.(check int) "exactly the newest lost" 999 (Wal.length wal);
  let count () =
    let n = ref 0 in
    Wal.replay wal (fun _ _ -> incr n);
    !n
  in
  Alcotest.(check int) "replay = length" 999 (count ());
  Alcotest.(check int) "replay idempotent" 999 (count ());
  Alcotest.(check int) "scrub drops one" 1 (Wal.scrub wal).Wal.quarantined;
  Alcotest.(check int) "post-scrub length" 999 (Wal.length wal)

let tests =
  [
    Alcotest.test_case "recover is idempotent" `Quick test_recover_idempotent;
    Alcotest.test_case "recover without crash is a no-op" `Quick test_recover_without_crash_is_noop;
    Alcotest.test_case "idempotent across checkpoint" `Quick test_recover_idempotent_across_checkpoint;
    Alcotest.test_case "torn tail loses only the last record" `Quick
      test_torn_tail_loses_only_last_record;
    Alcotest.test_case "writes after a torn-tail recovery survive" `Quick
      test_torn_tail_then_new_writes_survive;
    Alcotest.test_case "torn tail after checkpoint" `Quick test_torn_tail_after_checkpoint;
    Alcotest.test_case "bad CRC is quarantined, never a barrier" `Quick
      test_wal_bad_crc_quarantined;
    Alcotest.test_case "long log: torn tail and idempotent replay" `Quick
      test_long_log_torn_tail;
  ]
