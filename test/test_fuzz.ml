(* Fuzzing and determinism: the simulator must be a pure function of its
   seed, and no byte stream from the network may crash a decoder. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Clock = Dcp_sim.Clock
module Metrics = Dcp_sim.Metrics
module Network = Dcp_net.Network
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link
module Rng = Dcp_rng.Rng
module Scenario = Dcp_check.Scenario
module Scenarios = Dcp_check.Scenarios

(* ---- determinism ----

   Determinism is the replay contract of the whole checking harness:
   outcome fingerprints (event counts, network stats, workload counters)
   must be pure functions of (seed, profile).  The wan+crash profile puts
   jitter, loss and crash/restart churn — the full nondeterminism surface —
   in play. *)

let scenario_fingerprint ~seed =
  let profile = Option.get (Dcp_check.Profile.find "wan+crash") in
  (Scenario.execute Scenarios.airline ~seed ~profile ~horizon:(Clock.s 10) ()).Scenario.fingerprint

let test_same_seed_same_world () =
  let a = scenario_fingerprint ~seed:97 in
  let b = scenario_fingerprint ~seed:97 in
  Alcotest.(check string) "identical fingerprints" a b

let test_different_seed_different_world () =
  let a = scenario_fingerprint ~seed:97 in
  let b = scenario_fingerprint ~seed:98 in
  (* With WAN jitter in play, two seeds virtually never produce identical
     event counts.  (If they ever do, the seed pair can be changed.) *)
  Alcotest.(check bool) "fingerprints differ" true (a <> b)

(* ---- decoder fuzzing ---- *)

let test_codec_fuzz_random_bytes () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 20_000 do
    let len = Rng.int rng 64 in
    let s = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    match Codec.decode s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "decoder raised %s on %S" (Printexc.to_string e) s
  done

let test_codec_fuzz_truncations () =
  (* Valid encodings truncated at every length must fail cleanly, never
     raise. *)
  let value =
    Value.record
      [
        ("a", Value.list [ Value.int 42; Value.str "hello"; Value.real 2.5 ]);
        ("b", Value.option (Some (Value.tuple [ Value.bool true; Value.unit ])));
      ]
  in
  let encoded = Codec.encode_exn value in
  for len = 0 to String.length encoded - 1 do
    match Codec.decode (String.sub encoded 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d decoded successfully" len
    | Error _ -> ()
    | exception e -> Alcotest.failf "decoder raised %s at %d" (Printexc.to_string e) len
  done

let test_codec_fuzz_bitflips () =
  let rng = Rng.create ~seed:17 in
  let value =
    Value.list (List.init 10 (fun i -> Value.tuple [ Value.int i; Value.str "payload" ]))
  in
  let encoded = Codec.encode_exn value in
  for _ = 1 to 5_000 do
    let b = Bytes.of_string encoded in
    let i = Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
    match Codec.decode (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
    | exception e -> Alcotest.failf "decoder raised %s" (Printexc.to_string e)
  done

(* ---- network-level fuzz: raw bytes at a node must never crash it ---- *)

let test_runtime_survives_garbage_on_the_wire () =
  let world =
    Runtime.create_world ~seed:5 ~topology:(Topology.full_mesh ~n:2 Link.perfect) ()
  in
  let echo_def =
    {
      Runtime.def_name = "garbage_target";
      provides = [ ([ Vtype.wildcard ], 16) ];
      init =
        (fun ctx _ ->
          let rec loop () =
            (match Runtime.receive ctx ~timeout:(Clock.s 1) [ Runtime.port ctx 0 ] with
            | `Msg _ | `Timeout -> ());
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world echo_def;
  ignore (Runtime.create_guardian world ~at:1 ~def_name:"garbage_target" ~args:[]);
  let rng = Rng.create ~seed:23 in
  let network = Runtime.network world in
  for _ = 1 to 2_000 do
    let len = Rng.int rng 200 in
    Network.send network ~src:0 ~dst:1
      (String.init len (fun _ -> Char.chr (Rng.int rng 256)))
  done;
  Runtime.run_for world (Clock.s 5);
  let malformed =
    Option.value
      (List.assoc_opt "deliver.malformed" (Metrics.counters (Runtime.metrics world)))
      ~default:0
  in
  Alcotest.(check bool)
    (Printf.sprintf "garbage counted as malformed (%d)" malformed)
    true (malformed > 0)

(* ---- random guardians, ports and sends (API-level storm) ---- *)

let test_api_storm () =
  let world =
    Runtime.create_world ~seed:29
      ~topology:(Topology.full_mesh ~n:3 (Link.lossy 0.05))
      ()
  in
  let rng = Rng.create ~seed:31 in
  (* A population of wildcard-port guardians that randomly relay messages
     to random ports (valid and invalid), exercising routing, failure
     generation and buffer overflow paths all at once. *)
  let all_ports : Port_name.t list ref = ref [] in
  let relay_def =
    {
      Runtime.def_name = "storm_relay";
      provides = [ ([ Vtype.wildcard ], 4) ];
      init =
        (fun ctx _ ->
          let rng = Rng.split (Runtime.world_rng world) in
          let rec loop () =
            (match Runtime.receive ctx ~timeout:(Clock.ms 50) [ Runtime.port ctx 0 ] with
            | `Msg (_, msg) ->
                if Rng.bernoulli rng 0.5 && !all_ports <> [] then
                  Runtime.send ctx ~to_:(Rng.choice_list rng !all_ports) "hop"
                    msg.Dcp_core.Message.args
            | `Timeout ->
                if !all_ports <> [] then
                  Runtime.send ctx ~to_:(Rng.choice_list rng !all_ports) "tick"
                    [ Value.int (Rng.int rng 1000) ]);
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world relay_def;
  for i = 0 to 8 do
    let g = Runtime.create_guardian world ~at:(i mod 3) ~def_name:"storm_relay" ~args:[] in
    all_ports := Runtime.guardian_ports g @ !all_ports
  done;
  (* Sprinkle in some bogus targets. *)
  all_ports :=
    Port_name.make ~node:1 ~guardian:999 ~index:0 ~uid:31337
    :: Port_name.make ~node:0 ~guardian:0 ~index:9 ~uid:99999
    :: !all_ports;
  (* Random crashes in the middle. *)
  let engine = Runtime.engine world in
  for t = 1 to 3 do
    let node = Rng.int rng 3 in
    ignore
      (Dcp_sim.Engine.schedule engine ~at:(Clock.s t) (fun () ->
           if Runtime.node_up world node then Runtime.crash_node world node));
    ignore
      (Dcp_sim.Engine.schedule engine
         ~at:(Clock.s t + Clock.ms 300)
         (fun () -> if not (Runtime.node_up world node) then Runtime.restart_node world node))
  done;
  (* If anything deadlocks or throws, this run_for never returns cleanly or
     the test harness reports the exception. *)
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check bool) "storm survived" true (Dcp_sim.Engine.events_executed engine > 1000)

let tests =
  [
    Alcotest.test_case "same seed, same world" `Slow test_same_seed_same_world;
    Alcotest.test_case "different seed, different world" `Slow test_different_seed_different_world;
    Alcotest.test_case "codec fuzz: random bytes" `Slow test_codec_fuzz_random_bytes;
    Alcotest.test_case "codec fuzz: truncations" `Quick test_codec_fuzz_truncations;
    Alcotest.test_case "codec fuzz: bit flips" `Slow test_codec_fuzz_bitflips;
    Alcotest.test_case "garbage on the wire" `Quick test_runtime_survives_garbage_on_the_wire;
    Alcotest.test_case "API storm with crashes" `Slow test_api_storm;
  ]
