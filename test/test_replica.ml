(* Distributed simultaneous update (§3's protocol family): replicated
   registers with Lamport-stamped last-writer-wins and anti-entropy. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Port = Dcp_core.Port
module Replica = Dcp_primitives.Replica
module Reconcile = Dcp_primitives.Reconcile
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock
module Metrics = Dcp_sim.Metrics
module Topology = Dcp_net.Topology
module Network = Dcp_net.Network
module Link = Dcp_net.Link
module Store = Dcp_stable.Store

let make_world ?(n = 3) ?(link = Link.lan) () =
  Runtime.create_world ~seed:73 ~topology:(Topology.full_mesh ~n link) ()

let fresh_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "replica_driver_%d" !i

let driver world ~at body =
  let name = fresh_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* Read replica i from a driver co-located at node i, so the observation
   itself neither crosses partitions nor suffers link loss. *)
let read_all world replicas ~key =
  let results = Array.make (List.length replicas) None in
  List.iteri
    (fun i replica ->
      driver world ~at:i (fun ctx ->
          results.(i) <-
            Option.map Value.to_string (Replica.read ctx ~replica ~key ~timeout:(Clock.s 1))))
    replicas;
  Runtime.run_for world (Clock.s 5);
  Array.to_list results

let test_write_propagates () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] () in
  driver world ~at:0 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 50);
      ignore
        (Replica.write ctx ~replica:(List.hd replicas) ~key:"color"
           ~value:(Value.str "red") ~timeout:(Clock.s 1)));
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check (list (option string)))
    "all replicas converge"
    [ Some "\"red\""; Some "\"red\""; Some "\"red\"" ]
    (read_all world replicas ~key:"color")

let test_unknown_key () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] () in
  Alcotest.(check (list (option string)))
    "nothing written"
    [ None; None; None ]
    (read_all world replicas ~key:"ghost")

let test_concurrent_writes_converge_to_one_winner () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] () in
  (* Three clients write different values to three replicas at (nearly)
     the same moment. *)
  List.iteri
    (fun i replica ->
      driver world ~at:i (fun ctx ->
          Runtime.sleep ctx (Clock.ms 50);
          ignore
            (Replica.write ctx ~replica ~key:"leader"
               ~value:(Value.str (Printf.sprintf "candidate%d" i))
               ~timeout:(Clock.s 1))))
    replicas;
  Runtime.run_for world (Clock.s 10);
  match read_all world replicas ~key:"leader" with
  | [ Some a; Some b; Some c ] ->
      Alcotest.(check string) "replica 1 agrees" a b;
      Alcotest.(check string) "replica 2 agrees" b c
  | other ->
      Alcotest.failf "missing values: %s"
        (String.concat "," (List.map (Option.value ~default:"-") other))

let test_partition_then_converge () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] ~sync_every:(Clock.ms 200) () in
  let network = Runtime.network world in
  (* Let the group form, then split node 2 away. *)
  Runtime.run_for world (Clock.ms 100);
  Network.partition network [ [ 0; 1 ]; [ 2 ] ];
  (* Both sides accept conflicting writes during the partition. *)
  driver world ~at:0 (fun ctx ->
      ignore
        (Replica.write ctx ~replica:(List.nth replicas 0) ~key:"k" ~value:(Value.str "west")
           ~timeout:(Clock.s 1)));
  driver world ~at:2 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 10);
      ignore
        (Replica.write ctx ~replica:(List.nth replicas 2) ~key:"k" ~value:(Value.str "east")
           ~timeout:(Clock.s 1)));
  Runtime.run_for world (Clock.s 2);
  (* Divergence while partitioned. *)
  (match read_all world replicas ~key:"k" with
  | [ Some a; _; Some c ] -> Alcotest.(check bool) "diverged" true (a <> c)
  | _ -> Alcotest.fail "missing values during partition");
  (* Heal; anti-entropy reconciles to a single winner everywhere. *)
  Network.heal network;
  Runtime.run_for world (Clock.s 5);
  match read_all world replicas ~key:"k" with
  | [ Some a; Some b; Some c ] ->
      Alcotest.(check string) "converged 0=1" a b;
      Alcotest.(check string) "converged 1=2" b c
  | _ -> Alcotest.fail "missing values after heal"

let test_lossy_network_still_converges () =
  let world = make_world ~link:(Link.lossy 0.3) () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] ~sync_every:(Clock.ms 100) () in
  driver world ~at:1 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 200);
      for i = 0 to 4 do
        ignore
          (Replica.write ctx
             ~replica:(List.nth replicas 1)
             ~key:(Printf.sprintf "k%d" i)
             ~value:(Value.int i) ~timeout:(Clock.s 1))
      done);
  Runtime.run_for world (Clock.s 30);
  (* every key readable from every replica despite 30% loss *)
  for i = 0 to 4 do
    match read_all world replicas ~key:(Printf.sprintf "k%d" i) with
    | [ Some a; Some b; Some c ] ->
        Alcotest.(check string) "agree" a b;
        Alcotest.(check string) "agree" b c
    | _ -> Alcotest.failf "key k%d missing somewhere" i
  done

(* ---- reconcile: the pure protocol half ---- *)

let test_reconcile_diff () =
  let claimed = [ ("a", (2, 0)); ("b", (1, 0)); ("d", (1, 1)) ] in
  let held = [ ("b", (2, 1)); ("c", (1, 0)) ] in
  let d = Reconcile.diff ~claimed ~held in
  Alcotest.(check (list string)) "pulls sender-newer and missing" [ "a"; "d" ] d.Reconcile.pulls;
  Alcotest.(check (list string)) "pushes receiver-newer and missing" [ "b"; "c" ] d.Reconcile.pushes;
  Alcotest.(check (option (pair int int))) "max claimed" (Some (2, 0)) d.Reconcile.max_claimed;
  let equal = Reconcile.diff ~claimed:held ~held in
  Alcotest.(check (list string)) "equal tables pull nothing" [] equal.Reconcile.pulls;
  Alcotest.(check (list string)) "equal tables push nothing" [] equal.Reconcile.pushes

let test_reconcile_budget () =
  let size _ = 10 in
  let budget = Reconcile.header_allowance + 25 in
  let taken, rest = Reconcile.take_within ~budget ~size [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "greedy prefix" [ 1; 2 ] taken;
  Alcotest.(check (list int)) "remainder" [ 3; 4; 5 ] rest;
  Alcotest.(check (list (list int)))
    "chunks cover everything"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Reconcile.chunks ~budget ~size [ 1; 2; 3; 4; 5 ]);
  (* an entry bigger than the whole budget still makes progress *)
  let huge _ = 10_000 in
  let taken, rest = Reconcile.take_within ~budget ~size:huge [ 1; 2 ] in
  Alcotest.(check (list int)) "oversized entry taken alone" [ 1 ] taken;
  Alcotest.(check (list int)) "rest waits" [ 2 ] rest

let test_reconcile_stamps_and_windows () =
  let stamp v = Reconcile.stamp_of_value v in
  Alcotest.(check (option (pair int int)))
    "well-formed" (Some (3, 0))
    (stamp (Value.tuple [ Value.int 3; Value.int 0 ]));
  Alcotest.(check (option (pair int int)))
    "zero counter rejected" None
    (stamp (Value.tuple [ Value.int 0; Value.int 0 ]));
  Alcotest.(check (option (pair int int)))
    "negative stamp rejected" None
    (stamp (Value.tuple [ Value.int (-3); Value.int (-9) ]));
  Alcotest.(check (option (pair int int))) "non-tuple rejected" None (stamp (Value.str "x"));
  Alcotest.(check (option (pair int int)))
    "store mirror round-trip" (Some (42, 7))
    (Reconcile.stamp_of_string (Reconcile.stamp_to_string (42, 7)));
  Alcotest.(check (option (pair int int))) "garbage text" None (Reconcile.stamp_of_string "boom");
  Alcotest.(check bool) "inverted window rejected" false
    (Reconcile.window_ok { Reconcile.lo = "z"; hi = Some "a" });
  let w = { Reconcile.lo = "b"; hi = Some "d" } in
  Alcotest.(check bool) "window ok" true (Reconcile.window_ok w);
  Alcotest.(check (list bool)) "in_window is [lo, hi)"
    [ false; true; true; false; false ]
    (List.map (Reconcile.in_window w) [ "a"; "b"; "c"; "d"; "e" ])

(* ---- protocol-level regressions ---- *)

let metric world name = Metrics.count (Metrics.counter (Runtime.metrics world) name)

let replica_store world i =
  List.nth (Runtime.find_guardians world ~def_name:Replica.def_name) i
  |> Runtime.guardian_store

(* The pull half of the exchange (the divergence bug): a digest claiming a
   key the receiver lacks must come back as sync_pull, alongside sync_delta
   for what the receiver holds that the digest lacks — one digest round
   reconciles both directions.  Driven wire-level so the assertion is about
   the messages, not just the eventual state. *)
let test_sync_digest_answers_with_pull () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0 ] ~sync_every:(Clock.s 1000) () in
  let replica = List.hd replicas in
  let got = ref [] in
  let observed_stamp = ref (0, 0) in
  driver world ~at:0 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 50);
      (* seed the replica with "b" *)
      ignore (Replica.write ctx ~replica ~key:"b" ~value:(Value.str "bv") ~timeout:(Clock.s 1));
      let port = Runtime.new_port ctx Replica.port_type in
      let me = Port.name port in
      (* claim "a" at stamp (5,7), which this replica lacks *)
      Runtime.send ctx ~to_:replica ~reply_to:me "sync_digest"
        [
          Value.str "";
          Value.option None;
          Value.list [ Value.tuple [ Value.str "a"; Value.tuple [ Value.int 5; Value.int 7 ] ] ];
        ];
      let rec collect n =
        if n > 0 then
          match Runtime.receive ctx ~timeout:(Clock.s 2) [ port ] with
          | `Timeout -> ()
          | `Msg (_, msg) ->
              got := (msg.Dcp_core.Message.command, msg.Dcp_core.Message.args) :: !got;
              collect (n - 1)
      in
      collect 2;
      (* answer the pull like a real sender would *)
      Runtime.send ctx ~to_:replica "sync_delta"
        [
          Value.list
            [ Value.tuple [ Value.str "a"; Value.str "av"; Value.tuple [ Value.int 5; Value.int 7 ] ] ];
        ];
      Runtime.sleep ctx (Clock.ms 50);
      (* satellite 3: the digest's claimed max stamp was observed, so the
         next local write must outrank counter 5 *)
      (match Rpc.call ctx ~to_:replica ~timeout:(Clock.s 1) "write" [ Value.str "c"; Value.int 1 ] with
      | Rpc.Reply ("written", [ Value.Tuple [ Value.Int c; Value.Int o ] ]) -> observed_stamp := (c, o)
      | _ -> ()));
  Runtime.run_for world (Clock.s 10);
  let commands = List.sort compare (List.map fst !got) in
  Alcotest.(check (list string)) "delta and pull sent back" [ "sync_delta"; "sync_pull" ] commands;
  List.iter
    (fun (command, args) ->
      match (command, args) with
      | "sync_pull", [ Value.Listv [ Value.Str k ] ] ->
          Alcotest.(check string) "pulls the missing key" "a" k
      | "sync_delta", [ Value.Listv [ Value.Tuple [ Value.Str k; _; _ ] ] ] ->
          Alcotest.(check string) "pushes the held key" "b" k
      | _ -> Alcotest.failf "unexpected reply %s" command)
    !got;
  Alcotest.(check bool)
    (Printf.sprintf "write stamped past the claimed counter (got %d)" (fst !observed_stamp))
    true
    (fst !observed_stamp > 5);
  (* the pulled delta landed *)
  let table = Replica.table_in_store (replica_store world 0) in
  Alcotest.(check bool) "pulled entry applied" true (List.mem_assoc "a" table)

(* Each side misses exactly one gossip (severed link during the writes);
   anti-entropy must reconcile both directions. *)
let test_drop_one_gossip_each_way_converges () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1 ] ~sync_every:(Clock.ms 200) () in
  let network = Runtime.network world in
  Runtime.run_for world (Clock.ms 100);
  Network.partition network [ [ 0 ]; [ 1 ]; [ 2 ] ];
  driver world ~at:0 (fun ctx ->
      ignore
        (Replica.write ctx ~replica:(List.nth replicas 0) ~key:"east" ~value:(Value.int 1)
           ~timeout:(Clock.s 1)));
  driver world ~at:1 (fun ctx ->
      ignore
        (Replica.write ctx ~replica:(List.nth replicas 1) ~key:"west" ~value:(Value.int 2)
           ~timeout:(Clock.s 1)));
  Runtime.run_for world (Clock.s 2);
  Network.heal network;
  Runtime.run_for world (Clock.s 5);
  let t0 = Replica.table_in_store (replica_store world 0) in
  let t1 = Replica.table_in_store (replica_store world 1) in
  Alcotest.(check int) "both keys everywhere" 2 (List.length t0);
  Alcotest.(check bool) "identical tables" true (t0 = t1)

(* Satellite 2: semantically malformed replica-to-replica messages are
   dropped and counted, never fatal. *)
let test_malformed_gossip_is_dropped_not_fatal () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0 ] ~sync_every:(Clock.s 1000) () in
  let replica = List.hd replicas in
  let survived = ref false in
  driver world ~at:0 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 50);
      let port = Runtime.new_port ctx Replica.port_type in
      let me = Port.name port in
      (* type-correct but semantically garbage stamp *)
      Runtime.send ctx ~to_:replica "gossip"
        [ Value.str "k"; Value.int 1; Value.tuple [ Value.int (-3); Value.int (-9) ] ];
      (* inverted digest window *)
      Runtime.send ctx ~to_:replica ~reply_to:me "sync_digest"
        [ Value.str "z"; Value.option (Some (Value.str "a")); Value.list [] ];
      (* digest entry with a zero counter *)
      Runtime.send ctx ~to_:replica ~reply_to:me "sync_digest"
        [
          Value.str "";
          Value.option None;
          Value.list [ Value.tuple [ Value.str "k"; Value.tuple [ Value.int 0; Value.int 0 ] ] ];
        ];
      (* delta smuggling a bad stamp *)
      Runtime.send ctx ~to_:replica "sync_delta"
        [
          Value.list
            [ Value.tuple [ Value.str "k"; Value.int 9; Value.tuple [ Value.int 0; Value.int 5 ] ] ];
        ];
      Runtime.sleep ctx (Clock.ms 100);
      survived :=
        Replica.write ctx ~replica ~key:"alive" ~value:(Value.int 1) ~timeout:(Clock.s 1));
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check bool) "guardian still serves writes" true !survived;
  Alcotest.(check int) "every malformed message counted" 4 (metric world Replica.metric_malformed);
  Alcotest.(check bool)
    "no garbage entered the table" false
    (List.mem_assoc "k" (Replica.table_in_store (replica_store world 0)))

(* Satellite 3 at full scale: a crashed replica rejoins empty, refills its
   soft state by anti-entropy, and its first write after the refill must
   outrank the pre-crash stamps it never saw. *)
let test_crash_rejoin_refills_and_wins () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] ~sync_every:(Clock.ms 100) () in
  driver world ~at:0 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 50);
      for i = 1 to 5 do
        ignore
          (Replica.write ctx ~replica:(List.hd replicas) ~key:(Printf.sprintf "k%d" i)
             ~value:(Value.int i) ~timeout:(Clock.s 1))
      done);
  Runtime.run_for world (Clock.s 3);
  Runtime.crash_node world 2;
  Runtime.run_for world (Clock.ms 500);
  Runtime.restart_node world 2;
  Runtime.run_for world (Clock.s 3);
  (* refill: the rejoined replica's mirrored table matches a survivor's *)
  let t0 = Replica.table_in_store (replica_store world 0) in
  let t2 = Replica.table_in_store (replica_store world 2) in
  Alcotest.(check int) "all five keys refilled" 5 (List.length t2);
  Alcotest.(check bool) "refilled table identical" true (t0 = t2);
  (* rejoined membership survived the crash *)
  Alcotest.(check int) "peers persisted" 2 (List.length (Replica.peers_in_store (replica_store world 2)));
  (* the write after rejoin wins everywhere *)
  let winner_stamp = ref (0, 0) in
  driver world ~at:2 (fun ctx ->
      match
        Rpc.call ctx ~to_:(List.nth replicas 2) ~timeout:(Clock.s 1) "write"
          [ Value.str "k5"; Value.str "winner" ]
      with
      | Rpc.Reply ("written", [ Value.Tuple [ Value.Int c; Value.Int o ] ]) ->
          winner_stamp := (c, o)
      | _ -> ());
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check bool)
    (Printf.sprintf "rejoined write outranks pre-crash stamps (counter %d)" (fst !winner_stamp))
    true
    (fst !winner_stamp > 5);
  Alcotest.(check (list (option string)))
    "new value wins everywhere"
    [ Some "\"winner\""; Some "\"winner\""; Some "\"winner\"" ]
    (read_all world replicas ~key:"k5")

(* Satellite 4: join is idempotent, dedups, and never admits the replica's
   own port. *)
let test_join_idempotent_self_excluding () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] () in
  Runtime.run_for world (Clock.ms 200);
  let r0 = List.nth replicas 0
  and r1 = List.nth replicas 1
  and r2 = List.nth replicas 2 in
  let expected = List.sort Port_name.compare [ r1; r2 ] in
  driver world ~at:0 (fun ctx ->
      (* a retried join carrying duplicates and the replica's own port *)
      let dirty = Value.list (List.map Value.port [ r0; r1; r1; r0; r2 ]) in
      for _ = 1 to 3 do
        ignore (Rpc.call ctx ~to_:r0 ~timeout:(Clock.s 1) "join" [ dirty ])
      done);
  Runtime.run_for world (Clock.s 3);
  let peers = Replica.peers_in_store (replica_store world 0) in
  Alcotest.(check int) "two peers, no dups, no self" 2 (List.length peers);
  Alcotest.(check bool) "exactly the other replicas" true
    (List.equal Port_name.equal expected (List.sort Port_name.compare peers));
  Alcotest.(check bool) "own port excluded" false (List.exists (Port_name.equal r0) peers)

(* A table bigger than one sync message: the budget forces multi-window
   digests and chunked deltas, and the cursor carries reconciliation across
   rounds until the full table converges. *)
let test_byte_budget_continuation () =
  let budget = 256 in
  let world = make_world () in
  let replicas =
    Replica.create_group world ~nodes:[ 0; 1; 2 ] ~sync_every:(Clock.ms 50) ~byte_budget:budget ()
  in
  let network = Runtime.network world in
  Runtime.run_for world (Clock.ms 100);
  (* writes reach only replica 0: refilling 1 and 2 is pure anti-entropy *)
  Network.partition network [ [ 0 ]; [ 1 ]; [ 2 ] ];
  driver world ~at:0 (fun ctx ->
      for i = 0 to 29 do
        ignore
          (Replica.write ctx ~replica:(List.hd replicas) ~key:(Printf.sprintf "key%02d" i)
             ~value:(Value.str (Printf.sprintf "value-%02d" i)) ~timeout:(Clock.s 1))
      done);
  Runtime.run_for world (Clock.s 2);
  Network.heal network;
  Runtime.run_for world (Clock.s 20);
  let tables = List.init 3 (fun i -> Replica.table_in_store (replica_store world i)) in
  (match tables with
  | [ t0; t1; t2 ] ->
      Alcotest.(check int) "all 30 keys on replica 0" 30 (List.length t0);
      Alcotest.(check bool) "replica 1 converged" true (t0 = t1);
      Alcotest.(check bool) "replica 2 converged" true (t0 = t2)
  | _ -> Alcotest.fail "missing tables");
  (* the whole table cannot fit one message, yet no message broke the budget *)
  let max_bytes =
    int_of_float (Metrics.gauge_value (Metrics.gauge (Runtime.metrics world) Replica.metric_max_bytes))
  in
  Alcotest.(check bool)
    (Printf.sprintf "largest sync message %d within budget %d" max_bytes budget)
    true
    (max_bytes > 0 && max_bytes <= budget);
  Alcotest.(check int) "no over-budget messages" 0 (metric world Replica.metric_over_budget);
  let table_bytes =
    List.fold_left
      (fun acc (key, stamp) ->
        acc + Reconcile.value_size (Reconcile.entry_value (key, stamp)))
      0
      (Replica.table_in_store (replica_store world 0))
  in
  Alcotest.(check bool) "table really spans multiple windows" true (table_bytes > budget)

let tests =
  [
    Alcotest.test_case "write propagates" `Quick test_write_propagates;
    Alcotest.test_case "unknown key" `Quick test_unknown_key;
    Alcotest.test_case "concurrent writes: one winner" `Quick
      test_concurrent_writes_converge_to_one_winner;
    Alcotest.test_case "partition then converge" `Quick test_partition_then_converge;
    Alcotest.test_case "lossy network converges" `Slow test_lossy_network_still_converges;
    Alcotest.test_case "reconcile diff pulls and pushes" `Quick test_reconcile_diff;
    Alcotest.test_case "reconcile byte budgeting" `Quick test_reconcile_budget;
    Alcotest.test_case "reconcile stamps and windows" `Quick test_reconcile_stamps_and_windows;
    Alcotest.test_case "sync_digest answers with pull" `Quick test_sync_digest_answers_with_pull;
    Alcotest.test_case "drop one gossip each way, still converges" `Quick
      test_drop_one_gossip_each_way_converges;
    Alcotest.test_case "malformed gossip dropped, not fatal" `Quick
      test_malformed_gossip_is_dropped_not_fatal;
    Alcotest.test_case "crash-rejoin refills soft state and wins" `Quick
      test_crash_rejoin_refills_and_wins;
    Alcotest.test_case "join is idempotent and self-excluding" `Quick
      test_join_idempotent_self_excluding;
    Alcotest.test_case "byte-budget continuation" `Quick test_byte_budget_continuation;
  ]
