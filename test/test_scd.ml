(* SCD-broadcast properties over randomized delivery schedules.  A probe
   guardian embeds an {!Scd.t} and records every delivered set into its
   stable store; worlds built from random (seed, members, messages, loss)
   tuples then get judged against the abstraction's contract:

   - Containment/Integrity: each member's sets partition a subset of the
     broadcasts — no duplicates, no inventions;
   - MS-Ordering: no two members deliver two messages in opposite
     set-orders;
   - Termination (no crashes here): every confirmed broadcast is delivered
     at every member, and all members deliver the same message set. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Scd = Dcp_primitives.Scd
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link
module Store = Dcp_stable.Store
module Rng = Dcp_rng.Rng

let probe_def_name = "scd_probe"
let probe_status_every = Clock.ms 50

let probe_port_type =
  [
    Rpc.request_signature "bcast" [ Vtype.Tint ]
      ~replies:
        [ Vtype.reply "bcast_ok" [ Vtype.Tint; Vtype.Tint ]; Vtype.reply "not_ready" [] ];
    Scd.members_signature;
  ]
  @ Scd.signatures

let record_sets ctx counter sets =
  List.iter
    (fun set ->
      let line =
        String.concat " "
          (List.map
             (fun (d : Scd.delivery) ->
               Printf.sprintf "%d.%d" d.Scd.id.Scd.origin d.Scd.id.Scd.seq)
             set)
      in
      Store.set (Runtime.store ctx) ~key:(Printf.sprintf "d:%06d" !counter) line;
      incr counter)
    sets

let probe_def : Runtime.def =
  {
    Runtime.def_name = probe_def_name;
    provides = [ (probe_port_type, 64) ];
    init =
      (fun ctx _ ->
        let request_port = Runtime.port ctx 0 in
        let counter = ref 0 in
        let reply_to ~reply ~rid command args =
          Runtime.send ctx ~to_:reply command (Value.int rid :: args)
        in
        let serve scd =
          Scd.spawn_ticker ctx scd;
          let rec loop () =
            (match Runtime.receive ctx [ request_port ] with
          | `Timeout -> ()
          | `Msg (_, msg) -> (
              match Scd.handle ctx scd msg with
              | `Handled -> record_sets ctx counter (Scd.drain scd)
              | `Unrelated -> (
                  match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
                  | "bcast", [ Value.Int rid; payload ], Some reply ->
                      let id = Scd.broadcast ctx scd payload in
                      record_sets ctx counter (Scd.drain scd);
                      reply_to ~reply ~rid "bcast_ok"
                        [ Value.int id.Scd.origin; Value.int id.Scd.seq ]
                  | "members", Value.Int rid :: _, Some reply ->
                      reply_to ~reply ~rid "members_ok" []
                  | _ -> ())));
            loop ()
          in
          loop ()
        in
        let rec await () =
          match Runtime.receive ctx [ request_port ] with
          | `Timeout -> await ()
          | `Msg (_, msg) -> (
              match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
              | "members", [ Value.Int rid; members_arg ], Some reply -> (
                  match Scd.parse_members [ members_arg ] with
                  | Some members when members <> [] ->
                      let scd =
                        Scd.create ctx
                          ~config:{ Scd.status_every = probe_status_every; resend_max = 32 }
                          ~members ()
                      in
                      Store.set (Runtime.store ctx) ~key:"probe:self"
                        (string_of_int (Scd.self scd));
                      reply_to ~reply ~rid "members_ok" [];
                      serve scd
                  | Some _ | None -> await ())
              | _, Value.Int rid :: _, Some reply ->
                  reply_to ~reply ~rid "not_ready" [];
                  await ()
              | _ -> await ())
        in
        await ());
    recover = None;
  }

let driver world ~at ~name body =
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

let parse_id part =
  match String.index_opt part '.' with
  | None -> None
  | Some i -> (
      let origin = int_of_string_opt (String.sub part 0 i) in
      let seq = int_of_string_opt (String.sub part (i + 1) (String.length part - i - 1)) in
      match (origin, seq) with Some o, Some s -> Some (o, s) | _ -> None)

(* One world: [n] probe members plus a driver node issuing [msgs]
   broadcasts to random members.  Returns the confirmed (origin, seq) ids
   and, per member, its delivered sets in delivery order. *)
let run_schedule ~seed ~n ~msgs ~lossy =
  let link = if lossy then Link.lossy 0.05 else Link.lan in
  let world = Runtime.create_world ~seed ~topology:(Topology.full_mesh ~n:(n + 1) link) () in
  Runtime.register_def world probe_def;
  let ports =
    List.map
      (fun at ->
        List.hd
          (Runtime.guardian_ports (Runtime.create_guardian world ~at ~def_name:probe_def_name ~args:[])))
      (List.init n Fun.id)
  in
  Scd.introduce world ~group:"probe" ~at:n ~members:ports;
  let ports_arr = Array.of_list ports in
  let confirmed = ref [] in
  driver world ~at:n ~name:"scd_probe_driver" (fun ctx ->
      let rng = Rng.split (Runtime.world_rng world) in
      Runtime.sleep ctx (Clock.ms 200);
      for i = 1 to msgs do
        (match
           Rpc.call ctx
             ~to_:ports_arr.(Rng.int rng n)
             ~timeout:(Clock.ms 800) ~attempts:1
             ~request_id:(4_100_000_000 + i)
             "bcast" [ Value.int i ]
         with
        | Rpc.Reply ("bcast_ok", [ Value.Int origin; Value.Int seq ]) ->
            confirmed := (origin, seq) :: !confirmed
        | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ());
        Runtime.sleep ctx (Clock.ms (10 + Rng.int rng 40))
      done);
  Runtime.run_for world (Clock.s 20);
  let members =
    Runtime.find_guardians world ~def_name:probe_def_name
    |> List.filter_map (fun g ->
           let store = Runtime.guardian_store g in
           match Option.bind (Store.get store ~key:"probe:self") int_of_string_opt with
           | None -> None
           | Some self ->
               let sets =
                 Store.to_alist store
                 |> List.filter (fun (k, _) ->
                        String.length k >= 2 && String.equal (String.sub k 0 2) "d:")
                 |> List.sort (fun (a, _) (b, _) -> String.compare a b)
                 |> List.map (fun (_, line) ->
                        List.filter_map parse_id (String.split_on_char ' ' line))
               in
               Some (self, sets))
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  (!confirmed, members)

let fail fmt = QCheck2.Test.fail_reportf fmt

(* id -> index of the set it arrived in, for one member. *)
let set_index sets =
  let index = Hashtbl.create 64 in
  List.iteri
    (fun set_i ids ->
      List.iter
        (fun id ->
          if Hashtbl.mem index id then
            fail "containment: member delivered %d.%d twice" (fst id) (snd id);
          Hashtbl.add index id set_i)
        ids)
    sets;
  index

let check_properties ~n ~confirmed ~members =
  if List.length members <> n then
    fail "expected %d probe members, found %d" n (List.length members);
  let indices = List.map (fun (self, sets) -> (self, set_index sets)) members in
  (* Integrity: nothing delivered was invented. *)
  List.iter
    (fun (self, index) ->
      Hashtbl.iter
        (fun (origin, seq) _ ->
          if origin < 0 || origin >= n || seq < 1 then
            fail "member %d delivered invented id %d.%d" self origin seq)
        index)
    indices;
  (* Termination: every confirmed broadcast reached every member, and all
     members delivered the same message set. *)
  List.iter
    (fun (origin, seq) ->
      List.iter
        (fun (self, index) ->
          if not (Hashtbl.mem index (origin, seq)) then
            fail "termination: confirmed %d.%d missing at member %d" origin seq self)
        indices)
    confirmed;
  (match indices with
  | [] -> ()
  | (_, first) :: rest ->
      List.iter
        (fun (self, index) ->
          if Hashtbl.length index <> Hashtbl.length first then
            fail "termination: member %d delivered %d messages, member 0 delivered %d" self
              (Hashtbl.length index) (Hashtbl.length first);
          Hashtbl.iter
            (fun id _ ->
              if not (Hashtbl.mem first id) then
                fail "termination: member %d delivered %d.%d, member 0 did not" self (fst id)
                  (snd id))
            index)
        rest);
  (* MS-Ordering: no opposite set-orders between any two members. *)
  let ids =
    match indices with
    | [] -> []
    | (_, first) :: _ -> Hashtbl.fold (fun id _ acc -> id :: acc) first []
  in
  List.iter
    (fun (p, pi) ->
      List.iter
        (fun (q, qi) ->
          if p < q then
            List.iter
              (fun a ->
                List.iter
                  (fun b ->
                    match
                      ( Hashtbl.find_opt pi a,
                        Hashtbl.find_opt pi b,
                        Hashtbl.find_opt qi a,
                        Hashtbl.find_opt qi b )
                    with
                    | Some pa, Some pb, Some qa, Some qb ->
                        if pa < pb && qb < qa then
                          fail
                            "MS-ordering: member %d delivers %d.%d before %d.%d, member %d \
                             the opposite"
                            p (fst a) (snd a) (fst b) (snd b) q
                    | _ -> ())
                  ids)
              ids)
        indices)
    indices;
  true

let prop_scd_properties =
  QCheck2.Test.make ~name:"SCD containment, MS-ordering, termination over random schedules"
    ~count:15
    QCheck2.Gen.(
      quad (int_range 1 1_000_000) (int_range 2 4) (int_range 1 15) bool)
    (fun (seed, n, msgs, lossy) ->
      let confirmed, members = run_schedule ~seed ~n ~msgs ~lossy in
      check_properties ~n ~confirmed ~members)

(* The implementation promises more than SCD: totally ordered delivery.
   On a fixed lossless point, the flattened delivery sequences must be
   identical across members — the property the register layer builds on. *)
let test_total_order () =
  let _, members = run_schedule ~seed:42 ~n:3 ~msgs:12 ~lossy:false in
  let flattened = List.map (fun (_, sets) -> List.concat sets) members in
  match flattened with
  | [] -> Alcotest.fail "no members"
  | first :: rest ->
      Alcotest.(check bool) "some messages delivered" true (first <> []);
      List.iteri
        (fun i other ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "member %d delivers in the same total order" (i + 1))
            first other)
        rest

let tests =
  [
    QCheck_alcotest.to_alcotest prop_scd_properties;
    Alcotest.test_case "lossless delivery is totally ordered" `Quick test_total_order;
  ]
