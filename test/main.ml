let () =
  Alcotest.run "dcp"
    [
      ("rng", Test_rng.tests);
      ("sim", Test_sim.tests);
      ("net", Test_net.tests);
      ("stat_queueing", Test_stat_queueing.tests);
      ("wire", Test_wire.tests);
      ("message", Test_message.tests);
      ("stable", Test_stable.tests);
      ("wal_recovery", Test_wal_recovery.tests);
      ("core", Test_core.tests);
      ("compute", Test_compute.tests);
      ("runtime", Test_runtime.tests);
      ("runtime_extra", Test_runtime_extra.tests);
      ("primitives", Test_primitives.tests);
      ("ordered", Test_ordered.tests);
      ("replica", Test_replica.tests);
      ("scd", Test_scd.tests);
      ("register", Test_register.tests);
      ("linearize", Test_linearize.tests);
      ("heartbeat", Test_heartbeat.tests);
      ("failover", Test_failover.tests);
      ("assoc", Test_assoc.tests);
      ("airline", Test_airline.tests);
      ("bank", Test_bank.tests);
      ("statement", Test_statement.tests);
      ("two_phase", Test_two_phase.tests);
      ("acl", Test_acl.tests);
      ("office", Test_office.tests);
      ("hotpath", Test_hotpath.tests);
      ("chaos", Test_chaos.tests);
      ("fuzz", Test_fuzz.tests);
      ("check", Test_check.tests);
      ("shard", Test_shard.tests);
      ("lint", Test_lint.tests);
      ("misc", Test_misc.tests);
    ]
