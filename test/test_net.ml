(* The network substrate: CRC, packets, links, topologies, network. *)

module Crc32 = Dcp_net.Crc32
module Packet = Dcp_net.Packet
module Link = Dcp_net.Link
module Topology = Dcp_net.Topology
module Network = Dcp_net.Network
module Engine = Dcp_sim.Engine
module Clock = Dcp_sim.Clock
module Rng = Dcp_rng.Rng

(* ---- CRC-32 ---- *)

let test_crc_known_vectors () =
  (* Standard IEEE CRC-32 check values. *)
  Alcotest.(check int32) "check string" 0xcbf43926l (Crc32.digest_string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.digest_string "");
  Alcotest.(check int32) "one byte" 0xe8b7be43l (Crc32.digest_string "a");
  Alcotest.(check int32) "pangram" 0x414fa339l
    (Crc32.digest_string "The quick brown fox jumps over the lazy dog")

(* The classic byte-at-a-time bitwise algorithm, as a reference the
   slicing-by-8 implementation must agree with on every length (tails of
   0..7 bytes take a different code path than whole 8-byte blocks). *)
let crc32_reference s =
  let crc = ref 0xffffffff in
  String.iter
    (fun ch ->
      crc := !crc lxor Char.code ch;
      for _ = 0 to 7 do
        crc := if !crc land 1 = 1 then (!crc lsr 1) lxor 0xedb88320 else !crc lsr 1
      done)
    s;
  Int32.of_int (!crc lxor 0xffffffff)

let test_crc_slicing_matches_reference () =
  for len = 0 to 80 do
    let s = String.init len (fun i -> Char.chr ((i * 89 + len * 17) mod 256)) in
    Alcotest.(check int32)
      (Printf.sprintf "len=%d" len)
      (crc32_reference s) (Crc32.digest_string s)
  done

let prop_crc_slicing_matches_reference =
  QCheck2.Test.make ~name:"slicing-by-8 agrees with bitwise reference" ~count:300
    QCheck2.Gen.(string_size (int_range 0 200))
    (fun s -> Int32.equal (crc32_reference s) (Crc32.digest_string s))

let test_crc_substring () =
  let s = "xxhelloxx" in
  Alcotest.(check int32) "string slice" (Crc32.digest_string "hello")
    (Crc32.digest_substring s ~pos:2 ~len:5);
  Alcotest.(check int32) "whole string" (Crc32.digest_string s)
    (Crc32.digest_substring s ~pos:0 ~len:(String.length s));
  Alcotest.check_raises "out of bounds" (Invalid_argument "Crc32.digest_substring") (fun () ->
      ignore (Crc32.digest_substring s ~pos:5 ~len:5))

let test_crc_incremental_matches () =
  let s = "the quick brown fox" in
  let incremental =
    Crc32.finalize (String.fold_left Crc32.update Crc32.init s)
  in
  Alcotest.(check int32) "incremental = one-shot" (Crc32.digest_string s) incremental

let test_crc_sub () =
  let b = Bytes.of_string "xxhelloxx" in
  Alcotest.(check int32) "slice" (Crc32.digest_string "hello") (Crc32.digest_sub b ~pos:2 ~len:5)

let prop_crc_detects_single_bitflip =
  QCheck2.Test.make ~name:"CRC detects any single bit flip" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 1 100)) (pair nat nat))
    (fun (s, (i, bit)) ->
      let i = i mod String.length s and bit = bit mod 8 in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      let damaged = Bytes.to_string b in
      String.equal damaged s || not (Int32.equal (Crc32.digest_string s) (Crc32.digest_string damaged)))

(* ---- Packets ---- *)

let test_fragment_roundtrip () =
  let body = String.init 5000 (fun i -> Char.chr (i mod 256)) in
  let frags = Packet.fragment ~src:1 ~dst:2 ~msg_id:7 ~mtu:1024 body in
  Alcotest.(check int) "ceil(5000/1024) fragments" 5 (List.length frags);
  let r = Packet.Reassembly.create () in
  let result =
    List.fold_left
      (fun acc f -> match Packet.Reassembly.offer r ~now:0 f with Some x -> Some x | None -> acc)
      None frags
  in
  match result with
  | Some (src, reassembled) ->
      Alcotest.(check int) "src" 1 src;
      Alcotest.(check bool) "body intact" true (String.equal body reassembled)
  | None -> Alcotest.fail "never completed"

let test_fragment_empty_body () =
  let frags = Packet.fragment ~src:0 ~dst:1 ~msg_id:0 ~mtu:64 "" in
  Alcotest.(check int) "one empty fragment" 1 (List.length frags);
  let r = Packet.Reassembly.create () in
  match Packet.Reassembly.offer r ~now:0 (List.hd frags) with
  | Some (_, body) -> Alcotest.(check string) "empty body" "" body
  | None -> Alcotest.fail "no delivery"

let test_fragment_out_of_order_and_dupes () =
  let body = String.init 3000 (fun i -> Char.chr (i mod 251)) in
  let frags = Packet.fragment ~src:3 ~dst:4 ~msg_id:9 ~mtu:1000 body in
  let shuffled = List.rev frags @ [ List.hd frags; List.nth frags 1 ] in
  let r = Packet.Reassembly.create () in
  let completions = ref 0 in
  let out = ref "" in
  List.iter
    (fun f ->
      match Packet.Reassembly.offer r ~now:0 f with
      | Some (_, b) ->
          incr completions;
          out := b
      | None -> ())
    shuffled;
  Alcotest.(check int) "exactly one completion" 1 !completions;
  Alcotest.(check bool) "body intact" true (String.equal body !out)

let test_corruption_detected () =
  let rng = Rng.create ~seed:4 in
  let frag = List.hd (Packet.fragment ~src:0 ~dst:1 ~msg_id:1 ~mtu:64 "hello world") in
  Alcotest.(check bool) "starts intact" true (Packet.intact frag);
  let damaged = Packet.corrupt rng frag in
  Alcotest.(check bool) "corruption detected" false (Packet.intact damaged)

let test_reassembly_gc () =
  let body = String.make 3000 'x' in
  let frags = Packet.fragment ~src:0 ~dst:1 ~msg_id:2 ~mtu:1000 body in
  let r = Packet.Reassembly.create () in
  ignore (Packet.Reassembly.offer r ~now:(Clock.ms 1) (List.hd frags));
  Alcotest.(check int) "one pending" 1 (Packet.Reassembly.pending r);
  let dropped = Packet.Reassembly.drop_older_than r ~before:(Clock.ms 5) in
  Alcotest.(check int) "dropped" 1 dropped;
  Alcotest.(check int) "none pending" 0 (Packet.Reassembly.pending r)

let test_reassembly_rejects_count_mismatch () =
  let body = String.init 3000 (fun i -> Char.chr (i mod 256)) in
  let frags = Packet.fragment ~src:1 ~dst:2 ~msg_id:11 ~mtu:1000 body in
  let r = Packet.Reassembly.create () in
  (match Packet.Reassembly.offer r ~now:0 (List.hd frags) with
  | None -> ()
  | Some _ -> Alcotest.fail "one fragment cannot complete three");
  (* A corrupted header: payload CRC still valid, count lies.  Folding it
     in under the old count would truncate the message. *)
  let liar = { (List.nth frags 1) with Packet.count = 2 } in
  Alcotest.(check bool) "mismatched count rejected" true
    (Packet.Reassembly.offer r ~now:0 liar = None);
  Alcotest.(check int) "partial untouched" 1 (Packet.Reassembly.pending r);
  let result =
    List.fold_left
      (fun acc f ->
        match Packet.Reassembly.offer r ~now:0 f with Some (_, b) -> Some b | None -> acc)
      None (List.tl frags)
  in
  match result with
  | Some b -> Alcotest.(check bool) "true fragments still complete" true (String.equal b body)
  | None -> Alcotest.fail "never completed"

let test_reassembly_rejects_bad_geometry () =
  let r = Packet.Reassembly.create () in
  let f = List.hd (Packet.fragment ~src:0 ~dst:1 ~msg_id:3 ~mtu:64 "hi") in
  Alcotest.(check bool) "count=0" true
    (Packet.Reassembly.offer r ~now:0 { f with Packet.count = 0 } = None);
  Alcotest.(check bool) "negative count" true
    (Packet.Reassembly.offer r ~now:0 { f with Packet.count = -1; Packet.index = -2 } = None);
  Alcotest.(check bool) "negative index" true
    (Packet.Reassembly.offer r ~now:0 { f with Packet.index = -1 } = None);
  Alcotest.(check bool) "index beyond count" true
    (Packet.Reassembly.offer r ~now:0 { f with Packet.index = 1 } = None);
  Alcotest.(check int) "nothing buffered" 0 (Packet.Reassembly.pending r)

let prop_fragment_reassemble_roundtrip =
  QCheck2.Test.make ~name:"fragment/reassemble roundtrip for any body and MTU" ~count:200
    QCheck2.Gen.(pair (string_size (int_range 0 5000)) (int_range 1 700))
    (fun (body, mtu) ->
      let frags = Packet.fragment ~src:0 ~dst:1 ~msg_id:5 ~mtu body in
      let r = Packet.Reassembly.create () in
      let result =
        List.fold_left
          (fun acc f ->
            match Packet.Reassembly.offer r ~now:0 f with Some (_, b) -> Some b | None -> acc)
          None frags
      in
      match result with Some b -> String.equal b body | None -> false)

(* ---- Links ---- *)

let test_link_perfect () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    match Link.transmit Link.perfect rng ~size:100 with
    | Link.Deliver [ 0 ] -> ()
    | _ -> Alcotest.fail "perfect link must deliver instantly"
  done

let test_link_loss_rate () =
  let rng = Rng.create ~seed:2 in
  let link = { Link.perfect with loss = 0.25 } in
  let dropped = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Link.transmit link rng ~size:100 with Link.Drop -> incr dropped | _ -> ()
  done;
  let rate = float_of_int !dropped /. float_of_int n in
  Alcotest.(check bool) "~25% loss" true (Float.abs (rate -. 0.25) < 0.02)

let test_link_duplication () =
  let rng = Rng.create ~seed:3 in
  let link = { Link.perfect with duplicate = 1.0 } in
  match Link.transmit link rng ~size:10 with
  | Link.Deliver [ _; _ ] -> ()
  | _ -> Alcotest.fail "expected two copies"

let test_link_bandwidth_delay () =
  let rng = Rng.create ~seed:4 in
  let link = { Link.perfect with bandwidth = Some 1000 } in
  (* 500 bytes at 1000 B/s = 0.5 s *)
  match Link.transmit link rng ~size:500 with
  | Link.Deliver [ d ] -> Alcotest.(check int) "serialization delay" (Clock.of_float_s 0.5) d
  | _ -> Alcotest.fail "expected one delivery"

let test_link_compose () =
  let a = { Link.perfect with base_latency = Clock.ms 1; loss = 0.1 } in
  let b = { Link.perfect with base_latency = Clock.ms 2; loss = 0.1 } in
  let c = Link.compose a b in
  Alcotest.(check int) "latencies add" (Clock.ms 3) c.Link.base_latency;
  Alcotest.(check bool) "loss compounds" true (Float.abs (c.Link.loss -. 0.19) < 1e-9)

(* ---- Topology ---- *)

let test_topology_full_mesh () =
  let t = Topology.full_mesh ~n:4 Link.lan in
  Alcotest.(check int) "size" 4 (Topology.size t);
  Alcotest.(check bool) "self link perfect" true
    (Topology.link t ~src:2 ~dst:2 = Link.perfect);
  Alcotest.(check bool) "cross link is lan" true (Topology.link t ~src:0 ~dst:3 = Link.lan)

let test_topology_unknown_node () =
  let t = Topology.full_mesh ~n:2 Link.lan in
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Topology.link: unknown destination node") (fun () ->
      ignore (Topology.link t ~src:0 ~dst:9))

let test_topology_clusters () =
  let t = Topology.clusters ~sizes:[ 2; 2 ] ~local:Link.lan ~long_haul:Link.wan in
  Alcotest.(check int) "four nodes" 4 (Topology.size t);
  Alcotest.(check (option int)) "node 0 cluster" (Some 0) (Topology.cluster_of t 0);
  Alcotest.(check (option int)) "node 3 cluster" (Some 1) (Topology.cluster_of t 3);
  let intra = Topology.link t ~src:0 ~dst:1 in
  let inter = Topology.link t ~src:0 ~dst:2 in
  Alcotest.(check bool) "intra is lan" true (intra = Link.lan);
  Alcotest.(check bool) "inter slower than intra" true
    (inter.Link.base_latency > intra.Link.base_latency)

let test_topology_star () =
  let t = Topology.star ~n:5 ~hub:0 ~spoke:Link.lan in
  let to_hub = Topology.link t ~src:3 ~dst:0 in
  let through_hub = Topology.link t ~src:3 ~dst:4 in
  Alcotest.(check bool) "two-hop slower" true
    (through_hub.Link.base_latency > to_hub.Link.base_latency)

(* ---- Network ---- *)

let make_net ?(mtu = 1024) ?(link = Link.perfect) ~n () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let net = Network.create ~engine ~rng ~topology:(Topology.full_mesh ~n link) ~mtu () in
  (engine, net)

let test_network_delivery () =
  let engine, net = make_net ~n:2 () in
  let got = ref None in
  Network.set_handler net 1 (fun ~src body -> got := Some (src, body));
  Network.send net ~src:0 ~dst:1 "payload";
  Engine.run engine;
  Alcotest.(check (option (pair int string))) "delivered" (Some (0, "payload")) !got

let test_network_large_message_fragments () =
  let engine, net = make_net ~mtu:100 ~n:2 () in
  let body = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let got = ref None in
  Network.set_handler net 1 (fun ~src:_ b -> got := Some b);
  Network.send net ~src:0 ~dst:1 body;
  Engine.run engine;
  Alcotest.(check bool) "reassembled" true (Some body = !got);
  let stats = Network.stats net in
  Alcotest.(check int) "ten fragments" 10 stats.Network.fragments_sent

let test_network_no_handler_discards () =
  let engine, net = make_net ~n:2 () in
  Network.send net ~src:0 ~dst:1 "void";
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (Network.stats net).Network.messages_delivered

let test_network_partition () =
  let engine, net = make_net ~n:3 () in
  let inbox = ref [] in
  Network.set_handler net 1 (fun ~src:_ b -> inbox := b :: !inbox);
  Network.set_handler net 2 (fun ~src:_ b -> inbox := b :: !inbox);
  Network.partition net [ [ 0; 1 ]; [ 2 ] ];
  Alcotest.(check bool) "0-2 partitioned" true (Network.partitioned net ~src:0 ~dst:2);
  Alcotest.(check bool) "0-1 connected" false (Network.partitioned net ~src:0 ~dst:1);
  Network.send net ~src:0 ~dst:1 "ok";
  Network.send net ~src:0 ~dst:2 "blocked";
  Engine.run engine;
  Alcotest.(check (list string)) "only same side" [ "ok" ] !inbox;
  Network.heal net;
  Network.send net ~src:0 ~dst:2 "after heal";
  Engine.run engine;
  Alcotest.(check int) "heals" 2 (List.length !inbox)

let test_network_lossy_link_drops () =
  let engine, net = make_net ~link:{ Link.perfect with loss = 1.0 } ~n:2 () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 50 do
    Network.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run engine;
  Alcotest.(check int) "all lost" 0 !got;
  Alcotest.(check int) "loss counted" 50 (Network.stats net).Network.fragments_lost

let test_network_corruption_dropped () =
  let engine, net = make_net ~link:{ Link.perfect with corrupt = 1.0 } ~n:2 () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 20 do
    Network.send net ~src:0 ~dst:1 "some payload"
  done;
  Engine.run engine;
  Alcotest.(check int) "all discarded by CRC" 0 !got;
  Alcotest.(check int) "corruptions counted" 20 (Network.stats net).Network.fragments_corrupted

let test_network_duplicates_deliver_twice () =
  let engine, net = make_net ~link:{ Link.perfect with duplicate = 1.0 } ~n:2 () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Network.send net ~src:0 ~dst:1 "x";
  Engine.run engine;
  (* A duplicated single-fragment message completes reassembly twice: the
     network may deliver a message more than once, exactly as §3.4 allows.
     Receivers needing at-most-once must deduplicate themselves (Rpc). *)
  Alcotest.(check int) "duplicate delivers twice" 2 !got;
  Alcotest.(check int) "dup counted" 1 (Network.stats net).Network.fragments_duplicated

let test_network_jitter_reorders () =
  let link = { Link.perfect with base_latency = Clock.ms 1; jitter = Clock.ms 20 } in
  let engine, net = make_net ~link ~n:2 () in
  let order = ref [] in
  Network.set_handler net 1 (fun ~src:_ b -> order := b :: !order);
  for i = 0 to 19 do
    Network.send net ~src:0 ~dst:1 (string_of_int i)
  done;
  Engine.run engine;
  let arrived = List.rev !order in
  Alcotest.(check int) "all arrive" 20 (List.length arrived);
  let in_order = List.sort compare arrived = arrived in
  Alcotest.(check bool) "jitter reordered something" false in_order

let tests =
  [
    Alcotest.test_case "CRC known vectors" `Quick test_crc_known_vectors;
    Alcotest.test_case "CRC slicing vs reference" `Quick test_crc_slicing_matches_reference;
    QCheck_alcotest.to_alcotest prop_crc_slicing_matches_reference;
    Alcotest.test_case "CRC incremental" `Quick test_crc_incremental_matches;
    Alcotest.test_case "CRC slice" `Quick test_crc_sub;
    Alcotest.test_case "CRC substring" `Quick test_crc_substring;
    QCheck_alcotest.to_alcotest prop_crc_detects_single_bitflip;
    Alcotest.test_case "fragment roundtrip" `Quick test_fragment_roundtrip;
    Alcotest.test_case "empty body" `Quick test_fragment_empty_body;
    Alcotest.test_case "out of order + dupes" `Quick test_fragment_out_of_order_and_dupes;
    Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "reassembly GC" `Quick test_reassembly_gc;
    Alcotest.test_case "reassembly count mismatch" `Quick test_reassembly_rejects_count_mismatch;
    Alcotest.test_case "reassembly bad geometry" `Quick test_reassembly_rejects_bad_geometry;
    QCheck_alcotest.to_alcotest prop_fragment_reassemble_roundtrip;
    Alcotest.test_case "perfect link" `Quick test_link_perfect;
    Alcotest.test_case "loss rate" `Slow test_link_loss_rate;
    Alcotest.test_case "duplication" `Quick test_link_duplication;
    Alcotest.test_case "bandwidth delay" `Quick test_link_bandwidth_delay;
    Alcotest.test_case "compose" `Quick test_link_compose;
    Alcotest.test_case "full mesh" `Quick test_topology_full_mesh;
    Alcotest.test_case "unknown node" `Quick test_topology_unknown_node;
    Alcotest.test_case "clusters" `Quick test_topology_clusters;
    Alcotest.test_case "star" `Quick test_topology_star;
    Alcotest.test_case "delivery" `Quick test_network_delivery;
    Alcotest.test_case "fragmentation" `Quick test_network_large_message_fragments;
    Alcotest.test_case "no handler discards" `Quick test_network_no_handler_discards;
    Alcotest.test_case "partition" `Quick test_network_partition;
    Alcotest.test_case "lossy link" `Quick test_network_lossy_link_drops;
    Alcotest.test_case "corruption dropped" `Quick test_network_corruption_dropped;
    Alcotest.test_case "fragment duplication re-delivers" `Quick test_network_duplicates_deliver_twice;
    Alcotest.test_case "jitter reorders" `Quick test_network_jitter_reorders;
  ]
