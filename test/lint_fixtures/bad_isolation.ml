(* Lint fixture: scanned as if it lived in lib/airline/, so this reference
   to the bank guardian library is a guardian-isolation violation. *)
let peek_at_the_bank () = Dcp_bank.Branch.def_name
