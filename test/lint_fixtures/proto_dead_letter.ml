(* Whole-program fixture: "peer_vanished" has no handler anywhere, while
   "ping" is both sent and dispatched. *)

let client ctx peer =
  Runtime.send ctx ~to_:peer "ping" [];
  Runtime.send ctx ~to_:peer "peer_vanished" []

let serve ctx msg =
  match msg.Message.command with
  | "ping" -> step ctx
  | _ -> ()
