(* Lint fixture: a Hashtbl.fold whose result escapes without a sort. *)
let dump table = Hashtbl.fold (fun key value acc -> (key, value) :: acc) table []

(* A sorted sibling that must NOT fire: the fold sits under a sort. *)
let dump_sorted table =
  List.sort compare_pairs (Hashtbl.fold (fun key value acc -> (key, value) :: acc) table [])
