(* Whole-program fixture with zero findings: every sent name is handled,
   every handled name is sent, and the obligated "get" handler replies on
   the hit path and discards explicitly (None match) otherwise. *)

let port_type = Rpc.request_signature "get" [] ~replies:[ Vtype.reply "got" [] ]

let client ctx peer =
  Runtime.send ctx ~to_:peer "get" [];
  Runtime.send ctx ~to_:peer "nudge" []

let serve ctx state msg =
  match (msg.Message.command, msg.Message.args) with
  | "get", [] -> (
      match msg.Message.reply_to with
      | Some reply -> Runtime.send ctx ~to_:reply "got" [ Value.int state.count ]
      | None -> ())
  | "nudge", _ -> touch state
  | _ -> ()
