(* Whole-program fixture: "fetch" is declared with a reply, and the
   handler answers on the hit path but silently drops the reply port on
   the miss path — the caller would burn its full RPC timeout. *)

let port_type =
  Rpc.request_signature "fetch" [ Vtype.Tstr ]
    ~replies:[ Vtype.reply "fetched" [ Vtype.Tint ] ]

let client ctx peer = Runtime.send ctx ~to_:peer "fetch" [ Value.str "k" ]

let serve ctx state msg =
  match (msg.Message.command, msg.Message.args) with
  | "fetch", [ Value.Str key ] -> (
      match (lookup state key, msg.Message.reply_to) with
      | Some v, Some reply -> Runtime.send ctx ~to_:reply "fetched" [ v ]
      | None, Some _ -> () (* BUG: miss path never answers *)
      | _, None -> ())
  | _ -> ()
