(* Lint fixture: wall-clock reads are nondeterministic state. *)
let now () = Unix.gettimeofday ()
let seeded () = Random.self_init ()
