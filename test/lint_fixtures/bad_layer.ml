(* Lint fixture: scanned as if it lived in lib/wire/ (layer 1), so this
   upward reference to dcp_core (layer 4) is a layer-DAG back-edge. *)
let reach_up () = Dcp_core.Runtime.noise
