(* Lint fixture: does not parse; the linter must report it, not crash. *)
let broken = (
