(* Lint fixture: raw mutable values handed to send/reply. *)
let ship ctx port = Runtime.send ctx ~to_:port "data" [| 1; 2; 3 |]
let answer ctx port = Runtime.reply ctx ~to_:port "data" (ref 0)
