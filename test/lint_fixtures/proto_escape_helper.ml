(* Whole-program fixture: a mutable buffer laundered through two helper
   calls into a send payload.  The per-file mutable-payload rule cannot
   see this — no mutable constructor appears in the argument expression —
   but the summary-based escape analysis can. *)

let make_buf () = Bytes.create 8
let wrap b = b

let publish ctx peer = Runtime.send ctx ~to_:peer "blob" [ wrap (make_buf ()) ]

let serve ctx msg =
  match msg.Message.command with
  | "blob" -> store ctx msg
  | _ -> ()
