(* Lint fixture: Obj.magic defeats the type system. *)
let coerce x = Obj.magic x
