(* Wall-clock access hidden behind module renames: the reference resolver
   must expand [module U = Unix] (including alias-of-alias and local
   [let module]) before matching the rule table. *)

module U = Unix
module V = U

let now () = U.time ()
let later () = V.gettimeofday ()

let local () =
  let module W = Unix in
  W.gmtime 0.0
