(* Lint fixture: domain-level concurrency primitives outside the shard
   runtime break the single-writer determinism argument. *)
let m = Mutex.create ()

let counter : int Atomic.t = Atomic.make 0

let fork () = Domain.spawn (fun () -> Atomic.incr counter)

let wait c = Condition.wait c m
