(* Lint fixture: polymorphic = on port names, and a polymorphic hash. *)
let same_port a b = Port.name a = Port.name b
let bucket = Hashtbl.hash
