(* Lint fixture: constructing a disk-fault injector handle outside
   lib/stable bypasses the store's salvage/quarantine accounting and
   perturbs RNG streams. *)
let injector = Disk.create Disk.flaky (Dcp_rng.Rng.create ~seed:1)

let qualified = Dcp_stable.Disk.create Dcp_stable.Disk.none (Dcp_rng.Rng.create ~seed:2)

(* Carrying a spec around is fine — only [create] is restricted. *)
let spec = Dcp_stable.Disk.flaky
