(* Stable storage: WAL and recoverable store, including torn-tail crashes. *)

module Wal = Dcp_stable.Wal
module Store = Dcp_stable.Store
module Rng = Dcp_rng.Rng

(* ---- WAL ---- *)

let test_wal_append_replay () =
  let wal = Wal.create () in
  let l0 = Wal.append wal "first" in
  let l1 = Wal.append wal "second" in
  Alcotest.(check int) "dense lsns" 1 (l1 - l0);
  let seen = ref [] in
  Wal.replay wal (fun lsn payload -> seen := (lsn, payload) :: !seen);
  Alcotest.(check (list (pair int string)))
    "in order"
    [ (0, "first"); (1, "second") ]
    (List.rev !seen)

let test_wal_records () =
  let wal = Wal.create () in
  ignore (Wal.append wal "a");
  ignore (Wal.append wal "b");
  Alcotest.(check (list string)) "records" [ "a"; "b" ] (Wal.records wal)

let test_wal_truncate () =
  let wal = Wal.create () in
  for i = 0 to 4 do
    ignore (Wal.append wal (string_of_int i))
  done;
  Wal.truncate_prefix wal ~upto:3;
  Alcotest.(check (list string)) "kept tail" [ "3"; "4" ] (Wal.records wal);
  Alcotest.(check int) "first lsn" 3 (Wal.first_lsn wal);
  Alcotest.(check int) "next lsn unchanged" 5 (Wal.next_lsn wal)

let test_wal_tear_tail () =
  let wal = Wal.create () in
  ignore (Wal.append wal "safe");
  ignore (Wal.append wal "doomed");
  let rng = Rng.create ~seed:1 in
  let torn = Wal.tear_tail wal rng ~p:1.0 in
  Alcotest.(check bool) "tear happened" true torn;
  Alcotest.(check (list string)) "tail dropped by replay" [ "safe" ] (Wal.records wal)

let test_wal_tear_never () =
  let wal = Wal.create () in
  ignore (Wal.append wal "x");
  let rng = Rng.create ~seed:1 in
  Alcotest.(check bool) "p=0 never tears" false (Wal.tear_tail wal rng ~p:0.0);
  Alcotest.(check int) "intact" 1 (Wal.length wal)

let test_wal_tear_empty () =
  let wal = Wal.create () in
  let rng = Rng.create ~seed:1 in
  Alcotest.(check bool) "empty log cannot tear" false (Wal.tear_tail wal rng ~p:1.0)

(* The verified-prefix cache must never outlive the facts it caches: a
   read primes it, tear_tail damages the newest record behind it, and
   every subsequent read has to quarantine the damaged record. *)
let test_wal_cache_invalidated_by_tear () =
  let wal = Wal.create () in
  ignore (Wal.append wal "a");
  ignore (Wal.append wal "b");
  ignore (Wal.append wal "c");
  Alcotest.(check int) "cache primed" 3 (Wal.length wal);
  let rng = Rng.create ~seed:2 in
  Alcotest.(check bool) "tear happened" true (Wal.tear_tail wal rng ~p:1.0);
  Alcotest.(check int) "cached prefix pulled back" 2 (Wal.length wal);
  ignore (Wal.append wal "d");
  Alcotest.(check (list string))
    "quarantine skips the tear, keeps the suffix" [ "a"; "b"; "d" ] (Wal.records wal);
  let r = Wal.scrub wal in
  Alcotest.(check int) "scrub quarantines the torn record" 1 r.Wal.quarantined;
  Alcotest.(check int) "no mirror, nothing salvageable" 0 r.Wal.salvaged;
  ignore (Wal.append wal "e");
  Alcotest.(check (list string)) "log usable again" [ "a"; "b"; "d"; "e" ] (Wal.records wal)

let test_wal_truncate_after_verify () =
  let wal = Wal.create () in
  for i = 0 to 4 do
    ignore (Wal.append wal (string_of_int i))
  done;
  Alcotest.(check int) "verify everything first" 5 (Wal.length wal);
  Wal.truncate_prefix wal ~upto:3;
  Alcotest.(check (list string)) "tail survives the shift" [ "3"; "4" ] (Wal.records wal);
  Alcotest.(check int) "length after shift" 2 (Wal.length wal);
  let rng = Rng.create ~seed:3 in
  ignore (Wal.tear_tail wal rng ~p:1.0);
  Alcotest.(check (list string)) "tear still lands on the newest" [ "3" ] (Wal.records wal)

let test_wal_storage_bytes_accounting () =
  let wal = Wal.create () in
  let l0 = Wal.append wal "abcd" in
  ignore (Wal.append wal "ef") ;
  (* 12 bytes of header accounting per record, damaged or not *)
  Alcotest.(check int) "two records" (4 + 2 + 24) (Wal.storage_bytes wal);
  let rng = Rng.create ~seed:4 in
  ignore (Wal.tear_tail wal rng ~p:1.0);
  Alcotest.(check int) "tear does not change accounting" (4 + 2 + 24) (Wal.storage_bytes wal);
  ignore (Wal.scrub wal);
  Alcotest.(check int) "scrub reclaims the quarantined tail" (4 + 12) (Wal.storage_bytes wal);
  Wal.truncate_prefix wal ~upto:(l0 + 1);
  Alcotest.(check int) "truncate reclaims the prefix" 0 (Wal.storage_bytes wal)

let prop_wal_replay_prefix =
  QCheck2.Test.make ~name:"WAL replay returns exactly what was appended" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) (string_size (int_range 0 30)))
    (fun payloads ->
      let wal = Wal.create () in
      List.iter (fun p -> ignore (Wal.append wal p)) payloads;
      Wal.records wal = payloads)

(* ---- Store ---- *)

let test_store_basics () =
  let s = Store.create () in
  Store.set s ~key:"a" "1";
  Store.set s ~key:"b" "2";
  Store.set s ~key:"a" "3";
  Alcotest.(check (option string)) "overwrite" (Some "3") (Store.get s ~key:"a");
  Alcotest.(check int) "size" 2 (Store.size s);
  Store.remove s ~key:"a";
  Alcotest.(check (option string)) "removed" None (Store.get s ~key:"a");
  Alcotest.(check bool) "mem" true (Store.mem s ~key:"b")

let test_store_fold () =
  let s = Store.create () in
  Store.set s ~key:"x" "1";
  Store.set s ~key:"y" "2";
  let sum =
    Store.fold s ~init:0 ~f:(fun ~key:_ value acc -> acc + int_of_string value)
  in
  Alcotest.(check int) "fold" 3 sum

let test_store_crash_recover () =
  let s = Store.create () in
  Store.set s ~key:"k" "before";
  Store.crash s ();
  Alcotest.(check bool) "crashed" true (Store.is_crashed s);
  Alcotest.check_raises "access while crashed"
    (Invalid_argument "Store: node is crashed; recover first") (fun () ->
      ignore (Store.get s ~key:"k"));
  let replayed = Store.recover s in
  Alcotest.(check bool) "replayed something" true (replayed >= 1);
  Alcotest.(check (option string)) "value survived" (Some "before") (Store.get s ~key:"k")

let test_store_recover_with_removes () =
  let s = Store.create () in
  Store.set s ~key:"a" "1";
  Store.set s ~key:"b" "2";
  Store.remove s ~key:"a";
  Store.crash s ();
  ignore (Store.recover s);
  Alcotest.(check (option string)) "removed stays removed" None (Store.get s ~key:"a");
  Alcotest.(check (option string)) "kept" (Some "2") (Store.get s ~key:"b")

let test_store_checkpoint_shrinks_log () =
  let s = Store.create () in
  for i = 0 to 99 do
    Store.set s ~key:(string_of_int (i mod 10)) (string_of_int i)
  done;
  Alcotest.(check int) "log grew" 100 (Store.log_length s);
  (* Checkpoints are double-buffered: the first generation truncates
     nothing (the log alone must still rebuild the store), the second
     compacts everything the older generation covers. *)
  Store.checkpoint s;
  Alcotest.(check int) "first checkpoint keeps the log" 100 (Store.log_length s);
  Store.set s ~key:"9" "99";
  Store.checkpoint s;
  Alcotest.(check int) "second checkpoint compacts the prefix" 1 (Store.log_length s);
  Store.crash s ();
  ignore (Store.recover s);
  Alcotest.(check int) "table rebuilt from snapshot" 10 (Store.size s);
  Alcotest.(check (option string)) "latest values" (Some "99") (Store.get s ~key:"9")

let test_store_torn_tail_loses_last_write_only () =
  let s = Store.create () in
  Store.set s ~key:"a" "1";
  Store.set s ~key:"b" "2";
  let rng = Rng.create ~seed:1 in
  Store.crash s ~tear:(rng, 1.0) ();
  ignore (Store.recover s);
  Alcotest.(check (option string)) "first write safe" (Some "1") (Store.get s ~key:"a");
  Alcotest.(check (option string)) "torn write gone" None (Store.get s ~key:"b")

let test_store_recover_idempotent () =
  let s = Store.create () in
  Store.set s ~key:"k" "v";
  Alcotest.(check int) "recover when live is a no-op" 0 (Store.recover s)

let test_store_double_crash_cycle () =
  let s = Store.create () in
  Store.set s ~key:"k" "v1";
  Store.crash s ();
  ignore (Store.recover s);
  Store.set s ~key:"k" "v2";
  Store.checkpoint s;
  Store.crash s ();
  ignore (Store.recover s);
  Alcotest.(check (option string)) "second cycle" (Some "v2") (Store.get s ~key:"k")

(* qcheck: the store after crash+recover equals a model map, for arbitrary
   operation sequences (no tear). *)
let prop_store_matches_model =
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map2 (fun k v -> `Set (string_of_int k, string_of_int v)) (int_range 0 20) int;
          map (fun k -> `Remove (string_of_int k)) (int_range 0 20);
          return `Checkpoint;
          return `Crash_recover;
        ])
  in
  QCheck2.Test.make ~name:"store equals model under random ops" ~count:200
    QCheck2.Gen.(list_size (int_range 0 60) op_gen)
    (fun ops ->
      let s = Store.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (function
          | `Set (k, v) ->
              Store.set s ~key:k v;
              Hashtbl.replace model k v
          | `Remove k ->
              Store.remove s ~key:k;
              Hashtbl.remove model k
          | `Checkpoint -> Store.checkpoint s
          | `Crash_recover ->
              Store.crash s ();
              ignore (Store.recover s))
        ops;
      Hashtbl.fold (fun k v acc -> acc && Store.get s ~key:k = Some v) model (Store.size s = Hashtbl.length model))

let tests =
  [
    Alcotest.test_case "wal append/replay" `Quick test_wal_append_replay;
    Alcotest.test_case "wal records" `Quick test_wal_records;
    Alcotest.test_case "wal truncate" `Quick test_wal_truncate;
    Alcotest.test_case "wal tear tail" `Quick test_wal_tear_tail;
    Alcotest.test_case "wal tear p=0" `Quick test_wal_tear_never;
    Alcotest.test_case "wal tear empty" `Quick test_wal_tear_empty;
    Alcotest.test_case "wal verified cache vs tear" `Quick test_wal_cache_invalidated_by_tear;
    Alcotest.test_case "wal truncate after verify" `Quick test_wal_truncate_after_verify;
    Alcotest.test_case "wal storage accounting" `Quick test_wal_storage_bytes_accounting;
    QCheck_alcotest.to_alcotest prop_wal_replay_prefix;
    Alcotest.test_case "store basics" `Quick test_store_basics;
    Alcotest.test_case "store fold" `Quick test_store_fold;
    Alcotest.test_case "store crash/recover" `Quick test_store_crash_recover;
    Alcotest.test_case "store recover removes" `Quick test_store_recover_with_removes;
    Alcotest.test_case "store checkpoint" `Quick test_store_checkpoint_shrinks_log;
    Alcotest.test_case "store torn tail" `Quick test_store_torn_tail_loses_last_write_only;
    Alcotest.test_case "store recover idempotent" `Quick test_store_recover_idempotent;
    Alcotest.test_case "store crash cycle" `Quick test_store_double_crash_cycle;
    QCheck_alcotest.to_alcotest prop_store_matches_model;
  ]
