(* The linearizability checker on hand-written histories: the oracle that
   judges the register scenarios is itself judged here, on cases small
   enough to verify by eye.  Accept cases pin down what a correct register
   may do (overlap reordering, pending-write uncertainty); reject cases pin
   down the violations the register_mutated self-test relies on (stale
   reads after an acknowledged write, new/old inversions). *)

module L = Dcp_check.Linearize

let ev ?reply ~client ~inv ~resp op = { L.client; op; reply; inv; resp }
let w ?reply ~client ~inv ~resp key v = ev ?reply ~client ~inv ~resp (L.Write (key, v))
let r ?reply ~client ~inv ~resp key = ev ?reply ~client ~inv ~resp (L.Read key)
let s ?reply ~client ~inv ~resp () = ev ?reply ~client ~inv ~resp L.Snapshot

let accepts name history =
  match L.check history with
  | Ok () -> ()
  | Error reason -> Alcotest.failf "%s: expected linearizable, got: %s" name reason

let rejects name ?affix history =
  match L.check history with
  | Ok () -> Alcotest.failf "%s: expected a violation, history accepted" name
  | Error reason -> (
      match affix with
      | None -> ()
      | Some affix ->
          let n = String.length affix and m = String.length reason in
          let rec at i = i + n <= m && (String.sub reason i n = affix || at (i + 1)) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: reason %S mentions %S" name reason affix)
            true (at 0))

let test_sequential_accepted () =
  accepts "empty" [];
  accepts "one write" [ w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1 ];
  accepts "write then read"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1;
      r ~reply:(L.Value_is (Some 1)) ~client:1 ~inv:20 ~resp:30 "x";
    ];
  accepts "unknown key before any write"
    [
      r ~reply:(L.Value_is None) ~client:1 ~inv:0 ~resp:5 "x";
      w ~reply:L.Acked ~client:0 ~inv:10 ~resp:20 "x" 1;
      r ~reply:(L.Value_is (Some 1)) ~client:1 ~inv:30 ~resp:40 "x";
    ];
  accepts "overwrites in order"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1;
      w ~reply:L.Acked ~client:0 ~inv:20 ~resp:30 "x" 2;
      r ~reply:(L.Value_is (Some 2)) ~client:1 ~inv:40 ~resp:50 "x";
    ]

let test_overlap_reordering_accepted () =
  (* A read overlapping a write may see either side of it. *)
  accepts "overlapping read sees old value"
    [
      w ~reply:L.Acked ~client:0 ~inv:10 ~resp:50 "x" 1;
      r ~reply:(L.Value_is None) ~client:1 ~inv:20 ~resp:30 "x";
    ];
  accepts "overlapping read sees new value"
    [
      w ~reply:L.Acked ~client:0 ~inv:10 ~resp:50 "x" 1;
      r ~reply:(L.Value_is (Some 1)) ~client:1 ~inv:20 ~resp:30 "x";
    ];
  (* Two concurrent writes: reads fix their order, consistently. *)
  accepts "concurrent writes ordered by the reads"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:100 "x" 1;
      w ~reply:L.Acked ~client:1 ~inv:0 ~resp:100 "x" 2;
      r ~reply:(L.Value_is (Some 2)) ~client:2 ~inv:110 ~resp:120 "x";
    ]

let test_pending_writes_branch () =
  (* A timed-out write may have landed or not: both continuations accept. *)
  accepts "pending write took effect"
    [
      w ~client:0 ~inv:0 ~resp:max_int "x" 1;
      r ~reply:(L.Value_is (Some 1)) ~client:1 ~inv:10 ~resp:20 "x";
    ];
  accepts "pending write never landed"
    [
      w ~client:0 ~inv:0 ~resp:max_int "x" 1;
      r ~reply:(L.Value_is None) ~client:1 ~inv:10 ~resp:20 "x";
    ];
  accepts "pending write lands between two reads"
    [
      w ~client:0 ~inv:0 ~resp:max_int "x" 1;
      r ~reply:(L.Value_is None) ~client:1 ~inv:10 ~resp:20 "x";
      r ~reply:(L.Value_is (Some 1)) ~client:1 ~inv:30 ~resp:40 "x";
    ];
  (* ...but an applied write cannot un-apply. *)
  rejects "pending write cannot be read then vanish"
    [
      w ~client:0 ~inv:0 ~resp:max_int "x" 1;
      r ~reply:(L.Value_is (Some 1)) ~client:1 ~inv:10 ~resp:20 "x";
      r ~reply:(L.Value_is None) ~client:1 ~inv:30 ~resp:40 "x";
    ];
  (* Pending reads constrain nothing, even with impossible values around. *)
  accepts "pending read is discarded"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1;
      r ~client:1 ~inv:20 ~resp:max_int "x";
    ]

let test_stale_read_rejected () =
  (* The fast-ack signature: the write is acknowledged, a strictly later
     read still sees the pre-write state. *)
  rejects "stale read after acked write" ~affix:"cannot be justified"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1;
      r ~reply:(L.Value_is None) ~client:1 ~inv:20 ~resp:30 "x";
    ];
  rejects "read of an overwritten value" ~affix:"cannot be justified"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1;
      w ~reply:L.Acked ~client:0 ~inv:20 ~resp:30 "x" 2;
      r ~reply:(L.Value_is (Some 1)) ~client:1 ~inv:40 ~resp:50 "x";
    ]

let test_new_old_inversion_rejected () =
  rejects "new/old inversion across readers"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:100 "x" 2;
      r ~reply:(L.Value_is (Some 2)) ~client:1 ~inv:10 ~resp:20 "x";
      r ~reply:(L.Value_is None) ~client:2 ~inv:30 ~resp:40 "x";
    ]

let test_per_key_independence () =
  (* Disjoint keys are independent objects: a violation names its key, and
     clean keys do not mask it. *)
  accepts "cross-key overlap is unconstrained"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1;
      w ~reply:L.Acked ~client:1 ~inv:0 ~resp:10 "y" 2;
      r ~reply:(L.Value_is (Some 2)) ~client:2 ~inv:20 ~resp:30 "y";
      r ~reply:(L.Value_is (Some 1)) ~client:2 ~inv:40 ~resp:50 "x";
    ];
  rejects "violation names the broken key" ~affix:"key y:"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1;
      r ~reply:(L.Value_is (Some 1)) ~client:1 ~inv:20 ~resp:30 "x";
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "y" 2;
      r ~reply:(L.Value_is None) ~client:1 ~inv:20 ~resp:30 "y";
    ]

let test_snapshots () =
  accepts "snapshot sees the whole map"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1;
      w ~reply:L.Acked ~client:0 ~inv:20 ~resp:30 "y" 2;
      s ~reply:(L.State_is [ ("x", 1); ("y", 2) ]) ~client:1 ~inv:40 ~resp:50 ();
    ];
  rejects "snapshot missing an acked write" ~affix:"cannot be justified"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:10 "x" 1;
      w ~reply:L.Acked ~client:0 ~inv:20 ~resp:30 "y" 2;
      s ~reply:(L.State_is [ ("x", 1) ]) ~client:1 ~inv:40 ~resp:50 ();
    ];
  rejects "snapshot new/old inversion"
    [
      w ~reply:L.Acked ~client:0 ~inv:0 ~resp:100 "x" 1;
      s ~reply:(L.State_is [ ("x", 1) ]) ~client:1 ~inv:10 ~resp:20 ();
      s ~reply:(L.State_is []) ~client:2 ~inv:30 ~resp:40 ();
    ]

let test_budget () =
  (* Many concurrent pending writes explode the branch space; a tiny budget
     must surface as a budget error, not an accept/reject verdict. *)
  let history =
    List.init 12 (fun i -> w ~client:i ~inv:0 ~resp:max_int "x" i)
    @ [ r ~reply:(L.Value_is (Some 0)) ~client:20 ~inv:10 ~resp:20 "x" ]
  in
  match L.check ~max_states:3 history with
  | Error reason ->
      Alcotest.(check bool)
        (Printf.sprintf "reason %S names the budget" reason)
        true
        (String.length reason >= 6 && String.sub reason 0 6 = "search")
  | Ok () -> Alcotest.fail "expected a budget error"

let test_encode_roundtrip () =
  let events =
    [
      w ~reply:L.Acked ~client:3 ~inv:17 ~resp:23 "x0" 42;
      w ~client:1 ~inv:5 ~resp:max_int "k" 7;
      r ~reply:(L.Value_is (Some 9)) ~client:0 ~inv:1 ~resp:2 "x1";
      r ~reply:(L.Value_is None) ~client:0 ~inv:1 ~resp:2 "x1";
      r ~client:2 ~inv:8 ~resp:max_int "x2";
      s ~reply:(L.State_is [ ("a", 1); ("b", 2) ]) ~client:1 ~inv:3 ~resp:4 ();
      s ~reply:(L.State_is []) ~client:1 ~inv:3 ~resp:4 ();
      s ~client:1 ~inv:3 ~resp:max_int ();
    ]
  in
  List.iter
    (fun e ->
      match L.decode_event (L.encode_event e) with
      | Some e' ->
          Alcotest.(check string)
            "roundtrip preserves the event" (L.encode_event e) (L.encode_event e');
          Alcotest.(check bool) "decoded equals original" true (e = e')
      | None -> Alcotest.failf "roundtrip lost event %s" (L.encode_event e))
    events;
  Alcotest.(check bool) "garbage does not decode" true (L.decode_event "w not an event" = None)

let tests =
  [
    Alcotest.test_case "sequential histories accepted" `Quick test_sequential_accepted;
    Alcotest.test_case "overlap reordering accepted" `Quick test_overlap_reordering_accepted;
    Alcotest.test_case "pending writes branch" `Quick test_pending_writes_branch;
    Alcotest.test_case "stale read rejected" `Quick test_stale_read_rejected;
    Alcotest.test_case "new/old inversion rejected" `Quick test_new_old_inversion_rejected;
    Alcotest.test_case "per-key independence" `Quick test_per_key_independence;
    Alcotest.test_case "snapshot histories" `Quick test_snapshots;
    Alcotest.test_case "budget overrun is reported" `Quick test_budget;
    Alcotest.test_case "event encoding roundtrips" `Quick test_encode_roundtrip;
  ]
