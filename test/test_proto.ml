(* The whole-program proto tier: each fixture trips exactly its rule, the
   clean fixture is silent, the proto report round-trips through its
   reader (both the in-memory document and the committed
   PROTO_report.json), and the real tree is clean modulo the committed
   proto baseline. *)

module Finding = Dcp_lint.Finding
module Baseline = Dcp_lint.Baseline
module Report = Dcp_lint.Report
module Proto_report = Dcp_lint.Proto_report
module Proto_driver = Dcp_lint.Proto_driver

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_fixture name = read_file (Filename.concat "lint_fixtures" name)

(* Analyze a fixture set as one whole program rooted at fabricated lib
   paths. *)
let analyze names =
  let units = List.map (fun (path, fixture) -> (path, read_fixture fixture)) names in
  Proto_driver.analyze ~root:"." ~units ~baseline:(Baseline.empty ())

let rules_of findings = List.map (fun f -> f.Finding.rule) findings

let has ~rule ?token findings =
  List.exists
    (fun f ->
      String.equal f.Finding.rule rule
      && match token with None -> true | Some t -> String.equal f.Finding.token t)
    findings

let test_dead_letter () =
  let o = analyze [ ("lib/demo/proto_dead_letter.ml", "proto_dead_letter.ml") ] in
  Alcotest.(check bool)
    (Printf.sprintf "peer_vanished is a dead letter (got: %s)"
       (String.concat ", " (rules_of o.Proto_driver.active)))
    true
    (has ~rule:"proto-dead-letter" ~token:"peer_vanished" o.Proto_driver.active);
  Alcotest.(check bool) "the handled ping send is not" false
    (has ~rule:"proto-dead-letter" ~token:"ping" o.Proto_driver.findings);
  (* The graph still records the handled flow. *)
  Alcotest.(check bool) "flow edge present" true (o.Proto_driver.edges <> [])

let test_missing_reply () =
  let o = analyze [ ("lib/demo/proto_missing_reply.ml", "proto_missing_reply.ml") ] in
  Alcotest.(check bool)
    (Printf.sprintf "fetch miss path flagged (got: %s)"
       (String.concat ", " (rules_of o.Proto_driver.active)))
    true
    (has ~rule:"proto-reply-obligation" ~token:"fetch" o.Proto_driver.active)

let test_escape_helper () =
  let o = analyze [ ("lib/demo/proto_escape_helper.ml", "proto_escape_helper.ml") ] in
  Alcotest.(check bool)
    (Printf.sprintf "laundered Bytes payload flagged (got: %s)"
       (String.concat ", " (rules_of o.Proto_driver.active)))
    true
    (has ~rule:"proto-escape" o.Proto_driver.active)

let test_clean () =
  let o = analyze [ ("lib/demo/proto_clean.ml", "proto_clean.ml") ] in
  Alcotest.(check (list string)) "zero findings" []
    (List.map Finding.to_string o.Proto_driver.findings);
  Alcotest.(check (list string)) "zero warnings" []
    (List.map Finding.to_string o.Proto_driver.warnings)

let test_dot_export () =
  let o = analyze [ ("lib/demo/proto_clean.ml", "proto_clean.ml") ] in
  let dot = o.Proto_driver.dot in
  Alcotest.(check bool) "starts with digraph" true
    (String.length dot > 7 && String.equal (String.sub dot 0 7) "digraph");
  let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 dot in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check bool) "has an edge" true
    (let rec find i =
       i + 1 < String.length dot && (dot.[i] = '-' && dot.[i + 1] = '>' || find (i + 1))
     in
     find 0)

let test_report_roundtrip () =
  let o = analyze [ ("lib/demo/proto_missing_reply.ml", "proto_missing_reply.ml") ] in
  let parsed = Report.parse (Report.render o.Proto_driver.report) in
  Alcotest.(check bool) "render/parse round-trips" true (parsed = o.Proto_driver.report);
  (match Report.member "schema" parsed with
  | Some (Report.Str s) -> Alcotest.(check string) "schema" Proto_report.schema s
  | _ -> Alcotest.fail "schema member missing");
  match Report.member "summary" parsed with
  | Some summary -> (
      match Report.member "active" summary with
      | Some (Report.Num active) ->
          Alcotest.(check int) "active counted"
            (List.length o.Proto_driver.active)
            (int_of_float active)
      | _ -> Alcotest.fail "summary.active missing")
  | None -> Alcotest.fail "summary member missing"

(* Walk up from the build sandbox to the real checkout; the in-tree @lint
   alias enforces cleanliness anyway, so skip quietly when not found. *)
let find_repo_root () =
  let rec up dir depth =
    if depth > 8 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir ".git")
      && Sys.file_exists (Filename.concat dir "proto_baseline.txt")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

let test_tree_clean () =
  match find_repo_root () with
  | None -> ()  (* enforced by `dune build @lint` regardless *)
  | Some root ->
      let o =
        Proto_driver.run ~root ~baseline_path:(Filename.concat root "proto_baseline.txt") ()
      in
      Alcotest.(check (list string)) "no active findings (tree clean modulo baseline)" []
        (List.map Finding.to_string o.Proto_driver.active);
      Alcotest.(check (list string)) "no unbaselined warnings" []
        (List.map Finding.to_string o.Proto_driver.warnings);
      Alcotest.(check (list string)) "no stale proto baseline entries" []
        o.Proto_driver.stale_baseline;
      Alcotest.(check bool) "scanned a real number of units" true
        (o.Proto_driver.units_scanned > 50);
      Alcotest.(check bool) "flow graph is non-trivial" true
        (List.length o.Proto_driver.edges > 20)

let test_committed_report () =
  match find_repo_root () with
  | None -> ()
  | Some root -> (
      let doc = Report.parse (read_file (Filename.concat root "PROTO_report.json")) in
      (match Report.member "schema" doc with
      | Some (Report.Str s) -> Alcotest.(check string) "committed schema" Proto_report.schema s
      | _ -> Alcotest.fail "committed PROTO_report.json lacks a schema");
      match Report.member "summary" doc with
      | Some summary -> (
          match Report.member "active" summary with
          | Some (Report.Num n) ->
              Alcotest.(check int) "committed report shows a clean tree" 0 (int_of_float n)
          | _ -> Alcotest.fail "summary.active missing")
      | None -> Alcotest.fail "summary missing")

let tests =
  [
    Alcotest.test_case "dead-letter fixture" `Quick test_dead_letter;
    Alcotest.test_case "missing-reply fixture" `Quick test_missing_reply;
    Alcotest.test_case "escape-through-helper fixture" `Quick test_escape_helper;
    Alcotest.test_case "clean fixture" `Quick test_clean;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "proto report round-trip" `Quick test_report_roundtrip;
    Alcotest.test_case "tree clean modulo proto baseline" `Quick test_tree_clean;
    Alcotest.test_case "committed PROTO_report.json parses" `Quick test_committed_report;
  ]
