(* Atomic registers and snapshot objects over SCD-broadcast: directed
   end-to-end tests (barriered reads, crash durability, at-most-once
   request records, table convergence) plus the harness self-test — the
   register_mutated scenario must be caught by the linearizability oracle
   and shrink to a small counterexample, mirroring bank_mutated. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Register = Dcp_primitives.Register
module Snapshot = Dcp_primitives.Snapshot
module Scd = Dcp_primitives.Scd
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock
module Metrics = Dcp_sim.Metrics
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link
module Store = Dcp_stable.Store
module Check = Dcp_check
module Scenario = Dcp_check.Scenario
module Scenarios = Dcp_check.Scenarios

let members = 3

let make_world ?(seed = 91) () =
  Runtime.create_world ~seed ~topology:(Topology.full_mesh ~n:(members + 1) Link.lan) ()

let driver =
  let i = ref 0 in
  fun world ~at body ->
    incr i;
    let name = Printf.sprintf "register_driver_%d" !i in
    let def =
      { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
    in
    Runtime.register_def world def;
    ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

let make_group ?(stale_reads = false) world =
  Array.of_list
    (Register.create_group world ~nodes:(List.init members Fun.id) ~stale_reads
       ~introduce_at:members ())

let timeout = Clock.s 2

let test_write_then_read_cross_member () =
  let world = make_world () in
  let ports = make_group world in
  let observed = ref None in
  driver world ~at:members (fun ctx ->
      Runtime.sleep ctx (Clock.ms 300);
      let wrote =
        Register.write ctx ~register:ports.(0) ~key:"a" ~value:(Value.int 7) ~timeout
      in
      Alcotest.(check bool) "write acknowledged" true wrote;
      (* The ack implies delivery group-wide order; a barriered read at
         another member must observe it. *)
      observed := Register.read ctx ~register:ports.(2) ~key:"a" ~timeout);
  Runtime.run_for world (Clock.s 20);
  Alcotest.(check (option string))
    "cross-member read sees the acked write" (Some "7")
    (Option.map Value.to_string !observed)

let test_unknown_key () =
  let world = make_world () in
  let ports = make_group world in
  let observed = ref (Some (Value.int 0)) in
  driver world ~at:members (fun ctx ->
      Runtime.sleep ctx (Clock.ms 300);
      observed := Register.read ctx ~register:ports.(1) ~key:"never-written" ~timeout);
  Runtime.run_for world (Clock.s 20);
  Alcotest.(check bool) "unknown key reads as absent" true (!observed = None)

let test_last_writer_wins_and_convergence () =
  let world = make_world () in
  let ports = make_group world in
  let final = ref None in
  driver world ~at:members (fun ctx ->
      Runtime.sleep ctx (Clock.ms 300);
      (* Writes through different members; delivery order decides. *)
      ignore (Register.write ctx ~register:ports.(0) ~key:"k" ~value:(Value.int 1) ~timeout);
      ignore (Register.write ctx ~register:ports.(1) ~key:"k" ~value:(Value.int 2) ~timeout);
      ignore (Register.write ctx ~register:ports.(2) ~key:"k" ~value:(Value.int 3) ~timeout);
      final := Register.read ctx ~register:ports.(0) ~key:"k" ~timeout);
  Runtime.run_for world (Clock.s 20);
  Alcotest.(check (option string))
    "sequential writes end on the last value" (Some "3")
    (Option.map Value.to_string !final);
  (* Every member's durable table must agree exactly. *)
  let tables =
    Runtime.find_guardians world ~def_name:Register.def_name
    |> List.map (fun g -> Register.Table.in_store (Runtime.guardian_store g))
  in
  Alcotest.(check int) "all members inspected" members (List.length tables);
  match tables with
  | [] -> Alcotest.fail "no member tables"
  | first :: rest ->
      List.iter
        (fun other ->
          Alcotest.(check bool) "durable tables identical" true (first = other))
        rest

let test_crash_recovery_durability () =
  let world = make_world () in
  let ports = make_group world in
  let reread = ref None in
  driver world ~at:members (fun ctx ->
      Runtime.sleep ctx (Clock.ms 300);
      ignore (Register.write ctx ~register:ports.(1) ~key:"d" ~value:(Value.int 11) ~timeout));
  Runtime.run_for world (Clock.s 5);
  (* Kill every member node; recovery must rebuild clock, frontier and
     table from the stores alone. *)
  for node = 0 to members - 1 do
    Runtime.crash_node world node
  done;
  Runtime.run_for world (Clock.ms 100);
  for node = 0 to members - 1 do
    Runtime.restart_node world node
  done;
  driver world ~at:members (fun ctx ->
      Runtime.sleep ctx (Clock.ms 500);
      reread := Register.read ctx ~register:ports.(0) ~key:"d" ~timeout);
  Runtime.run_for world (Clock.s 20);
  Alcotest.(check (option string))
    "write survives a full-group crash" (Some "11")
    (Option.map Value.to_string !reread)

let test_duplicate_rid_not_reexecuted () =
  let world = make_world () in
  let ports = make_group world in
  let replies = ref [] in
  let ts_after_first = ref [] in
  let ts_after_dup = ref [] in
  let member_tables () =
    Runtime.find_guardians world ~def_name:Register.def_name
    |> List.map (fun g -> Register.Table.in_store (Runtime.guardian_store g))
  in
  driver world ~at:members (fun ctx ->
      Runtime.sleep ctx (Clock.ms 300);
      let call () =
        match
          Rpc.call ctx ~to_:ports.(0) ~timeout ~attempts:1 ~request_id:4_200_000_001 "write"
            [ Value.str "r"; Value.int 5 ]
        with
        | Rpc.Reply (cmd, _) -> replies := cmd :: !replies
        | Rpc.Failure_msg _ | Rpc.Timeout -> replies := "timeout" :: !replies
      in
      call ();
      ts_after_first := member_tables ();
      (* A client retry of the same request id must get the recorded reply
         back without a second broadcast — a fresh timestamp here is the
         double-apply that breaks atomicity. *)
      call ();
      Runtime.sleep ctx (Clock.s 2);
      ts_after_dup := member_tables ());
  Runtime.run_for world (Clock.s 20);
  Alcotest.(check (list string)) "both calls acknowledged" [ "written"; "written" ] !replies;
  Alcotest.(check bool) "duplicate left every timestamp unchanged" true
    (!ts_after_first = !ts_after_dup)

let test_snapshot_atomic_view () =
  let world = make_world () in
  let ports =
    Array.of_list
      (Snapshot.create_group world ~nodes:(List.init members Fun.id) ~introduce_at:members ())
  in
  let view = ref None in
  driver world ~at:members (fun ctx ->
      Runtime.sleep ctx (Clock.ms 300);
      ignore (Snapshot.update ctx ~snapshot:ports.(0) ~key:"x" ~value:(Value.int 1) ~timeout);
      ignore (Snapshot.update ctx ~snapshot:ports.(1) ~key:"y" ~value:(Value.int 2) ~timeout);
      view := Snapshot.scan ctx ~snapshot:ports.(2) ~timeout);
  Runtime.run_for world (Clock.s 20);
  match !view with
  | None -> Alcotest.fail "snapshot timed out"
  | Some entries ->
      Alcotest.(check (list (pair string string)))
        "scan sees both updates, key-sorted"
        [ ("x", "1"); ("y", "2") ]
        (List.map (fun (k, v) -> (k, Value.to_string v)) entries)

(* ---- the harness self-test, mirroring test_check's bank_mutated ---- *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let profile name =
  match Check.Profile.find name with
  | Some p -> p
  | None -> Alcotest.failf "unknown profile %s" name

let test_register_mutation_detected () =
  let outcome =
    Scenario.execute Scenarios.register_mutated ~seed:1 ~profile:(profile "lan") ()
  in
  match Scenario.fail_reason outcome with
  | None -> Alcotest.fail "barrier-free register passed the oracles: the checker is blind"
  | Some reason ->
      Alcotest.(check bool)
        "failure implicates the linearizability oracle" true
        (contains ~affix:"linearizable" reason)

let test_register_honest_twin_passes () =
  let outcome = Scenario.execute Scenarios.register ~seed:1 ~profile:(profile "lan") () in
  match Scenario.fail_reason outcome with
  | None -> ()
  | Some reason -> Alcotest.failf "honest register scenario failed: %s" reason

let test_register_mutation_shrinks () =
  match
    Check.Shrink.run Scenarios.register_mutated ~seed:1 ~profile:(profile "lan") ~budget:60 ()
  with
  | Error e -> Alcotest.failf "nothing to shrink: %s" e
  | Ok cx ->
      Alcotest.(check bool) "some shrink step accepted" true (cx.Check.Shrink.accepted > 0);
      Alcotest.(check bool) "workload minimised" true (cx.Check.Shrink.workload <= 24);
      let replay =
        Scenario.execute Scenarios.register_mutated ~seed:cx.Check.Shrink.seed
          ~profile:(profile cx.Check.Shrink.profile)
          ~horizon:cx.Check.Shrink.horizon ~workload:cx.Check.Shrink.workload
          ~intensity:cx.Check.Shrink.intensity ()
      in
      (match Scenario.fail_reason replay with
      | Some _ -> ()
      | None -> Alcotest.fail "shrunk counterexample does not reproduce");
      Alcotest.(check bool)
        "replay hint names the scenario" true
        (contains ~affix:"register_mutated" (Check.Shrink.replay_hint cx))

let tests =
  [
    Alcotest.test_case "write then cross-member read" `Quick test_write_then_read_cross_member;
    Alcotest.test_case "unknown key" `Quick test_unknown_key;
    Alcotest.test_case "last writer wins; tables converge" `Quick
      test_last_writer_wins_and_convergence;
    Alcotest.test_case "writes survive a full-group crash" `Quick test_crash_recovery_durability;
    Alcotest.test_case "duplicate request id is not re-executed" `Quick
      test_duplicate_rid_not_reexecuted;
    Alcotest.test_case "snapshot returns an atomic view" `Quick test_snapshot_atomic_view;
    Alcotest.test_case "barrier-free register is detected" `Slow test_register_mutation_detected;
    Alcotest.test_case "honest register twin passes" `Slow test_register_honest_twin_passes;
    Alcotest.test_case "register mutation shrinks" `Slow test_register_mutation_shrinks;
  ]
