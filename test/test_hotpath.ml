(* Regression tests for the hot-path overhaul: per-attempt RPC deadlines,
   stable port indices, bounded waiter lists, link composition algebra,
   Hashtbl-backed metrics/guardian registries and the O(1) engine pending
   count. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine
module Metrics = Dcp_sim.Metrics
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let make_world ?(link = Link.perfect) () =
  Runtime.create_world ~seed:23 ~topology:(Topology.full_mesh ~n:2 link) ()

let driver world ~at body =
  let name = Printf.sprintf "driver%d" (Hashtbl.hash body) in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* ---- Rpc.call: stale replies must not extend the per-attempt deadline ---- *)

let test_rpc_stale_flood_deadline () =
  let world = make_world () in
  (* The server never answers the request; instead it floods the caller's
     reply port with responses to a *different* request id, one every 150ms
     for 3s.  With the timeout restarted per message the call would stretch
     to ~4s; with a per-attempt deadline it times out at exactly 1s. *)
  let flood_def =
    {
      Runtime.def_name = "staler";
      provides = [ ([ Vtype.wildcard ], 64) ];
      init =
        (fun ctx _ ->
          let rec loop () =
            (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
            | `Timeout -> ()
            | `Msg (_, msg) -> (
                match (msg.Message.args, msg.Message.reply_to) with
                | Value.Int id :: _, Some reply ->
                    ignore
                      (Runtime.spawn ctx ~name:"flood" (fun () ->
                           for _ = 1 to 20 do
                             Runtime.sleep ctx (Clock.ms 150);
                             Runtime.send ctx ~to_:reply "done" [ Value.int (id + 1000) ]
                           done))
                | _ -> ()));
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world flood_def;
  let server = Runtime.create_guardian world ~at:1 ~def_name:"staler" ~args:[] in
  let server_port = List.hd (Runtime.guardian_ports server) in
  let outcome = ref None in
  let elapsed = ref Clock.zero in
  driver world ~at:0 (fun ctx ->
      let t0 = Runtime.ctx_now ctx in
      let r = Rpc.call ctx ~to_:server_port ~timeout:(Clock.s 1) ~attempts:1 "work" [] in
      elapsed := Clock.diff (Runtime.ctx_now ctx) t0;
      outcome := Some r);
  Runtime.run_for world (Clock.s 10);
  (match !outcome with
  | Some Rpc.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout despite the stale-reply flood");
  Alcotest.(check bool)
    (Format.asprintf "attempt bounded by its deadline (took %a)" Clock.pp !elapsed)
    true
    (Clock.compare !elapsed (Clock.ms 1100) <= 0)

(* ---- dedup: bounded cache evicts oldest, O(1) per insert ---- *)

let test_rpc_dedup_eviction_order () =
  let world = make_world () in
  let executions = ref 0 in
  let dedup = Rpc.dedup ~capacity:2 () in
  let server_def =
    {
      Runtime.def_name = "tiny_cache";
      provides = [ ([ Vtype.wildcard ], 64) ];
      init =
        (fun ctx _ ->
          let rec loop () =
            (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
            | `Timeout -> ()
            | `Msg (_, msg) ->
                Rpc.serve ctx ~dedup msg ~f:(fun _ _ ->
                    incr executions;
                    ("done", [])));
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world server_def;
  let server = Runtime.create_guardian world ~at:1 ~def_name:"tiny_cache" ~args:[] in
  let server_port = List.hd (Runtime.guardian_ports server) in
  driver world ~at:0 (fun ctx ->
      let call id = ignore (Rpc.call ctx ~to_:server_port ~request_id:id "work" []) in
      call 1;
      call 2;
      call 3;
      (* capacity 2: inserting id 3 evicted id 1 ... *)
      call 1;
      (* ... so id 1 re-executes; id 3 is still cached and must not. *)
      call 3);
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check int) "1,2,3 executed, replay of 1 re-executed, 3 cached" 4 !executions

(* ---- port indices: minted monotonically, stable across removal ---- *)

let test_port_index_stable_after_removal () =
  let world = make_world () in
  let indices = ref [] in
  let lookup_ok = ref false in
  driver world ~at:0 (fun ctx ->
      let p1 = Runtime.new_port ctx [ Vtype.wildcard ] in
      let p2 = Runtime.new_port ctx [ Vtype.wildcard ] in
      Runtime.remove_port ctx p1;
      let p3 = Runtime.new_port ctx [ Vtype.wildcard ] in
      let idx p = (Port.name p).Port_name.index in
      indices := [ idx p1; idx p2; idx p3 ];
      (* positional lookup resolves by minted index, not list position *)
      lookup_ok :=
        Port_name.equal (Port.name (Runtime.port ctx (idx p2))) (Port.name p2)
        && Port_name.equal (Port.name (Runtime.port ctx (idx p3))) (Port.name p3));
  Runtime.run_for world (Clock.s 1);
  (match !indices with
  | [ 0; 1; 2 ] -> ()
  | l ->
      Alcotest.failf "expected indices [0;1;2], got [%s]"
        (String.concat ";" (List.map string_of_int l)));
  Alcotest.(check bool) "Runtime.port finds ports by their index" true !lookup_ok

(* ---- receive: waiters deregister from every port on timeout/resume ---- *)

let test_waiter_lists_bounded_under_timeouts () =
  let world = make_world () in
  let ports = ref None in
  let got_late = ref false in
  let listener_def =
    {
      Runtime.def_name = "listener";
      provides = [ ([ Vtype.wildcard ], 64); ([ Vtype.wildcard ], 64) ];
      init =
        (fun ctx _ ->
          let a = Runtime.port ctx 0 and b = Runtime.port ctx 1 in
          ports := Some (a, b);
          (* a heartbeat-style loop: 50 timed-out receives over both ports *)
          for _ = 1 to 50 do
            match Runtime.receive ctx ~timeout:(Clock.ms 1) [ a; b ] with
            | `Timeout -> ()
            | `Msg _ -> ()
          done;
          (* then block on both; a message on [b] must also clear [a] *)
          match Runtime.receive ctx ~timeout:(Clock.s 5) [ a; b ] with
          | `Msg (p, _) when Port_name.equal (Port.name p) (Port.name b) -> got_late := true
          | `Msg _ | `Timeout -> ());
      recover = None;
    }
  in
  Runtime.register_def world listener_def;
  let listener = Runtime.create_guardian world ~at:0 ~def_name:"listener" ~args:[] in
  let port_b = List.nth (Runtime.guardian_ports listener) 1 in
  Runtime.run_for world (Clock.ms 500);
  let a, b = Option.get !ports in
  (* 50 timed-out receives left nothing behind; only the final blocking
     receive is registered, once per port (pre-fix: 51 dead entries each). *)
  Alcotest.(check int) "a holds just the live waiter" 1 (Port.waiter_count a);
  Alcotest.(check int) "b holds just the live waiter" 1 (Port.waiter_count b);
  driver world ~at:0 (fun ctx -> Runtime.send ctx ~to_:port_b "wake" []);
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check bool) "late message delivered via b" true !got_late;
  Alcotest.(check int) "resuming via b cleared a's waiter" 0 (Port.waiter_count a);
  Alcotest.(check int) "b's waiter consumed by delivery" 0 (Port.waiter_count b)

(* ---- link composition: duplicate composes like loss/corrupt ---- *)

let test_link_compose_duplicate () =
  let a = { Link.perfect with Link.loss = 0.1; duplicate = 0.1; corrupt = 0.2 } in
  let b = { Link.perfect with Link.loss = 0.1; duplicate = 0.1; corrupt = 0.2 } in
  let c = Link.compose a b in
  let close expect got name = Alcotest.(check (float 1e-9)) name expect got in
  close 0.19 c.Link.loss "loss = 1-(1-a)(1-b)";
  close 0.19 c.Link.duplicate "duplicate = 1-(1-a)(1-b)";
  close 0.36 c.Link.corrupt "corrupt = 1-(1-a)(1-b)";
  (* identity and symmetry *)
  let id = Link.compose a Link.perfect in
  close a.Link.duplicate id.Link.duplicate "perfect is identity for duplicate";
  let cba = Link.compose b a in
  close c.Link.duplicate cba.Link.duplicate "composition is symmetric"

(* ---- metrics registry: O(1) get-or-create at 1k+ distinct names ---- *)

let test_metrics_registry_many_names () =
  let r = Metrics.registry () in
  let n = 1500 in
  for i = 0 to n - 1 do
    let c = Metrics.counter r (Printf.sprintf "c.%d" i) in
    for _ = 0 to i mod 7 do
      Metrics.incr c
    done
  done;
  (* get-or-create must return the same instrument, not a fresh one *)
  Metrics.add (Metrics.counter r "c.42") 100;
  Alcotest.(check int) "same counter instance" (100 + 1 + (42 mod 7))
    (Metrics.count (Metrics.counter r "c.42"));
  let listed = Metrics.counters r in
  Alcotest.(check int) "all names listed" n (List.length listed);
  (* reports preserve creation order *)
  Alcotest.(check string) "first created listed first" "c.0" (fst (List.hd listed));
  Alcotest.(check string) "last created listed last" (Printf.sprintf "c.%d" (n - 1))
    (fst (List.nth listed (n - 1)));
  List.iteri
    (fun i (name, v) ->
      if name = Printf.sprintf "c.%d" i then begin
        let expect = 1 + (i mod 7) + if i = 42 then 100 else 0 in
        if v <> expect then Alcotest.failf "counter %s: expected %d, got %d" name expect v
      end
      else Alcotest.failf "creation order broken at %d: %s" i name)
    listed;
  (* histograms share the registry without clashing with counters *)
  for i = 0 to 99 do
    Metrics.observe (Metrics.histogram r (Printf.sprintf "h.%d" i)) (float_of_int i)
  done;
  Alcotest.(check int) "histograms listed" 100 (List.length (Metrics.histograms r));
  Alcotest.(check int) "histogram samples" 1
    (Metrics.samples (Metrics.histogram r "h.7"))

(* ---- engine: pending is exact (and O(1)) through cancel/fire ---- *)

let test_engine_pending_exact () =
  let e = Engine.create () in
  let timers = List.init 100 (fun i -> Engine.schedule_after e ~delay:(Clock.ms i) (fun () -> ())) in
  Alcotest.(check int) "all scheduled" 100 (Engine.pending e);
  List.iteri (fun i t -> if i mod 2 = 0 then Engine.cancel t) timers;
  Alcotest.(check int) "half cancelled" 50 (Engine.pending e);
  (* double cancel must not double-decrement *)
  List.iteri (fun i t -> if i mod 2 = 0 then Engine.cancel t) timers;
  Alcotest.(check int) "re-cancel is a no-op" 50 (Engine.pending e);
  ignore (Engine.step e);
  Alcotest.(check int) "one fired" 49 (Engine.pending e);
  (* cancelling an already-fired timer must not decrement *)
  List.iter Engine.cancel timers;
  Alcotest.(check int) "cancel after fire is a no-op" 0 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

(* ---- guardian lookup: def-name index returns creation order ---- *)

let test_find_guardians_creation_order () =
  let world = make_world () in
  let def =
    { Runtime.def_name = "indexed"; provides = []; init = (fun _ _ -> ()); recover = None }
  in
  Runtime.register_def world def;
  let made =
    List.init 5 (fun i ->
        Runtime.guardian_id
          (Runtime.create_guardian world ~at:(i mod 2) ~def_name:"indexed" ~args:[]))
  in
  let found = List.map Runtime.guardian_id (Runtime.find_guardians world ~def_name:"indexed") in
  Alcotest.(check (list int)) "creation order, across nodes" made found;
  Alcotest.(check (list int)) "unknown def -> []" []
    (List.map Runtime.guardian_id (Runtime.find_guardians world ~def_name:"nope"))

let tests =
  [
    Alcotest.test_case "rpc stale flood bounded by deadline" `Quick test_rpc_stale_flood_deadline;
    Alcotest.test_case "rpc dedup evicts oldest O(1)" `Quick test_rpc_dedup_eviction_order;
    Alcotest.test_case "port index stable after removal" `Quick test_port_index_stable_after_removal;
    Alcotest.test_case "waiter lists bounded" `Quick test_waiter_lists_bounded_under_timeouts;
    Alcotest.test_case "link compose duplicate" `Quick test_link_compose_duplicate;
    Alcotest.test_case "metrics registry 1.5k names" `Quick test_metrics_registry_many_names;
    Alcotest.test_case "engine pending exact" `Quick test_engine_pending_exact;
    Alcotest.test_case "find_guardians indexed" `Quick test_find_guardians_creation_order;
  ]
