(* Chaos suites: randomized fault injection with global invariants.

   These are now thin drivers over the Dcp_check scenario library — the
   crash scheduler lives in Dcp_check.Chaos, the invariants in
   Dcp_check.Oracle, and each (scenario, seed, profile) triple here is a
   fixed, replayable point from the same space `dcp_check sweep` explores:

     dune exec bin/dcp_check.exe -- run --scenario bank --seed 1003 --profile lan+crash *)

module Check = Dcp_check
module Scenario = Dcp_check.Scenario
module Scenarios = Dcp_check.Scenarios

let profile name =
  match Check.Profile.find name with
  | Some p -> p
  | None -> Alcotest.failf "unknown profile %s" name

(* Run one fixed point and require a Pass plus real forward progress: an
   execution where every request timed out satisfies most invariants
   vacuously, so the stat floor is part of the assertion. *)
let check_point scenario ~seed ~profile:pname ~stat ~at_least =
  let outcome = Scenario.execute scenario ~seed ~profile:(profile pname) () in
  (match Scenario.fail_reason outcome with
  | None -> ()
  | Some reason ->
      Alcotest.failf "%s seed=%d profile=%s: %s (replay: dune exec bin/dcp_check.exe -- run --scenario %s --seed %d --profile %s)"
        scenario.Scenario.name seed pname reason scenario.Scenario.name seed pname);
  let progress = Scenario.stat outcome stat in
  Alcotest.(check bool)
    (Printf.sprintf "made progress (%s=%d, need >%d)" stat progress at_least)
    true (progress > at_least)

let test_airline_chaos () =
  check_point Scenarios.airline ~seed:1001 ~profile:"lan+crash" ~stat:"requests_ok" ~at_least:50

let test_bank_chaos () =
  check_point Scenarios.bank ~seed:1003 ~profile:"lan+crash" ~stat:"transfers_ok" ~at_least:10

let test_itinerary_chaos () =
  check_point Scenarios.itinerary ~seed:1005 ~profile:"lan+crash" ~stat:"booked" ~at_least:0

(* The lossy end of the matrix: loss, duplication and corruption on top of
   crash churn.  One fixed seed per scenario keeps runtest bounded; the
   sweep covers breadth. *)
let test_bank_lossy () =
  check_point Scenarios.bank ~seed:7 ~profile:"lossy+crash" ~stat:"transfers_ok" ~at_least:5

let test_itinerary_lossy () =
  check_point Scenarios.itinerary ~seed:26 ~profile:"lossy+crash" ~stat:"outcomes" ~at_least:0

(* Replica anti-entropy: the convergence + byte-budget oracles at two fixed
   points on the loss matrix, including the harshest profile (wan latency,
   5% loss, crash churn).  The "keys" floor rejects vacuous convergence on
   empty tables. *)
let test_replica_wan_lossy_crash () =
  check_point Scenarios.replica ~seed:11 ~profile:"wan+lossy+crash" ~stat:"keys" ~at_least:100

let test_replica_lossy () =
  check_point Scenarios.replica ~seed:23 ~profile:"lossy+crash" ~stat:"keys" ~at_least:100

(* SCD registers and snapshots at the harsh end of the matrix: the
   linearizability and table-convergence oracles under wan latency, 5%
   loss and crash churn.  The ops_ok floors reject runs where every client
   call timed out and the history checks vacuously. *)
let test_register_wan_lossy_crash () =
  check_point Scenarios.register ~seed:3 ~profile:"wan+lossy+crash" ~stat:"ops_ok" ~at_least:20

let test_register_lossy () =
  check_point Scenarios.register ~seed:14 ~profile:"lossy+crash" ~stat:"ops_ok" ~at_least:20

let test_snapshot_wan_lossy_crash () =
  check_point Scenarios.snapshot ~seed:2 ~profile:"wan+lossy+crash" ~stat:"ops_ok" ~at_least:8

(* The disk axis of the matrix: flaky disks (bit rot, torn writes, dropped
   un-flushed tails, stalls) under a crash schedule whose outage exceeds
   its period, so up to two nodes are down at once and recovery from disk
   damage runs while a peer is still dark.  Each pinned point must pass its
   oracles AND show that the disk plane actually bit (salvage, quarantine,
   checkpoint fallback or dropped tail) — a damage-free run would pass
   vacuously. *)
let damage outcome =
  Scenario.stat outcome "stable_salvaged"
  + Scenario.stat outcome "stable_quarantined"
  + Scenario.stat outcome "stable_ckpt_fallbacks"
  + Scenario.stat outcome "stable_dropped_unflushed"

let check_disk_point scenario ~seed ~profile:p ~pname ~stat ~at_least =
  let outcome = Scenario.execute scenario ~seed ~profile:p () in
  (match Scenario.fail_reason outcome with
  | None -> ()
  | Some reason ->
      Alcotest.failf "%s seed=%d profile=%s: %s" scenario.Scenario.name seed pname reason);
  let progress = Scenario.stat outcome stat in
  Alcotest.(check bool)
    (Printf.sprintf "made progress (%s=%d, need >%d)" stat progress at_least)
    true (progress > at_least);
  Alcotest.(check bool) "disk plane did damage" true (damage outcome > 0)

let check_disk_named scenario ~seed ~profile:pname ~stat ~at_least =
  check_disk_point scenario ~seed ~profile:(profile pname) ~pname ~stat ~at_least

let test_bank_disk () =
  check_disk_named Scenarios.bank ~seed:1001 ~profile:"lan+crash+disk" ~stat:"transfers_ok"
    ~at_least:10

let test_itinerary_disk () =
  check_disk_named Scenarios.itinerary ~seed:1005 ~profile:"wan+lossy+crash+disk" ~stat:"booked"
    ~at_least:0

let test_replica_disk () =
  check_disk_named Scenarios.replica ~seed:1001 ~profile:"wan+lossy+crash+disk" ~stat:"keys"
    ~at_least:100

let test_register_disk () =
  check_disk_named Scenarios.register ~seed:1001 ~profile:"wan+lossy+crash+disk" ~stat:"ops_ok"
    ~at_least:20

let test_snapshot_disk () =
  check_disk_named Scenarios.snapshot ~seed:1003 ~profile:"wan+lossy+crash+disk" ~stat:"ops_ok"
    ~at_least:8

let test_airline_disk () =
  check_disk_named Scenarios.airline ~seed:1001 ~profile:"lan+crash+disk" ~stat:"requests_ok"
    ~at_least:50

(* Quarantine recovery: the hostile spec destroys both copies of a rotted
   record (sector_p = 1, no mirror to salvage from), so recovery must drop
   it and keep going — anti-entropy then re-fetches the lost key from the
   peers, and convergence plus the durability oracle still hold.  This
   seed quarantines several records (stable_quarantined > 0 is asserted
   via the damage floor; salvage is impossible under hostile). *)
let test_replica_hostile_quarantine () =
  let base = profile "wan+lossy+crash+disk" in
  let hostile =
    { base with Check.Profile.disk = Some Dcp_stable.Disk.hostile }
  in
  check_disk_point Scenarios.replica ~seed:1002 ~profile:hostile
    ~pname:"wan+lossy+crash+disk(hostile)" ~stat:"keys" ~at_least:100

let tests =
  [
    Alcotest.test_case "airline invariants under churn" `Slow test_airline_chaos;
    Alcotest.test_case "bank conservation under churn" `Slow test_bank_chaos;
    Alcotest.test_case "itinerary atomicity under churn" `Slow test_itinerary_chaos;
    Alcotest.test_case "bank under lossy links" `Slow test_bank_lossy;
    Alcotest.test_case "itinerary under lossy links (regression seed)" `Slow test_itinerary_lossy;
    Alcotest.test_case "replica convergence under wan+lossy+crash" `Slow
      test_replica_wan_lossy_crash;
    Alcotest.test_case "replica convergence under lossy+crash" `Slow test_replica_lossy;
    Alcotest.test_case "register linearizable under wan+lossy+crash" `Slow
      test_register_wan_lossy_crash;
    Alcotest.test_case "register linearizable under lossy+crash" `Slow test_register_lossy;
    Alcotest.test_case "snapshot views under wan+lossy+crash" `Slow
      test_snapshot_wan_lossy_crash;
    Alcotest.test_case "bank under flaky disks + overlapping crashes" `Slow test_bank_disk;
    Alcotest.test_case "itinerary under flaky disks + overlapping crashes" `Slow
      test_itinerary_disk;
    Alcotest.test_case "replica under flaky disks + overlapping crashes" `Slow
      test_replica_disk;
    Alcotest.test_case "register under flaky disks + overlapping crashes" `Slow
      test_register_disk;
    Alcotest.test_case "snapshot under flaky disks + overlapping crashes" `Slow
      test_snapshot_disk;
    Alcotest.test_case "airline under flaky disks + overlapping crashes" `Slow
      test_airline_disk;
    Alcotest.test_case "replica quarantine recovery under hostile disks (regression seed)"
      `Slow test_replica_hostile_quarantine;
  ]
