(* The dcp_lint pass: every rule fires on its minimal bad fixture, the
   sorted sibling stays quiet, baselines and the JSON report round-trip,
   and the real tree is clean modulo the committed baseline. *)

module Finding = Dcp_lint.Finding
module Layers = Dcp_lint.Layers
module Scan = Dcp_lint.Scan
module Baseline = Dcp_lint.Baseline
module Report = Dcp_lint.Report
module Driver = Dcp_lint.Driver

let read_fixture name =
  let path = Filename.concat "lint_fixtures" name in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Scan a fixture as if it lived at [path] inside the tree, so the layer
   rules see the right context. *)
let scan_fixture ~as_path name = Scan.file ~path:as_path ~source:(read_fixture name)

let rules_of findings = List.map (fun f -> f.Finding.rule) findings

let check_fires name ~as_path ~rule () =
  let findings = scan_fixture ~as_path name in
  Alcotest.(check bool)
    (Printf.sprintf "%s fires %s (got: %s)" name rule (String.concat ", " (rules_of findings)))
    true
    (List.exists (fun f -> String.equal f.Finding.rule rule) findings)

let test_guardian_isolation () =
  check_fires "bad_isolation.ml" ~as_path:"lib/airline/bad_isolation.ml"
    ~rule:"guardian-isolation" ()

let test_layer_dag () =
  check_fires "bad_layer.ml" ~as_path:"lib/wire/bad_layer.ml" ~rule:"layer-dag" ();
  (* The same reference from bin/ is fine: executables sit above every layer. *)
  let findings = scan_fixture ~as_path:"bin/bad_layer.ml" "bad_layer.ml" in
  Alcotest.(check (list string)) "bin may reference any layer" [] (rules_of findings)

let test_wall_clock () =
  let findings = scan_fixture ~as_path:"lib/check/bad_wall_clock.ml" "bad_wall_clock.ml" in
  let wall = List.filter (fun f -> String.equal f.Finding.rule "wall-clock") findings in
  Alcotest.(check int) "gettimeofday and self_init both fire" 2 (List.length wall)

let test_wall_clock_alias () =
  let findings =
    scan_fixture ~as_path:"lib/check/bad_wall_clock_alias.ml" "bad_wall_clock_alias.ml"
  in
  let wall = List.filter (fun f -> String.equal f.Finding.rule "wall-clock") findings in
  Alcotest.(check int) "aliased, alias-of-alias and let-module calls all fire" 3
    (List.length wall)

let test_hashtbl_order () =
  let findings = scan_fixture ~as_path:"lib/core/bad_hashtbl_order.ml" "bad_hashtbl_order.ml" in
  let hits = List.filter (fun f -> String.equal f.Finding.rule "hashtbl-order") findings in
  Alcotest.(check int) "unsorted fold fires, sorted fold does not" 1 (List.length hits);
  let hit = List.hd hits in
  Alcotest.(check string) "context is the enclosing binding" "dump" hit.Finding.context;
  Alcotest.(check string) "token is the callee" "Hashtbl.fold" hit.Finding.token

let test_poly_compare () =
  let findings = scan_fixture ~as_path:"lib/core/bad_poly_compare.ml" "bad_poly_compare.ml" in
  let hits = List.filter (fun f -> String.equal f.Finding.rule "poly-compare") findings in
  Alcotest.(check int) "port-name = and Hashtbl.hash both fire" 2 (List.length hits)

let test_obj_magic () =
  check_fires "bad_obj_magic.ml" ~as_path:"lib/wire/bad_obj_magic.ml" ~rule:"obj-magic" ()

let test_domain_primitives () =
  let findings =
    scan_fixture ~as_path:"lib/core/bad_domain_primitives.ml" "bad_domain_primitives.ml"
  in
  let hits = List.filter (fun f -> String.equal f.Finding.rule "domain-primitives") findings in
  Alcotest.(check bool)
    (Printf.sprintf "Mutex/Atomic/Domain/Condition all fire (got %d)" (List.length hits))
    true
    (List.length hits >= 4);
  (* The shard runtime itself is the one sanctioned home for these. *)
  let exempt = scan_fixture ~as_path:"lib/sim/exec.ml" "bad_domain_primitives.ml" in
  Alcotest.(check (list string))
    "lib/sim/exec.ml is exempt" []
    (rules_of (List.filter (fun f -> String.equal f.Finding.rule "domain-primitives") exempt))

let test_disk_faults () =
  let findings = scan_fixture ~as_path:"lib/check/bad_disk_faults.ml" "bad_disk_faults.ml" in
  let hits = List.filter (fun f -> String.equal f.Finding.rule "disk-faults") findings in
  Alcotest.(check int) "bare and qualified Disk.create both fire" 2 (List.length hits);
  (* The stable layer itself is the one sanctioned home for injector
     construction. *)
  let exempt = scan_fixture ~as_path:"lib/stable/store.ml" "bad_disk_faults.ml" in
  Alcotest.(check (list string))
    "lib/stable is exempt" []
    (rules_of (List.filter (fun f -> String.equal f.Finding.rule "disk-faults") exempt))

let test_mutable_payload () =
  let findings =
    scan_fixture ~as_path:"lib/office/bad_mutable_payload.ml" "bad_mutable_payload.ml"
  in
  let hits = List.filter (fun f -> String.equal f.Finding.rule "mutable-payload") findings in
  Alcotest.(check int) "array into send and ref into reply both fire" 2 (List.length hits)

let test_parse_error () =
  check_fires "bad_parse.ml" ~as_path:"lib/wire/bad_parse.ml" ~rule:"parse-error" ()

let test_missing_mli () =
  let root = Filename.temp_file "dcp_lint_tree" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  let dir = Filename.concat (Filename.concat root "lib") "wire" in
  Sys.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "bare.ml" "let x = 1\n";
  write "sealed.ml" "let x = 1\n";
  write "sealed.mli" "val x : int\n";
  let srcs = Dcp_lint.Discover.ml_files ~root ~dirs:[ "lib" ] in
  let findings = Dcp_lint.Discover.missing_mli ~root srcs in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;
  Sys.rmdir (Filename.concat root "lib");
  Sys.rmdir root;
  Alcotest.(check (list string)) "only the interface-less module is flagged"
    [ "mli-missing" ] (rules_of findings);
  Alcotest.(check string) "names the file" "lib/wire/bare.ml" (List.hd findings).Finding.file

let test_layers_ranks () =
  Alcotest.(check (option int)) "wire rank" (Some 1) (Layers.rank_of_dir "wire");
  Alcotest.(check (option int)) "bank is a guardian layer" (Some 6) (Layers.rank_of_dir "bank");
  Alcotest.(check bool) "bank is a guardian" true (Layers.is_guardian "bank");
  Alcotest.(check bool) "core is not" false (Layers.is_guardian "core");
  Alcotest.(check (option string)) "lib name mapping" (Some "bank")
    (Layers.dir_of_lib_name "dcp_bank");
  Alcotest.(check (option int)) "module rank" (Some 4) (Layers.rank_of_module "Dcp_core");
  Alcotest.(check (option int)) "external module" None (Layers.rank_of_module "Fmt")

let test_graph_findings () =
  (* A fabricated guardian->guardian dune edge must be flagged. *)
  let bad =
    { Layers.dir = "bank"; lib_name = "dcp_bank"; deps = [ "dcp_airline" ]; rank = 6 }
  in
  let findings = Layers.graph_findings [ bad ] in
  Alcotest.(check bool) "guardian edge flagged" true
    (List.exists (fun f -> String.equal f.Finding.rule "guardian-isolation") findings);
  (* The real tree's dune graph is clean. *)
  let clean =
    { Layers.dir = "net"; lib_name = "dcp_net"; deps = [ "dcp_rng"; "dcp_sim" ]; rank = 2 }
  in
  Alcotest.(check int) "downward edges are fine" 0 (List.length (Layers.graph_findings [ clean ]))

let test_baseline_roundtrip () =
  let findings = scan_fixture ~as_path:"lib/core/bad_hashtbl_order.ml" "bad_hashtbl_order.ml" in
  Alcotest.(check bool) "fixture yields findings" true (findings <> []);
  let path = Filename.temp_file "dcp_lint_baseline" ".txt" in
  Baseline.save ~path findings;
  let b = Baseline.load ~path in
  Baseline.apply b findings;
  Sys.remove path;
  Alcotest.(check bool) "all findings baselined after round-trip" true
    (List.for_all (fun f -> f.Finding.baselined) findings);
  Alcotest.(check (list string)) "nothing stale" [] (Baseline.stale b);
  let empty = Baseline.empty () in
  List.iter (fun f -> f.Finding.baselined <- false) findings;
  Baseline.apply empty findings;
  Alcotest.(check bool) "empty baseline marks nothing" true
    (List.for_all (fun f -> not f.Finding.baselined) findings)

let test_baseline_stale () =
  let path = Filename.temp_file "dcp_lint_baseline" ".txt" in
  let oc = open_out path in
  output_string oc "# comment\nhashtbl-order lib/gone.ml f/Hashtbl.fold\n";
  close_out oc;
  let b = Baseline.load ~path in
  Baseline.apply b [];
  Sys.remove path;
  Alcotest.(check (list string)) "unmatched entry reported stale"
    [ "hashtbl-order lib/gone.ml f/Hashtbl.fold" ] (Baseline.stale b)

let test_report_roundtrip () =
  let findings = scan_fixture ~as_path:"lib/core/bad_hashtbl_order.ml" "bad_hashtbl_order.ml" in
  let layers =
    [ { Layers.dir = "wire"; lib_name = "dcp_wire"; deps = [ "dcp_rng" ]; rank = 1 } ]
  in
  let report =
    Report.build ~root:"." ~files_scanned:1 ~layers ~findings ~stale_baseline:[ "old key" ]
  in
  let parsed = Report.parse (Report.render report) in
  Alcotest.(check bool) "render/parse round-trips" true (parsed = report);
  (match Report.member "schema" parsed with
  | Some (Report.Str s) -> Alcotest.(check string) "schema" Report.schema s
  | _ -> Alcotest.fail "schema member missing");
  match Report.member "summary" parsed with
  | Some summary -> (
      match (Report.member "total" summary, Report.member "active" summary) with
      | Some (Report.Num total), Some (Report.Num active) ->
          Alcotest.(check int) "total counts findings" (List.length findings)
            (int_of_float total);
          Alcotest.(check int) "all active (no baseline applied)" (List.length findings)
            (int_of_float active)
      | _ -> Alcotest.fail "summary counts missing")
  | None -> Alcotest.fail "summary member missing"

(* Walk up from the build sandbox to the real checkout; the in-tree @lint
   alias enforces cleanliness anyway, so skip quietly when not found. *)
let find_repo_root () =
  let rec up dir depth =
    if depth > 8 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir ".git")
      && Sys.file_exists (Filename.concat dir "lint_baseline.txt")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

let test_tree_clean () =
  match find_repo_root () with
  | None -> ()  (* enforced by `dune build @lint` regardless *)
  | Some root ->
      let outcome =
        Driver.run ~root ~baseline_path:(Filename.concat root "lint_baseline.txt") ()
      in
      Alcotest.(check (list string)) "no active findings (tree clean modulo baseline)" []
        (List.map Finding.to_string outcome.Driver.active);
      Alcotest.(check (list string)) "no stale baseline entries" []
        outcome.Driver.stale_baseline;
      Alcotest.(check bool) "scanned a real number of files" true
        (outcome.Driver.files_scanned > 50)

let tests =
  [
    Alcotest.test_case "guardian isolation fixture" `Quick test_guardian_isolation;
    Alcotest.test_case "layer dag fixture" `Quick test_layer_dag;
    Alcotest.test_case "wall clock fixture" `Quick test_wall_clock;
    Alcotest.test_case "wall clock through module alias" `Quick test_wall_clock_alias;
    Alcotest.test_case "hashtbl order fixture" `Quick test_hashtbl_order;
    Alcotest.test_case "poly compare fixture" `Quick test_poly_compare;
    Alcotest.test_case "obj magic fixture" `Quick test_obj_magic;
    Alcotest.test_case "domain primitives fixture" `Quick test_domain_primitives;
    Alcotest.test_case "disk faults fixture" `Quick test_disk_faults;
    Alcotest.test_case "mutable payload fixture" `Quick test_mutable_payload;
    Alcotest.test_case "parse error fixture" `Quick test_parse_error;
    Alcotest.test_case "missing mli" `Quick test_missing_mli;
    Alcotest.test_case "layer ranks" `Quick test_layers_ranks;
    Alcotest.test_case "dune graph rules" `Quick test_graph_findings;
    Alcotest.test_case "baseline round-trip" `Quick test_baseline_roundtrip;
    Alcotest.test_case "baseline staleness" `Quick test_baseline_stale;
    Alcotest.test_case "report json round-trip" `Quick test_report_roundtrip;
    Alcotest.test_case "tree clean modulo baseline" `Quick test_tree_clean;
  ]
