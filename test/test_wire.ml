(* The wire layer: values, types, codec, tokens, transmittable types. *)

open Dcp_wire
module Rng = Dcp_rng.Rng

(* ---- Value ---- *)

let test_value_accessors () =
  Alcotest.(check int) "int" 42 (Value.get_int (Value.int 42));
  Alcotest.(check string) "str" "x" (Value.get_str (Value.str "x"));
  Alcotest.(check bool) "bool" true (Value.get_bool (Value.bool true));
  Alcotest.(check (float 1e-9)) "real" 2.5 (Value.get_real (Value.real 2.5));
  Alcotest.check_raises "wrong accessor raises"
    (Value.Type_mismatch "int expected, got \"x\"") (fun () ->
      ignore (Value.get_int (Value.str "x")))

let test_value_field () =
  let v = Value.record [ ("a", Value.int 1); ("b", Value.str "two") ] in
  Alcotest.(check int) "field a" 1 (Value.get_int (Value.field v "a"));
  Alcotest.check_raises "missing field" (Value.Type_mismatch "missing field z") (fun () ->
      ignore (Value.field v "z"))

let test_value_equal () =
  let v1 = Value.tuple [ Value.int 1; Value.list [ Value.str "a" ] ] in
  let v2 = Value.tuple [ Value.int 1; Value.list [ Value.str "a" ] ] in
  let v3 = Value.tuple [ Value.int 2; Value.list [ Value.str "a" ] ] in
  Alcotest.(check bool) "equal" true (Value.equal v1 v2);
  Alcotest.(check bool) "not equal" false (Value.equal v1 v3)

let test_value_pp () =
  let v =
    Value.record [ ("n", Value.int 3); ("opt", Value.option (Some (Value.bool false))) ]
  in
  Alcotest.(check string) "render" "{n=3; opt=some(false)}" (Value.to_string v)

let test_value_size_monotone () =
  let small = Value.str "ab" in
  let big = Value.list [ small; small; small ] in
  Alcotest.(check bool) "bigger value, bigger size" true (Value.size big > Value.size small)

let test_value_depth () =
  Alcotest.(check int) "flat" 1 (Value.depth (Value.int 1));
  Alcotest.(check int) "nested" 3
    (Value.depth (Value.list [ Value.tuple [ Value.int 1 ] ]))

(* ---- Vtype ---- *)

let test_vtype_check_builtin () =
  let ok t v = Alcotest.(check bool) "accepts" true (Result.is_ok (Vtype.check t v)) in
  let bad t v = Alcotest.(check bool) "rejects" true (Result.is_error (Vtype.check t v)) in
  ok Vtype.Tint (Value.int 1);
  bad Vtype.Tint (Value.str "1");
  ok (Vtype.Tlist Vtype.Tint) (Value.list [ Value.int 1; Value.int 2 ]);
  bad (Vtype.Tlist Vtype.Tint) (Value.list [ Value.int 1; Value.str "2" ]);
  ok (Vtype.Toption Vtype.Tstr) (Value.option None);
  ok (Vtype.Toption Vtype.Tstr) (Value.option (Some (Value.str "s")));
  bad (Vtype.Toption Vtype.Tstr) (Value.option (Some (Value.int 0)));
  ok Vtype.Tany (Value.tuple [ Value.int 1; Value.str "x" ]);
  ok
    (Vtype.Ttuple [ Vtype.Tint; Vtype.Tstr ])
    (Value.tuple [ Value.int 1; Value.str "x" ]);
  bad (Vtype.Ttuple [ Vtype.Tint; Vtype.Tstr ]) (Value.tuple [ Value.int 1 ]);
  ok
    (Vtype.Trecord [ ("a", Vtype.Tint) ])
    (Value.record [ ("a", Value.int 1) ]);
  bad (Vtype.Trecord [ ("a", Vtype.Tint) ]) (Value.record [ ("b", Value.int 1) ])

let test_vtype_named () =
  let t = Vtype.Tnamed "complex" in
  Alcotest.(check bool) "named accepts matching" true
    (Result.is_ok (Vtype.check t (Value.Named ("complex", Value.unit))));
  Alcotest.(check bool) "named rejects other" true
    (Result.is_error (Vtype.check t (Value.Named ("other", Value.unit))))

let test_check_message () =
  let pt =
    [ Vtype.signature "reserve" [ Vtype.Tstr; Vtype.Tint ] ]
  in
  Alcotest.(check bool) "good message" true
    (Result.is_ok (Vtype.check_message pt ~command:"reserve" [ Value.str "p"; Value.int 3 ]));
  Alcotest.(check bool) "wrong arity" true
    (Result.is_error (Vtype.check_message pt ~command:"reserve" [ Value.str "p" ]));
  Alcotest.(check bool) "wrong type" true
    (Result.is_error (Vtype.check_message pt ~command:"reserve" [ Value.int 0; Value.int 3 ]));
  Alcotest.(check bool) "unknown command" true
    (Result.is_error (Vtype.check_message pt ~command:"unknown" []));
  Alcotest.(check bool) "implicit failure accepted" true
    (Result.is_ok (Vtype.check_message pt ~command:"failure" [ Value.str "reason" ]))

let test_check_message_wildcard () =
  let pt = [ Vtype.wildcard ] in
  Alcotest.(check bool) "wildcard accepts anything" true
    (Result.is_ok (Vtype.check_message pt ~command:"whatever" [ Value.int 1 ]))

let test_signature_pp () =
  let s =
    Vtype.signature "reserve" [ Vtype.Tint ] ~replies:[ Vtype.reply "ok" [] ]
  in
  Alcotest.(check string) "rendering" "reserve(int) replies (ok())"
    (Format.asprintf "%a" Vtype.pp_signature s)

(* ---- Codec ---- *)

let sample_port = Port_name.make ~node:1 ~guardian:2 ~index:3 ~uid:99
let sample_token = Token.seal ~secret:42L ~owner:7 ~obj:123

let roundtrip ?config v =
  match Codec.encode ?config v with
  | Error e -> Alcotest.failf "encode failed: %a" Codec.pp_error e
  | Ok s -> (
      match Codec.decode ?config s with
      | Error e -> Alcotest.failf "decode failed: %a" Codec.pp_error e
      | Ok v' -> v')

let test_codec_roundtrip_basics () =
  let values =
    [
      Value.unit;
      Value.bool true;
      Value.bool false;
      Value.int 0;
      Value.int (-1);
      Value.int max_int;
      Value.int min_int;
      Value.real 3.14159;
      Value.real Float.infinity;
      Value.str "";
      Value.str "hello\x00world";
      Value.list [ Value.int 1; Value.str "x" ];
      Value.tuple [];
      Value.record [ ("k", Value.unit) ];
      Value.option None;
      Value.option (Some (Value.int 5));
      Value.port sample_port;
      Value.token sample_token;
      Value.Named ("t", Value.int 1);
    ]
  in
  List.iter
    (fun v ->
      let v' = roundtrip v in
      if not (Value.equal v v') then
        Alcotest.failf "roundtrip mismatch: %a vs %a" Value.pp v Value.pp v')
    values

let test_codec_nan_roundtrip () =
  match roundtrip (Value.real Float.nan) with
  | Value.Real r -> Alcotest.(check bool) "NaN preserved" true (Float.is_nan r)
  | _ -> Alcotest.fail "expected real"

let test_codec_int_bounds () =
  let config = Codec.config_1979 in
  Alcotest.(check bool) "2^23-1 fits" true
    (Result.is_ok (Codec.encode ~config (Value.int 8_388_607)));
  Alcotest.(check bool) "-2^23 fits" true
    (Result.is_ok (Codec.encode ~config (Value.int (-8_388_608))));
  (match Codec.encode ~config (Value.int 8_388_608) with
  | Error (Codec.Int_out_of_bounds _) -> ()
  | _ -> Alcotest.fail "2^23 must be rejected");
  match Codec.encode ~config (Value.int (-8_388_609)) with
  | Error (Codec.Int_out_of_bounds _) -> ()
  | _ -> Alcotest.fail "-2^23-1 must be rejected"

let test_codec_string_limit () =
  let config = { Codec.config_1979 with max_string = 4 } in
  match Codec.encode ~config (Value.str "hello") with
  | Error (Codec.String_too_long 5) -> ()
  | _ -> Alcotest.fail "long string must be rejected"

let test_codec_message_limit () =
  let config = { Codec.default_config with max_message = 16 } in
  match Codec.encode ~config (Value.str (String.make 64 'x')) with
  | Error (Codec.Message_too_long _) -> ()
  | _ -> Alcotest.fail "long message must be rejected"

let test_codec_malformed_input () =
  (match Codec.decode "\xff" with
  | Error (Codec.Malformed _) -> ()
  | _ -> Alcotest.fail "unknown tag must fail");
  (match Codec.decode "" with
  | Error (Codec.Malformed _) -> ()
  | _ -> Alcotest.fail "empty must fail");
  (* Truncated: an Int tag with no payload. *)
  match Codec.decode "\x03" with
  | Error (Codec.Malformed _) -> ()
  | _ -> Alcotest.fail "truncated must fail"

let test_codec_adversarial_length () =
  (* A string tag followed by a varint length of 2^62-1: adding it to the
     read position wraps negative, so a sum-based bounds check would pass
     and the decoder would die in String.sub.  Must be a clean Malformed. *)
  let huge = "\x05\xff\xff\xff\xff\xff\xff\xff\xff\x3f" in
  (match Codec.decode huge with
  | Error (Codec.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "absurd length accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Codec.pp_error e);
  (* and a varint that decodes to a negative length outright *)
  let negative = "\x05\xff\xff\xff\xff\xff\xff\xff\xff\x7f" in
  match Codec.decode negative with
  | Error (Codec.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "negative length accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Codec.pp_error e

let test_codec_encoder_reuse () =
  let enc = Codec.encoder () in
  let values =
    [
      Value.unit;
      Value.int 42;
      Value.str (String.make 300 'x');
      Value.record [ ("p", Value.port sample_port); ("t", Value.token sample_token) ];
      Value.str "";
    ]
  in
  (* same bytes as the one-shot API, across repeated reuse of one handle *)
  List.iter
    (fun v ->
      Alcotest.(check string) "encode_with = encode" (Codec.encode_exn v)
        (Codec.encode_with_exn enc v))
    values;
  (* an error must not poison the handle for the next message *)
  let small = Codec.encoder ~config:{ Codec.default_config with max_message = 8 } () in
  (match Codec.encode_with small (Value.str (String.make 64 'y')) with
  | Error (Codec.Message_too_long _) -> ()
  | _ -> Alcotest.fail "expected Message_too_long");
  Alcotest.(check string) "handle survives an error"
    (Codec.encode_exn Value.unit)
    (Codec.encode_with_exn small Value.unit)

let test_codec_trailing_bytes () =
  let s = Codec.encode_exn Value.unit ^ "junk" in
  match Codec.decode s with
  | Error (Codec.Malformed _) -> ()
  | _ -> Alcotest.fail "trailing bytes must fail"

(* qcheck: random value generator and roundtrip. *)
let gen_value =
  QCheck2.Gen.(
    sized_size (int_range 0 4) (fix (fun self n ->
        let leaf =
          oneof
            [
              return Value.Unit;
              map (fun b -> Value.Bool b) bool;
              map (fun i -> Value.Int i) int;
              map (fun f -> Value.Real f) (float_range (-1e9) 1e9);
              map (fun s -> Value.Str s) (string_size (int_range 0 20));
              map (fun o -> Value.Option (Option.map (fun i -> Value.Int i) o)) (option int);
            ]
        in
        if n = 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun l -> Value.Listv l) (list_size (int_range 0 4) (self (n - 1)));
              map (fun l -> Value.Tuple l) (list_size (int_range 0 4) (self (n - 1)));
              map
                (fun l -> Value.Record (List.mapi (fun i v -> ("f" ^ string_of_int i, v)) l))
                (list_size (int_range 0 4) (self (n - 1)));
              map (fun v -> Value.Named ("abs", v)) (self (n - 1));
            ])))

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrips arbitrary values" ~count:500 gen_value (fun v ->
      match Codec.encode v with
      | Error _ -> true (* size limits may trigger on big strings; fine *)
      | Ok s -> (
          match Codec.decode s with Ok v' -> Value.equal v v' | Error _ -> false))

let prop_codec_size_estimate =
  QCheck2.Test.make ~name:"encoded_size equals encode length" ~count:200 gen_value (fun v ->
      match (Codec.encoded_size v, Codec.encode v) with
      | Ok n, Ok s -> n = String.length s
      | Error _, Error _ -> true
      | _ -> false)

(* ---- Token ---- *)

let test_token_roundtrip () =
  let tok = Token.seal ~secret:0xdeadbeefL ~owner:5 ~obj:77 in
  Alcotest.(check int) "owner visible" 5 (Token.owner tok);
  Alcotest.(check (option int)) "owner unseals" (Some 77)
    (Token.unseal ~secret:0xdeadbeefL ~owner:5 tok)

let test_token_wrong_secret () =
  let tok = Token.seal ~secret:1L ~owner:5 ~obj:77 in
  Alcotest.(check (option int)) "wrong secret fails" None
    (Token.unseal ~secret:2L ~owner:5 tok)

let test_token_wrong_owner () =
  let tok = Token.seal ~secret:1L ~owner:5 ~obj:77 in
  Alcotest.(check (option int)) "wrong owner fails" None (Token.unseal ~secret:1L ~owner:6 tok)

let test_token_tamper () =
  let tok = Token.seal ~secret:1L ~owner:5 ~obj:77 in
  let owner, body, tag = Token.to_wire tok in
  let forged = Token.of_wire (owner, Int64.add body 1L, tag) in
  Alcotest.(check (option int)) "tampered body fails" None
    (Token.unseal ~secret:1L ~owner:5 forged)

let prop_token_seal_unseal =
  QCheck2.Test.make ~name:"token seal/unseal identity" ~count:300
    QCheck2.Gen.(triple int64 (int_range 0 10000) (int_range 0 1_000_000))
    (fun (secret, owner, obj) ->
      Token.unseal ~secret ~owner (Token.seal ~secret ~owner ~obj) = Some obj)

(* ---- Transmit ---- *)

module Up : Transmit.S with type t = string = struct
  type t = string

  let type_name = "upper"
  let external_rep = Vtype.Tstr
  let encode s = Value.str (String.uppercase_ascii s)
  let decode v = Value.get_str v
end

let test_transmit_roundtrip () =
  let v = Transmit.to_value (module Up) "hello" in
  Alcotest.(check bool) "tagged" true
    (match v with Value.Named ("upper", _) -> true | _ -> false);
  Alcotest.(check string) "decodes" "HELLO" (Transmit.of_value (module Up) v)

let test_transmit_name_mismatch () =
  let v = Value.Named ("other", Value.str "x") in
  match Transmit.of_value (module Up) v with
  | exception Transmit.Decode_failure _ -> ()
  | _ -> Alcotest.fail "name mismatch must fail"

module Liar : Transmit.S with type t = int = struct
  type t = int

  let type_name = "liar"
  let external_rep = Vtype.Tstr
  let encode i = Value.int i (* violates its own declared external rep *)
  let decode _ = 0
end

let test_transmit_bad_encoder_caught () =
  match Transmit.to_value (module Liar) 3 with
  | exception Transmit.Encode_failure _ -> ()
  | _ -> Alcotest.fail "invalid external rep must be caught"

let test_registry_conflict () =
  let reg = Transmit.registry () in
  Transmit.register reg ~type_name:"t" ~external_rep:Vtype.Tint;
  Transmit.register reg ~type_name:"t" ~external_rep:Vtype.Tint;
  Alcotest.check_raises "conflicting registration"
    (Invalid_argument
       "Transmit.register: t already registered with external rep int (got string)")
    (fun () -> Transmit.register reg ~type_name:"t" ~external_rep:Vtype.Tstr)

let test_check_named_deep () =
  let reg = Transmit.registry () in
  Transmit.register reg ~type_name:"t" ~external_rep:Vtype.Tint;
  let good = Value.list [ Value.Named ("t", Value.int 1) ] in
  let unknown = Value.list [ Value.Named ("u", Value.int 1) ] in
  let bad_shape = Value.list [ Value.Named ("t", Value.str "no") ] in
  Alcotest.(check bool) "good" true (Result.is_ok (Transmit.check_named reg good));
  Alcotest.(check bool) "unknown type" true (Result.is_error (Transmit.check_named reg unknown));
  Alcotest.(check bool) "bad shape" true (Result.is_error (Transmit.check_named reg bad_shape))

let tests =
  [
    Alcotest.test_case "value accessors" `Quick test_value_accessors;
    Alcotest.test_case "value field" `Quick test_value_field;
    Alcotest.test_case "value equal" `Quick test_value_equal;
    Alcotest.test_case "value pp" `Quick test_value_pp;
    Alcotest.test_case "value size" `Quick test_value_size_monotone;
    Alcotest.test_case "value depth" `Quick test_value_depth;
    Alcotest.test_case "vtype builtins" `Quick test_vtype_check_builtin;
    Alcotest.test_case "vtype named" `Quick test_vtype_named;
    Alcotest.test_case "check_message" `Quick test_check_message;
    Alcotest.test_case "wildcard port type" `Quick test_check_message_wildcard;
    Alcotest.test_case "signature pp" `Quick test_signature_pp;
    Alcotest.test_case "codec roundtrip basics" `Quick test_codec_roundtrip_basics;
    Alcotest.test_case "codec NaN" `Quick test_codec_nan_roundtrip;
    Alcotest.test_case "codec 24-bit bounds" `Quick test_codec_int_bounds;
    Alcotest.test_case "codec string limit" `Quick test_codec_string_limit;
    Alcotest.test_case "codec message limit" `Quick test_codec_message_limit;
    Alcotest.test_case "codec malformed" `Quick test_codec_malformed_input;
    Alcotest.test_case "codec adversarial length" `Quick test_codec_adversarial_length;
    Alcotest.test_case "codec encoder reuse" `Quick test_codec_encoder_reuse;
    Alcotest.test_case "codec trailing bytes" `Quick test_codec_trailing_bytes;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_size_estimate;
    Alcotest.test_case "token roundtrip" `Quick test_token_roundtrip;
    Alcotest.test_case "token wrong secret" `Quick test_token_wrong_secret;
    Alcotest.test_case "token wrong owner" `Quick test_token_wrong_owner;
    Alcotest.test_case "token tamper" `Quick test_token_tamper;
    QCheck_alcotest.to_alcotest prop_token_seal_unseal;
    Alcotest.test_case "transmit roundtrip" `Quick test_transmit_roundtrip;
    Alcotest.test_case "transmit name mismatch" `Quick test_transmit_name_mismatch;
    Alcotest.test_case "lying encoder caught" `Quick test_transmit_bad_encoder_caught;
    Alcotest.test_case "registry conflict" `Quick test_registry_conflict;
    Alcotest.test_case "check_named deep" `Quick test_check_named_deep;
  ]
