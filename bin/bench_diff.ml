(* Compare two `dcp.bench.micro/v1` JSON files and fail (exit 1) on any
   regressed row:

     bench_diff.exe BASELINE.json CANDIDATE.json [--threshold PCT] [--rows a,b,...]

   Rows are classed by the unit suffix in their name:

   - exact   — "(msgs/op)", "(virtual ms)", "(bytes)": deterministic
               functions of the pinned seed, gated at 0% drift (ANY
               change fails, in either direction — an improvement must
               update the committed baseline, not slip past the gate);
   - thruput — "(msgs/s)", "(x)": wall-clock throughput, higher is
               better; regressed when the candidate is LOWER than the
               baseline by more than TWICE the threshold (shared-host
               interference is one-sided — it only ever slows a run —
               so downward noise runs hotter than timing jitter);
   - timing  — everything else (ns/op): regressed when HIGHER than the
               baseline by more than the threshold.

   `--threshold` (default 25%) applies to the thruput/timing classes
   only.  `--rows` restricts the gate to the named rows; by default every
   row present in both files is gated.  Rows with a null estimate on
   either side are reported but never gated.  The parser below covers
   exactly the JSON subset our emitter produces (objects, arrays,
   strings, numbers, null) so the tool has no dependencies beyond the
   stdlib. *)

type json =
  | Null
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= len then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !pos + 4 > len then fail "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub s !pos 4) in
            pos := !pos + 4;
            (* our row names are ASCII; anything else renders as '?' *)
            Buffer.add_char b (if code < 128 then Char.chr code else '?')
        | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char b c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 'n' ->
        if !pos + 4 <= len && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Null
        end
        else fail "unknown literal"
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing bytes";
  v

let schema = "dcp.bench.micro/v1"

type row_class = Exact | Throughput | Timing

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let classify name =
  if
    contains_sub name "(msgs/op)" || contains_sub name "(virtual ms)"
    || contains_sub name "(bytes)"
  then Exact
  else if contains_sub name "(msgs/s)" || contains_sub name "(x)" then Throughput
  else Timing

(* name -> ns_per_op option, in file order *)
let load_rows path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  let root =
    try parse_json contents
    with Parse_error msg -> failwith (Printf.sprintf "%s: %s" path msg)
  in
  let field name = function Obj fields -> List.assoc_opt name fields | _ -> None in
  (match field "schema" root with
  | Some (Str s) when s = schema -> ()
  | _ -> failwith (Printf.sprintf "%s: not a %s file" path schema));
  match field "results" root with
  | Some (Arr rows) ->
      List.filter_map
        (fun row ->
          match (field "name" row, field "ns_per_op" row) with
          | Some (Str name), Some (Num ns) -> Some (name, Some ns)
          | Some (Str name), Some Null -> Some (name, None)
          | _ -> failwith (Printf.sprintf "%s: malformed results row" path))
        rows
  | _ -> failwith (Printf.sprintf "%s: missing results array" path)

let usage () =
  prerr_endline
    "usage: bench_diff.exe BASELINE.json CANDIDATE.json [--threshold PCT] [--rows a,b,...]";
  exit 2

let () =
  let baseline_path = ref None in
  let candidate_path = ref None in
  let threshold = ref 25.0 in
  let only_rows = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0.0 -> threshold := t
        | _ -> usage ());
        parse_args rest
    | "--rows" :: v :: rest ->
        only_rows := Some (String.split_on_char ',' v);
        parse_args rest
    | arg :: rest ->
        (if String.length arg > 0 && arg.[0] = '-' then usage ()
         else
           match (!baseline_path, !candidate_path) with
           | None, _ -> baseline_path := Some arg
           | Some _, None -> candidate_path := Some arg
           | Some _, Some _ -> usage ());
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let baseline_path, candidate_path =
    match (!baseline_path, !candidate_path) with
    | Some b, Some c -> (b, c)
    | _ -> usage ()
  in
  let baseline, candidate =
    try (load_rows baseline_path, load_rows candidate_path)
    with Failure msg ->
      prerr_endline msg;
      exit 2
  in
  let gated name =
    match !only_rows with None -> true | Some names -> List.mem name names
  in
  (* Gate rows in candidate order so the report matches the bench output. *)
  let regressions = ref [] in
  let missing = ref [] in
  Printf.printf "%-42s %12s %12s %9s\n" "row" "baseline" "candidate" "delta";
  List.iter
    (fun (name, cand) ->
      match List.assoc_opt name baseline with
      | None | Some None ->
          Printf.printf "%-42s %12s %12s %9s\n" name "-"
            (match cand with Some c -> Printf.sprintf "%.1f" c | None -> "null")
            "new"
      | Some (Some base) -> (
          match cand with
          | None ->
              Printf.printf "%-42s %12.1f %12s %9s\n" name base "null" "?";
              if gated name then missing := name :: !missing
          | Some cand ->
              let delta = if base = 0.0 then 0.0 else (cand -. base) /. base *. 100.0 in
              let regressed =
                gated name
                &&
                match classify name with
                | Exact -> cand <> base
                | Throughput -> delta < -2.0 *. !threshold
                | Timing -> delta > !threshold
              in
              Printf.printf "%-42s %12.1f %12.1f %+8.1f%%%s\n" name base cand delta
                (if regressed then "  << REGRESSION" else "");
              if regressed then regressions := (name, delta) :: !regressions))
    candidate;
  (match !only_rows with
  | None -> ()
  | Some names ->
      List.iter
        (fun name ->
          if not (List.mem_assoc name candidate) then missing := name :: !missing)
        names);
  if !missing <> [] then begin
    Printf.printf "\nFAIL: gated row(s) without a candidate estimate: %s\n"
      (String.concat ", " (List.rev !missing));
    exit 1
  end;
  if !regressions <> [] then begin
    Printf.printf "\nFAIL: %d row(s) regressed (exact rows pinned at 0%%, others at %.0f%%)\n"
      (List.length !regressions) !threshold;
    exit 1
  end;
  Printf.printf "\nOK: no row regressed (exact rows pinned at 0%%, others at %.0f%%)\n" !threshold
