(* Paper-invariant and determinism static analysis over the tree:

     dcp_lint.exe [--root DIR] [--dirs a,b,c] [--baseline FILE]
                  [--proto-baseline FILE] [--json FILE] [--proto-json FILE]
                  [--dot FILE] [--update-baseline] [--quiet]
     dcp_lint.exe --explain RULE

   Runs both analysis tiers: the per-file scan (isolation, layer DAG,
   transmittability, determinism, hygiene) and the whole-program proto
   tier (message-flow graph, dead letters, reply obligations,
   interprocedural escapes).

   Exit 0 when every finding is baselined and no baseline entry is stale,
   1 when active findings or stale baseline entries remain, 2 on usage or
   internal errors.  `--update-baseline` rewrites both baselines to cover
   every current finding (review the diff before committing — that is the
   documented path for accepting a new grandfathered finding). *)

module Driver = Dcp_lint.Driver
module Proto_driver = Dcp_lint.Proto_driver
module Baseline = Dcp_lint.Baseline
module Report = Dcp_lint.Report
module Finding = Dcp_lint.Finding

let usage () =
  prerr_endline
    "usage: dcp_lint.exe [--root DIR] [--dirs a,b,c] [--baseline FILE]\n\
    \       [--proto-baseline FILE] [--json FILE] [--proto-json FILE] [--dot FILE]\n\
    \       [--update-baseline] [--quiet]\n\
    \       dcp_lint.exe --explain RULE";
  exit 2

let explain rule =
  match Finding.explain rule with
  | Some doc ->
      Printf.printf "%s: %s\n" rule doc;
      exit 0
  | None ->
      Printf.eprintf "dcp_lint: unknown rule %S; known rules:\n" rule;
      List.iter (fun (r, _) -> Printf.eprintf "  %s\n" r) Finding.rules;
      exit 2

(* The graphviz export is consumed by `dot`; a malformed or empty file
   should fail the @proto-dot alias, so sanity-check before writing. *)
let check_dot dot =
  let balanced =
    let depth = ref 0 in
    let ok = ref true in
    String.iter
      (fun c ->
        match c with
        | '{' -> incr depth
        | '}' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
      dot;
    !ok && !depth = 0
  in
  if String.length dot = 0 then failwith "empty dot export";
  if not (String.length dot >= 7 && String.equal (String.sub dot 0 7) "digraph") then
    failwith "dot export does not start with 'digraph'";
  if not balanced then failwith "unbalanced braces in dot export"

let () =
  let root = ref "." in
  let dirs = ref Driver.default_dirs in
  let baseline_path = ref "lint_baseline.txt" in
  let proto_baseline_path = ref "proto_baseline.txt" in
  let json_path = ref None in
  let proto_json_path = ref None in
  let dot_path = ref None in
  let update = ref false in
  let quiet = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--root" :: v :: rest ->
        root := v;
        parse_args rest
    | "--dirs" :: v :: rest ->
        dirs := String.split_on_char ',' v;
        parse_args rest
    | "--baseline" :: v :: rest ->
        baseline_path := v;
        parse_args rest
    | "--proto-baseline" :: v :: rest ->
        proto_baseline_path := v;
        parse_args rest
    | "--json" :: v :: rest ->
        json_path := Some v;
        parse_args rest
    | "--proto-json" :: v :: rest ->
        proto_json_path := Some v;
        parse_args rest
    | "--dot" :: v :: rest ->
        dot_path := Some v;
        parse_args rest
    | "--explain" :: rule :: rest ->
        if rest <> [] then usage ();
        explain rule
    | "--update-baseline" :: rest ->
        update := true;
        parse_args rest
    | "--quiet" :: rest ->
        quiet := true;
        parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let in_root p = if Filename.is_relative p then Filename.concat !root p else p in
  let baseline_path = in_root !baseline_path in
  let proto_baseline_path = in_root !proto_baseline_path in
  let outcome, proto =
    try
      ( Driver.run ~dirs:!dirs ~root:!root ~baseline_path (),
        Proto_driver.run ~dirs:!dirs ~root:!root ~baseline_path:proto_baseline_path () )
    with exn ->
      Printf.eprintf "dcp_lint: %s\n" (Printexc.to_string exn);
      exit 2
  in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  (match !json_path with
  | None -> ()
  | Some path -> write path (Report.render outcome.Driver.report));
  (match !proto_json_path with
  | None -> ()
  | Some path -> write path (Report.render proto.Proto_driver.report));
  (match !dot_path with
  | None -> ()
  | Some path -> (
      try
        check_dot proto.Proto_driver.dot;
        write path proto.Proto_driver.dot
      with exn ->
        Printf.eprintf "dcp_lint: %s\n" (Printexc.to_string exn);
        exit 2));
  if !update then begin
    Baseline.save ~path:baseline_path outcome.Driver.findings;
    Baseline.save ~path:proto_baseline_path proto.Proto_driver.findings;
    if not !quiet then
      Printf.printf "dcp_lint: wrote %d + %d baseline entries to %s, %s\n"
        (List.length
           (List.sort_uniq String.compare (List.map Finding.key outcome.Driver.findings)))
        (List.length
           (List.sort_uniq String.compare (List.map Finding.key proto.Proto_driver.findings)))
        baseline_path proto_baseline_path
  end
  else begin
    (* --quiet silences the all-clear summaries only; active findings and
       stale baseline entries must always reach the build log. *)
    let tier1_bad = outcome.Driver.active <> [] || outcome.Driver.stale_baseline <> [] in
    let proto_bad = proto.Proto_driver.active <> [] || proto.Proto_driver.stale_baseline <> [] in
    if (not !quiet) || tier1_bad then Format.printf "%a@?" Driver.pp_outcome outcome;
    if (not !quiet) || proto_bad then Format.printf "%a@?" Proto_driver.pp_outcome proto;
    if tier1_bad || proto_bad then exit 1
  end
