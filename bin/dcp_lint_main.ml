(* Paper-invariant and determinism static analysis over the tree:

     dcp_lint.exe [--root DIR] [--dirs a,b,c] [--baseline FILE]
                  [--json FILE] [--update-baseline] [--quiet]

   Exit 0 when every finding is baselined, 1 when active findings remain,
   2 on usage or internal errors.  `--update-baseline` rewrites the
   baseline to cover every current finding (review the diff before
   committing it — that is the documented path for accepting a new
   grandfathered finding). *)

module Driver = Dcp_lint.Driver
module Baseline = Dcp_lint.Baseline
module Report = Dcp_lint.Report

let usage () =
  prerr_endline
    "usage: dcp_lint.exe [--root DIR] [--dirs a,b,c] [--baseline FILE] [--json FILE]\n\
    \       [--update-baseline] [--quiet]";
  exit 2

let () =
  let root = ref "." in
  let dirs = ref Driver.default_dirs in
  let baseline_path = ref "lint_baseline.txt" in
  let json_path = ref None in
  let update = ref false in
  let quiet = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--root" :: v :: rest ->
        root := v;
        parse_args rest
    | "--dirs" :: v :: rest ->
        dirs := String.split_on_char ',' v;
        parse_args rest
    | "--baseline" :: v :: rest ->
        baseline_path := v;
        parse_args rest
    | "--json" :: v :: rest ->
        json_path := Some v;
        parse_args rest
    | "--update-baseline" :: rest ->
        update := true;
        parse_args rest
    | "--quiet" :: rest ->
        quiet := true;
        parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let baseline_path =
    if Filename.is_relative !baseline_path then Filename.concat !root !baseline_path
    else !baseline_path
  in
  let outcome =
    try Driver.run ~dirs:!dirs ~root:!root ~baseline_path ()
    with exn ->
      Printf.eprintf "dcp_lint: %s\n" (Printexc.to_string exn);
      exit 2
  in
  (match !json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Report.render outcome.Driver.report);
      close_out oc);
  if !update then begin
    Baseline.save ~path:baseline_path outcome.Driver.findings;
    if not !quiet then
      Printf.printf "dcp_lint: wrote %d baseline entries to %s\n"
        (List.length
           (List.sort_uniq String.compare
              (List.map Dcp_lint.Finding.key outcome.Driver.findings)))
        baseline_path
  end
  else begin
    (* --quiet silences the all-clear summary only; active findings must
       always reach the build log with their file:line diagnostics. *)
    if (not !quiet) || outcome.Driver.active <> [] then
      Format.printf "%a@?" Driver.pp_outcome outcome;
    if outcome.Driver.active <> [] then exit 1
  end
