(* dcp_check — deterministic simulation-check runner.

   Subcommands:
     list     show the scenario library and the fault-profile matrix
     run      replay one (scenario, seed, profile) and report its verdict
     sweep    run many seeds per profile; write CHECK_sweep.json
     shrink   minimise a failing (seed, profile) to the smallest repro

   Examples:
     dune exec bin/dcp_check.exe -- sweep --scenario bank --profiles lan,wan+crash --seeds 200
     dune exec bin/dcp_check.exe -- run --scenario bank --seed 42 --profile wan+crash
     dune exec bin/dcp_check.exe -- shrink --scenario bank_mutated --seed 1 --profile lan *)

open Cmdliner
module Check = Dcp_check
module Clock = Dcp_sim.Clock

let scenario_of_name name =
  match Check.Scenarios.find name with
  | Some s -> Ok s
  | None ->
      Error
        (Printf.sprintf "unknown scenario %S (have: %s)" name
           (String.concat ", " Check.Scenarios.names))

let profiles_of_names names =
  List.fold_left
    (fun acc name ->
      match (acc, Check.Profile.find name) with
      | Error _, _ -> acc
      | Ok ps, Some p -> Ok (ps @ [ p ])
      | Ok _, None ->
          Error
            (Printf.sprintf "unknown profile %S (have: %s)" name
               (String.concat ", " Check.Profile.names)))
    (Ok []) names

let horizon_of_ms = Option.map (fun ms -> Clock.ms ms)

(* ---- list ---- *)

let run_list () =
  print_endline "Scenarios:";
  List.iter
    (fun s ->
      Printf.printf "  %-14s %s (horizon %s, workload %d)\n" s.Check.Scenario.name
        s.Check.Scenario.descr
        (Format.asprintf "%a" Clock.pp s.Check.Scenario.default_horizon)
        s.Check.Scenario.default_workload)
    Check.Scenarios.every;
  print_endline "Profiles:";
  List.iter (fun p -> Format.printf "  %a@." Check.Profile.pp p) Check.Profile.all;
  `Ok ()

let list_cmd = Cmd.v (Cmd.info "list" ~doc:"List scenarios and fault profiles") Term.(ret (const run_list $ const ()))

(* ---- shared args ---- *)

let scenario_arg =
  Arg.(value & opt string "bank" & info [ "scenario" ] ~doc:"Scenario name (see list).")

let profile_arg =
  Arg.(value & opt string "lan" & info [ "profile" ] ~doc:"Fault profile name (see list).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scenario seed.")

let horizon_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "horizon-ms" ] ~doc:"Fault/workload window in virtual milliseconds.")

let workload_arg =
  Arg.(value & opt (some int) None & info [ "workload" ] ~doc:"Workload size knob.")

let intensity_arg =
  Arg.(value & opt float 1.0 & info [ "intensity" ] ~doc:"Fault-intensity scale in [0,1].")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ]
        ~doc:
          "Partition the world into N shards (guardian-affinity placement, epoch-barrier \
           cross-shard messaging).  The fingerprint depends on (seed, shards).")

let parallel_arg =
  Arg.(
    value
    & flag
    & info [ "parallel" ]
        ~doc:
          "Run the shards on N domains.  Must not change any fingerprint — a divergence from \
           the sequential run is a determinism bug.")

(* ---- run ---- *)

let run_run scenario_name seed profile_name horizon_ms workload intensity shards parallel =
  match (scenario_of_name scenario_name, profiles_of_names [ profile_name ]) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok scenario, Ok [ profile ] ->
      let outcome =
        Check.Scenario.execute scenario ~seed ~profile
          ?horizon:(horizon_of_ms horizon_ms)
          ?workload ~intensity ~shards ~parallel ()
      in
      Format.printf "%s seed=%d profile=%s: %a@." scenario_name seed profile_name
        Check.Scenario.pp_outcome outcome;
      (match outcome.Check.Scenario.verdict with
      | Check.Scenario.Pass -> `Ok ()
      | Check.Scenario.Fail _ -> `Error (false, "scenario failed"))
  | Ok _, Ok _ -> assert false

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Replay one (scenario, seed, profile) deterministically")
    Term.(
      ret
        (const run_run $ scenario_arg $ seed_arg $ profile_arg $ horizon_arg $ workload_arg
       $ intensity_arg $ shards_arg $ parallel_arg))

(* ---- sweep ---- *)

let run_sweep scenario_name profile_names seeds seed_base horizon_ms workload shards parallel
    json_path quiet =
  let scenarios =
    if String.equal scenario_name "all" then Ok Check.Scenarios.all
    else Result.map (fun s -> [ s ]) (scenario_of_name scenario_name)
  in
  match (scenarios, profiles_of_names profile_names) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok scenarios, Ok profiles ->
      let sweeps =
        List.map
          (fun scenario ->
            let sweep =
              Check.Sweep.run
                ?horizon:(horizon_of_ms horizon_ms)
                ?workload ~shards ~parallel scenario ~profiles ~seed_base ~seeds
            in
            if not quiet then Format.printf "%a@." Check.Sweep.pp sweep;
            sweep)
          scenarios
      in
      Check.Sweep.write_json ~path:json_path sweeps;
      if not quiet then Printf.printf "wrote %s\n%!" json_path;
      let failures = List.concat_map (fun s -> s.Check.Sweep.failures) sweeps in
      if failures = [] then `Ok ()
      else
        `Error
          ( false,
            Printf.sprintf "%d failing run(s); shrink one with: dcp_check shrink --scenario %s --seed %d --profile %s"
              (List.length failures)
              (List.hd sweeps).Check.Sweep.scenario
              (List.hd failures).Check.Sweep.seed (List.hd failures).Check.Sweep.profile )

let sweep_cmd =
  let profiles_arg =
    Arg.(
      value
      & opt (list string) [ "lan"; "wan+crash"; "lossy+crash" ]
      & info [ "profiles" ] ~doc:"Comma-separated fault profiles.")
  in
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~doc:"Seeds per profile.")
  in
  let seed_base_arg =
    Arg.(value & opt int 1 & info [ "seed-base" ] ~doc:"First seed of the range.")
  in
  let json_arg =
    Arg.(
      value
      & opt string "CHECK_sweep.json"
      & info [ "json" ] ~doc:"Where to write the sweep summary JSON.")
  in
  let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the console summary.") in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Multi-seed sweep across the fault-profile matrix")
    Term.(
      ret
        (const run_sweep $ scenario_arg $ profiles_arg $ seeds_arg $ seed_base_arg $ horizon_arg
       $ workload_arg $ shards_arg $ parallel_arg $ json_arg $ quiet_arg))

(* ---- shrink ---- *)

let run_shrink scenario_name seed profile_name horizon_ms workload budget =
  match (scenario_of_name scenario_name, profiles_of_names [ profile_name ]) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok scenario, Ok [ profile ] -> (
      match
        Check.Shrink.run scenario ~seed ~profile
          ?horizon:(horizon_of_ms horizon_ms)
          ?workload ~budget ()
      with
      | Error e -> `Error (false, e)
      | Ok counterexample ->
          Format.printf "%a@." Check.Shrink.pp counterexample;
          `Ok ())
  | Ok _, Ok _ -> assert false

let shrink_cmd =
  let budget_arg =
    Arg.(value & opt int 60 & info [ "budget" ] ~doc:"Maximum scenario runs to spend.")
  in
  Cmd.v
    (Cmd.info "shrink" ~doc:"Minimise a failing (seed, profile) configuration")
    Term.(
      ret
        (const run_shrink $ scenario_arg $ seed_arg $ profile_arg $ horizon_arg $ workload_arg
       $ budget_arg))

let () =
  let doc = "deterministic simulation checks for the guardian runtime" in
  exit (Cmd.eval (Cmd.group (Cmd.info "dcp_check" ~doc) [ list_cmd; run_cmd; sweep_cmd; shrink_cmd ]))
