examples/quickstart.ml: Dcp_core Dcp_net Dcp_sim Dcp_wire Format List Port_name Value Vtype
