examples/remote_bootstrap.mli:
