examples/bank_transfers.ml: Dcp_bank Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire Format Hashtbl List Option Printf Value
