examples/quickstart.mli:
