examples/remote_bootstrap.ml: Dcp_core Dcp_net Dcp_sim Dcp_wire Format Hashtbl List Port_name String Token Value Vtype
