examples/office_morning.mli:
