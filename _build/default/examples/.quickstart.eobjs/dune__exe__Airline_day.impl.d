examples/airline_day.ml: Dcp_airline Dcp_core Dcp_sim Format
