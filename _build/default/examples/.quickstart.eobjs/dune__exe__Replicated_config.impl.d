examples/replicated_config.ml: Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire Format List Option Value
