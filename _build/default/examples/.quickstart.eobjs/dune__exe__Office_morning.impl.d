examples/office_morning.ml: Dcp_core Dcp_net Dcp_office Dcp_primitives Dcp_sim Dcp_wire Format Value Vtype
