examples/replicated_config.mli:
