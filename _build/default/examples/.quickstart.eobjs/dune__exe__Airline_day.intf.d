examples/airline_day.mli:
