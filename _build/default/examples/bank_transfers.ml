(* Cross-branch money transfers with a crash-recovering saga coordinator.

   Run with:  dune exec examples/bank_transfers.exe

   Three nodes: two bank branches and a transfer coordinator.  A stream of
   transfers runs while the coordinator node crashes and recovers; at the
   end the audit shows every cent accounted for — the paper's "permanence
   of effect" (§2.2) driving future actions. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Branch = Dcp_bank.Branch
module Transfer = Dcp_bank.Transfer
module Audit = Dcp_bank.Audit
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let () =
  let topology = Topology.full_mesh ~n:4 Link.lan in
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  let world = Runtime.create_world ~seed:5 ~topology ~config () in

  let accounts prefix =
    List.init 4 (fun i -> (Printf.sprintf "%s%d" prefix i, 1000))
  in
  let b0 = Branch.create world ~at:0 ~accounts:(accounts "a") () in
  let b1 = Branch.create world ~at:1 ~accounts:(accounts "b") () in
  let coordinator = Transfer.create world ~at:2 ~branches:[ b0; b1 ] () in
  let initial_total = 8 * 1000 in
  Format.printf "bank up: 2 branches x 4 accounts, %d cents total@." initial_total;

  (* A teller guardian at node 3 issues transfers. *)
  let outcomes = Hashtbl.create 8 in
  let teller_def : Runtime.def =
    {
      Runtime.def_name = "teller";
      provides = [];
      init =
        (fun ctx _ ->
          for i = 1 to 12 do
            let from_account = Printf.sprintf "a%d" (i mod 4) in
            let to_account = Printf.sprintf "b%d" ((i + 1) mod 4) in
            let outcome =
              match
                Rpc.call ctx ~to_:coordinator ~timeout:(Clock.s 2) ~attempts:3 "transfer"
                  [
                    Value.int 0;
                    Value.str from_account;
                    Value.int 1;
                    Value.str to_account;
                    Value.int (25 * i);
                  ]
              with
              | Rpc.Reply (command, _) -> command
              | Rpc.Failure_msg _ -> "failure"
              | Rpc.Timeout -> "timeout"
            in
            Format.printf "[%a] transfer #%d %s->%s %d cents: %s@." Clock.pp
              (Runtime.ctx_now ctx) i from_account to_account (25 * i) outcome;
            Hashtbl.replace outcomes outcome
              (1 + Option.value (Hashtbl.find_opt outcomes outcome) ~default:0);
            Runtime.sleep ctx (Clock.ms 100)
          done;
          (* Let stragglers settle, then audit. *)
          Runtime.sleep ctx (Clock.s 10);
          (match Audit.total_balance ctx ~branches:[ b0; b1 ] () with
          | Ok total ->
              Format.printf "@.audit: %d cents on the books (started with %d) — %s@." total
                initial_total
                (if total = initial_total then "conserved" else "MONEY LEAKED!")
          | Error reason -> Format.printf "audit failed: %s@." reason);
          Format.printf "incomplete sagas: %d@." (Transfer.incomplete_transfers world));
      recover = None;
    }
  in
  Runtime.register_def world teller_def;
  ignore (Runtime.create_guardian world ~at:3 ~def_name:"teller" ~args:[]);

  (* Crash the coordinator in the middle of the stream; its recovery
     process re-drives in-flight transfers from the logged saga records. *)
  let engine = Runtime.engine world in
  ignore
    (Engine.schedule engine ~at:(Clock.ms 450) (fun () ->
         Format.printf "[%a] *** coordinator node crashes ***@." Clock.pp (Engine.now engine);
         Runtime.crash_node world 2));
  ignore
    (Engine.schedule engine ~at:(Clock.ms 900) (fun () ->
         Format.printf "[%a] *** coordinator restarts, recovery re-drives sagas ***@."
           Clock.pp (Engine.now engine);
         Runtime.restart_node world 2));

  Runtime.run_for world (Clock.s 60);
  Format.printf "done at %a@." Clock.pp (Runtime.now world)
