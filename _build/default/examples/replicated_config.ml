(* Distributed simultaneous update: a replicated configuration register.

   Run with:  dune exec examples/replicated_config.exe

   Three sites each hold a replica of the airline's fare table.  Two
   administrators update the same key at almost the same moment from
   different sites; a network partition then splits one site away, both
   sides keep accepting writes, and when the partition heals the replicas
   reconcile to a single winner everywhere — §3's "distributed
   simultaneous updates" protocol family, running on no-wait sends. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Replica = Dcp_primitives.Replica
module Network = Dcp_net.Network
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let () =
  let world = Runtime.create_world ~seed:4 ~topology:(Topology.full_mesh ~n:3 Link.lan) () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] ~sync_every:(Clock.ms 250) () in
  let replica i = List.nth replicas i in

  let admin name ~at body =
    let def =
      { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
    in
    Runtime.register_def world def;
    ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])
  in

  let show ctx tag =
    List.iteri
      (fun i r ->
        let v = Replica.read ctx ~replica:r ~key:"fare.SFO-BOS" ~timeout:(Clock.s 1) in
        Format.printf "  %s replica %d: %s@." tag i
          (Option.value (Option.map Value.to_string v) ~default:"(unreachable)"))
      replicas
  in

  admin "scenario" ~at:0 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 100);
      Format.printf "[%a] admin at site 0 sets the fare to 120@." Clock.pp (Runtime.ctx_now ctx);
      ignore
        (Replica.write ctx ~replica:(replica 0) ~key:"fare.SFO-BOS" ~value:(Value.int 120)
           ~timeout:(Clock.s 1));
      Runtime.sleep ctx (Clock.s 1);
      show ctx "settled:";

      Format.printf "[%a] *** network partitions: site 2 is cut off ***@." Clock.pp
        (Runtime.ctx_now ctx);
      Network.partition (Runtime.network world) [ [ 0; 1 ]; [ 2 ] ];
      ignore
        (Replica.write ctx ~replica:(replica 0) ~key:"fare.SFO-BOS" ~value:(Value.int 135)
           ~timeout:(Clock.s 1));
      Format.printf "[%a] site 0 raises the fare to 135 (partitioned)@." Clock.pp
        (Runtime.ctx_now ctx);
      Runtime.sleep ctx (Clock.s 1));

  admin "remote_admin" ~at:2 (fun ctx ->
      (* During the partition, the cut-off site also updates the fare. *)
      Runtime.sleep ctx (Clock.ms 1600);
      ignore
        (Replica.write ctx ~replica:(replica 2) ~key:"fare.SFO-BOS" ~value:(Value.int 99)
           ~timeout:(Clock.s 1));
      Format.printf "[%a] site 2 cuts the fare to 99 (partitioned)@." Clock.pp
        (Runtime.ctx_now ctx));

  admin "observer" ~at:1 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 2500);
      show ctx "during partition (replica 2 diverged and is unreachable from here):";
      Format.printf "[%a] *** partition heals; anti-entropy reconciles ***@." Clock.pp
        (Runtime.ctx_now ctx);
      Network.heal (Runtime.network world);
      Runtime.sleep ctx (Clock.s 2);
      show ctx "after heal (one winner everywhere):");

  Runtime.run_for world (Clock.s 10);
  Format.printf "done at %a@." Clock.pp (Runtime.now world)
