(* A day in the life of the distributed airline of Figure 2.

   Run with:  dune exec examples/airline_day.exe

   Builds a 4-region airline (one node per region, WAN links between),
   runs clerks against it, crashes a regional node mid-day, restarts it,
   and prints what the clerks experienced and what the books say. *)

module Runtime = Dcp_core.Runtime
module Cluster = Dcp_airline.Cluster
module Workload = Dcp_airline.Workload
module Types = Dcp_airline.Types
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine

let () =
  let params =
    {
      Cluster.default_params with
      regions = 4;
      flights_per_region = 4;
      capacity = 30;
      organization = Types.Monitor;
      service_time = Clock.ms 2;
      clerks_per_region = 2;
      clerk =
        {
          Workload.default_config with
          transactions = 0 (* run all day *);
          requests_per_transaction = 5;
          think_time = Clock.ms 50;
          flights = 16;
          dates = 14;
          request_timeout = Clock.ms 800;
          attempts = 3;
        };
    }
  in
  let cluster = Cluster.build params in
  let world = cluster.Cluster.world in
  Format.printf "airline up: %d regions, %d flights, %d clerks@." params.Cluster.regions
    (params.Cluster.regions * params.Cluster.flights_per_region)
    (params.Cluster.regions * params.Cluster.clerks_per_region);

  (* Crash region 2's node a third of the way through the day, bring it
     back a while later — the paper's §3.5 failure scenario. *)
  let engine = Runtime.engine world in
  ignore
    (Engine.schedule engine ~at:(Clock.s 20) (fun () ->
         Format.printf "[%a] *** node 2 crashes ***@." Clock.pp (Engine.now engine);
         Runtime.crash_node world 2));
  ignore
    (Engine.schedule engine ~at:(Clock.s 30) (fun () ->
         Format.printf "[%a] *** node 2 restarts; guardians recover ***@." Clock.pp
           (Engine.now engine);
         Runtime.restart_node world 2));

  let report = Cluster.run cluster ~duration:(Clock.s 60) in
  Format.printf "@.=== day report (60 virtual seconds) ===@.%a@." Cluster.pp_report report;
  let totals = report.Cluster.totals in
  Format.printf
    "reserve outcomes: ok=%d full=%d wait_list=%d pre_reserved=%d; request failures=%d@."
    totals.Workload.reserves_ok totals.Workload.reserves_full totals.Workload.reserves_waitlisted
    totals.Workload.reserves_pre_reserved totals.Workload.request_failures;
  Format.printf "crashes survived: node 2 crashed %d time(s); guardians recovered.@."
    (Runtime.crash_count world 2)
