(* Quickstart: two guardians on two nodes exchanging typed messages.

   Run with:  dune exec examples/quickstart.exe

   Demonstrates the paper's core vocabulary: a guardian definition with a
   typed port, no-wait send with a reply port, receive with timeout, and
   the system failure(...) message when a target has vanished. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

(* A counter guardian: guards one integer, exactly as §2.1 prescribes —
   nobody else can touch it; they can only send messages. *)
let counter_port_type =
  [
    Vtype.signature "add" [ Vtype.Tint ] ~replies:[ Vtype.reply "total" [ Vtype.Tint ] ];
    Vtype.signature "read" [] ~replies:[ Vtype.reply "total" [ Vtype.Tint ] ];
  ]

let counter_def : Runtime.def =
  {
    Runtime.def_name = "counter";
    provides = [ (counter_port_type, 32) ];
    init =
      (fun ctx _args ->
        let total = ref 0 in
        let rec loop () =
          (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
          | `Timeout -> ()
          | `Msg (_, msg) -> (
              (match (msg.Message.command, msg.Message.args) with
              | "add", [ Value.Int n ] -> total := !total + n
              | _ -> ());
              match msg.Message.reply_to with
              | Some reply -> Runtime.send ctx ~to_:reply "total" [ Value.int !total ]
              | None -> ()));
          loop ()
        in
        loop ());
    recover = None;
  }

let () =
  (* Two nodes joined by a LAN-quality link. *)
  let topology = Topology.full_mesh ~n:2 Link.lan in
  let world = Runtime.create_world ~seed:1 ~topology () in
  Runtime.register_def world counter_def;

  (* The node owner installs a counter guardian at node 0. *)
  let counter = Runtime.create_guardian world ~at:0 ~def_name:"counter" ~args:[] in
  let counter_port = List.hd (Runtime.guardian_ports counter) in
  Format.printf "counter guardian lives at node %d, port %a@."
    (Runtime.guardian_node counter)
    Port_name.pp counter_port;

  (* A client guardian at node 1 talks to it. *)
  let client_def : Runtime.def =
    {
      Runtime.def_name = "client";
      provides = [];
      init =
        (fun ctx _args ->
          let reply = Runtime.new_port ctx [ Vtype.signature "total" [ Vtype.Tint ] ] in
          (* no-wait send: we continue immediately, the reply arrives later *)
          Runtime.send ctx ~to_:counter_port ~reply_to:(Port.name reply) "add"
            [ Value.int 40 ];
          Runtime.send ctx ~to_:counter_port ~reply_to:(Port.name reply) "add"
            [ Value.int 2 ];
          let rec drain () =
            match Runtime.receive ctx ~timeout:(Clock.ms 500) [ reply ] with
            | `Msg (_, msg) ->
                Format.printf "[%a] client got %a@." Clock.pp (Runtime.ctx_now ctx)
                  Message.pp msg;
                drain ()
            | `Timeout -> ()
          in
          drain ();
          (* Message to a port that does not exist: the system answers with
             failure(...) on the reply port (§3.4). *)
          let bogus = Port_name.make ~node:0 ~guardian:999 ~index:0 ~uid:999 in
          Runtime.send ctx ~to_:bogus ~reply_to:(Port.name reply) "add" [ Value.int 1 ];
          (match Runtime.receive ctx ~timeout:(Clock.ms 500) [ reply ] with
          | `Msg (_, msg) ->
              Format.printf "[%a] client got %a@." Clock.pp (Runtime.ctx_now ctx) Message.pp msg
          | `Timeout -> Format.printf "no failure message?!@."));
      recover = None;
    }
  in
  Runtime.register_def world client_def;
  ignore (Runtime.create_guardian world ~at:1 ~def_name:"client" ~args:[]);

  Runtime.run_for world (Clock.s 5);
  Format.printf "done at virtual time %a@." Clock.pp (Runtime.now world)
