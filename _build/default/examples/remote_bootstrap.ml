(* Bootstrapping guardians across nodes through primordial guardians
   (Figure 3 and §2.1's creation rule).

   Run with:  dune exec examples/remote_bootstrap.exe

   A deployer guardian at node 0 populates a 3-node system: it cannot
   create guardians at remote nodes directly (creation is pinned to the
   creator's node), so it asks each node's primordial guardian.  A node
   whose owner has not installed the definition refuses — the autonomy
   story of §1.1.  It also demonstrates tokens: the registry guardian
   hands out sealed capabilities that only it can unseal. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Primordial = Dcp_core.Primordial
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

(* A registry guardian: stores strings, returns a token per entry.  Only
   the issuing guardian can turn the token back into the entry (§2.1). *)
let registry_port_type =
  [
    Vtype.signature "put" [ Vtype.Tstr ] ~replies:[ Vtype.reply "ticket" [ Vtype.Ttoken ] ];
    Vtype.signature "redeem" [ Vtype.Ttoken ]
      ~replies:[ Vtype.reply "entry" [ Vtype.Tstr ]; Vtype.reply "bad_token" [] ];
  ]

let registry_def : Runtime.def =
  {
    Runtime.def_name = "registry";
    provides = [ (registry_port_type, 32) ];
    init =
      (fun ctx _ ->
        let entries = Hashtbl.create 16 in
        let next = ref 0 in
        let rec loop () =
          (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
          | `Timeout -> ()
          | `Msg (_, msg) -> (
              match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
              | "put", [ Value.Str entry ], Some reply ->
                  let obj = !next in
                  incr next;
                  Hashtbl.replace entries obj entry;
                  let token = Runtime.seal_token ctx ~obj in
                  Runtime.send ctx ~to_:reply "ticket" [ Value.token token ]
              | "redeem", [ Value.Tokenv token ], Some reply -> (
                  match Runtime.unseal_token ctx token with
                  | Some obj when Hashtbl.mem entries obj ->
                      Runtime.send ctx ~to_:reply "entry"
                        [ Value.str (Hashtbl.find entries obj) ]
                  | Some _ | None -> Runtime.send ctx ~to_:reply "bad_token" [])
              | _ -> ()));
          loop ()
        in
        loop ());
    recover = None;
  }

let () =
  let topology = Topology.full_mesh ~n:3 Link.lan in
  let world = Runtime.create_world ~seed:9 ~topology () in
  Primordial.install world;
  (* The owners of nodes 0 and 1 install the registry program; node 2's
     owner does not. *)
  Runtime.register_def world registry_def;

  let deployer_def : Runtime.def =
    {
      Runtime.def_name = "deployer";
      provides = [];
      init =
        (fun ctx _ ->
          let deploy node =
            match
              Primordial.request_create ctx ~at:node ~def_name:"registry" ~args:[]
                ~timeout:(Clock.s 1)
            with
            | `Created ports ->
                Format.printf "node %d: registry created, ports %s@." node
                  (String.concat ", " (List.map Port_name.to_string ports));
                Some (List.hd ports)
            | `Refused reason ->
                Format.printf "node %d: refused (%s)@." node reason;
                None
            | `Timeout ->
                Format.printf "node %d: no answer@." node;
                None
          in
          let r1 = deploy 1 in
          let _ = deploy 2 in
          (* Node 2 has no 'registry' in its library — in this world the
             definition is global, so it succeeds; refusal is demonstrated
             with a name no owner installed anywhere: *)
          (match
             Primordial.request_create ctx ~at:2 ~def_name:"secret_miner" ~args:[]
               ~timeout:(Clock.s 1)
           with
          | `Refused reason -> Format.printf "node 2 refuses secret_miner: %s@." reason
          | `Created _ | `Timeout -> Format.printf "unexpected outcome for secret_miner@.");
          (* Use the remote registry: store an entry, get a token back,
             redeem it, and demonstrate that a token can't be forged. *)
          match r1 with
          | None -> ()
          | Some registry ->
              let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
              Runtime.send ctx ~to_:registry ~reply_to:(Port.name reply) "put"
                [ Value.str "flight manifest, 1979-12-10" ];
              (match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
              | `Msg (_, { Message.command = "ticket"; args = [ Value.Tokenv token ]; _ }) ->
                  Format.printf "got token %a (owner guardian %d)@." Token.pp token
                    (Token.owner token);
                  Runtime.send ctx ~to_:registry ~reply_to:(Port.name reply) "redeem"
                    [ Value.token token ];
                  (match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
                  | `Msg (_, msg) ->
                      Format.printf "redeemed: %a@." Message.pp msg
                  | `Timeout -> ());
                  (* Try to unseal it ourselves — we are not the owner. *)
                  (match Runtime.unseal_token ctx token with
                  | None -> Format.printf "deployer cannot unseal the token: sealed capability works@."
                  | Some _ -> Format.printf "SECURITY BUG: token unsealed by non-owner@.")
              | `Msg _ | `Timeout -> Format.printf "no ticket@."))
        ;
      recover = None;
    }
  in
  Runtime.register_def world deployer_def;
  ignore (Runtime.create_guardian world ~at:0 ~def_name:"deployer" ~args:[]);
  Runtime.run_for world (Clock.s 10);
  Format.printf "done at %a@." Clock.pp (Runtime.now world)
