(* An office automation morning (the intro's third application domain).

   Run with:  dune exec examples/office_morning.exe

   Three nodes: a records node hosting the directory and the printer, and
   one node per user hosting their mailbox.  Bob circulates a memo to Ann
   through the directory, Ann reads it, appends a comment (documents are
   transmittable abstract values — her node holds them as line lists) and
   sends it to the printer, which completes the job later and notifies her
   — the "response from a different process" pattern of §3.  The records
   node then crashes; mailboxes and the directory recover, the printer's
   queue (device state) does not. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Rpc = Dcp_primitives.Rpc
module Document = Dcp_office.Document
module Mailbox = Dcp_office.Mailbox
module Printer = Dcp_office.Printer
module Directory = Dcp_office.Directory
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let () =
  let world =
    Runtime.create_world ~seed:12
      ~topology:(Topology.full_mesh ~n:3 Link.lan)
      ~config:{ Runtime.default_config with crash_tear_p = 0.0 }
      ()
  in
  let directory = Directory.create world ~at:0 () in
  let printer = Printer.create world ~at:0 ~line_time:(Clock.ms 20) () in
  let ann_delivery, ann_owner = Mailbox.create world ~at:1 ~owner:"ann" () in
  let bob_delivery, _bob_owner = Mailbox.create world ~at:2 ~owner:"bob" () in

  (* Bob's morning: register, then circulate the memo. *)
  let bob : Runtime.def =
    {
      Runtime.def_name = "bob";
      provides = [];
      init =
        (fun ctx _ ->
          ignore (Directory.register_user ctx ~directory ~user:"bob" ~port:bob_delivery);
          Runtime.sleep ctx (Clock.ms 20);
          match Directory.lookup ctx ~directory ~user:"ann" with
          | None -> Format.printf "bob: ann is not in the directory yet@."
          | Some ann ->
              let memo =
                Document.create ~title:"budget memo" ~author:"bob"
                  ~body:"Q3 numbers attached.\nPlease review by Friday."
              in
              (match
                 Rpc.call ctx ~to_:ann ~timeout:(Clock.ms 500) ~attempts:3 "deliver"
                   [ Document.to_value memo ]
               with
              | Rpc.Reply ("delivered", _) ->
                  Format.printf "[%a] bob: memo delivered to ann@." Clock.pp
                    (Runtime.ctx_now ctx)
              | _ -> Format.printf "bob: delivery failed@."));
      recover = None;
    }
  in

  (* Ann's morning: register, poll the mailbox, annotate, print. *)
  let ann : Runtime.def =
    {
      Runtime.def_name = "ann";
      provides = [];
      init =
        (fun ctx _ ->
          ignore (Directory.register_user ctx ~directory ~user:"ann" ~port:ann_delivery);
          let rec poll () =
            Runtime.sleep ctx (Clock.ms 50);
            match Rpc.call ctx ~to_:ann_owner ~timeout:(Clock.ms 500) "fetch" [ Value.int 0 ] with
            | Rpc.Reply ("mail", [ doc_value ]) ->
                (* Ann's node prefers the line representation (§3.3). *)
                let doc = Document.of_value_lines doc_value in
                Format.printf "[%a] ann: reading %S by %s (%d words)@." Clock.pp
                  (Runtime.ctx_now ctx) (Document.title doc) (Document.author doc)
                  (Document.word_count doc);
                let annotated = Document.append doc "ann: looks fine, one typo on p.2" in
                let notify = Runtime.new_port ctx [ Vtype.wildcard ] in
                (match
                   Rpc.call ctx ~to_:printer ~timeout:(Clock.ms 500) "print"
                     [
                       Document.to_value annotated;
                       Value.option (Some (Value.port (Dcp_core.Port.name notify)));
                     ]
                 with
                | Rpc.Reply ("queued", [ Value.Int pos ]) ->
                    Format.printf "[%a] ann: print job queued at position %d@." Clock.pp
                      (Runtime.ctx_now ctx) pos
                | _ -> Format.printf "ann: print failed@.");
                (match Runtime.receive ctx ~timeout:(Clock.s 5) [ notify ] with
                | `Msg (_, { Dcp_core.Message.command = "printed"; args = [ Value.Str t ]; _ })
                  ->
                    Format.printf "[%a] ann: printer finished %S@." Clock.pp
                      (Runtime.ctx_now ctx) t
                | `Msg _ | `Timeout -> Format.printf "ann: no printer confirmation@.")
            | _ -> poll ()
          in
          poll ());
      recover = None;
    }
  in
  Runtime.register_def world bob;
  Runtime.register_def world ann;
  ignore (Runtime.create_guardian world ~at:2 ~def_name:"bob" ~args:[]);
  ignore (Runtime.create_guardian world ~at:1 ~def_name:"ann" ~args:[]);

  (* The records node has a bad afternoon. *)
  let engine = Runtime.engine world in
  ignore
    (Dcp_sim.Engine.schedule engine ~at:(Clock.s 2) (fun () ->
         Format.printf "[%a] *** records node crashes ***@." Clock.pp
           (Dcp_sim.Engine.now engine);
         Runtime.crash_node world 0));
  ignore
    (Dcp_sim.Engine.schedule engine ~at:(Clock.s 3) (fun () ->
         Format.printf "[%a] *** records node back; directory recovered ***@." Clock.pp
           (Dcp_sim.Engine.now engine);
         Runtime.restart_node world 0));

  Runtime.run_for world (Clock.s 5);
  (* The directory survived the crash — look bob up again from ann's node. *)
  let check : Runtime.def =
    {
      Runtime.def_name = "check";
      provides = [];
      init =
        (fun ctx _ ->
          match Directory.lookup ctx ~directory ~user:"bob" with
          | Some _ -> Format.printf "directory still knows bob after the crash@."
          | None -> Format.printf "directory lost bob?!@.");
      recover = None;
    }
  in
  Runtime.register_def world check;
  ignore (Runtime.create_guardian world ~at:1 ~def_name:"check" ~args:[]);
  Runtime.run_for world (Clock.s 2);
  Format.printf "done at %a@." Clock.pp (Runtime.now world)
