bench/main.mli:
