bench/probe.mli:
