bench/experiments.ml: Codec Dcp_airline Dcp_assoc Dcp_core Dcp_net Dcp_primitives Dcp_rng Dcp_sim Dcp_stable Dcp_wire Fun Int List Printf String Tables Transmit Value Vtype
