bench/probe.ml: Array Dcp_core Dcp_net Dcp_sim Dcp_wire List Printf Sys Vtype
