bench/tables.ml: Int List Printf String
