(* Bechamel micro-benchmarks of the hot paths: codec, CRC, heap, WAL,
   tokens, and the full in-simulator send path.  One Test.make per row. *)

open Bechamel
open Toolkit
open Dcp_wire
module Heap = Dcp_sim.Heap
module Crc32 = Dcp_net.Crc32
module Packet = Dcp_net.Packet
module Wal = Dcp_stable.Wal
module Rng = Dcp_rng.Rng
module Runtime = Dcp_core.Runtime
module Topology = Dcp_net.Topology
module Clock = Dcp_sim.Clock

let sample_value =
  Value.record
    [
      ("command", Value.str "reserve");
      ("args", Value.list [ Value.int 123456; Value.str "passenger-007"; Value.int 42 ]);
      ("reply", Value.option (Some (Value.port (Port_name.make ~node:1 ~guardian:2 ~index:3 ~uid:4))));
    ]

let sample_encoded = Codec.encode_exn sample_value
let kilobyte = String.init 1024 (fun i -> Char.chr (i mod 256))

let test_codec_encode =
  Test.make ~name:"codec.encode message" (Staged.stage (fun () -> Codec.encode_exn sample_value))

let test_codec_decode =
  Test.make ~name:"codec.decode message" (Staged.stage (fun () -> Codec.decode_exn sample_encoded))

let test_crc32 =
  Test.make ~name:"crc32 1KiB" (Staged.stage (fun () -> Crc32.digest_string kilobyte))

let test_fragment =
  Test.make ~name:"packet.fragment 1KiB mtu=256"
    (Staged.stage (fun () -> Packet.fragment ~src:0 ~dst:1 ~msg_id:1 ~mtu:256 kilobyte))

let test_heap =
  Test.make ~name:"heap push+pop x64"
    (Staged.stage (fun () ->
         let h = Heap.create ~cmp:Int.compare in
         for i = 0 to 63 do
           Heap.push h ((i * 37) mod 64)
         done;
         for _ = 0 to 63 do
           ignore (Heap.pop h)
         done))

let test_wal_append =
  Test.make ~name:"wal.append 64B"
    (Staged.stage
       (let wal = Wal.create () in
        let payload = String.make 64 'x' in
        fun () -> ignore (Wal.append wal payload)))

let test_token =
  Test.make ~name:"token seal+unseal"
    (Staged.stage (fun () ->
         let token = Token.seal ~secret:0x1234L ~owner:7 ~obj:99 in
         ignore (Token.unseal ~secret:0x1234L ~owner:7 token)))

let test_rng =
  Test.make ~name:"rng.int"
    (Staged.stage
       (let rng = Rng.create ~seed:1 in
        fun () -> ignore (Rng.int rng 1_000_000)))

(* One full exchange through the runtime per run: a fresh client guardian
   sends to a long-lived echo guardian and receives the reply; the engine
   drains to quiescence.  Covers guardian creation, both codec directions,
   routing, port machinery and two process switches. *)
let test_send_path =
  Test.make ~name:"runtime round-trip (+guardian)"
    (Staged.stage
       (let world =
          Runtime.create_world ~seed:1
            ~topology:(Topology.full_mesh ~n:1 Dcp_net.Link.perfect)
            ()
        in
        let echo_def =
          {
            Runtime.def_name = "bench_echo";
            provides = [ ([ Vtype.wildcard ], 64) ];
            init =
              (fun ctx _ ->
                let rec loop () =
                  (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
                  | `Timeout -> ()
                  | `Msg (_, msg) -> (
                      match msg.Dcp_core.Message.reply_to with
                      | Some reply -> Runtime.send ctx ~to_:reply "pong" []
                      | None -> ()));
                  loop ()
                in
                loop ());
            recover = None;
          }
        in
        Runtime.register_def world echo_def;
        let echo = Runtime.create_guardian world ~at:0 ~def_name:"bench_echo" ~args:[] in
        let echo_port = List.hd (Runtime.guardian_ports echo) in
        let client_def =
          {
            Runtime.def_name = "bench_client";
            provides = [];
            init =
              (fun ctx _ ->
                let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
                Runtime.send ctx ~to_:echo_port ~reply_to:(Dcp_core.Port.name reply) "ping" [];
                match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
                | `Msg _ | `Timeout -> ());
            recover = None;
          }
        in
        Runtime.register_def world client_def;
        Runtime.run world;
        fun () ->
          ignore (Runtime.create_guardian world ~at:0 ~def_name:"bench_client" ~args:[]);
          Runtime.run world))

let all_tests =
  [
    test_codec_encode;
    test_codec_decode;
    test_crc32;
    test_fragment;
    test_heap;
    test_wal_append;
    test_token;
    test_rng;
    test_send_path;
  ]

let run () =
  print_newline ();
  print_endline "== Micro-benchmarks (bechamel, monotonic clock) ==";
  let benchmark test =
    let instance = Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n%!" name est
        | Some _ | None -> Printf.printf "  %-32s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark all_tests
