(* Tiny fixed-width table printer for the experiment reports. *)

let hrule widths =
  let dashes w = String.make (w + 2) '-' in
  "+" ^ String.concat "+" (List.map dashes widths) ^ "+"

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render_row widths cells =
  "| " ^ String.concat " | " (List.map2 pad widths cells) ^ " |"

let print ~title ~header rows =
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> Int.max w (String.length c)) acc row)
      (List.map String.length header)
      all
  in
  Printf.printf "\n== %s ==\n" title;
  print_endline (hrule widths);
  print_endline (render_row widths header);
  print_endline (hrule widths);
  List.iter (fun row -> print_endline (render_row widths row)) rows;
  print_endline (hrule widths)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i x = string_of_int x
