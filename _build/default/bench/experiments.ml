(* The paper-shape experiments E1-E8 (see DESIGN.md §4).  Each experiment
   builds a fresh simulated world, drives it, and prints one table.  All
   numbers are virtual-time measurements, reproducible from the seeds. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Primordial = Dcp_core.Primordial
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Rpc = Dcp_primitives.Rpc
module Sync_send = Dcp_primitives.Sync_send
module Patterns = Dcp_primitives.Patterns
module Types = Dcp_airline.Types
module Flight = Dcp_airline.Flight
module Cluster = Dcp_airline.Cluster
module Workload = Dcp_airline.Workload
module Assoc_mem = Dcp_assoc.Assoc_mem
module Store = Dcp_stable.Store
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine
module Metrics = Dcp_sim.Metrics
module Topology = Dcp_net.Topology
module Network = Dcp_net.Network
module Link = Dcp_net.Link
module Rng = Dcp_rng.Rng

let fresh_name =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d" prefix !n

let driver world ~at body =
  let name = fresh_name "bench_driver" in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1: the three flight-guardian organizations              *)
(* ------------------------------------------------------------------ *)

(* N requests spread over D dates against one flight guardian with a fixed
   per-request service time; the makespan shows which organizations give
   concurrent manipulation of the database. *)
let e1_one_config ~organization ~dates =
  let world =
    Runtime.create_world ~seed:101 ~topology:(Topology.full_mesh ~n:2 Link.perfect) ()
  in
  let service = Clock.ms 10 in
  let total = 32 in
  let flight =
    Flight.create world ~at:0 ~flight:1 ~capacity:1000 ~organization ~service_time:service ()
  in
  let finished = ref 0 in
  let makespan = ref 0 in
  for i = 0 to total - 1 do
    driver world ~at:1 (fun ctx ->
        match
          Rpc.call ctx ~to_:flight ~timeout:(Clock.s 30) "reserve"
            [ Value.str (Printf.sprintf "p%d" i); Value.int (i mod dates) ]
        with
        | Rpc.Reply _ ->
            incr finished;
            if !finished = total then makespan := Runtime.now world
        | Rpc.Failure_msg _ | Rpc.Timeout -> ())
  done;
  Runtime.run_for world (Clock.s 60);
  let makespan_ms = Clock.to_float_ms !makespan in
  let throughput = float_of_int total /. (makespan_ms /. 1000.0) in
  (makespan_ms, throughput, !finished = total)

let e1 () =
  let orgs = [ Types.One_at_a_time; Types.Serializer; Types.Monitor ] in
  let date_counts = [ 1; 2; 4; 8 ] in
  let rows =
    List.concat_map
      (fun organization ->
        List.map
          (fun dates ->
            let makespan, throughput, complete = e1_one_config ~organization ~dates in
            [
              Types.organization_to_string organization;
              Tables.i dates;
              Tables.f1 makespan;
              Tables.f1 throughput;
              (if complete then "yes" else "NO");
            ])
          date_counts)
      orgs
  in
  Tables.print ~title:"E1  Figure 1 organizations: 32 requests, 10ms service time"
    ~header:[ "organization"; "dates"; "makespan ms"; "req/s"; "all served" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 — Figure 2: regional partitioning vs. one central guardian       *)
(* ------------------------------------------------------------------ *)

let e2_run ~centralized ~regions =
  let params =
    {
      Cluster.default_params with
      regions;
      flights_per_region = 4;
      capacity = 10_000;
      service_time = Clock.ms 2;
      clerks_per_region = 2;
      centralized;
      clerk =
        {
          Workload.default_config with
          transactions = 0;
          requests_per_transaction = 5;
          think_time = Clock.ms 20;
          dates = 30;
          request_timeout = Clock.s 2;
        };
    }
  in
  let cluster = Cluster.build params in
  Cluster.run cluster ~duration:(Clock.s 30)

let e2 () =
  let rows =
    List.concat_map
      (fun regions ->
        List.map
          (fun centralized ->
            let r = e2_run ~centralized ~regions in
            [
              Tables.i regions;
              (if centralized then "central" else "regional");
              Tables.f1 r.Cluster.throughput_per_s;
              Tables.f1 (r.Cluster.latency_p50_us /. 1000.0);
              Tables.f1 (r.Cluster.latency_p95_us /. 1000.0);
              Tables.i r.Cluster.requests_failed;
            ])
          [ false; true ])
      [ 2; 4; 8 ]
  in
  Tables.print
    ~title:
      "E2  Figure 2 layout: all flight data behind node 0 (central) vs one region per node \
       (regional), WAN links, 80% region-local traffic"
    ~header:[ "regions"; "layout"; "req/s"; "p50 ms"; "p95 ms"; "failed" ]
    rows

(* Advantage 1 made visible: under a CPU-heavy load (10ms of processor
   time per request, 4 processors per node) the central node saturates —
   every guardian at it competes for the same cycles — while the regional
   layout spreads the same demand over R nodes. *)
let e2b_run ~centralized =
  let params =
    {
      Cluster.default_params with
      regions = 4;
      flights_per_region = 4;
      capacity = 10_000;
      service_time = Clock.ms 10;
      clerks_per_region = 8;
      centralized;
      processors_per_node = 4;
      clerk =
        {
          Workload.default_config with
          transactions = 0;
          requests_per_transaction = 5;
          think_time = Clock.ms 5;
          dates = 30;
          request_timeout = Clock.s 5;
        };
    }
  in
  Cluster.run (Cluster.build params) ~duration:(Clock.s 30)

let e2b () =
  let rows =
    List.map
      (fun centralized ->
        let r = e2b_run ~centralized in
        [
          (if centralized then "central" else "regional");
          Tables.f1 r.Cluster.throughput_per_s;
          Tables.f1 (r.Cluster.latency_p50_us /. 1000.0);
          Tables.f1 (r.Cluster.latency_p95_us /. 1000.0);
        ])
      [ false; true ]
  in
  Tables.print
    ~title:
      "E2b Advantage 1 (processor contention): CPU-heavy load (10ms/request), 4 CPUs per        node, 32 clerks — all guardians on one node compete for its cycles"
    ~header:[ "layout"; "req/s"; "p50 ms"; "p95 ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — Figure 3: guardian creation, local vs through the primordial   *)
(* ------------------------------------------------------------------ *)

let noop_def = { Runtime.def_name = "e3_noop"; provides = []; init = (fun _ _ -> ()); recover = None }

let e3 () =
  let count = 20 in
  let run_variant remote =
    let world =
      Runtime.create_world ~seed:103 ~topology:(Topology.full_mesh ~n:2 Link.wan) ()
    in
    Primordial.install world;
    Runtime.register_def world noop_def;
    Network.reset_stats (Runtime.network world);
    let latencies = ref [] in
    driver world ~at:0 (fun ctx ->
        for _ = 1 to count do
          let started = Runtime.ctx_now ctx in
          (if remote then
             match
               Primordial.request_create ctx ~at:1 ~def_name:"e3_noop" ~args:[]
                 ~timeout:(Clock.s 5)
             with
             | `Created _ -> ()
             | `Refused _ | `Timeout -> ()
           else ignore (Runtime.ctx_create_guardian ctx ~def_name:"e3_noop" ~args:[]));
          latencies := Clock.to_float_ms (Clock.diff (Runtime.ctx_now ctx) started) :: !latencies
        done);
    Runtime.run_for world (Clock.s 30);
    let net = Network.stats (Runtime.network world) in
    let mean = List.fold_left ( +. ) 0.0 !latencies /. float_of_int count in
    let created =
      List.length
        (List.filter
           (fun g -> Runtime.guardian_node g = if remote then 1 else 0)
           (Runtime.find_guardians world ~def_name:"e3_noop"))
    in
    (mean, float_of_int net.Network.messages_sent /. float_of_int count, created)
  in
  let local_mean, local_msgs, local_created = run_variant false in
  let remote_mean, remote_msgs, remote_created = run_variant true in
  Tables.print
    ~title:"E3  Guardian creation: at own node vs at a remote node via its primordial guardian (WAN)"
    ~header:[ "method"; "created at"; "mean latency ms"; "msgs/creation"; "created" ]
    [
      [ "ctx_create_guardian"; "own node"; Tables.f2 local_mean; Tables.f1 local_msgs; Tables.i local_created ];
      [ "primordial protocol"; "remote node"; Tables.f2 remote_mean; Tables.f1 remote_msgs; Tables.i remote_created ];
    ]

(* ------------------------------------------------------------------ *)
(* E4 — Figures 4-5: transactions under node crashes + idempotency     *)
(* ------------------------------------------------------------------ *)

let e4_crashes () =
  let run_with ~crash_period_s =
    let params =
      {
        Cluster.default_params with
        regions = 3;
        flights_per_region = 3;
        capacity = 10_000;
        service_time = Clock.ms 1;
        clerks_per_region = 2;
        clerk =
          {
            Workload.default_config with
            transactions = 0;
            requests_per_transaction = 4;
            think_time = Clock.ms 20;
            request_timeout = Clock.ms 500;
            attempts = 3;
          };
      }
    in
    let cluster = Cluster.build params in
    let world = cluster.Cluster.world in
    let engine = Runtime.engine world in
    (match crash_period_s with
    | None -> ()
    | Some period ->
        let rng = Rng.split (Runtime.world_rng world) in
        let rec schedule_crash at =
          if at < 60 then
            ignore
              (Engine.schedule engine ~at:(Clock.s at) (fun () ->
                   let victim = Rng.int rng params.Cluster.regions in
                   Runtime.crash_node world victim;
                   ignore
                     (Engine.schedule_after engine ~delay:(Clock.s 2) (fun () ->
                          Runtime.restart_node world victim));
                   schedule_crash (at + period)))
        in
        schedule_crash period);
    Cluster.run cluster ~duration:(Clock.s 60)
  in
  let rows =
    List.map
      (fun (label, period) ->
        let r = run_with ~crash_period_s:period in
        [
          label;
          Tables.i r.Cluster.transactions_completed;
          Tables.i r.Cluster.transactions_abandoned;
          Tables.i r.Cluster.requests_failed;
          Tables.f1 r.Cluster.throughput_per_s;
        ])
      [ ("no crashes", None); ("crash every 20s", Some 20); ("crash every 8s", Some 8) ]
  in
  Tables.print
    ~title:
      "E4a Figure 5 transactions under regional-node crashes (2s outages, timeout+retry \
       clerks, transactions forgotten on front-desk crash)"
    ~header:[ "failure rate"; "txn done"; "txn abandoned"; "request failures"; "req/s" ]
    rows

(* Idempotency ablation: same lossy workload against idempotent-set vs
   naive-counter accounting; retries duplicate effects only for the naive
   design.  Seats are counted from the guardians' own stable stores. *)
let e4_idempotency () =
  let run_with ~accounting =
    let world =
      Runtime.create_world ~seed:104 ~topology:(Topology.full_mesh ~n:2 (Link.lossy 0.15)) ()
    in
    let flight =
      Flight.create world ~at:0 ~flight:1 ~capacity:100_000 ~accounting
        ~service_time:(Clock.us 100) ()
    in
    let oks = ref 0 in
    let total = 150 in
    driver world ~at:1 (fun ctx ->
        for i = 0 to total - 1 do
          match
            Rpc.call ctx ~to_:flight ~timeout:(Clock.ms 100) ~attempts:5 "reserve"
              [ Value.str (Printf.sprintf "p%d" i); Value.int (i mod 20) ]
          with
          | Rpc.Reply (("ok" | "pre_reserved"), _) -> incr oks
          | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ()
        done);
    Runtime.run_for world (Clock.s 120);
    (* Count seats actually consumed, from the flight guardian's store. *)
    let seats = ref 0 in
    List.iter
      (fun g ->
        let store = Runtime.guardian_store g in
        Store.fold store ~init:() ~f:(fun ~key value () ->
            match String.split_on_char ':' key with
            | [ "r"; _; _ ] -> incr seats
            | [ "c"; _ ] -> seats := !seats + int_of_string value
            | _ -> ()))
      (Runtime.find_guardians world ~def_name:Flight.def_name);
    (!oks, !seats)
  in
  let rows =
    List.map
      (fun (label, accounting) ->
        let oks, seats = run_with ~accounting in
        [ label; Tables.i oks; Tables.i seats; Tables.i (seats - oks) ])
      [
        ("idempotent set (paper)", Types.Idempotent_set);
        ("naive counter", Types.Naive_counter);
      ]
  in
  Tables.print
    ~title:
      "E4b Idempotency ablation: 150 distinct reserves over a 15%-loss link with up to 5 \
       attempts each (duplicate deliveries happen)"
    ~header:[ "accounting"; "acks at clerk"; "seats consumed"; "phantom seats" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5 — §3: message cost of the three primitives on the three patterns *)
(* ------------------------------------------------------------------ *)

type primitive = No_wait | Synchronization | Remote_transaction

let primitive_name = function
  | No_wait -> "no-wait"
  | Synchronization -> "sync send"
  | Remote_transaction -> "rpc"

(* The endpoint guardian plays the server side for every scenario.  The
   sync-send variants carry an explicit response port as an argument (the
   reply_to slot is occupied by the acknowledgement port), and responses
   themselves travel synchronized — under that primitive *every* transfer
   blocks for its ack, which is exactly where the extra messages and the
   serialization come from. *)
let e5_endpoint world ~at ~delegate_to =
  let name = fresh_name "e5_endpoint" in
  let items_seen = ref 0 in
  let def =
    {
      Runtime.def_name = name;
      provides = [ ([ Vtype.wildcard ], 1024) ];
      init =
        (fun ctx _ ->
          let rec loop () =
            (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
            | `Timeout -> ()
            | `Msg (_, msg) -> (
                match (msg.Message.command, msg.Message.args) with
                | "item", _ -> incr items_seen
                | "item_sync", _ ->
                    incr items_seen;
                    Sync_send.acknowledge ctx msg
                | "item_rpc", _ ->
                    incr items_seen;
                    Rpc.serve_always ctx msg ~f:(fun _ _ -> ("item_done", []))
                | "request", _ -> (
                    match msg.Message.reply_to with
                    | Some reply -> Runtime.send ctx ~to_:reply "response" []
                    | None -> ())
                | "request_sync", [ Value.Portv resp ] ->
                    Sync_send.acknowledge ctx msg;
                    ignore (Sync_send.send ctx ~to_:resp "response" [])
                | "request_rpc", _ -> Rpc.serve_always ctx msg ~f:(fun _ _ -> ("response", []))
                | "confirm", _ -> (
                    match msg.Message.reply_to with
                    | Some reply ->
                        Runtime.send ctx ~to_:reply "confirmed" [ Value.int !items_seen ]
                    | None -> ())
                | "confirm_sync", [ Value.Portv resp ] ->
                    Sync_send.acknowledge ctx msg;
                    ignore (Sync_send.send ctx ~to_:resp "confirmed" [ Value.int !items_seen ])
                | "confirm_rpc", _ ->
                    Rpc.serve_always ctx msg ~f:(fun _ _ ->
                        ("confirmed", [ Value.int !items_seen ]))
                | "job", _ -> (
                    (* pattern 3: forward, keeping the original reply port,
                       so the worker answers the client directly *)
                    match delegate_to with
                    | Some target ->
                        Patterns.delegate_as ctx ~to_:target ~command:"request" ~args:[] msg
                    | None -> ())
                | "job_sync", [ Value.Portv resp ] -> (
                    Sync_send.acknowledge ctx msg;
                    match delegate_to with
                    | Some target ->
                        ignore
                          (Sync_send.send ctx ~to_:target "request_sync"
                             [ Value.port resp ])
                    | None -> ())
                | "job_rpc", _ -> (
                    match delegate_to with
                    | Some target ->
                        Rpc.serve_always ctx msg ~f:(fun _ _ ->
                            match
                              Rpc.call ctx ~to_:target ~timeout:(Clock.s 5) "request_rpc" []
                            with
                            | Rpc.Reply _ -> ("response", [])
                            | Rpc.Failure_msg _ | Rpc.Timeout ->
                                ("failure", [ Value.str "worker" ]))
                    | None -> ())
                | _ -> ()));
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world def;
  let g = Runtime.create_guardian world ~at ~def_name:name ~args:[] in
  List.hd (Runtime.guardian_ports g)

let e5_world () =
  Runtime.create_world ~seed:105
    ~topology:(Topology.full_mesh ~n:3 { Link.perfect with base_latency = Clock.ms 10 })
    ()

(* Run one (pattern, primitive) cell; returns (messages, completion ms). *)
let e5_cell ~pattern ~primitive =
  let world = e5_world () in
  let items = 8 in
  let worker = e5_endpoint world ~at:2 ~delegate_to:None in
  let endpoint = e5_endpoint world ~at:1 ~delegate_to:(Some worker) in
  let finish = ref 0 in
  Network.reset_stats (Runtime.network world);
  driver world ~at:0 (fun ctx ->
      (* sync-send cells receive the actual response on an explicit port *)
      let sync_request command =
        let resp = Runtime.new_port ctx [ Vtype.wildcard ] in
        ignore (Sync_send.send ctx ~to_:endpoint command [ Value.port (Port.name resp) ]);
        (match Sync_send.receive_synchronized ctx ~timeout:(Clock.s 5) [ resp ] with
        | `Msg _ | `Timeout -> ());
        Runtime.remove_port ctx resp
      in
      (match (pattern, primitive) with
      | `Request_response, No_wait -> (
          match
            Patterns.request_response ctx ~to_:endpoint ~timeout:(Clock.s 5) "request" []
          with
          | `Reply _ | `Timeout -> ())
      | `Request_response, Synchronization -> sync_request "request_sync"
      | `Request_response, Remote_transaction -> (
          match Rpc.call ctx ~to_:endpoint ~timeout:(Clock.s 5) "request_rpc" [] with
          | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ())
      | `Stream_confirm, No_wait ->
          let batch = List.init items (fun i -> ("item", [ Value.int i ])) in
          ignore
            (Patterns.stream_then_confirm ctx ~to_:endpoint ~items:batch ~confirm:"confirm"
               ~timeout:(Clock.s 5) ())
      | `Stream_confirm, Synchronization ->
          List.iter
            (fun i -> ignore (Sync_send.send ctx ~to_:endpoint "item_sync" [ Value.int i ]))
            (List.init items Fun.id);
          sync_request "confirm_sync"
      | `Stream_confirm, Remote_transaction ->
          List.iter
            (fun i ->
              match
                Rpc.call ctx ~to_:endpoint ~timeout:(Clock.s 5) "item_rpc" [ Value.int i ]
              with
              | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ())
            (List.init items Fun.id);
          (match Rpc.call ctx ~to_:endpoint ~timeout:(Clock.s 5) "confirm_rpc" [] with
          | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ())
      | `Delegated, No_wait -> (
          (* ask the broker; the response comes directly from the worker *)
          match Patterns.request_response ctx ~to_:endpoint ~timeout:(Clock.s 5) "job" [] with
          | `Reply _ | `Timeout -> ())
      | `Delegated, Synchronization -> sync_request "job_sync"
      | `Delegated, Remote_transaction -> (
          match Rpc.call ctx ~to_:endpoint ~timeout:(Clock.s 5) "job_rpc" [] with
          | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ()));
      finish := Runtime.now world);
  Runtime.run_for world (Clock.s 20);
  let net = Network.stats (Runtime.network world) in
  (net.Network.messages_sent, Clock.to_float_ms !finish)

let e5 () =
  let patterns =
    [
      (`Request_response, "1: request/response");
      (`Stream_confirm, "2: 8 requests, 1 response");
      (`Delegated, "3: delegated response");
    ]
  in
  let primitives = [ No_wait; Synchronization; Remote_transaction ] in
  let rows =
    List.concat_map
      (fun (pattern, pattern_label) ->
        List.map
          (fun primitive ->
            let messages, ms = e5_cell ~pattern ~primitive in
            [ pattern_label; primitive_name primitive; Tables.i messages; Tables.f1 ms ])
          primitives)
      patterns
  in
  Tables.print
    ~title:
      "E5  §3 send primitives vs the three exchange patterns (10ms links): the no-wait send \
       needs the fewest messages on every pattern"
    ~header:[ "pattern"; "primitive"; "messages"; "completion ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6 — §3.3: transmitting abstract values between representations     *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let rng = Rng.create ~seed:106 in
  let row size =
    let pairs =
      List.init size (fun i -> (Printf.sprintf "key%06d" i, Value.int (Rng.int rng 1_000_000)))
    in
    let hash_side = Assoc_mem.of_alist ~rep:Assoc_mem.Hash pairs in
    let wire = Transmit.to_value Assoc_mem.transmit_hash hash_side in
    let encoded = Codec.encode_exn wire in
    let tree_side = Transmit.of_value Assoc_mem.transmit_tree (Codec.decode_exn encoded) in
    let faithful = Assoc_mem.equal hash_side tree_side in
    (* virtual transfer time over a WAN at 1 MB/s with 30 ms latency *)
    let link = Link.wan in
    let bytes = String.length encoded in
    let transfer_ms =
      Clock.to_float_ms link.Link.base_latency
      +. (float_of_int bytes /. 1_000_000.0 *. 1000.0)
    in
    [
      Tables.i size;
      Tables.i bytes;
      Tables.f2 (float_of_int bytes /. float_of_int (Int.max 1 size));
      Tables.f1 transfer_ms;
      (if faithful then "yes" else "NO");
      (if Assoc_mem.tree_is_balanced tree_side then "yes" else "NO");
    ]
  in
  Tables.print
    ~title:
      "E6  §3.3 associative memory crossing representations (hash-table node -> AVL-tree \
       node) through the single external rep"
    ~header:[ "entries"; "wire bytes"; "bytes/entry"; "WAN transfer ms"; "faithful"; "balanced" ]
    (List.map row [ 10; 100; 1000; 5000 ]);
  (* Integer bounds enforcement (the 24-bit story). *)
  let in_bounds = Codec.encode ~config:Codec.config_1979 (Value.int 8_388_607) in
  let out_of_bounds = Codec.encode ~config:Codec.config_1979 (Value.int 8_388_608) in
  Tables.print ~title:"E6b §3.3 system-wide integer bounds (24-bit configuration)"
    ~header:[ "value"; "encodes" ]
    [
      [ "2^23 - 1"; (match in_bounds with Ok _ -> "yes" | Error _ -> "NO") ];
      [ "2^23"; (match out_of_bounds with Ok _ -> "yes (BUG)" | Error _ -> "rejected") ];
    ]

(* ------------------------------------------------------------------ *)
(* E7 — §2.2: permanence of effect across crashes                      *)
(* ------------------------------------------------------------------ *)

let e7_run ~tear_p =
  let config = { Runtime.default_config with crash_tear_p = tear_p } in
  let world =
    Runtime.create_world ~seed:107 ~topology:(Topology.full_mesh ~n:2 Link.perfect) ~config ()
  in
  let flight =
    Flight.create world ~at:0 ~flight:1 ~capacity:1000 ~service_time:(Clock.us 100) ()
  in
  let acked : (string * int) list ref = ref [] in
  let crashes = 5 and batch = 10 in
  driver world ~at:1 (fun ctx ->
      for c = 0 to crashes - 1 do
        for i = 0 to batch - 1 do
          let passenger = Printf.sprintf "p%d.%d" c i in
          let date = i mod 5 in
          match
            Rpc.call ctx ~to_:flight ~timeout:(Clock.ms 200) "reserve"
              [ Value.str passenger; Value.int date ]
          with
          | Rpc.Reply ("ok", _) -> acked := (passenger, date) :: !acked
          | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ()
        done;
        Runtime.crash_node world 0;
        Runtime.restart_node world 0;
        Runtime.sleep ctx (Clock.ms 10)
      done);
  Runtime.run_for world (Clock.s 60);
  (* Which acknowledged reservations survived in the recovered store? *)
  let survived (passenger, date) =
    List.exists
      (fun g ->
        let store = Runtime.guardian_store g in
        (not (Store.is_crashed store))
        && Store.mem store ~key:(Printf.sprintf "r:%d:%s" date passenger))
      (Runtime.find_guardians world ~def_name:Flight.def_name)
  in
  let acked_list = !acked in
  let lost = List.filter (fun entry -> not (survived entry)) acked_list in
  (List.length acked_list, List.length lost)

let e7 () =
  let rows =
    List.map
      (fun tear_p ->
        let acked, lost = e7_run ~tear_p in
        [
          Tables.f2 tear_p;
          Tables.i acked;
          Tables.i (acked - lost);
          Tables.i lost;
          Tables.i 5;
        ])
      [ 0.0; 0.5; 1.0 ]
  in
  Tables.print
    ~title:
      "E7  §2.2 permanence of effect: 50 acknowledged reserves across 5 node crashes; a torn \
       final log record can lose at most the last write per crash"
    ~header:[ "tear prob"; "acked"; "survived"; "acked lost"; "crashes" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8 — §3.4: the delivery contract                                    *)
(* ------------------------------------------------------------------ *)

let e8_run ~loss =
  let link = { (Link.lossy loss) with base_latency = Clock.ms 5; jitter = Clock.ms 5 } in
  let world =
    Runtime.create_world ~seed:108 ~topology:(Topology.full_mesh ~n:2 link) ()
  in
  (* A sink guardian with a tiny, slowly drained port so the buffer can
     overflow, plus a dead target to draw failure messages. *)
  let sink_name = fresh_name "e8_sink" in
  let received = ref [] in
  let sink_def =
    {
      Runtime.def_name = sink_name;
      provides = [ ([ Vtype.wildcard ], 8) ];
      init =
        (fun ctx _ ->
          let rec loop () =
            (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
            | `Timeout -> ()
            | `Msg (_, msg) -> (
                match msg.Message.args with
                | [ Value.Int i ] -> received := i :: !received
                | _ -> ()));
            Runtime.sleep ctx (Clock.ms 2);
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world sink_def;
  let sink = Runtime.create_guardian world ~at:1 ~def_name:sink_name ~args:[] in
  let sink_port = List.hd (Runtime.guardian_ports sink) in
  let total = 200 in
  let failures = ref 0 in
  driver world ~at:0 (fun ctx ->
      let reply = Runtime.new_port ctx ~capacity:1024 [ Vtype.wildcard ] in
      for i = 0 to total - 1 do
        Runtime.send ctx ~to_:sink_port ~reply_to:(Port.name reply) "item" [ Value.int i ];
        Runtime.sleep ctx (Clock.ms 1)
      done;
      let rec drain () =
        match Runtime.receive ctx ~timeout:(Clock.s 2) [ reply ] with
        | `Msg (_, msg) ->
            if Message.is_failure msg then incr failures;
            drain ()
        | `Timeout -> ()
      in
      drain ());
  Runtime.run_for world (Clock.s 30);
  let arrived = List.rev !received in
  let inversions =
    let rec count acc = function
      | a :: (b :: _ as rest) -> count (if a > b then acc + 1 else acc) rest
      | [ _ ] | [] -> acc
    in
    count 0 arrived
  in
  let delivered = List.length arrived in
  (delivered, !failures, total - delivered - !failures, inversions)

let e8 () =
  let rows =
    List.map
      (fun loss ->
        let delivered, failures, silent, inversions = e8_run ~loss in
        [
          Tables.f2 loss;
          Tables.i delivered;
          Tables.i failures;
          Tables.i silent;
          Tables.i inversions;
        ])
      [ 0.0; 0.01; 0.1; 0.3 ]
  in
  Tables.print
    ~title:
      "E8  §3.4 delivery contract: 200 sends over a jittery link into a capacity-8 port \
       drained at 500/s; drops at a full port produce failure(...), link loss is silent, \
       jitter reorders"
    ~header:[ "link loss"; "delivered"; "failure msgs"; "silent loss"; "reorderings" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9 — atomic multi-leg bookings (2PC) vs naive sequential booking     *)
(* ------------------------------------------------------------------ *)

(* Two-leg trips where the second leg is the scarce one (leg 1 has twice
   the seats): the naive booker reserves leg 1 first and discovers leg 2
   is full only afterwards, stranding the passenger with half a trip.  The
   two-phase itinerary aborts cleanly and releases the hold. *)
let e9_run ~atomic ~passengers =
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  let world =
    Runtime.create_world ~seed:109 ~topology:(Topology.full_mesh ~n:4 Link.perfect) ~config ()
  in
  let scarce = 10 in
  let f1 =
    Flight.create world ~at:0 ~flight:1 ~capacity:(2 * scarce) ~waitlist_capacity:0
      ~service_time:(Clock.us 100) ()
  in
  let f2 =
    Flight.create world ~at:1 ~flight:2 ~capacity:scarce ~waitlist_capacity:0
      ~service_time:(Clock.us 100) ()
  in
  let itinerary = Dcp_airline.Itinerary.create world ~at:2 ~directory:[ (1, f1); (2, f2) ] () in
  let booked = ref 0 and stranded = ref 0 and refused = ref 0 in
  let command = if atomic then "book_trip" else "book_naive" in
  for i = 1 to passengers do
    driver world ~at:3 (fun ctx ->
        let legs =
          Value.list
            [ Value.tuple [ Value.int 1; Value.int 0 ]; Value.tuple [ Value.int 2; Value.int 0 ] ]
        in
        match
          Rpc.call ctx ~to_:itinerary ~timeout:(Clock.s 10) command
            [ Value.str (Printf.sprintf "p%d" i); legs ]
        with
        | Rpc.Reply ("booked", _) -> incr booked
        | Rpc.Reply ("stranded", _) -> incr stranded
        | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> incr refused)
  done;
  Runtime.run_for world (Clock.s 60);
  (!booked, !stranded, !refused)

let e9 () =
  let rows =
    List.concat_map
      (fun passengers ->
        List.map
          (fun atomic ->
            let booked, stranded, refused = e9_run ~atomic ~passengers in
            [
              Tables.i passengers;
              (if atomic then "2PC itinerary" else "naive sequential");
              Tables.i booked;
              Tables.i stranded;
              Tables.i refused;
            ])
          [ true; false ])
      [ 10; 20; 40 ]
  in
  Tables.print
    ~title:
      "E9  Atomic two-leg trips over 2PC vs naive sequential booking; leg 1 has 20 seats,        leg 2 only 10 (stranded = passengers left holding half a trip)"
    ~header:[ "passengers"; "method"; "booked"; "stranded"; "refused clean" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 — §3.4: the price of ordering                                    *)
(* ------------------------------------------------------------------ *)

(* "If the order is important, processes must coordinate to achieve it":
   the Ordered channel (sequence numbers, retransmission, acks) vs bare
   no-wait sends, under increasing loss.  Bare sends are cheap and lossy
   and arrive shuffled; the channel pays transmissions and acks for
   exactly-once FIFO delivery. *)
let e10_cell ~loss ~ordered =
  let module Ordered = Dcp_primitives.Ordered in
  let link = { (Link.lossy loss) with base_latency = Clock.ms 2; jitter = Clock.ms 10 } in
  let world = Runtime.create_world ~seed:110 ~topology:(Topology.full_mesh ~n:2 link) () in
  let count = 100 in
  let received = ref [] in
  let port_cell = ref None in
  let receiver_name = fresh_name "e10_rx" in
  let receiver_def =
    {
      Runtime.def_name = receiver_name;
      provides = [ ([ Vtype.wildcard ], 256) ];
      init =
        (fun ctx _ ->
          if ordered then begin
            let receiver = Ordered.receiver ctx ~capacity:256 () in
            port_cell := Some (Ordered.receiver_port receiver);
            let rec pull () =
              match Ordered.recv receiver ~timeout:(Clock.s 2) () with
              | Some (Value.Int n) ->
                  received := n :: !received;
                  pull ()
              | Some _ -> pull ()
              | None -> ()
            in
            pull ()
          end
          else begin
            port_cell := Some (Port.name (Runtime.port ctx 0));
            let rec pull () =
              match Runtime.receive ctx ~timeout:(Clock.s 2) [ Runtime.port ctx 0 ] with
              | `Msg (_, { Message.args = [ Value.Int n ]; _ }) ->
                  received := n :: !received;
                  pull ()
              | `Msg _ -> pull ()
              | `Timeout -> ()
            in
            pull ()
          end);
      recover = None;
    }
  in
  Runtime.register_def world receiver_def;
  ignore (Runtime.create_guardian world ~at:1 ~def_name:receiver_name ~args:[]);
  let transmissions = ref 0 in
  driver world ~at:0 (fun ctx ->
      let rec wait_port () =
        match !port_cell with
        | Some port -> port
        | None ->
            Runtime.sleep ctx (Clock.ms 1);
            wait_port ()
      in
      let dest = wait_port () in
      if ordered then begin
        let sender = Ordered.connect ctx ~to_:dest ~retransmit_every:(Clock.ms 60) () in
        for i = 0 to count - 1 do
          Ordered.send sender (Value.int i)
        done;
        ignore (Ordered.flush sender ~timeout:(Clock.s 60));
        transmissions := Ordered.messages_sent sender;
        Ordered.close sender
      end
      else begin
        for i = 0 to count - 1 do
          Runtime.send ctx ~to_:dest "item" [ Value.int i ]
        done;
        transmissions := count
      end);
  Runtime.run_for world (Clock.s 90);
  let arrived = List.rev !received in
  let in_order = List.sort Int.compare arrived = arrived in
  let unique = List.sort_uniq Int.compare arrived in
  (!transmissions, List.length unique, List.length arrived - List.length unique, in_order)

let e10 () =
  let rows =
    List.concat_map
      (fun loss ->
        List.map
          (fun ordered ->
            let transmissions, delivered, dupes, in_order = e10_cell ~loss ~ordered in
            [
              Tables.f2 loss;
              (if ordered then "ordered channel" else "bare no-wait");
              Tables.i transmissions;
              Tables.i delivered;
              Tables.i dupes;
              (if in_order then "yes" else "NO");
            ])
          [ false; true ])
      [ 0.0; 0.05; 0.15; 0.3 ]
  in
  Tables.print
    ~title:
      "E10 §3.4 the price of ordering: 100 payloads over a jittery link; the Ordered        channel (seq/ack/retransmit over no-wait) vs bare no-wait sends"
    ~header:[ "loss"; "method"; "data msgs sent"; "delivered"; "dup deliveries"; "in order" ]
    rows

let run_all () =
  e1 ();
  e2 ();
  e2b ();
  e3 ();
  e4_crashes ();
  e4_idempotency ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ()
