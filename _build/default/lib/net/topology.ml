type node_id = int

type t = {
  node_list : node_id list;
  pick : src:node_id -> dst:node_id -> Link.t;
  clusters : (node_id * int) list;  (** node -> cluster index, when meaningful *)
}

let nodes t = t.node_list
let size t = List.length t.node_list
let mem t id = List.mem id t.node_list

let link t ~src ~dst =
  if not (mem t src) then invalid_arg "Topology.link: unknown source node";
  if not (mem t dst) then invalid_arg "Topology.link: unknown destination node";
  if src = dst then Link.perfect else t.pick ~src ~dst

let full_mesh ~n link =
  if n <= 0 then invalid_arg "Topology.full_mesh: n must be positive";
  { node_list = List.init n Fun.id; pick = (fun ~src:_ ~dst:_ -> link); clusters = [] }

let clusters ~sizes ~local ~long_haul =
  if sizes = [] || List.exists (fun s -> s <= 0) sizes then
    invalid_arg "Topology.clusters: sizes must be positive";
  let assignment =
    List.concat (List.mapi (fun cluster size -> List.init size (fun _ -> cluster)) sizes)
  in
  let tagged = List.mapi (fun node cluster -> (node, cluster)) assignment in
  let gateway_path = Link.compose local (Link.compose long_haul local) in
  let pick ~src ~dst =
    let c1 = List.assoc src tagged and c2 = List.assoc dst tagged in
    if c1 = c2 then local else gateway_path
  in
  { node_list = List.map fst tagged; pick; clusters = tagged }

let star ~n ~hub ~spoke =
  if n <= 0 then invalid_arg "Topology.star: n must be positive";
  if hub < 0 || hub >= n then invalid_arg "Topology.star: hub out of range";
  let two_hop = Link.compose spoke spoke in
  let pick ~src ~dst = if src = hub || dst = hub then spoke else two_hop in
  { node_list = List.init n Fun.id; pick; clusters = [] }

let custom ~nodes pick = { node_list = nodes; pick; clusters = [] }
let cluster_of t id = List.assoc_opt id t.clusters
