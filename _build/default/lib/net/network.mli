(** The simulated network: best-effort datagram delivery between nodes.

    Implements exactly the delivery contract of §3.4: "The system will
    attempt to deliver the message to the receiving node intact and in good
    condition; the delivery is not guaranteed, but will happen with high
    probability", and "no guarantee about arrival order is made".

    A message (opaque byte string) handed to {!send} is fragmented over the
    MTU, each fragment traverses the pair's {!Link} (where it may be lost,
    duplicated, corrupted or delayed), corrupt fragments are discarded on
    arrival via their CRC, and the destination's handler fires once all
    fragments have been reassembled.  Partitions drop all traffic between
    separated nodes; a down node receives nothing. *)

type node_id = Topology.node_id

type t

type stats = {
  messages_sent : int;
  messages_delivered : int;
  fragments_sent : int;
  fragments_lost : int;
  fragments_corrupted : int;
  fragments_duplicated : int;
  partition_drops : int;
  bytes_sent : int;
}

val create :
  engine:Dcp_sim.Engine.t ->
  rng:Dcp_rng.Rng.t ->
  topology:Topology.t ->
  ?mtu:int ->
  ?queueing:bool ->
  unit ->
  t
(** Default MTU is 1024 payload bytes per fragment.  With [queueing:true]
    (default false), bandwidth-limited links serve fragments FIFO: two
    simultaneous transfers on one link share its capacity instead of each
    seeing the full bandwidth — transmission delays then include queueing
    behind earlier fragments. *)

val engine : t -> Dcp_sim.Engine.t
val topology : t -> Topology.t

val set_handler : t -> node_id -> (src:node_id -> string -> unit) -> unit
(** Install the upcall invoked when a whole message arrives at a node.
    Installing replaces any previous handler. *)

val clear_handler : t -> node_id -> unit
(** A node without a handler silently discards arriving messages (it is
    "down" from the network's point of view). *)

val send : t -> src:node_id -> dst:node_id -> string -> unit
(** Fire-and-forget transmission — the no-wait substrate.  Returns as soon
    as the fragments are scheduled; nothing is reported to the sender,
    matching the paper's send semantics. *)

val partition : t -> node_id list list -> unit
(** Install a partition: nodes in different groups cannot exchange traffic.
    Nodes absent from every group can talk to nobody. Replaces any previous
    partition. *)

val heal : t -> unit
(** Remove the partition. *)

val partitioned : t -> src:node_id -> dst:node_id -> bool

val stats : t -> stats
val reset_stats : t -> unit
