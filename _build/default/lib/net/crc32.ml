let polynomial = 0xedb88320l

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor (Int32.shift_right_logical !c 1) polynomial
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let init = 0xffffffffl
let finalize crc = Int32.logxor crc 0xffffffffl

let update crc ch =
  let table = Lazy.force table in
  let index = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int (Char.code ch))) 0xffl) in
  Int32.logxor (Int32.shift_right_logical crc 8) table.(index)

let digest_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Crc32.digest_sub";
  let crc = ref init in
  for i = pos to pos + len - 1 do
    crc := update !crc (Bytes.get b i)
  done;
  finalize !crc

let digest_bytes b = digest_sub b ~pos:0 ~len:(Bytes.length b)
let digest_string s = digest_bytes (Bytes.unsafe_of_string s)
