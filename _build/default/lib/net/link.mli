(** Link models: the fault and delay behaviour of one directed network path.

    A link samples, per fragment, whether the fragment is lost, duplicated or
    corrupted, and what propagation delay it experiences.  Jittered delays
    naturally yield the unordered delivery of §3.4 ("even two messages sent
    by a single process to the same port are not guaranteed to arrive in the
    same order").  Bandwidth, when finite, adds a serialization delay
    proportional to fragment size. *)

type t = {
  base_latency : Dcp_sim.Clock.time;  (** fixed propagation delay *)
  jitter : Dcp_sim.Clock.time;  (** exponential jitter with this mean; 0 disables *)
  loss : float;  (** per-fragment drop probability *)
  duplicate : float;  (** per-fragment duplication probability *)
  corrupt : float;  (** per-fragment bit-flip probability *)
  bandwidth : int option;  (** bytes/second; [None] = infinite *)
}

val perfect : t
(** Zero-latency, fault-free link (useful in unit tests). *)

val lan : t
(** ~200us latency, small jitter, tiny loss: a 1979-vintage local network. *)

val wan : t
(** ~30ms latency, heavy jitter, 1% loss: a long-haul path. *)

val lossy : float -> t
(** LAN-like link with the given loss probability. *)

val compose : t -> t -> t
(** [compose a b] models a two-hop path through a gateway: latencies add,
    bandwidth is the minimum, and every fault probability (loss, corruption,
    duplication alike) composes as independent per-hop events:
    [1 - (1-p_a)(1-p_b)]. *)

(** Outcome of offering one fragment to the link. *)
type verdict =
  | Deliver of Dcp_sim.Clock.time list
      (** Deliver a copy after each listed delay (two entries = duplicate). *)
  | Corrupt_deliver of Dcp_sim.Clock.time
      (** Deliver after the delay, with a bit flipped in flight. *)
  | Drop

val transmit : t -> ?include_serialization:bool -> Dcp_rng.Rng.t -> size:int -> verdict
(** Sample the fate of one [size]-byte fragment.  With
    [include_serialization:false] the delays cover propagation only; the
    caller accounts for transmission time itself (used by the network's
    queueing mode, where concurrent fragments share the link capacity). *)

val serialization_time : t -> size:int -> Dcp_sim.Clock.time
(** Time to clock [size] bytes onto the wire; 0 for infinite bandwidth. *)
