(** Topologies: which link a (source, destination) node pair traverses.

    §1.1 assumes only that the network "supports communication between any
    pair of nodes" — it may be shorthaul, longhaul, "or some combination with
    gateways in between; these details are invisible at the programmer
    level".  A topology captures those invisible details as an effective
    per-pair link.  Multi-hop paths are modelled by {!Link.compose}. *)

type node_id = int

type t

val nodes : t -> node_id list
val size : t -> int

val link : t -> src:node_id -> dst:node_id -> Link.t
(** Effective link for a pair.  A node talking to itself gets a perfect
    link.  @raise Invalid_argument for unknown nodes. *)

val mem : t -> node_id -> bool

(** {1 Builders} *)

val full_mesh : n:int -> Link.t -> t
(** [n] nodes 0..n-1, every distinct pair connected by the given link. *)

val clusters : sizes:int list -> local:Link.t -> long_haul:Link.t -> t
(** LAN clusters joined by gateways: nodes in the same cluster use [local];
    nodes in different clusters traverse [local → long_haul → local]. *)

val star : n:int -> hub:node_id -> spoke:Link.t -> t
(** Every non-hub pair communicates through the hub ([spoke] composed with
    itself); hub↔spoke pairs use [spoke] directly. *)

val custom : nodes:node_id list -> (src:node_id -> dst:node_id -> Link.t) -> t
(** Arbitrary link function over an explicit node set. *)

val cluster_of : t -> node_id -> int option
(** For topologies built with {!clusters}: index of the node's cluster. *)
