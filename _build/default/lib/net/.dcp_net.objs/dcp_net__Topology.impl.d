lib/net/topology.ml: Fun Link List
