lib/net/packet.mli: Dcp_rng Dcp_sim
