lib/net/network.mli: Dcp_rng Dcp_sim Topology
