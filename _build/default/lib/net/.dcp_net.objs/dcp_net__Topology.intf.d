lib/net/topology.mli: Link
