lib/net/link.mli: Dcp_rng Dcp_sim
