lib/net/network.ml: Dcp_rng Dcp_sim Hashtbl Int Link List Option Packet Topology
