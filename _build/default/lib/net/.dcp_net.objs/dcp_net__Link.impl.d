lib/net/link.ml: Dcp_rng Dcp_sim Int
