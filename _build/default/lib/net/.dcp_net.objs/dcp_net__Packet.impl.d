lib/net/packet.ml: Array Bytes Char Crc32 Dcp_rng Dcp_sim Hashtbl Int Int32 List String
