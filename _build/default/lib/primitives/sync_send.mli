(** The synchronization send (Hoare/CSP), built on the no-wait send.

    §3: "The sending process waits until the message has been received by
    the target process" — and the paper's argument: the no-wait send "can be
    used to implement the others, but not vice versa (if extra message
    passing is to be avoided)".  This module is that construction: the
    sender attaches an acknowledgement port; a cooperating receiver
    acknowledges the moment it takes the message, *before* acting on it.
    Every exchange therefore costs two messages where a bare no-wait send
    costs one — the overhead experiment E5 measures. *)

open Dcp_wire
module Clock = Dcp_sim.Clock

val ack_reply : Vtype.reply
(** The implicit [ack()] reply carried by synchronized sends. *)

type outcome =
  | Received  (** the target process took the message *)
  | Failed of string  (** the system reported the message undeliverable *)
  | Timed_out
      (** no acknowledgement within the timeout — the sender knows nothing,
          the usual post-timeout uncertainty of §3.5 *)

val send :
  Dcp_core.Runtime.ctx ->
  to_:Port_name.t ->
  ?timeout:Clock.time ->
  string ->
  Value.t list ->
  outcome
(** Blocking send: returns once the receiver acknowledged (or on
    failure/timeout).  Default timeout 10 s of virtual time. *)

val acknowledge : Dcp_core.Runtime.ctx -> Dcp_core.Message.t -> unit
(** Receiver side: acknowledge a message taken from a port.  A no-op when
    the message carries no reply port (the sender used plain no-wait). *)

val receive_synchronized :
  Dcp_core.Runtime.ctx ->
  ?timeout:Clock.time ->
  Dcp_core.Port.t list ->
  [ `Msg of Dcp_core.Port.t * Dcp_core.Message.t | `Timeout ]
(** [receive] that acknowledges each message as it is taken. *)
