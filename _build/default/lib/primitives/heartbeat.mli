(** Heartbeat failure detection.

    §3.5's failure handling is timeout-driven: "a failure of the regional
    node will cause the timeout arm of the receive statement to be
    selected ... If the time out occurs, nothing is known about the true
    state of affairs."  This module packages that machinery as a reusable
    *failure detector*: a watcher process pings a peer port periodically
    and reports transitions on a notification port —

    {v
    peer_down(misses)   after [misses] consecutive unanswered pings
    peer_up()           when a previously-down peer answers again
    v}

    Like every timeout-based detector it is only *suspicion*: a down
    verdict can be wrong (slow network), and the paper's uncertainty
    discussion applies in full.  The detector exercises the primordial
    guardian's [ping] when watching a node, or any port that answers the
    RPC convention. *)

open Dcp_wire
module Clock = Dcp_sim.Clock

type watcher

val watch :
  Dcp_core.Runtime.ctx ->
  peer:Port_name.t ->
  notify:Port_name.t ->
  ?period:Clock.time ->
  ?ping_timeout:Clock.time ->
  ?misses:int ->
  ?command:string ->
  unit ->
  watcher
(** Spawn a watcher process in this guardian.  Every [period] (default
    500 ms) it sends [command] (default ["ping"], RPC convention) to
    [peer] and waits up to [ping_timeout] (default 200 ms).  After
    [misses] consecutive silent pings (default 3) it sends
    [peer_down(misses)] to [notify]; on the first answer afterwards it
    sends [peer_up()]. *)

val stop : watcher -> unit
(** The watcher process ends at its next tick. *)

val is_suspected : watcher -> bool
(** Current verdict. *)

val watch_node :
  Dcp_core.Runtime.ctx ->
  node:Dcp_core.Runtime.node_id ->
  notify:Port_name.t ->
  ?period:Clock.time ->
  ?ping_timeout:Clock.time ->
  ?misses:int ->
  unit ->
  watcher
(** Watch a whole node through its primordial guardian's ping. *)
