open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Clock = Dcp_sim.Clock

let ack_reply = Vtype.reply "ack" []

type outcome = Received | Failed of string | Timed_out

let ack_port_type = [ Vtype.signature "ack" [] ]

let send ctx ~to_ ?(timeout = Clock.s 10) command args =
  let ack = Runtime.new_port ctx ack_port_type in
  Runtime.send ctx ~to_ ~reply_to:(Port.name ack) command args;
  let outcome =
    match Runtime.receive ctx ~timeout [ ack ] with
    | `Timeout -> Timed_out
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args) with
        | "ack", [] -> Received
        | "failure", [ Value.Str reason ] -> Failed reason
        | _ -> Failed "unexpected acknowledgement")
  in
  Runtime.remove_port ctx ack;
  outcome

let acknowledge ctx msg =
  match msg.Message.reply_to with
  | None -> ()
  | Some reply -> Runtime.send ctx ~to_:reply "ack" []

let receive_synchronized ctx ?timeout ports =
  match Runtime.receive ctx ?timeout ports with
  | `Timeout -> `Timeout
  | `Msg (p, msg) ->
      acknowledge ctx msg;
      `Msg (p, msg)
