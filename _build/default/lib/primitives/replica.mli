(** Distributed simultaneous update: replicated registers.

    §3's first example of the protocols the chosen primitive must express
    is "distributed simultaneous updates" — several nodes accepting writes
    to the same logical datum concurrently.  This module implements the
    classic timestamp solution of that literature: every write is stamped
    with a Lamport clock paired with the origin's id; each replica keeps
    the value with the lexicographically largest stamp (last-writer-wins),
    forwards accepted writes to its peers, and runs periodic anti-entropy
    so replicas that missed an update (lost message, crash) converge.

    Guardian: one replica per node, created with the register's name and
    its peer ports (supplied after creation via [join], since ports only
    exist once every replica does).

    Port (RPC convention):
    {v
    write(key, value)          replies (written(stamp))
    read(key)                  replies (value(v, stamp), unknown_key)
    join(peer_ports)           replies (joined)           -- setup
    gossip(key, value, stamp)                             -- replica to replica
    sync_digest(digest)                                   -- anti-entropy
    v}

    Writes accepted at different replicas during a partition converge to
    the same winner at every replica once connectivity returns — the
    chaos test checks exactly that. *)

open Dcp_wire

val def_name : string
val port_type : Vtype.port_type
val def : Dcp_core.Runtime.def

val create_group :
  Dcp_core.Runtime.world ->
  nodes:Dcp_core.Runtime.node_id list ->
  ?sync_every:Dcp_sim.Clock.time ->
  unit ->
  Port_name.t list
(** Create one replica guardian at each node and introduce them to each
    other.  [sync_every] is the anti-entropy period (default 500 ms).
    Returns the replicas' request ports, in node order. *)

(** {1 Client helpers} *)

val write :
  Dcp_core.Runtime.ctx ->
  replica:Port_name.t ->
  key:string ->
  value:Value.t ->
  timeout:Dcp_sim.Clock.time ->
  bool
(** Write through one replica; [true] on acknowledgement. *)

val read :
  Dcp_core.Runtime.ctx ->
  replica:Port_name.t ->
  key:string ->
  timeout:Dcp_sim.Clock.time ->
  Value.t option
