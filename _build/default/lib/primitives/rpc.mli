(** The remote transaction send (Brinch Hansen), built on the no-wait send.

    §3: "The sending process waits for a response from the receiving process
    that the command has been carried out."  The construction costs a full
    round trip per call and adds what the bare primitives deliberately leave
    out: retry after timeout, and optional at-most-once execution through
    server-side duplicate suppression.

    Requests carry a client-chosen request id as their first argument.
    Servers using {!serve} remember the response for each request id and
    re-send it when a retransmitted duplicate arrives, instead of
    re-executing — the mechanism the paper sidesteps by making reserve and
    cancel idempotent (§3.5).  Experiment E4 compares both designs. *)

open Dcp_wire
module Clock = Dcp_sim.Clock

val request_signature :
  string -> Vtype.t list -> replies:Vtype.reply list -> Vtype.signature
(** Signature for a port serving this RPC: the declared args are prefixed
    with the request id ([Tint]), and every declared reply likewise. *)

type response =
  | Reply of string * Value.t list  (** reply command and its args (id stripped) *)
  | Failure_msg of string  (** system failure(...) on the final attempt *)
  | Timeout  (** every attempt timed out *)

val call :
  Dcp_core.Runtime.ctx ->
  to_:Port_name.t ->
  ?timeout:Clock.time ->
  ?attempts:int ->
  ?request_id:int ->
  string ->
  Value.t list ->
  response
(** Blocking remote invocation.  [attempts] (default 1) is the total number
    of tries; [timeout] (default 1 s virtual) applies per try, as a hard
    deadline from the moment the try's request is sent — stale replies to
    other request ids are discarded without extending it.  Responses to
    earlier tries are accepted — any response to this request id settles the
    call.  [request_id] overrides the generated id: callers that must stay
    idempotent *across their own crashes* (they re-issue the call after
    recovery) derive a stable id from logged state. *)

(** {1 Server side} *)

type dedup
(** Response cache for at-most-once execution, bounded LRU-ish (oldest
    entries evicted beyond a capacity). *)

val dedup : ?capacity:int -> unit -> dedup

val serve :
  Dcp_core.Runtime.ctx ->
  dedup:dedup ->
  Dcp_core.Message.t ->
  f:(string -> Value.t list -> string * Value.t list) ->
  unit
(** Handle one RPC request message: strip the request id, run [f command
    args] to get [(reply_command, reply_args)] — or re-use the cached
    response for a duplicate id — and send it to the request's reply port.
    Messages without an id or reply port are ignored (they are not RPCs). *)

val serve_always :
  Dcp_core.Runtime.ctx ->
  Dcp_core.Message.t ->
  f:(string -> Value.t list -> string * Value.t list) ->
  unit
(** Like {!serve} but with no duplicate suppression: every delivered copy
    executes [f].  Correct only for idempotent operations — the paper's
    choice for reserve/cancel. *)
