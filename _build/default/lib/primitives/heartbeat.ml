open Dcp_wire
module Runtime = Dcp_core.Runtime
module Clock = Dcp_sim.Clock

type watcher = { mutable stopped : bool; mutable suspected : bool }

let watch ctx ~peer ~notify ?(period = Clock.ms 500) ?(ping_timeout = Clock.ms 200)
    ?(misses = 3) ?(command = "ping") () =
  if misses <= 0 then invalid_arg "Heartbeat.watch: misses must be positive";
  let w = { stopped = false; suspected = false } in
  ignore
    (Runtime.spawn ctx ~name:"heartbeat.watch" (fun () ->
         let consecutive = ref 0 in
         let rec tick () =
           if not w.stopped then begin
             (* A fresh RPC per ping; any reply — even failure(...) from the
                peer's node — proves the node is alive and routing. *)
             let answered =
               match Rpc.call ctx ~to_:peer ~timeout:ping_timeout command [] with
               | Rpc.Reply _ -> true
               | Rpc.Failure_msg _ -> true
               | Rpc.Timeout -> false
             in
             if answered then begin
               consecutive := 0;
               if w.suspected then begin
                 w.suspected <- false;
                 Runtime.send ctx ~to_:notify "peer_up" []
               end
             end
             else begin
               incr consecutive;
               if (not w.suspected) && !consecutive >= misses then begin
                 w.suspected <- true;
                 Runtime.send ctx ~to_:notify "peer_down" [ Value.int !consecutive ]
               end
             end;
             Runtime.sleep ctx period;
             tick ()
           end
         in
         tick ()));
  w

let stop w = w.stopped <- true
let is_suspected w = w.suspected

let watch_node ctx ~node ~notify ?period ?ping_timeout ?misses () =
  let peer = Dcp_core.Primordial.port_of (Runtime.ctx_world ctx) node in
  watch ctx ~peer ~notify ?period ?ping_timeout ?misses ()
