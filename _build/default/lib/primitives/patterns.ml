open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Clock = Dcp_sim.Clock

let request_response ctx ~to_ ?(timeout = Clock.s 1) command args =
  let reply_port = Runtime.new_port ctx [ Vtype.wildcard ] in
  Runtime.send ctx ~to_ ~reply_to:(Port.name reply_port) command args;
  let outcome =
    match Runtime.receive ctx ~timeout [ reply_port ] with
    | `Timeout -> `Timeout
    | `Msg (_, msg) -> `Reply msg
  in
  Runtime.remove_port ctx reply_port;
  outcome

let stream_then_confirm ctx ~to_ ~items ~confirm ?(timeout = Clock.s 1) () =
  List.iter (fun (command, args) -> Runtime.send ctx ~to_ command args) items;
  let reply_port = Runtime.new_port ctx [ Vtype.wildcard ] in
  Runtime.send ctx ~to_ ~reply_to:(Port.name reply_port) confirm [];
  let outcome =
    match Runtime.receive ctx ~timeout [ reply_port ] with
    | `Timeout -> `Timeout
    | `Msg (_, msg) -> `Confirmed msg
  in
  Runtime.remove_port ctx reply_port;
  outcome

let delegate ctx ~to_ msg =
  Runtime.send ctx ~to_ ?reply_to:msg.Message.reply_to msg.Message.command msg.Message.args

let delegate_as ctx ~to_ ~command ~args msg =
  Runtime.send ctx ~to_ ?reply_to:msg.Message.reply_to command args
