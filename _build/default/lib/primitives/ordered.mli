(** Ordered, reliable delivery built over the no-wait send.

    §3.4: "No guarantee about arrival order is made, i.e., even two
    messages x and y sent by a single process to the same port are not
    guaranteed to arrive in the same order they were sent.  If the order
    is important, processes must coordinate to achieve it."

    This module is that coordination: a one-directional channel carrying
    arbitrary payload values with sequence numbers, a sliding send window,
    periodic retransmission of unacknowledged data, cumulative
    acknowledgements, receiver-side reordering and duplicate suppression —
    i.e. the transport layer a 1979 application would hand-roll from the
    paper's primitives.

    Wire protocol (over the receiver's port):
    {v
    sender   -> receiver:  odata(channel, seq, payload)   [replyto ack port]
    receiver -> sender :   oack(channel, next_expected)
    v} *)

open Dcp_wire
module Clock = Dcp_sim.Clock

(** {1 Receiver} *)

type receiver

val receiver : Dcp_core.Runtime.ctx -> ?capacity:int -> unit -> receiver
(** Mint a channel endpoint inside this guardian (its own port). *)

val receiver_port : receiver -> Port_name.t
(** Publish this to the sender. *)

val recv : receiver -> ?timeout:Clock.time -> unit -> Value.t option
(** Next in-order payload; blocks until it is deliverable or the timeout
    expires ([None]).  Every payload is delivered exactly once, in send
    order, whatever the link did. *)

val received_count : receiver -> int

(** {1 Sender} *)

type sender

val connect :
  Dcp_core.Runtime.ctx ->
  to_:Port_name.t ->
  ?window:int ->
  ?retransmit_every:Clock.time ->
  unit ->
  sender
(** Open a channel to a receiver port.  [window] (default 16) bounds
    unacknowledged messages in flight; [retransmit_every] (default 100 ms)
    is the resend period for unacked data. *)

val send : sender -> Value.t -> unit
(** Queue one payload.  Blocks (processing acknowledgements) while the
    window is full. *)

val flush : sender -> timeout:Clock.time -> bool
(** Block until everything sent has been acknowledged ([true]) or the
    timeout expires ([false]). *)

val close : sender -> unit
(** Stop the retransmission process.  Unacked data is abandoned. *)

val in_flight : sender -> int
val messages_sent : sender -> int
(** Total [odata] transmissions including retransmissions — the price of
    ordering, measured by experiment E10. *)
