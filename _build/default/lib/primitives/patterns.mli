(** The three message-exchange patterns of §3.

    "Often messages are exchanged in pairs ...  However, not all message
    exchanges have this form.  At least two other patterns can be
    identified.  In the first, several messages are sent from one process
    to another, but only one response message is expected.  In the second,
    the response comes from a different process than the original recipient
    of the request message."

    These helpers express each pattern directly over the no-wait send; the
    E5 experiment counts the messages each needs under each primitive,
    reproducing the paper's argument for choosing no-wait. *)

open Dcp_wire
module Clock = Dcp_sim.Clock

(** {1 Pattern 1: request / response} *)

val request_response :
  Dcp_core.Runtime.ctx ->
  to_:Port_name.t ->
  ?timeout:Clock.time ->
  string ->
  Value.t list ->
  [ `Reply of Dcp_core.Message.t | `Timeout ]
(** One request, one response on a fresh reply port.  Default timeout 1 s. *)

(** {1 Pattern 2: many requests, one response} *)

val stream_then_confirm :
  Dcp_core.Runtime.ctx ->
  to_:Port_name.t ->
  items:(string * Value.t list) list ->
  confirm:string ->
  ?timeout:Clock.time ->
  unit ->
  [ `Confirmed of Dcp_core.Message.t | `Timeout ]
(** Send every item with no reply port (pure no-wait), then a final
    [confirm] message carrying the only reply port; wait for the single
    response.  N+2 messages total where a blocking primitive needs 2N+2. *)

(** {1 Pattern 3: delegated response} *)

val delegate :
  Dcp_core.Runtime.ctx -> to_:Port_name.t -> Dcp_core.Message.t -> unit
(** Forward a request to another guardian *preserving its original reply
    port*, so the response flows directly from the delegate to the original
    requester — "the response will go directly from the flight guardian to
    the original requesting process, bypassing the regional manager"
    (§3.5). *)

val delegate_as :
  Dcp_core.Runtime.ctx ->
  to_:Port_name.t ->
  command:string ->
  args:Value.t list ->
  Dcp_core.Message.t ->
  unit
(** Like {!delegate} but rewriting command and arguments (the regional
    manager adds the passenger id it looked up, say) while still preserving
    the original reply port. *)
