(** Two-phase commit over the no-wait send.

    §3 motivates the choice of primitive by the protocols it must be able
    to express — "protocols have been described ... for recoverable atomic
    transactions".  This module is such a protocol, built from nothing but
    no-wait sends, reply ports and timeouts: a coordinator drives an
    atomic commitment across a set of participant guardians.

    Protocol (all request ports follow the RPC convention):

    {v
    coordinator -> participant:  prepare(txid, payload)
    participant -> coordinator:  vote_commit(txid) | vote_abort(txid, why)
    coordinator -> participant:  commit(txid) | abort(txid)
    participant -> coordinator:  acked(txid)
    v}

    The coordinator logs its commit/abort decision to stable storage before
    announcing it, and its recovery process completes the announcement
    after a crash; participants hold their prepared state (logged) until
    they hear the decision, asking again if it is slow to arrive.  That is
    the standard blocking 2PC of the literature the paper cites —
    crash-safe, not partition-nonblocking.

    {!Participant} is a helper functor-free kit for writing participant
    guardians; {!Coordinator} runs one transaction.  The airline uses this
    to make multi-leg bookings atomic (see {!Dcp_airline.Itinerary}). *)

open Dcp_wire
module Clock = Dcp_sim.Clock

(** {1 Participant side} *)

(** What a participant resource must provide. *)
type participant_hooks = {
  prepare : txid:int -> Value.t -> (unit, string) result;
      (** Validate and tentatively apply; hold locks / reservations.  Must
          log enough (its own store) to survive a crash holding the
          prepared state.  [Error reason] votes abort. *)
  commit : txid:int -> unit;  (** Make the tentative effect permanent. *)
  abort : txid:int -> unit;  (** Discard the tentative effect. *)
}

val participant_signatures : Vtype.signature list
(** Signatures to include in a participant's port type: [prepare], [commit],
    [abort] (all RPC-style). *)

val handle_participant :
  Dcp_core.Runtime.ctx -> hooks:participant_hooks -> Dcp_core.Message.t -> bool
(** Feed a received message through the participant protocol.  Returns
    [true] when the message was a 2PC message (and was handled; replies are
    sent), [false] when the caller should handle it itself.  Duplicate
    prepares/commits/aborts for the same txid are answered idempotently —
    the participant records per-txid outcomes in its stable store. *)

(** {1 Coordinator side} *)

type decision = Committed | Aborted of string

val coordinate :
  Dcp_core.Runtime.ctx ->
  txid:int ->
  participants:(Port_name.t * Value.t) list ->
  ?prepare_timeout:Clock.time ->
  ?ack_timeout:Clock.time ->
  unit ->
  decision
(** Run one two-phase commit among [participants], each receiving its own
    payload in phase 1.  Blocks the calling process until the outcome is
    decided *and* the decision has been logged; announcement acks are
    awaited for [ack_timeout] but the decision stands regardless.  The
    decision is recorded in this guardian's stable store under
    ["2pc:<txid>"] before it is announced, so a recovery process can finish
    announcing after a crash (see {!redeliver_decisions}). *)

val redeliver_decisions : Dcp_core.Runtime.ctx -> int
(** Coordinator recovery: for every logged, still-unacknowledged decision,
    re-announce it to the transaction's participants (their ports are part
    of the logged decision record) and await acks.  Returns how many
    transactions were re-driven.  Call from the coordinator guardian's
    [recover] process. *)

val pending_decisions : Dcp_stable.Store.t -> int
(** Unacknowledged decision records in a coordinator's store (observability
    for tests; 0 once every participant has acknowledged). *)
