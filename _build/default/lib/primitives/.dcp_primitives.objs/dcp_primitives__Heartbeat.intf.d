lib/primitives/heartbeat.mli: Dcp_core Dcp_sim Dcp_wire Port_name
