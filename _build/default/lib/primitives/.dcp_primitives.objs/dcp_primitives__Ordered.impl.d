lib/primitives/ordered.ml: Dcp_core Dcp_sim Dcp_wire Hashtbl Int Option Port_name Printf Value Vtype
