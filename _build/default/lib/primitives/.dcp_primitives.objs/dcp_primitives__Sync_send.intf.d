lib/primitives/sync_send.mli: Dcp_core Dcp_sim Dcp_wire Port_name Value Vtype
