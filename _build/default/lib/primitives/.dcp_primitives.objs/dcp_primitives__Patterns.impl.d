lib/primitives/patterns.ml: Dcp_core Dcp_sim Dcp_wire List Vtype
