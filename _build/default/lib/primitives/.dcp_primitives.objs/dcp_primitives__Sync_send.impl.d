lib/primitives/sync_send.ml: Dcp_core Dcp_sim Dcp_wire Value Vtype
