lib/primitives/two_phase.mli: Dcp_core Dcp_sim Dcp_stable Dcp_wire Port_name Value Vtype
