lib/primitives/two_phase.ml: Codec Dcp_core Dcp_sim Dcp_stable Dcp_wire Hashtbl List Printf Rpc String Value Vtype
