lib/primitives/replica.ml: Dcp_core Dcp_sim Dcp_wire Hashtbl Int List Option Port_name Rpc Value Vtype
