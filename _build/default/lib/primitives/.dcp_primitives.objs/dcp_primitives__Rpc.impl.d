lib/primitives/rpc.ml: Dcp_core Dcp_sim Dcp_wire Hashtbl List Queue Value Vtype
