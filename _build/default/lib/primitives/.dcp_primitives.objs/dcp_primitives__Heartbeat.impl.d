lib/primitives/heartbeat.ml: Dcp_core Dcp_sim Dcp_wire Rpc Value
