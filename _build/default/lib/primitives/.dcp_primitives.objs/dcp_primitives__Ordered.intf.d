lib/primitives/ordered.mli: Dcp_core Dcp_sim Dcp_wire Port_name Value
