lib/sim/trace.ml: Array Clock Format Int List String
