lib/sim/stat.ml: Array Float Format Int List
