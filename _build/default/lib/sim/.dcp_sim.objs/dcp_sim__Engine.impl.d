lib/sim/engine.ml: Clock Heap Int
