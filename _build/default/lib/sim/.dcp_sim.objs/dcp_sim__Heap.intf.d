lib/sim/heap.mli:
