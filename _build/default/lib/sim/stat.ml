type summary = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  stderr : float;
  ci95 : float;
  minimum : float;
  maximum : float;
  median : float;
}

(* Two-sided 97.5% Student-t critical values for small df; 1.96 beyond. *)
let t_critical df =
  let table =
    [|
      12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
      2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
      2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
    |]
  in
  if df <= 0 then Float.nan
  else if df <= Array.length table then table.(df - 1)
  else 1.96

let quantile sample q =
  if sample = [] then invalid_arg "Stat.quantile: empty sample";
  let sorted = Array.of_list (List.sort Float.compare sample) in
  let n = Array.length sorted in
  let q = Float.max 0.0 (Float.min 1.0 q) in
  let position = q *. float_of_int (n - 1) in
  let lower = int_of_float (Float.floor position) in
  let upper = Int.min (n - 1) (lower + 1) in
  let fraction = position -. float_of_int lower in
  (sorted.(lower) *. (1.0 -. fraction)) +. (sorted.(upper) *. fraction)

let mean sample =
  if sample = [] then invalid_arg "Stat.mean: empty sample";
  List.fold_left ( +. ) 0.0 sample /. float_of_int (List.length sample)

let summarize sample =
  if sample = [] then invalid_arg "Stat.summarize: empty sample";
  let n = List.length sample in
  let m = mean sample in
  let variance =
    if n < 2 then 0.0
    else
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 sample /. float_of_int (n - 1)
  in
  let stddev = sqrt variance in
  let stderr = stddev /. sqrt (float_of_int n) in
  let ci95 = if n < 2 then 0.0 else t_critical (n - 1) *. stderr in
  {
    n;
    mean = m;
    variance;
    stddev;
    stderr;
    ci95;
    minimum = List.fold_left Float.min Float.infinity sample;
    maximum = List.fold_left Float.max Float.neg_infinity sample;
    median = quantile sample 0.5;
  }

let stddev sample = (summarize sample).stddev

let pp_summary fmt s = Format.fprintf fmt "%.2f ± %.2f (n=%d)" s.mean s.ci95 s.n

let of_trials ~trials f =
  if trials <= 0 then invalid_arg "Stat.of_trials: need at least one trial";
  summarize (List.init trials (fun seed -> f ~seed))
