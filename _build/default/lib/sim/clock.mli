(** Virtual time.

    Simulated time is an integer number of nanoseconds since the start of the
    run, so all time arithmetic is exact and runs are reproducible.  Helper
    constructors convert the human-scale units used in experiment
    configurations. *)

type time = int
(** Nanoseconds since simulation start. *)

val zero : time
val ns : int -> time
val us : int -> time
val ms : int -> time
val s : int -> time

val of_float_s : float -> time
(** Seconds (float) to virtual time, rounded to the nearest nanosecond. *)

val to_float_s : time -> float
val to_float_ms : time -> float
val to_float_us : time -> float

val add : time -> time -> time
val diff : time -> time -> time
val compare : time -> time -> int

val pp : Format.formatter -> time -> unit
(** Human-readable rendering, e.g. ["1.500ms"]. *)
