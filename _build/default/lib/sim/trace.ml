type event = { at : Clock.time; category : string; detail : string }

type t = {
  capacity : int;
  mutable ring : event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; total = 0 }

let record t ~at ~category detail =
  t.ring.(t.next) <- Some { at; category; detail };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let recordf t ~at ~category fmt = Format.kasprintf (record t ~at ~category) fmt

let size t = Int.min t.total t.capacity
let total t = t.total

let events t =
  let n = size t in
  let start = if t.total <= t.capacity then 0 else t.next in
  let rec gather i acc =
    if i >= n then List.rev acc
    else
      match t.ring.((start + i) mod t.capacity) with
      | None -> gather (i + 1) acc
      | Some e -> gather (i + 1) (e :: acc)
  in
  gather 0 []

let find t ~category = List.filter (fun e -> String.equal e.category category) (events t)

let clear t =
  t.ring <- Array.make t.capacity None;
  t.next <- 0;
  t.total <- 0

let pp fmt t =
  let pp_event e = Format.fprintf fmt "[%a] %-16s %s@." Clock.pp e.at e.category e.detail in
  List.iter pp_event (events t)
