type time = int

let zero = 0
let ns t = t
let us t = t * 1_000
let ms t = t * 1_000_000
let s t = t * 1_000_000_000
let of_float_s x = int_of_float (Float.round (x *. 1e9))
let to_float_s t = float_of_int t /. 1e9
let to_float_ms t = float_of_int t /. 1e6
let to_float_us t = float_of_int t /. 1e3
let add = ( + )
let diff = ( - )
let compare = Int.compare

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.3fus" (to_float_us t)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.3fms" (to_float_ms t)
  else Format.fprintf fmt "%.3fs" (to_float_s t)
