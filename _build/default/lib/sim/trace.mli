(** Structured event tracing.

    A bounded ring of timestamped events with a category and free-form
    description.  Scenarios and tests use traces both for debugging and for
    asserting on the order of distributed happenings (e.g. "the failure
    message arrived after the crash"). *)

type t

type event = { at : Clock.time; category : string; detail : string }

val create : ?capacity:int -> unit -> t
(** Default capacity is 65536 events; older events are overwritten. *)

val record : t -> at:Clock.time -> category:string -> string -> unit

val recordf :
  t -> at:Clock.time -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val size : t -> int
(** Events currently retained. *)

val total : t -> int
(** Events ever recorded (including overwritten ones). *)

val events : t -> event list
(** Retained events, oldest first. *)

val find : t -> category:string -> event list
(** Retained events of one category, oldest first. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
