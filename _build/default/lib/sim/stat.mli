(** Small-sample statistics for repeated experiment trials.

    Experiments are deterministic per seed; confidence comes from running
    several seeds and summarising.  This module provides the summaries:
    mean, variance (unbiased), standard deviation, standard error, an
    approximate 95% confidence interval (Student-t for small n), median
    and quantiles on a sample of floats. *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** unbiased (n-1); 0 for n < 2 *)
  stddev : float;
  stderr : float;
  ci95 : float;  (** half-width of the ~95% confidence interval *)
  minimum : float;
  maximum : float;
  median : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty sample. *)

val quantile : float list -> float -> float
(** Linear-interpolation quantile of a sample, [q] in [0, 1].
    @raise Invalid_argument on an empty sample. *)

val mean : float list -> float
val stddev : float list -> float

val pp_summary : Format.formatter -> summary -> unit
(** ["mean ± ci95 (n=..)"]. *)

val of_trials : trials:int -> (seed:int -> float) -> summary
(** [of_trials ~trials f] runs [f ~seed] for seeds [0 .. trials-1] and
    summarises the results — the harness for "rerun the experiment k
    times". *)
