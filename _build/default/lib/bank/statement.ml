open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Rpc = Dcp_primitives.Rpc
module Ordered = Dcp_primitives.Ordered
module Clock = Dcp_sim.Clock

let def_name = "bank_statement"

let port_type =
  [
    Rpc.request_signature "request_statement" [ Vtype.Tstr; Vtype.Tport ]
      ~replies:[ Vtype.reply "streaming" [ Vtype.Tint ]; Vtype.reply "no_entries" [] ];
  ]

let serve ctx journal =
  let request_port = Runtime.port ctx 0 in
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args) with
        | "request_statement", [ Value.Int id; Value.Str account; Value.Portv channel ] ->
            let entries =
              List.filter (fun (acct, _, _) -> String.equal acct account) journal
            in
            (match msg.Message.reply_to with
            | Some reply ->
                if entries = [] then Runtime.send ctx ~to_:reply "no_entries" [ Value.int id ]
                else
                  Runtime.send ctx ~to_:reply "streaming"
                    [ Value.int id; Value.int (List.length entries) ]
            | None -> ());
            if entries <> [] then
              (* stream in a forked process so the intake loop stays live *)
              ignore
                (Runtime.spawn ctx ~name:("statement." ^ account) (fun () ->
                     let sender =
                       Ordered.connect ctx ~to_:channel ~window:8
                         ~retransmit_every:(Clock.ms 50) ()
                     in
                     List.iteri
                       (fun seq (_, description, amount) ->
                         Ordered.send sender
                           (Value.tuple
                              [ Value.int seq; Value.str description; Value.int amount ]))
                       entries;
                     ignore (Ordered.flush sender ~timeout:(Clock.s 30));
                     Ordered.close sender))
        | _ -> ()));
    loop ()
  in
  loop ()

let parse_journal args =
  List.map
    (fun v ->
      match v with
      | Value.Tuple [ Value.Str account; Value.Str description; Value.Int amount ] ->
          (account, description, amount)
      | _ -> invalid_arg "statement guardian: malformed journal row")
    args

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 64) ];
    init = (fun ctx args -> serve ctx (parse_journal args));
    recover = None;
  }

let create world ~at ~journal () =
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let args =
    List.map
      (fun (account, description, amount) ->
        Value.tuple [ Value.str account; Value.str description; Value.int amount ])
      journal
  in
  let g = Runtime.create_guardian world ~at ~def_name ~args in
  List.hd (Runtime.guardian_ports g)

let fetch_statement ctx ~statements ~account ~timeout =
  let receiver = Ordered.receiver ctx ~capacity:128 () in
  match
    Rpc.call ctx ~to_:statements ~timeout "request_statement"
      [ Value.str account; Value.port (Ordered.receiver_port receiver) ]
  with
  | Rpc.Reply ("no_entries", _) -> Some []
  | Rpc.Reply ("streaming", [ Value.Int expected ]) ->
      let rec gather acc remaining =
        if remaining = 0 then Some (List.rev acc)
        else
          match Ordered.recv receiver ~timeout () with
          | Some (Value.Tuple [ Value.Int _; Value.Str description; Value.Int amount ]) ->
              gather ((description, amount) :: acc) (remaining - 1)
          | Some _ -> gather acc remaining
          | None -> None
      in
      gather [] expected
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> None
