(** Auditing helpers: whole-bank invariants over the branch guardians.

    The auditor is a client like any other — it can only learn balances by
    sending messages, which is the point: §2.1's guardians make the
    distributed database "a group of guardians, but each guardian in that
    group guards a discernable resource". *)

open Dcp_wire
module Clock = Dcp_sim.Clock

val total_balance :
  Dcp_core.Runtime.ctx ->
  branches:Port_name.t list ->
  ?timeout:Clock.time ->
  unit ->
  (int, string) result
(** Sum of every branch's account balances, by querying each branch's
    [total()].  [Error] names the first unreachable branch. *)

val balance_of :
  Dcp_core.Runtime.ctx ->
  branch:Port_name.t ->
  account:string ->
  ?timeout:Clock.time ->
  unit ->
  (int, string) result
