lib/bank/branch.ml: Codec Dcp_core Dcp_primitives Dcp_stable Dcp_wire List Option Printf String Value Vtype
