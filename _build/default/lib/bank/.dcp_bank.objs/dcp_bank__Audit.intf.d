lib/bank/audit.mli: Dcp_core Dcp_sim Dcp_wire Port_name
