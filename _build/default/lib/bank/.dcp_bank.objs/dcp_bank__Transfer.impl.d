lib/bank/transfer.ml: Array Codec Dcp_core Dcp_primitives Dcp_sim Dcp_stable Dcp_wire List Option Port_name Printf String Value Vtype
