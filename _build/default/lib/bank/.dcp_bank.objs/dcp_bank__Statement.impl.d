lib/bank/statement.ml: Dcp_core Dcp_primitives Dcp_sim Dcp_wire List String Value Vtype
