lib/bank/audit.ml: Dcp_primitives Dcp_sim Dcp_wire Format List Port_name Value
