open Dcp_wire
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock

let total_balance ctx ~branches ?(timeout = Clock.ms 500) () =
  let query acc branch =
    match acc with
    | Error _ -> acc
    | Ok sum -> (
        match Rpc.call ctx ~to_:branch ~timeout ~attempts:3 "total" [] with
        | Rpc.Reply ("total", [ Value.Int amount ]) -> Ok (sum + amount)
        | Rpc.Reply _ -> Error "unexpected total reply"
        | Rpc.Failure_msg reason -> Error reason
        | Rpc.Timeout -> Error (Format.asprintf "branch %a unreachable" Port_name.pp branch))
  in
  List.fold_left query (Ok 0) branches

let balance_of ctx ~branch ~account ?(timeout = Clock.ms 500) () =
  match Rpc.call ctx ~to_:branch ~timeout ~attempts:3 "balance" [ Value.str account ] with
  | Rpc.Reply ("balance", [ Value.Int amount ]) -> Ok amount
  | Rpc.Reply ("no_account", _) -> Error "no such account"
  | Rpc.Reply _ -> Error "unexpected balance reply"
  | Rpc.Failure_msg reason -> Error reason
  | Rpc.Timeout -> Error "branch unreachable"
