(** Account statements, streamed over the ordered channel.

    A statement is a long sequence of entries whose order matters (a
    running balance) — precisely the case §3.4 leaves to the application:
    "if the order is important, processes must coordinate to achieve it".
    The branch streams entries through {!Dcp_primitives.Ordered}, so the
    client sees them exactly once, in order, whatever the network does.

    The branch-side extension lives here rather than in {!Branch} to keep
    the core branch protocol small: a statement guardian is created next
    to a branch and reads its (public) total/balance interface, plus the
    transaction journal it is given at creation.

    Protocol: [request_statement(account, channel_port) replies
    (streaming(entries))] — the entries then arrive on the caller's
    ordered-channel receiver as tuples [(seq, description, amount)]. *)

open Dcp_wire

val def_name : string
val port_type : Vtype.port_type
val def : Dcp_core.Runtime.def

val create :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  journal:(string * string * int) list ->
  unit ->
  Port_name.t
(** [journal] is the ledger to serve: [(account, description, amount)]
    rows in chronological order. *)

(** {1 Client helper} *)

val fetch_statement :
  Dcp_core.Runtime.ctx ->
  statements:Port_name.t ->
  account:string ->
  timeout:Dcp_sim.Clock.time ->
  (string * int) list option
(** Request and collect the full statement for [account]: opens an ordered
    receiver, asks the guardian to stream into it, and gathers the rows.
    [None] on timeout or refusal. *)
