(** Type descriptions and message signatures.

    §3.2: ports are "described by messages that can be sent to them", and
    "port types and guardian headers enable compile time type checking of all
    message passing".  Here the host language cannot see the embedded
    message vocabulary, so the same checking runs when a send is issued and
    when a message is received — against the same declared signatures a CLU
    library would have held. *)

type t =
  | Tunit
  | Tbool
  | Tint
  | Treal
  | Tstr
  | Tlist of t
  | Ttuple of t list
  | Trecord of (string * t) list
  | Toption of t
  | Tport
  | Ttoken
  | Tnamed of string
      (** abstract transmittable type, identified by its registered name *)
  | Tany  (** matches any transmittable value; used by generic system ports *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val check : t -> Value.t -> (unit, string) result
(** Structural check of a value against a type.  [Tnamed n] accepts
    [Value.Named (n, _)] — the external rep's own shape is checked by the
    {!Transmit} registry when the type is registered. *)

(** {1 Message signatures} *)

type reply = { reply_command : string; reply_args : t list }

type signature = {
  command : string;
  args : t list;
  replies : reply list;
      (** expected responses; empty means no response is expected (§3.2:
          "to describe a message with no expected responses, the replies
          part is omitted") *)
}

val signature : ?replies:reply list -> string -> t list -> signature
val reply : string -> t list -> reply

type port_type = signature list
(** The messages a port accepts. *)

val wildcard : signature
(** A signature with the reserved command ["*"]: a port type containing it
    accepts every message unchecked.  Used by generic relays (e.g. the RPC
    layer's reply ports) whose vocabulary is not fixed at one declaration
    site. *)

val find_signature : port_type -> string -> signature option

val check_message : port_type -> command:string -> Value.t list -> (unit, string) result
(** Check a (command, args) pair against a port type: the command must be
    declared and every argument must match. *)

val failure_signature : signature
(** §3.4: "the message [failure (string)] is automatically and implicitly
    associated with each port type". *)

val pp_signature : Format.formatter -> signature -> unit
val pp_port_type : Format.formatter -> port_type -> unit
