(** Global names for ports.

    §3.2: "Ports are the only entities that have global names."  A port name
    identifies the node a guardian lives at, the guardian, and the port's
    index within that guardian, plus a uid making names unforgeable across
    guardian re-creation.  Port names are ordinary values: they may be sent
    in messages, which is how reply ports travel. *)

type t = { node : int; guardian : int; index : int; uid : int }

val make : node:int -> guardian:int -> index:int -> uid:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
