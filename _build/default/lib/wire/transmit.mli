(** Transmittable abstract types (§3.3).

    "Every transmittable abstract type has an associated external rep, which
    is the representation to be used in messages.  Each implementation of a
    transmittable type must provide two operations, encode and decode."

    A {!module-type-S} packages one *implementation* of an abstract type:
    its local representation ['t], the system-wide external rep type, and the
    encode/decode pair.  Different nodes may register different
    implementations of the same [type_name] (the paper's hash-table node vs.
    tree node); what is fixed system-wide is the external rep, which the
    {!registry} records and checks.

    Encoding produces a [Value.Named (type_name, rep)] so the receiving side
    knows which decoder applies, and so signature checking can keep abstract
    types abstract. *)

exception Encode_failure of string
(** Raised by an [encode] that refuses to transmit a value — e.g. one
    holding guardian-dependent information (§3.3 reason 3), or a type that
    forbids transmission outright (reason 4). *)

exception Decode_failure of string

module type S = sig
  type t

  val type_name : string
  val external_rep : Vtype.t
  (** Shape of the external rep — fixed system-wide. *)

  val encode : t -> Value.t
  (** Local representation → external rep.  May raise {!Encode_failure}. *)

  val decode : Value.t -> t
  (** External rep → local representation.  May raise {!Decode_failure}. *)
end

type 'a impl = (module S with type t = 'a)

val to_value : 'a impl -> 'a -> Value.t
(** Encode and tag; checks the produced rep against [external_rep] and
    raises {!Encode_failure} when an implementation misbehaves. *)

val of_value : 'a impl -> Value.t -> 'a
(** Untag (checking the type name) and decode.
    @raise Decode_failure on a name or shape mismatch. *)

(** {1 System-wide registry}

    The registry plays the role of CLU's description library: it records,
    per abstract type name, the single external rep that every node must
    agree on, and rejects conflicting registrations. *)

type registry

val registry : unit -> registry

val register : registry -> type_name:string -> external_rep:Vtype.t -> unit
(** @raise Invalid_argument if [type_name] is registered with a different
    external rep — the fixed meaning of a type cannot vary per node. *)

val external_rep_of : registry -> string -> Vtype.t option

val check_named : registry -> Value.t -> (unit, string) result
(** Deep check: every [Named (n, rep)] inside the value must name a
    registered type and carry a rep matching its registered shape. *)
