type t = { node : int; guardian : int; index : int; uid : int }

let make ~node ~guardian ~index ~uid = { node; guardian; index; uid }
let equal a b = a.node = b.node && a.guardian = b.guardian && a.index = b.index && a.uid = b.uid

let compare a b =
  let c = Int.compare a.node b.node in
  if c <> 0 then c
  else
    let c = Int.compare a.guardian b.guardian in
    if c <> 0 then c
    else
      let c = Int.compare a.index b.index in
      if c <> 0 then c else Int.compare a.uid b.uid

let hash t = Hashtbl.hash (t.node, t.guardian, t.index, t.uid)
let pp fmt t = Format.fprintf fmt "port<n%d.g%d.p%d#%d>" t.node t.guardian t.index t.uid
let to_string t = Format.asprintf "%a" pp t
