lib/wire/vtype.ml: Format List Result Stdlib String Value
