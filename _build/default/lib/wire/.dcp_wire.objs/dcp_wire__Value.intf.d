lib/wire/value.mli: Format Port_name Token
