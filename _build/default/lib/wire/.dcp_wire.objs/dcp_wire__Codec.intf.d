lib/wire/codec.mli: Format Value
