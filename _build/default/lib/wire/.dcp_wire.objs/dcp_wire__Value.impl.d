lib/wire/value.ml: Bool Float Format Int List Option Port_name Stdlib String Token
