lib/wire/port_name.ml: Format Hashtbl Int
