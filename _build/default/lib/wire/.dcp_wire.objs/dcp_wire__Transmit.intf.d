lib/wire/transmit.mli: Value Vtype
