lib/wire/vtype.mli: Format Value
