lib/wire/token.ml: Format Int64
