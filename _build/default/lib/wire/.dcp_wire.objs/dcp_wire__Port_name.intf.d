lib/wire/port_name.mli: Format
