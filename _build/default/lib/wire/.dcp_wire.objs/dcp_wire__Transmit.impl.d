lib/wire/transmit.ml: Hashtbl List Printf String Value Vtype
