lib/wire/token.mli: Format
