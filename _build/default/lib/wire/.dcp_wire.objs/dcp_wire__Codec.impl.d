lib/wire/codec.ml: Buffer Char Format Int64 List Port_name Printf Result String Token Value
