(** Message values.

    §2.1: "Messages will contain the values of objects" — never addresses.
    This is the closed universe of things that may appear as message
    arguments: the built-in types the system transmits automatically (§3.3),
    plus port names, tokens, and [Named] values, which are the external reps
    of user-defined transmittable types tagged with their type name (see
    {!Transmit}). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Listv of t list
  | Tuple of t list
  | Record of (string * t) list
  | Option of t option
  | Portv of Port_name.t
  | Tokenv of Token.t
  | Named of string * t  (** external rep of abstract type [name] *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val size : t -> int
(** Approximate in-memory footprint in bytes, used for buffer accounting. *)

val depth : t -> int

(** {1 Convenience constructors and accessors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val real : float -> t
val str : string -> t
val list : t list -> t
val tuple : t list -> t
val record : (string * t) list -> t
val option : t option -> t
val port : Port_name.t -> t
val token : Token.t -> t

exception Type_mismatch of string
(** Raised by the [get_*] accessors when the value has the wrong shape. *)

val get_bool : t -> bool
val get_int : t -> int
val get_real : t -> float
val get_str : t -> string
val get_list : t -> t list
val get_tuple : t -> t list
val get_record : t -> (string * t) list
val get_option : t -> t option
val get_port : t -> Port_name.t
val get_token : t -> Token.t
val get_named : t -> string * t

val field : t -> string -> t
(** [field v name] extracts a record field. @raise Type_mismatch otherwise. *)
