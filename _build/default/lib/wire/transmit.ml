exception Encode_failure of string
exception Decode_failure of string

module type S = sig
  type t

  val type_name : string
  val external_rep : Vtype.t
  val encode : t -> Value.t
  val decode : Value.t -> t
end

type 'a impl = (module S with type t = 'a)

let to_value (type a) (module M : S with type t = a) (v : a) =
  let rep = M.encode v in
  (match Vtype.check M.external_rep rep with
  | Ok () -> ()
  | Error reason ->
      raise
        (Encode_failure
           (Printf.sprintf "%s: encode produced an invalid external rep (%s)" M.type_name reason)));
  Value.Named (M.type_name, rep)

let of_value (type a) (module M : S with type t = a) v : a =
  match v with
  | Value.Named (name, rep) ->
      if not (String.equal name M.type_name) then
        raise
          (Decode_failure (Printf.sprintf "expected type %s, received %s" M.type_name name));
      (match Vtype.check M.external_rep rep with
      | Ok () -> ()
      | Error reason ->
          raise
            (Decode_failure
               (Printf.sprintf "%s: external rep does not match the registered shape (%s)"
                  M.type_name reason)));
      M.decode rep
  | v ->
      raise
        (Decode_failure
           (Printf.sprintf "expected a %s value, received %s" M.type_name (Value.to_string v)))

type registry = (string, Vtype.t) Hashtbl.t

let registry () = Hashtbl.create 16

let register reg ~type_name ~external_rep =
  match Hashtbl.find_opt reg type_name with
  | None -> Hashtbl.add reg type_name external_rep
  | Some existing ->
      if not (Vtype.equal existing external_rep) then
        invalid_arg
          (Printf.sprintf
             "Transmit.register: %s already registered with external rep %s (got %s)" type_name
             (Vtype.to_string existing) (Vtype.to_string external_rep))

let external_rep_of reg name = Hashtbl.find_opt reg name

let rec check_named reg v =
  let all results = List.fold_left (fun acc r -> match acc with Error _ -> acc | Ok () -> r) (Ok ()) results in
  match v with
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Real _ | Value.Str _ | Value.Portv _
  | Value.Tokenv _ | Value.Option None ->
      Ok ()
  | Value.Listv items | Value.Tuple items -> all (List.map (check_named reg) items)
  | Value.Record fields -> all (List.map (fun (_, fv) -> check_named reg fv) fields)
  | Value.Option (Some inner) -> check_named reg inner
  | Value.Named (name, rep) -> (
      match Hashtbl.find_opt reg name with
      | None -> Error (Printf.sprintf "unregistered abstract type %s" name)
      | Some shape -> (
          match Vtype.check shape rep with
          | Error reason ->
              Error (Printf.sprintf "%s: external rep mismatch (%s)" name reason)
          | Ok () -> check_named reg rep))
