(** Random draws and distributions over a {!Splitmix} stream.

    All simulator randomness flows through values of this type so that an
    entire run is a pure function of its root seed.  Use {!split} to hand an
    independent stream to each subsystem (network links, workload generators,
    fault injectors, ...) — splitting keeps streams independent even when the
    subsystems interleave their draws differently between runs. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh root stream. *)

val split : t -> t
(** [split t] is a new stream independent of [t]'s future output. *)

val copy : t -> t

(** {1 Basic draws} *)

val bits64 : t -> int64
(** 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

(** {1 Distributions} *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (rate 1/mean). *)

val geometric : t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success; >= 0. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[0, n)] with exponent [s] (inverse-CDF over a
    precomputed table would be faster; this uses rejection-free linear CDF
    and is fine for the modest [n] used in workloads). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto-distributed heavy-tailed value >= [scale]. *)

(** {1 Collections} *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] is [k] distinct values from [\[0, n)],
    in random order. Requires [0 <= k <= n]. *)
