(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable PRNG (Steele, Lea & Flood, OOPSLA 2014) used as
    the deterministic randomness source for the whole simulator.  Each
    generator is a mutable 64-bit state advanced by a fixed odd increment
    ("gamma").  [split] derives an independent stream, which lets every
    subsystem own its own generator while the whole run stays reproducible
    from a single seed. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator seeded with [seed]. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] advances [t] and returns 64 pseudo-random bits. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose future outputs
    are statistically independent of [t]'s. *)

val state : t -> int64 * int64
(** [state t] is the current [(seed, gamma)] pair, for checkpointing. *)

val of_state : int64 * int64 -> t
(** [of_state (seed, gamma)] restores a generator captured with [state]. *)
