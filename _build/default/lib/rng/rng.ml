type t = Splitmix.t

let create ~seed = Splitmix.of_int seed
let split = Splitmix.split
let copy = Splitmix.copy
let bits64 = Splitmix.next

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits avoids modulo bias; the
     overflow test rejects draws from the final, partial bucket (the Java
     Random.nextInt technique — 2^62 itself is not representable). *)
  let mask = 0x3fff_ffff_ffff_ffffL in
  let rec draw () =
    let bits = Int64.to_int (Int64.logand (Splitmix.next t) mask) in
    let value = bits mod n in
    if bits - value + (n - 1) < 0 then draw () else value
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits mapped to [0, 1). *)
  let v = Int64.shift_right_logical (Splitmix.next t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let float t x = unit_float t *. x
let bool t = Int64.logand (Splitmix.next t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else unit_float t < p

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  if p >= 1.0 then 0
  else
    let u = 1.0 -. unit_float t in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let normal t ~mean ~stddev =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let target = unit_float t *. total in
  let rec walk i acc =
    if i >= n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else walk (i + 1) acc
  in
  walk 0 0.0

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto: parameters must be positive";
  let u = 1.0 -. unit_float t in
  scale /. Float.pow u (1.0 /. shape)

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)
