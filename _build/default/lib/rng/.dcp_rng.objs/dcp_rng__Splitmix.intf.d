lib/rng/splitmix.mli:
