lib/rng/rng.mli:
