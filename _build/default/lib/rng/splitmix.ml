type t = { mutable seed : int64; gamma : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL) in
  Int64.(logxor z (shift_right_logical z 31))

(* Variant finalizer used when deriving gammas, per the SplitMix paper. *)
let mix64_variant z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L) in
  Int64.(logxor z (shift_right_logical z 33))

let popcount64 x =
  let rec loop acc x =
    if Int64.equal x 0L then acc
    else loop (acc + 1) Int64.(logand x (sub x 1L))
  in
  loop 0 x

(* A gamma must be odd; gammas with too-regular bit patterns are adjusted. *)
let mix_gamma z =
  let z = Int64.logor (mix64_variant z) 1L in
  let n = popcount64 Int64.(logxor z (shift_right_logical z 1)) in
  if n < 24 then Int64.logxor z 0xaaaaaaaaaaaaaaaaL else z

let create seed = { seed = mix64 seed; gamma = golden_gamma }
let of_int seed = create (Int64.of_int seed)
let copy t = { seed = t.seed; gamma = t.gamma }

let next_seed t =
  t.seed <- Int64.add t.seed t.gamma;
  t.seed

let next t = mix64 (next_seed t)

let split t =
  let seed = next_seed t in
  let gamma_src = next_seed t in
  { seed = mix64 seed; gamma = mix_gamma gamma_src }

let state t = (t.seed, t.gamma)
let of_state (seed, gamma) = { seed; gamma }
