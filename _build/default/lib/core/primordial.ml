open Dcp_wire

let def_name = "primordial"

let port_type =
  [
    Vtype.signature "create_guardian"
      [ Vtype.Tstr; Vtype.Tlist Vtype.Tany ]
      ~replies:
        [
          Vtype.reply "created" [ Vtype.Tlist Vtype.Tport ];
          Vtype.reply "create_failed" [ Vtype.Tstr ];
        ];
    Vtype.signature "ping" [] ~replies:[ Vtype.reply "pong" [] ];
    (* RPC-convention variant: ping with a request id echoed in the pong *)
    Vtype.signature "ping" [ Vtype.Tint ] ~replies:[ Vtype.reply "pong" [ Vtype.Tint ] ];
  ]

let reply_to ctx ~port command args =
  match port with
  | None -> ()
  | Some p -> Runtime.send ctx ~to_:p command args

let handle ctx msg =
  match (msg.Message.command, msg.Message.args) with
  | "create_guardian", [ Value.Str name; Value.Listv args ] -> (
      match Runtime.find_def (Runtime.ctx_world ctx) name with
      | None ->
          reply_to ctx ~port:msg.Message.reply_to "create_failed"
            [ Value.str (Printf.sprintf "unknown guardian definition %s" name) ]
      | Some _ ->
          let g = Runtime.ctx_create_guardian ctx ~def_name:name ~args in
          let ports = List.map Value.port (Runtime.guardian_ports g) in
          reply_to ctx ~port:msg.Message.reply_to "created" [ Value.list ports ])
  | "ping", [] -> reply_to ctx ~port:msg.Message.reply_to "pong" []
  | "ping", [ Value.Int id ] -> reply_to ctx ~port:msg.Message.reply_to "pong" [ Value.int id ]
  | "failure", _ -> ()
  | _ ->
      reply_to ctx ~port:msg.Message.reply_to "create_failed"
        [ Value.str "unrecognised request" ]

let rec serve ctx =
  (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
  | `Msg (_, msg) -> handle ctx msg
  | `Timeout -> ());
  serve ctx

let def : Runtime.def =
  {
    def_name;
    provides = [ (port_type, 128) ];
    init = (fun ctx _args -> serve ctx);
    recover = Some serve;
  }

let install world =
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let topology = Dcp_net.Network.topology (Runtime.network world) in
  let has_primordial node =
    List.exists
      (fun g -> String.equal (Runtime.guardian_def_name g) def_name)
      (Runtime.guardians_at world node)
  in
  List.iter
    (fun node ->
      if not (has_primordial node) then
        ignore (Runtime.create_guardian world ~at:node ~def_name ~args:[]))
    (Dcp_net.Topology.nodes topology)

let port_of world node =
  let primordial =
    List.find
      (fun g -> String.equal (Runtime.guardian_def_name g) def_name)
      (Runtime.guardians_at world node)
  in
  match Runtime.guardian_ports primordial with
  | p :: _ -> p
  | [] -> raise Not_found

let request_create ctx ~at ~def_name ~args ~timeout =
  let world = Runtime.ctx_world ctx in
  let target = port_of world at in
  let reply_port =
    Runtime.new_port ctx
      [
        Vtype.signature "created" [ Vtype.Tlist Vtype.Tport ];
        Vtype.signature "create_failed" [ Vtype.Tstr ];
      ]
  in
  Runtime.send ctx ~to_:target ~reply_to:(Port.name reply_port) "create_guardian"
    [ Value.str def_name; Value.list args ];
  let outcome =
    match Runtime.receive ctx ~timeout [ reply_port ] with
    | `Timeout -> `Timeout
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args) with
        | "created", [ Value.Listv ports ] -> `Created (List.map Value.get_port ports)
        | "create_failed", [ Value.Str reason ] -> `Refused reason
        | "failure", [ Value.Str reason ] -> `Refused reason
        | _ -> `Refused "malformed reply")
  in
  Runtime.remove_port ctx reply_port;
  outcome
