(** Access control lists (§2.3).

    "For such requests, it checks that the requester has the right to
    request the access (perhaps using some sort of access control list
    mechanism).  For example, only a manager can request a passenger list,
    or a reservation request from some other airline might not be permitted
    to reserve the last seat on a flight."

    A guardian owns its ACL as ordinary private data and consults it when a
    request arrives.  Principals and permissions are strings; groups let a
    grant cover many principals; [allow_all] makes a permission public.
    Note that the runtime's *other* protection mechanism is structural:
    unpublished port names and sealed tokens are capabilities — the ACL is
    for policies expressed over who is asking. *)

type principal = string
type permission = string

type t

val create : unit -> t

(** {1 Grants} *)

val grant : t -> principal:principal -> permission:permission -> unit
val revoke : t -> principal:principal -> permission:permission -> unit
(** Revoking an absent grant is a no-op; revoking does not affect grants
    the principal holds via groups or [allow_all]. *)

val allow_all : t -> permission:permission -> unit
(** Make [permission] public. *)

val disallow_all : t -> permission:permission -> unit
(** Remove a previous [allow_all]; individual and group grants remain. *)

(** {1 Groups} *)

val add_to_group : t -> principal:principal -> group:string -> unit
val remove_from_group : t -> principal:principal -> group:string -> unit
val grant_group : t -> group:string -> permission:permission -> unit
val revoke_group : t -> group:string -> permission:permission -> unit

(** {1 Checking} *)

val check : t -> principal:principal -> permission:permission -> bool
(** True iff the principal holds the permission directly, through one of
    its groups, or the permission is public. *)

val permissions_of : t -> principal:principal -> permission list
(** Sorted, deduplicated; includes group-derived and public permissions. *)

val principals_with : t -> permission:permission -> principal list
(** Principals holding the permission directly or via groups (not the
    public pseudo-grant), sorted. *)
