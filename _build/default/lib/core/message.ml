open Dcp_wire

type t = {
  command : string;
  args : Value.t list;
  reply_to : Port_name.t option;
  sent_at : Dcp_sim.Clock.time;
}

let make ?reply_to ~sent_at command args = { command; args; reply_to; sent_at }
let failure ~reason ~sent_at = { command = "failure"; args = [ Value.str reason ]; reply_to = None; sent_at }
let is_failure t = String.equal t.command "failure"

let pp fmt t =
  Format.fprintf fmt "%s(%a)" t.command
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") Value.pp)
    t.args;
  match t.reply_to with
  | None -> ()
  | Some p -> Format.fprintf fmt " replyto %a" Port_name.pp p

let envelope ~target t =
  Value.record
    [
      ("target", Value.port target);
      ("command", Value.str t.command);
      ("args", Value.list t.args);
      ("reply", Value.option (Option.map Value.port t.reply_to));
      ("sent_at", Value.int t.sent_at);
    ]

let of_envelope v =
  match
    let target = Value.get_port (Value.field v "target") in
    let command = Value.get_str (Value.field v "command") in
    let args = Value.get_list (Value.field v "args") in
    let reply_to = Option.map Value.get_port (Value.get_option (Value.field v "reply")) in
    let sent_at = Value.get_int (Value.field v "sent_at") in
    (target, { command; args; reply_to; sent_at })
  with
  | result -> Ok result
  | exception Value.Type_mismatch reason -> Error reason
