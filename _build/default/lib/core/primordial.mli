(** The primordial guardian (§2.1).

    "Each node comes into existence with a primordial guardian, which can
    (among other things) create guardians at its node in response to
    messages arriving from guardians at other nodes.  This restriction on
    creation of new guardians helps preserve the autonomy of the physical
    nodes."

    The primordial guardian accepts:
    {v
    create_guardian (def_name: string, args: list[any])
      replies (created (list[port]), create_failed (string))
    ping () replies (pong ())
    v}

    The definition must already be in the receiving world's library
    ({!Runtime.register_def}) — the node's owner decides which programs may
    run there, and an unknown definition is refused with [create_failed]. *)

open Dcp_wire

val port_type : Vtype.port_type

val def : Runtime.def
(** Register with {!Runtime.register_def} before calling {!install}. *)

val install : Runtime.world -> unit
(** Register [def] (if not yet registered) and create one primordial
    guardian on every node that doesn't have one. *)

val port_of : Runtime.world -> Runtime.node_id -> Port_name.t
(** The primordial port at a node. @raise Not_found if none. *)

(** {1 Client-side helper} *)

val request_create :
  Runtime.ctx ->
  at:Runtime.node_id ->
  def_name:string ->
  args:Value.t list ->
  timeout:Dcp_sim.Clock.time ->
  [ `Created of Port_name.t list | `Refused of string | `Timeout ]
(** Ask the primordial guardian at [at] to create a guardian there, blocking
    (with timeout) for the outcome — the in-model way to create a guardian
    on a *remote* node. *)
