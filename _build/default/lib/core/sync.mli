(** Intra-guardian synchronization: monitors and keyed locks (§2.3).

    "The processes within a single guardian may share objects, and
    communicate with one another via these shared objects."  Figure 1c has
    forked processes synchronize "using shared data, e.g., a monitor
    providing operations start_request(date) and end_request(date)".

    Because the simulator is single-threaded these are *logical* exclusion
    devices: they matter whenever a process must hold a resource across a
    blocking operation (a receive, a sleep, a nested send/await).  Mutex
    wakeups are FIFO and scheduled through the engine, so lock handoff is
    fair and deterministic. *)

type mutex

val mutex : Dcp_sim.Engine.t -> mutex

val lock : mutex -> unit
(** Blocks (inside a process) until the mutex is free. Not reentrant. *)

val unlock : mutex -> unit
(** @raise Invalid_argument if the mutex is not held. *)

val with_lock : mutex -> (unit -> 'a) -> 'a
val locked : mutex -> bool

type condition

val condition : Dcp_sim.Engine.t -> condition

val wait : condition -> mutex -> unit
(** Atomically release the mutex and block; on signal, re-acquire the mutex
    before returning (Mesa semantics — re-check the predicate in a loop). *)

val signal : condition -> unit
(** Wake one waiter (no-op if none). *)

val broadcast : condition -> unit

(** {1 Counting semaphores}

    Model of a pool of identical resources — a node's processors, say
    (§1.1: "each node consists of one or more processors"). *)

type semaphore

val semaphore : Dcp_sim.Engine.t -> int -> semaphore
(** [semaphore engine n] has [n] units. @raise Invalid_argument if n <= 0. *)

val acquire : semaphore -> unit
(** Take a unit, blocking (FIFO) while none is free. *)

val release : semaphore -> unit
(** @raise Invalid_argument if all units are already free. *)

val with_unit : semaphore -> (unit -> 'a) -> 'a
val available : semaphore -> int

(** {1 Keyed locks}

    The paper's [start_request(date)] / [end_request(date)] monitor: at most
    one holder per key, independent keys proceed in parallel. *)

type 'k keyed_lock

val keyed_lock : Dcp_sim.Engine.t -> 'k keyed_lock

val start_request : 'k keyed_lock -> 'k -> unit
(** Block until no other process holds [k]. *)

val end_request : 'k keyed_lock -> 'k -> unit
(** @raise Invalid_argument if [k] is not held. *)

val with_key : 'k keyed_lock -> 'k -> (unit -> 'a) -> 'a
val holders : 'k keyed_lock -> int
