(** Messages: a command identifier plus arguments (§3.1).

    "A message consists of a command identifier, and zero or more arguments
    ...  For messages sent to request a service, the command identifier
    corresponds to the name of an operation to be invoked."

    The optional reply port "is really an extra argument of the message, but
    it is singled out in the syntax to clarify the intent of the send"
    (§3.4); here it is singled out as a record field.  [sent_at] timestamps
    the send for latency accounting and travels with the message. *)

open Dcp_wire

type t = {
  command : string;
  args : Value.t list;
  reply_to : Port_name.t option;
  sent_at : Dcp_sim.Clock.time;
}

val make :
  ?reply_to:Port_name.t -> sent_at:Dcp_sim.Clock.time -> string -> Value.t list -> t

val failure : reason:string -> sent_at:Dcp_sim.Clock.time -> t
(** The system-generated [failure(string)] message of §3.4.  Failure
    messages never carry a reply port (no failure cascades). *)

val is_failure : t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Wire envelope}

    On the wire a message travels together with its target port name. *)

val envelope : target:Port_name.t -> t -> Value.t

val of_envelope : Value.t -> (Port_name.t * t, string) result
