lib/core/message.mli: Dcp_sim Dcp_wire Format Port_name Value
