lib/core/acl.mli:
