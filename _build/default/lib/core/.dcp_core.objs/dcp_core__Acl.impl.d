lib/core/acl.ml: Hashtbl List String
