lib/core/runtime.ml: Codec Dcp_net Dcp_rng Dcp_sim Dcp_stable Dcp_wire Format Hashtbl List Message Option Port Port_name Printf Process Sync Token Transmit Value Vtype
