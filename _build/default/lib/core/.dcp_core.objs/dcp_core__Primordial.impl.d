lib/core/primordial.ml: Dcp_net Dcp_wire List Message Port Printf Runtime String Value Vtype
