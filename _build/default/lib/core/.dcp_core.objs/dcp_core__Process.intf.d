lib/core/process.mli: Dcp_sim
