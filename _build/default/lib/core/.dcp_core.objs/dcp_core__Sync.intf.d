lib/core/sync.mli: Dcp_sim
