lib/core/process.ml: Dcp_sim Effect Fun Logs Printexc
