lib/core/sync.ml: Dcp_sim Fun List Process Queue
