lib/core/runtime.mli: Codec Dcp_net Dcp_rng Dcp_sim Dcp_stable Dcp_wire Message Port Port_name Process Sync Token Transmit Value Vtype
