lib/core/message.ml: Dcp_sim Dcp_wire Format Option Port_name String Value
