lib/core/primordial.mli: Dcp_sim Dcp_wire Port_name Runtime Value Vtype
