lib/core/port.mli: Dcp_sim Dcp_wire Message Port_name Vtype
