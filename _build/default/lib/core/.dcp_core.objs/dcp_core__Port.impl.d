lib/core/port.ml: Dcp_sim Dcp_wire List Message Option Port_name Process Queue Vtype
