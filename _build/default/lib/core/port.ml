open Dcp_wire
module Engine = Dcp_sim.Engine

type waiter = { mutable active : bool; mutable deliver : t * Message.t -> unit }

and t = {
  pname : Port_name.t;
  ptype : Vtype.port_type;
  capacity : int;
  queue : Message.t Queue.t;
  mutable waiters : waiter list;  (** FIFO; inactive entries filtered lazily *)
  mutable is_open : bool;
}

let create ~name ~ptype ~capacity =
  if capacity <= 0 then invalid_arg "Port.create: capacity must be positive";
  { pname = name; ptype; capacity; queue = Queue.create (); waiters = []; is_open = true }

let name t = t.pname
let ptype t = t.ptype
let capacity t = t.capacity
let queued t = Queue.length t.queue
let is_open t = t.is_open
let waiter_count t = List.length t.waiters

let rec pop_waiter t =
  match t.waiters with
  | [] -> None
  | w :: rest ->
      t.waiters <- rest;
      if w.active then Some w else pop_waiter t

let enqueue t msg =
  if not t.is_open then `Closed
  else
    match pop_waiter t with
    | Some w ->
        w.active <- false;
        w.deliver (t, msg);
        `Delivered
    | None ->
        if Queue.length t.queue >= t.capacity then `Full
        else begin
          Queue.add msg t.queue;
          `Queued
        end

let close t =
  t.is_open <- false;
  Queue.clear t.queue;
  t.waiters <- []

let reopen t =
  Queue.clear t.queue;
  t.waiters <- [];
  t.is_open <- true

type outcome = [ `Msg of t * Message.t | `Timeout ]

let try_receive ~ports =
  let rec scan = function
    | [] -> None
    | p :: rest -> (
        match Queue.take_opt p.queue with
        | Some msg -> Some (p, msg)
        | None -> scan rest)
  in
  scan ports

let receive engine ~ports ~timeout : outcome =
  if ports = [] then invalid_arg "Port.receive: empty port list";
  match try_receive ~ports with
  | Some (p, msg) -> `Msg (p, msg)
  | None ->
      Process.suspend (fun resume ->
          let w = { active = true; deliver = (fun _ -> ()) } in
          (* A waiter registers on every port in the list, but resumes (or
             times out) exactly once; eagerly drop it from all the other
             ports then, or quiet ports accumulate dead waiters without
             bound (heartbeat-style receive loops leak otherwise). *)
          let deregister () =
            List.iter (fun p -> p.waiters <- List.filter (fun x -> x != w) p.waiters) ports
          in
          let timer =
            Option.map
              (fun d ->
                Engine.schedule_after engine ~delay:d (fun () ->
                    if w.active then begin
                      w.active <- false;
                      deregister ();
                      resume `Timeout
                    end))
              timeout
          in
          w.deliver <-
            (fun (p, msg) ->
              Option.iter Engine.cancel timer;
              deregister ();
              resume (`Msg (p, msg)));
          List.iter (fun p -> p.waiters <- p.waiters @ [ w ]) ports)
