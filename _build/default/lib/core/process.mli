(** Processes: "the execution of a sequential program" (§2.1).

    Guardians contain one or more processes that share the guardian's
    objects.  A process here is an effect-based coroutine driven by the
    simulation {!Dcp_sim.Engine}: it runs uninterrupted until it blocks
    (receive, sleep, lock) and is resumed by a later simulation event.  The
    whole system is single-threaded, so intra-guardian data sharing needs no
    low-level locking — the {!Sync} monitors exist for the *logical* mutual
    exclusion the paper's Figure 1c needs (holding a resource across a
    blocking receive).

    Blocking is expressed with {!suspend}, which every higher-level blocking
    operation (receive with timeout, mutexes, RPC helpers) is built from.
    Killing a process (node crash, guardian self-destruct) marks it dead;
    any pending resumption is silently dropped, modelling the paper's view
    that a crash simply stops the node's processes. *)

type t

type state =
  | Created  (** spawned, first run not yet scheduled/executed *)
  | Running  (** currently executing *)
  | Blocked  (** suspended, awaiting a resume *)
  | Finished  (** body returned or raised *)
  | Dead  (** killed *)

val spawn : Dcp_sim.Engine.t -> name:string -> (unit -> unit) -> t
(** Create a process whose body starts at the current virtual time (as a
    separate engine event, so the spawner continues first). *)

val pid : t -> int
val name : t -> string
val state : t -> state
val alive : t -> bool
(** [Created || Running || Blocked]. *)

val kill : t -> unit
(** Idempotent.  A killed process never runs again; its pending resume (if
    blocked) is dropped. *)

val failure : t -> exn option
(** The exception that terminated the body, if any. *)

(** {1 Operations usable only inside a process body} *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] blocks the calling process.  [register] is called
    immediately with a [resume] function; whoever invokes [resume v] (from a
    later engine event) unblocks the process with value [v].  Extra calls to
    [resume] are ignored, as is resuming a killed process. *)

val sleep : Dcp_sim.Engine.t -> Dcp_sim.Clock.time -> unit
(** Block for the given virtual duration. *)

val yield : Dcp_sim.Engine.t -> unit
(** Reschedule self at the current time, letting other ready events run. *)

val self : unit -> t option
(** The currently executing process, if any. *)
