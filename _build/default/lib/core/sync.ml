module Engine = Dcp_sim.Engine

type mutex = {
  engine : Engine.t;
  mutable held : bool;
  mutable mutex_waiters : (unit -> unit) Queue.t;
}

let mutex engine = { engine; held = false; mutex_waiters = Queue.create () }

let lock m =
  if not m.held then m.held <- true
  else
    Process.suspend (fun resume -> Queue.add (fun () -> resume ()) m.mutex_waiters)

let unlock m =
  if not m.held then invalid_arg "Sync.unlock: mutex not held";
  match Queue.take_opt m.mutex_waiters with
  | None -> m.held <- false
  | Some wake ->
      (* Hand the lock directly to the next waiter; schedule the wakeup so
         the unlocking process finishes its current event first. *)
      ignore (Engine.schedule_after m.engine ~delay:0 wake)

let with_lock m f =
  lock m;
  Fun.protect ~finally:(fun () -> unlock m) f

let locked m = m.held

type condition = { cengine : Engine.t; mutable cond_waiters : (unit -> unit) Queue.t }

let condition engine = { cengine = engine; cond_waiters = Queue.create () }

let wait c m =
  Process.suspend (fun resume ->
      Queue.add (fun () -> resume ()) c.cond_waiters;
      unlock m);
  lock m

let signal c =
  match Queue.take_opt c.cond_waiters with
  | None -> ()
  | Some wake -> ignore (Engine.schedule_after c.cengine ~delay:0 wake)

let broadcast c =
  let pending = Queue.length c.cond_waiters in
  for _ = 1 to pending do
    signal c
  done

type semaphore = {
  sengine : Engine.t;
  total : int;
  mutable free : int;
  mutable sem_waiters : (unit -> unit) Queue.t;
}

let semaphore engine n =
  if n <= 0 then invalid_arg "Sync.semaphore: need at least one unit";
  { sengine = engine; total = n; free = n; sem_waiters = Queue.create () }

let acquire s =
  if s.free > 0 then s.free <- s.free - 1
  else Process.suspend (fun resume -> Queue.add (fun () -> resume ()) s.sem_waiters)

let release s =
  match Queue.take_opt s.sem_waiters with
  | Some wake ->
      (* hand the unit straight to the next waiter *)
      ignore (Engine.schedule_after s.sengine ~delay:0 wake)
  | None ->
      if s.free >= s.total then invalid_arg "Sync.release: all units already free";
      s.free <- s.free + 1

let with_unit s f =
  acquire s;
  Fun.protect ~finally:(fun () -> release s) f

let available s = s.free

type 'k keyed_lock = {
  kengine : Engine.t;
  mutable held_keys : 'k list;
  mutable key_waiters : ('k * (unit -> unit)) list;  (** FIFO per key *)
}

let keyed_lock engine = { kengine = engine; held_keys = []; key_waiters = [] }

let start_request kl k =
  if not (List.mem k kl.held_keys) then kl.held_keys <- k :: kl.held_keys
  else
    Process.suspend (fun resume ->
        kl.key_waiters <- kl.key_waiters @ [ (k, fun () -> resume ()) ])

let end_request kl k =
  if not (List.mem k kl.held_keys) then invalid_arg "Sync.end_request: key not held";
  let rec find_waiter acc = function
    | [] -> None
    | (k', wake) :: rest ->
        if k' = k then Some (wake, List.rev_append acc rest) else find_waiter ((k', wake) :: acc) rest
  in
  match find_waiter [] kl.key_waiters with
  | None -> kl.held_keys <- List.filter (fun k' -> k' <> k) kl.held_keys
  | Some (wake, remaining) ->
      (* The key stays held and passes to the first waiter for it. *)
      kl.key_waiters <- remaining;
      ignore (Engine.schedule_after kl.kengine ~delay:0 wake)

let with_key kl k f =
  start_request kl k;
  Fun.protect ~finally:(fun () -> end_request kl k) f

let holders kl = List.length kl.held_keys
