(** The mailbox guardian: guards one user's mail.

    Two ports separate the two capabilities, in the style the paper's port
    mechanism makes natural:

    - the {b delivery port} (port 0) is published in the {!Directory}; any
      guardian may deliver a document to it:
      [deliver(document) replies (delivered, mailbox_full)];
    - the {b owner port} (port 1) is handed only to the mailbox's owner:
      [list_mail() replies (headers(list))], [fetch(n) replies
      (mail(document), no_such_mail)], [discard(n) replies (discarded,
      no_such_mail)].

    Mail is logged to the guardian's stable store on delivery and the
    guardian recovers after a crash — memos survive node failures
    (§2.2's permanence, for office data). *)

open Dcp_wire

val def_name : string
val delivery_port_type : Vtype.port_type
val owner_port_type : Vtype.port_type
val def : Dcp_core.Runtime.def

val create :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  owner:string ->
  ?capacity:int ->
  unit ->
  Port_name.t * Port_name.t
(** [(delivery_port, owner_port)].  [capacity] bounds stored mail
    (default 100); deliveries beyond it answer [mailbox_full]. *)
