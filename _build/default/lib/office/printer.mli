(** The printer guardian: a guarded *device* (§2.3 — "the resources being
    so guarded may be data, devices or computation").

    The device prints one document at a time at a configured rate; the
    guardian queues jobs, reports queue positions, and answers status
    probes while printing (a Figure-1b-style split: an intake process
    synchronizes, a device process works).

    Port: [print(document, notify) replies (queued(position),
    rejected(string))] — [notify] is an optional port that receives
    [printed(title)] when the job physically completes, long after the
    [queued] reply: the "response comes from a different process [and
    time] than the original recipient" pattern of §3 — and
    [status() replies (status(state, queue_length, pages_printed))]. *)

open Dcp_wire

val def_name : string
val port_type : Vtype.port_type
val def : Dcp_core.Runtime.def

val create :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  ?line_time:Dcp_sim.Clock.time ->
  ?queue_limit:int ->
  unit ->
  Port_name.t
(** [line_time] is the device time per line of the document body
    (default 10 ms); [queue_limit] bounds accepted jobs (default 16). *)
