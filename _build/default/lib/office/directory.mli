(** The directory guardian: a name service for the office.

    Maps user names to their mailbox delivery ports.  Port names are
    values (§3.2: "the names of ports can also be sent in messages"), so a
    directory is just a guardian guarding a map of them.  Registrations
    are logged; the directory recovers across crashes.

    Port: [register(user, port) replies (registered)],
    [lookup(user) replies (mailbox(port), unknown_user)],
    [users() replies (users(list))]. *)

open Dcp_wire

val def_name : string
val port_type : Vtype.port_type
val def : Dcp_core.Runtime.def

val create :
  Dcp_core.Runtime.world -> at:Dcp_core.Runtime.node_id -> unit -> Port_name.t

(** {1 Client helpers} *)

val register_user :
  Dcp_core.Runtime.ctx -> directory:Port_name.t -> user:string -> port:Port_name.t -> bool

val lookup :
  Dcp_core.Runtime.ctx -> directory:Port_name.t -> user:string -> Port_name.t option
