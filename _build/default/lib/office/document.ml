open Dcp_wire

type meta = { title : string; author : string; revision : int }

type t = Flat of meta * string | Lines of meta * string list

let meta = function Flat (m, _) | Lines (m, _) -> m

let create ~title ~author ~body = Flat ({ title; author; revision = 1 }, body)
let create_lines ~title ~author ~lines = Lines ({ title; author; revision = 1 }, lines)

let title t = (meta t).title
let author t = (meta t).author
let revision t = (meta t).revision

let body = function
  | Flat (_, body) -> body
  | Lines (_, lines) -> String.concat "\n" lines

let lines = function
  | Lines (_, lines) -> lines
  | Flat (_, body) -> if String.equal body "" then [] else String.split_on_char '\n' body

let word_count t =
  body t
  |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> not (String.equal w ""))
  |> List.length

let append t paragraph =
  match t with
  | Flat (m, body) ->
      let body = if String.equal body "" then paragraph else body ^ "\n" ^ paragraph in
      Flat ({ m with revision = m.revision + 1 }, body)
  | Lines (m, lines) -> Lines ({ m with revision = m.revision + 1 }, lines @ [ paragraph ])

let equal a b =
  let ma = meta a and mb = meta b in
  String.equal ma.title mb.title
  && String.equal ma.author mb.author
  && ma.revision = mb.revision
  && String.equal (body a) (body b)

let is_flat = function Flat _ -> true | Lines _ -> false

let type_name = "document"

let external_rep =
  Vtype.Trecord
    [ ("title", Vtype.Tstr); ("author", Vtype.Tstr); ("revision", Vtype.Tint); ("body", Vtype.Tstr) ]

let encode_common t =
  let m = meta t in
  Value.record
    [
      ("title", Value.str m.title);
      ("author", Value.str m.author);
      ("revision", Value.int m.revision);
      ("body", Value.str (body t));
    ]

let decode_meta v =
  match
    ( Value.field v "title",
      Value.field v "author",
      Value.field v "revision",
      Value.field v "body" )
  with
  | Value.Str title, Value.Str author, Value.Int revision, Value.Str body ->
      ({ title; author; revision }, body)
  | _ -> raise (Transmit.Decode_failure "document: malformed external rep")
  | exception Value.Type_mismatch reason -> raise (Transmit.Decode_failure reason)

let transmit_flat : t Transmit.impl =
  (module struct
    type nonrec t = t

    let type_name = type_name
    let external_rep = external_rep
    let encode = encode_common

    let decode v =
      let m, body = decode_meta v in
      Flat (m, body)
  end)

let transmit_lines : t Transmit.impl =
  (module struct
    type nonrec t = t

    let type_name = type_name
    let external_rep = external_rep
    let encode = encode_common

    let decode v =
      let m, body = decode_meta v in
      Lines (m, if String.equal body "" then [] else String.split_on_char '\n' body)
  end)

let register registry = Transmit.register registry ~type_name ~external_rep

let to_value t =
  match t with
  | Flat _ -> Transmit.to_value transmit_flat t
  | Lines _ -> Transmit.to_value transmit_lines t

let of_value_flat v = Transmit.of_value transmit_flat v
let of_value_lines v = Transmit.of_value transmit_lines v
