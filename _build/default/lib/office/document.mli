(** Documents: the office-automation system's transmittable abstract type.

    §2.1 lists "documents (in an office automation system)" among the
    objects guardians manipulate; §3.3 requires every transmittable type to
    fix one external rep while nodes choose their own internal
    representations.  Documents here have two implementations — a flat
    string body and a line-list body (the representation an editor-oriented
    node would prefer) — sharing one external rep. *)

open Dcp_wire

type t

val create : title:string -> author:string -> body:string -> t
(** A fresh revision-1 document in the flat representation. *)

val create_lines : title:string -> author:string -> lines:string list -> t
(** The same abstract value held as lines. *)

val title : t -> string
val author : t -> string
val revision : t -> int
val body : t -> string
val lines : t -> string list
val word_count : t -> int

val append : t -> string -> t
(** Append a paragraph; bumps the revision.  Keeps the representation. *)

val equal : t -> t -> bool
(** Representation-independent equality (same title/author/revision/body). *)

val is_flat : t -> bool

val type_name : string
val external_rep : Vtype.t
val transmit_flat : t Transmit.impl
val transmit_lines : t Transmit.impl
val register : Transmit.registry -> unit

val to_value : t -> Value.t
(** Encode with the sending node's natural implementation. *)

val of_value_flat : Value.t -> t
val of_value_lines : Value.t -> t
