lib/office/printer.ml: Dcp_core Dcp_primitives Dcp_sim Dcp_wire Document Int List Option Port_name Queue Value Vtype
