lib/office/mailbox.mli: Dcp_core Dcp_wire Port_name Vtype
