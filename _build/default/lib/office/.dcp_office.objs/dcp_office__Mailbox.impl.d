lib/office/mailbox.ml: Codec Dcp_core Dcp_primitives Dcp_stable Dcp_wire Document Hashtbl List Port_name Printf String Value Vtype
