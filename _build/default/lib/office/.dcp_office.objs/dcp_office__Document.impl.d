lib/office/document.ml: Dcp_wire List String Transmit Value Vtype
