lib/office/directory.mli: Dcp_core Dcp_wire Port_name Vtype
