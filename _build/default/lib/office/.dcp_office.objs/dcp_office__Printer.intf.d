lib/office/printer.mli: Dcp_core Dcp_sim Dcp_wire Port_name Vtype
