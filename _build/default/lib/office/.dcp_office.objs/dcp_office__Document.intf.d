lib/office/document.mli: Dcp_wire Transmit Value Vtype
