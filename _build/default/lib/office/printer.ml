open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Sync = Dcp_core.Sync
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock

let def_name = "printer"

let port_type =
  [
    Rpc.request_signature "print"
      [ Vtype.Tnamed Document.type_name; Vtype.Toption Vtype.Tport ]
      ~replies:
        [ Vtype.reply "queued" [ Vtype.Tint ]; Vtype.reply "rejected" [ Vtype.Tstr ] ];
    Rpc.request_signature "status" []
      ~replies:
        [
          Vtype.reply "status" [ Vtype.Tstr; Vtype.Tint; Vtype.Tint ];
        ];
  ]

type job = { document : Document.t; notify : Port_name.t option }

type state = {
  line_time : Clock.time;
  queue_limit : int;
  jobs : job Queue.t;
  mutable current : string option;  (** title being printed *)
  mutable pages_printed : int;
}

(* The device process: waits for work, prints one job at a time.  The
   intake process signals it through a condition variable — the guardian's
   processes "communicate with one another via shared objects" (§2.1). *)
let device_process ctx state mutex work_ready =
  let rec loop () =
    Sync.lock mutex;
    while Queue.is_empty state.jobs do
      Sync.wait work_ready mutex
    done;
    let job = Queue.pop state.jobs in
    state.current <- Some (Document.title job.document);
    Sync.unlock mutex;
    let lines = List.length (Document.lines job.document) in
    Runtime.sleep ctx (Int.max 1 lines * state.line_time);
    state.pages_printed <- state.pages_printed + 1;
    state.current <- None;
    (match job.notify with
    | Some notify ->
        Runtime.send ctx ~to_:notify "printed" [ Value.str (Document.title job.document) ]
    | None -> ());
    loop ()
  in
  loop ()

let serve ctx state =
  let mutex = Runtime.sync_mutex ctx in
  let work_ready = Runtime.sync_condition ctx in
  ignore (Runtime.spawn ctx ~name:"printer.device" (fun () -> device_process ctx state mutex work_ready));
  let request_port = Runtime.port ctx 0 in
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args) with
        | "print", [ Value.Int id; doc_value; Value.Option notify ] -> (
            let notify = Option.map Value.get_port notify in
            match Document.of_value_lines doc_value with
            | exception Dcp_wire.Transmit.Decode_failure reason ->
                (match msg.Message.reply_to with
                | Some reply ->
                    Runtime.send ctx ~to_:reply "rejected" [ Value.int id; Value.str reason ]
                | None -> ())
            | document ->
                if Queue.length state.jobs >= state.queue_limit then (
                  match msg.Message.reply_to with
                  | Some reply ->
                      Runtime.send ctx ~to_:reply "rejected"
                        [ Value.int id; Value.str "printer queue full" ]
                  | None -> ())
                else begin
                  Sync.with_lock mutex (fun () ->
                      Queue.add { document; notify } state.jobs;
                      Sync.signal work_ready);
                  match msg.Message.reply_to with
                  | Some reply ->
                      Runtime.send ctx ~to_:reply "queued"
                        [ Value.int id; Value.int (Queue.length state.jobs) ]
                  | None -> ()
                end)
        | "status", [ Value.Int id ] ->
            Rpc.serve_always ctx msg ~f:(fun _ _ ->
                ignore id;
                ( "status",
                  [
                    Value.str (Option.value state.current ~default:"idle");
                    Value.int (Queue.length state.jobs);
                    Value.int state.pages_printed;
                  ] ))
        | _ -> ()));
    loop ()
  in
  loop ()

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 64) ];
    init =
      (fun ctx args ->
        let state =
          match args with
          | [ Value.Int line_time; Value.Int queue_limit ] ->
              { line_time; queue_limit; jobs = Queue.create (); current = None; pages_printed = 0 }
          | _ -> invalid_arg "printer: bad creation arguments"
        in
        serve ctx state);
    (* A printer holds no durable state worth recovering: its queue dies
       with the node, like paper jams eat print jobs. *)
    recover = None;
  }

let create world ~at ?(line_time = Clock.ms 10) ?(queue_limit = 16) () =
  Document.register (Runtime.registry world);
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let g =
    Runtime.create_guardian world ~at ~def_name
      ~args:[ Value.int line_time; Value.int queue_limit ]
  in
  List.hd (Runtime.guardian_ports g)
