open Dcp_wire
module Rpc = Dcp_primitives.Rpc

type flight_no = int
type date = int
type passenger = string

type reserve_reply = Ok_reserved | Full | Wait_listed | Pre_reserved | No_such_flight
type cancel_reply = Canceled | Not_reserved | Cancel_no_such_flight

let reserve_reply_command = function
  | Ok_reserved -> "ok"
  | Full -> "full"
  | Wait_listed -> "wait_list"
  | Pre_reserved -> "pre_reserved"
  | No_such_flight -> "no_such_flight"

let reserve_reply_of_command = function
  | "ok" -> Some Ok_reserved
  | "full" -> Some Full
  | "wait_list" -> Some Wait_listed
  | "pre_reserved" -> Some Pre_reserved
  | "no_such_flight" -> Some No_such_flight
  | _ -> None

let cancel_reply_command = function
  | Canceled -> "canceled"
  | Not_reserved -> "not_reserved"
  | Cancel_no_such_flight -> "no_such_flight"

let cancel_reply_of_command = function
  | "canceled" -> Some Canceled
  | "not_reserved" -> Some Not_reserved
  | "no_such_flight" -> Some Cancel_no_such_flight
  | _ -> None

let pp_reserve_reply fmt r = Format.pp_print_string fmt (reserve_reply_command r)
let pp_cancel_reply fmt r = Format.pp_print_string fmt (cancel_reply_command r)

let reserve_replies =
  [
    Vtype.reply "ok" [];
    Vtype.reply "full" [];
    Vtype.reply "wait_list" [];
    Vtype.reply "pre_reserved" [];
    Vtype.reply "no_such_flight" [];
  ]

let cancel_replies =
  [ Vtype.reply "canceled" []; Vtype.reply "not_reserved" []; Vtype.reply "no_such_flight" [] ]

let list_replies =
  [ Vtype.reply "info" [ Vtype.Tlist Vtype.Tstr ]; Vtype.reply "no_such_flight" [] ]

let flight_port_type =
  [
    Rpc.request_signature "reserve" [ Vtype.Tstr; Vtype.Tint ] ~replies:reserve_replies;
    Rpc.request_signature "cancel" [ Vtype.Tstr; Vtype.Tint ] ~replies:cancel_replies;
    Rpc.request_signature "list_passengers" [ Vtype.Tint ] ~replies:list_replies;
  ]
  @ Dcp_primitives.Two_phase.participant_signatures

let flight_admin_port_type =
  [
    Rpc.request_signature "list_passengers" [ Vtype.Tint ] ~replies:list_replies;
    Rpc.request_signature "stats" []
      ~replies:
        [
          Vtype.reply "stats"
            [ Vtype.Trecord
                [ ("dates", Vtype.Tint); ("reserved", Vtype.Tint); ("waitlisted", Vtype.Tint);
                  ("holds", Vtype.Tint) ] ];
        ];
    Rpc.request_signature "archive_date" [ Vtype.Tint ]
      ~replies:[ Vtype.reply "archived" [ Vtype.Tint ] ];
  ]

let regional_port_type =
  [
    Rpc.request_signature "reserve"
      [ Vtype.Tint; Vtype.Tstr; Vtype.Tint ]
      ~replies:reserve_replies;
    Rpc.request_signature "cancel" [ Vtype.Tint; Vtype.Tstr; Vtype.Tint ] ~replies:cancel_replies;
    Rpc.request_signature "list_passengers" [ Vtype.Tint; Vtype.Tint ] ~replies:list_replies;
  ]

let front_desk_port_type =
  [
    Rpc.request_signature "begin_transaction" [ Vtype.Tstr ]
      ~replies:[ Vtype.reply "transaction" [ Vtype.Tport ] ];
  ]

let transaction_port_type =
  [
    Rpc.request_signature "reserve" [ Vtype.Tint; Vtype.Tint ] ~replies:reserve_replies;
    Rpc.request_signature "cancel" [ Vtype.Tint; Vtype.Tint ]
      ~replies:[ Vtype.reply "deferred" [] ];
    Rpc.request_signature "undo" [] ~replies:[ Vtype.reply "undone" []; Vtype.reply "nothing_to_undo" [] ];
    Rpc.request_signature "finish" []
      ~replies:[ Vtype.reply "finished" [ Vtype.Tint; Vtype.Tint ] ];
  ]

type organization = One_at_a_time | Serializer | Monitor

let organization_of_string = function
  | "one_at_a_time" -> Some One_at_a_time
  | "serializer" -> Some Serializer
  | "monitor" -> Some Monitor
  | _ -> None

let organization_to_string = function
  | One_at_a_time -> "one_at_a_time"
  | Serializer -> "serializer"
  | Monitor -> "monitor"

type accounting = Idempotent_set | Naive_counter

let accounting_of_string = function
  | "idempotent" -> Some Idempotent_set
  | "naive" -> Some Naive_counter
  | _ -> None

let accounting_to_string = function
  | Idempotent_set -> "idempotent"
  | Naive_counter -> "naive"
