open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Patterns = Dcp_primitives.Patterns
module Store = Dcp_stable.Store
module Clock = Dcp_sim.Clock

let def_name = "regional"

type flight_config = { flight : Types.flight_no; capacity : int }

(* directory = map[flight_no, flight_port] (Figure 4's [map] type). *)
type state = { directory : (int, Port_name.t) Hashtbl.t }

let reply_no_such_flight ctx msg =
  match (msg.Message.args, msg.Message.reply_to) with
  | Value.Int id :: _, Some reply ->
      Runtime.send ctx ~to_:reply "no_such_flight" [ Value.int id ]
  | _, _ -> ()

(* Strip the flight number out of the regional request, producing the
   flight guardian's version of the same request; the request id and reply
   port are preserved so the response bypasses the regional manager. *)
let forward ctx state msg =
  match msg.Message.args with
  | Value.Int id :: Value.Int flight :: rest -> (
      match Hashtbl.find_opt state.directory flight with
      | None -> reply_no_such_flight ctx msg
      | Some flight_port ->
          Patterns.delegate_as ctx ~to_:flight_port ~command:msg.Message.command
            ~args:(Value.int id :: rest) msg)
  | _ -> reply_no_such_flight ctx msg

let serve ctx state =
  let request_port = Runtime.port ctx 0 in
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> (
        match msg.Message.command with
        | "reserve" | "cancel" | "list_passengers" -> forward ctx state msg
        | _ -> reply_no_such_flight ctx msg));
    loop ()
  in
  loop ()

let config_key = "_config"

let parse_args args =
  match args with
  | [ Value.Listv flights; Value.Int waitlist; Value.Str org; Value.Int service; Value.Str acc ]
    ->
      let parse_flight = function
        | Value.Tuple [ Value.Int flight; Value.Int capacity ] -> { flight; capacity }
        | _ -> invalid_arg "regional guardian: bad flight config"
      in
      (List.map parse_flight flights, waitlist, org, service, acc)
  | _ -> invalid_arg "regional guardian: bad creation arguments"

let directory_key flight = Printf.sprintf "flight:%d" flight

let build ctx args =
  let flights, waitlist, org, service, acc = parse_args args in
  let state = { directory = Hashtbl.create 64 } in
  List.iter
    (fun { flight; capacity } ->
      let flight_args =
        [
          Value.int flight;
          Value.int capacity;
          Value.int waitlist;
          Value.str org;
          Value.int service;
          Value.str acc;
          Value.int 0;
        ]
      in
      (* Flight guardians live at the regional node — placement is the
         programmer's decision (§1.1) and the paper assigns a region's
         flights to the region's node. *)
      let g = Runtime.ctx_create_guardian ctx ~def_name:Flight.def_name ~args:flight_args in
      let port = List.hd (Runtime.guardian_ports g) in
      (* Flight port names survive recovery, so the directory itself can be
         made permanent (§2.2). *)
      Store.set (Runtime.store ctx) ~key:(directory_key flight)
        (Codec.encode_exn (Value.port port));
      Hashtbl.replace state.directory flight port)
    flights;
  state

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (Types.regional_port_type, 512) ];
    init =
      (fun ctx args ->
        Store.set (Runtime.store ctx) ~key:config_key (Codec.encode_exn (Value.list args));
        let state = build ctx args in
        serve ctx state);
    recover =
      Some
        (fun ctx ->
          match Store.get (Runtime.store ctx) ~key:config_key with
          | None -> Runtime.self_destruct ctx
          | Some _ ->
              (* The flight guardians recover on their own (they share the
                 node); the regional manager only needs its directory back,
                 which it logged at creation time. *)
              let state = { directory = Hashtbl.create 64 } in
              Store.fold (Runtime.store ctx) ~init:() ~f:(fun ~key value () ->
                  match String.split_on_char ':' key with
                  | [ "flight"; flight ] ->
                      let port = Value.get_port (Codec.decode_exn value) in
                      Hashtbl.replace state.directory (int_of_string flight) port
                  | _ -> ());
              serve ctx state);
  }

let args ~flights ?(waitlist_capacity = 10) ?(organization = Types.Monitor)
    ?(service_time = Clock.ms 1) ?(accounting = Types.Idempotent_set) () =
  [
    Value.list
      (List.map (fun { flight; capacity } -> Value.tuple [ Value.int flight; Value.int capacity ]) flights);
    Value.int waitlist_capacity;
    Value.str (Types.organization_to_string organization);
    Value.int service_time;
    Value.str (Types.accounting_to_string accounting);
  ]

let create world ~at ~flights ?waitlist_capacity ?organization ?service_time ?accounting () =
  if Runtime.find_def world Flight.def_name = None then Runtime.register_def world Flight.def;
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let args = args ~flights ?waitlist_capacity ?organization ?service_time ?accounting () in
  let g = Runtime.create_guardian world ~at ~def_name ~args in
  List.hd (Runtime.guardian_ports g)
