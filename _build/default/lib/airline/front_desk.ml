open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock

let def_name = "front_desk"

type config = {
  regionals : Port_name.t array;
  request_timeout : Clock.time;
  idle_timeout : Clock.time;
}

let regional_for config flight =
  config.regionals.(flight mod Array.length config.regionals)

(* One entry of the transaction history (the paper's [transhistory]
   abstraction): what was asked, and what became of it. *)
type history_entry = { op : [ `Reserve | `Cancel ]; flight : int; date : int }

type trans_state = {
  passenger : string;
  mutable history : history_entry list;  (** newest first; successful reserves *)
  mutable deferred : (int * int) list;  (** (flight, date) cancels to run at finish *)
}

let do_reserve ctx config state ~flight ~date =
  match
    Rpc.call ctx
      ~to_:(regional_for config flight)
      ~timeout:config.request_timeout "reserve"
      [ Value.int flight; Value.str state.passenger; Value.int date ]
  with
  | Rpc.Timeout -> ("failure", [ Value.str "can't communicate" ])
  | Rpc.Failure_msg reason -> ("failure", [ Value.str reason ])
  | Rpc.Reply (command, _) ->
      if String.equal command "ok" then
        state.history <- { op = `Reserve; flight; date } :: state.history;
      (command, [])

let do_deferred_cancels ctx config state =
  let run_one (done_count, failed_count) (flight, date) =
    match
      Rpc.call ctx
        ~to_:(regional_for config flight)
        ~timeout:config.request_timeout ~attempts:3 "cancel"
        [ Value.int flight; Value.str state.passenger; Value.int date ]
    with
    | Rpc.Reply (("canceled" | "not_reserved"), _) -> (done_count + 1, failed_count)
    | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> (done_count, failed_count + 1)
  in
  List.fold_left run_one (0, 0) (List.rev state.deferred)

let do_undo state =
  match state.history with
  | [] -> ("nothing_to_undo", [])
  | { op = `Reserve; flight; date } :: rest ->
      (* An unwanted reservation is undone by a (deferred) cancel. *)
      state.history <- rest;
      state.deferred <- (flight, date) :: state.deferred;
      ("undone", [])
  | { op = `Cancel; flight; date } :: rest ->
      (* Undoing a deferred cancel: just forget it. *)
      state.history <- rest;
      state.deferred <- List.filter (fun fd -> fd <> (flight, date)) state.deferred;
      ("undone", [])

(* Figure 5's do_trans: the forked conversation process. *)
let do_trans ctx config ~passenger ~trans_port =
  let state = { passenger; history = []; deferred = [] } in
  let rec loop () =
    match Runtime.receive ctx ~timeout:config.idle_timeout [ trans_port ] with
    | `Timeout ->
        (* The clerk went away; abandon the conversation. *)
        Runtime.remove_port ctx trans_port
    | `Msg (_, msg) -> (
        let serve_and_continue () =
          Rpc.serve_always ctx msg ~f:(fun command args ->
              match (command, args) with
              | "reserve", [ Value.Int flight; Value.Int date ] ->
                  do_reserve ctx config state ~flight ~date
              | "cancel", [ Value.Int flight; Value.Int date ] ->
                  state.deferred <- (flight, date) :: state.deferred;
                  state.history <- { op = `Cancel; flight; date } :: state.history;
                  ("deferred", [])
              | "undo", [] -> do_undo state
              | _ -> ("failure", [ Value.str "unknown transaction request" ]));
          loop ()
        in
        match msg.Message.command with
        | "finish" ->
            (* do all cancels, then this terminates the process *)
            Rpc.serve_always ctx msg ~f:(fun _ _ ->
                let done_count, failed_count = do_deferred_cancels ctx config state in
                ("finished", [ Value.int done_count; Value.int failed_count ]));
            Runtime.remove_port ctx trans_port
        | _ -> serve_and_continue ())
  in
  loop ()

let serve ctx config =
  let front_port = Runtime.port ctx 0 in
  let rec loop () =
    (match Runtime.receive ctx [ front_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args) with
        | "begin_transaction", [ Value.Int _id; Value.Str passenger ] ->
            let trans_port = Runtime.new_port ctx Types.transaction_port_type in
            ignore
              (Runtime.spawn ctx ~name:("do_trans." ^ passenger) (fun () ->
                   do_trans ctx config ~passenger ~trans_port));
            Rpc.serve_always ctx msg ~f:(fun _ _ ->
                ("transaction", [ Value.port (Port.name trans_port) ]))
        | _ -> ()));
    loop ()
  in
  loop ()

let parse_args args =
  match args with
  | [ Value.Listv regionals; Value.Int request_timeout; Value.Int idle_timeout ] ->
      {
        regionals = Array.of_list (List.map Value.get_port regionals);
        request_timeout;
        idle_timeout;
      }
  | _ -> invalid_arg "front_desk guardian: bad creation arguments"

let config_key = "_config"

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (Types.front_desk_port_type, 128) ];
    init =
      (fun ctx args ->
        Dcp_stable.Store.set (Runtime.store ctx) ~key:config_key
          (Codec.encode_exn (Value.list args));
        serve ctx (parse_args args));
    recover =
      Some
        (fun ctx ->
          (* Transactions in progress are forgotten (§3.5); only the desk
             itself returns, ready for new transactions. *)
          match Dcp_stable.Store.get (Runtime.store ctx) ~key:config_key with
          | None -> Runtime.self_destruct ctx
          | Some encoded ->
              serve ctx (parse_args (Value.get_list (Codec.decode_exn encoded))));
  }

let args ~regionals ?(request_timeout = Clock.ms 500) ?(idle_timeout = Clock.s 60) () =
  [
    Value.list (List.map Value.port regionals);
    Value.int request_timeout;
    Value.int idle_timeout;
  ]

let create world ~at ~regionals ?request_timeout ?idle_timeout () =
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let args = args ~regionals ?request_timeout ?idle_timeout () in
  let g = Runtime.create_guardian world ~at ~def_name ~args in
  List.hd (Runtime.guardian_ports g)
