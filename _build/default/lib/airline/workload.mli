(** Clerk workload driver.

    The reservations clerk of §3.5, scripted: a clerk guardian runs
    transaction sessions against a front desk — begin a transaction, issue
    a mix of reserves, deferred cancels and undos with think times between
    them, then finish.  Timeouts are handled the way the paper prescribes:
    the request is retried (reserve and cancel are idempotent), and if the
    transaction process itself has vanished (its node crashed), the clerk
    starts a new transaction (§3.5: "to finish the transaction, the clerk
    starts a new transaction").

    Outcomes and latencies are recorded in the world's metrics registry
    under [clerk.*] keys. *)

open Dcp_wire
module Clock = Dcp_sim.Clock

type config = {
  transactions : int;  (** sessions to run; 0 = until the simulation ends *)
  requests_per_transaction : int;
  think_time : Clock.time;  (** mean of the exponential think-time *)
  flights : int;  (** flight numbers are drawn from [0, flights) *)
  dates : int;  (** dates are drawn from [0, dates) *)
  reserve_fraction : float;  (** remaining requests are deferred cancels *)
  undo_fraction : float;  (** probability of an undo after a request *)
  request_timeout : Clock.time;
  attempts : int;  (** tries per request (1 = no retry) *)
  zipf_flights : bool;  (** skewed flight popularity instead of uniform *)
  flight_picker : (Dcp_rng.Rng.t -> int) option;
      (** overrides flight choice entirely — used to give clerks an
          affinity for their own region's flights (Figure 2's locality) *)
}

val default_config : config

val install :
  Dcp_core.Runtime.world -> name:string -> config -> unit
(** Register a clerk guardian definition under [name].  Creation args:
    [\[Portv front_desk\]].  Each instance draws from an independent split
    of the world's workload RNG. *)

val create_clerk :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  name:string ->
  front_desk:Port_name.t ->
  unit

(** {1 Reading results} *)

type totals = {
  reserves_ok : int;
  reserves_full : int;
  reserves_waitlisted : int;
  reserves_pre_reserved : int;
  cancels_deferred : int;
  undos : int;
  request_failures : int;  (** failure(...) or timeout after all attempts *)
  transactions_completed : int;
  transactions_abandoned : int;
}

val totals : Dcp_core.Runtime.world -> totals
(** Aggregate the [clerk.*] counters of a run. *)
