(** The itinerary guardian: atomic multi-leg bookings over two-phase commit.

    §3 requires the chosen primitive to express the literature's protocols
    for "recoverable atomic transactions"; this guardian is the airline's
    use of one.  A trip of several flight legs books *atomically*: either
    every leg's flight guardian commits a seat or none does, even if the
    itinerary guardian's node crashes between the phases (the logged
    decision is re-announced by its recovery process).

    Port (RPC convention):
    {v
    book_trip (passenger, [(flight, date); ...])
      replies (booked, unavailable(string))
    book_naive (passenger, [(flight, date); ...])
      replies (booked, stranded(int), unavailable(string))
    v}

    [book_naive] is the E9 baseline: it reserves the legs one at a time
    with plain reserves, and when a later leg is full the passenger is
    left *stranded* holding the earlier legs (the reply reports how many).
    The atomic path never strands anyone. *)

open Dcp_wire

val def_name : string
val port_type : Vtype.port_type
val def : Dcp_core.Runtime.def

val create :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  directory:(Types.flight_no * Port_name.t) list ->
  unit ->
  Port_name.t
(** [directory] maps flight numbers to flight-guardian ports (itineraries
    talk to flight guardians directly; holds are below the regional
    dispatch layer). *)
