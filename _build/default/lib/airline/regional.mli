(** The regional manager guardian P{_j} (Figures 2 and 4).

    "It simply looks up the guardian of the requested flight using a map,
    and forwards the request; the response will go directly from the flight
    guardian to the original requesting process, bypassing the regional
    manager."

    At creation the regional manager creates one flight guardian per
    configured flight *at its own node* (the paper's placement rule: a
    region's flights live on the region's node) and builds its directory.
    Requests for unknown flights are answered [no_such_flight] directly. *)

open Dcp_wire

val def_name : string
val def : Dcp_core.Runtime.def

type flight_config = { flight : Types.flight_no; capacity : int }

val args :
  flights:flight_config list ->
  ?waitlist_capacity:int ->
  ?organization:Types.organization ->
  ?service_time:Dcp_sim.Clock.time ->
  ?accounting:Types.accounting ->
  unit ->
  Value.t list

val create :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  flights:flight_config list ->
  ?waitlist_capacity:int ->
  ?organization:Types.organization ->
  ?service_time:Dcp_sim.Clock.time ->
  ?accounting:Types.accounting ->
  unit ->
  Port_name.t
(** Bootstrap helper: create the guardian (and its flight guardians) and
    return the regional request port. *)
