lib/airline/regional.mli: Dcp_core Dcp_sim Dcp_wire Port_name Types Value
