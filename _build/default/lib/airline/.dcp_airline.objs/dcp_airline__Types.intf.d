lib/airline/types.mli: Dcp_wire Format Vtype
