lib/airline/regional.ml: Codec Dcp_core Dcp_primitives Dcp_sim Dcp_stable Dcp_wire Flight Hashtbl List Port_name Printf String Types Value
