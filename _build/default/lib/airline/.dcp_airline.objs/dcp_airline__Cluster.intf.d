lib/airline/cluster.mli: Dcp_core Dcp_net Dcp_sim Dcp_wire Format Types Workload
