lib/airline/itinerary.ml: Codec Dcp_core Dcp_primitives Dcp_sim Dcp_stable Dcp_wire List Printf Value Vtype
