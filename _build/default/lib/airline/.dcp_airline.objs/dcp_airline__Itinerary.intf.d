lib/airline/itinerary.mli: Dcp_core Dcp_wire Port_name Types Vtype
