lib/airline/workload.ml: Dcp_core Dcp_primitives Dcp_rng Dcp_sim Dcp_wire List Option Printf Value
