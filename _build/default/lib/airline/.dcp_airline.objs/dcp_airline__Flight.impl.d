lib/airline/flight.ml: Codec Dcp_core Dcp_primitives Dcp_sim Dcp_stable Dcp_wire Hashtbl Int List Option Printf Queue String Types Value
