lib/airline/front_desk.ml: Array Codec Dcp_core Dcp_primitives Dcp_sim Dcp_stable Dcp_wire List Port_name String Types Value
