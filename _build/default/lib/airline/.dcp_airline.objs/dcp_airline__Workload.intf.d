lib/airline/workload.mli: Dcp_core Dcp_rng Dcp_sim Dcp_wire Port_name
