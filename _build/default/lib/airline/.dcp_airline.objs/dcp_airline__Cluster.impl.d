lib/airline/cluster.ml: Dcp_core Dcp_net Dcp_rng Dcp_sim Dcp_wire Format Front_desk Fun List Printf Regional Types Workload
