lib/airline/types.ml: Dcp_primitives Dcp_wire Format Vtype
