(** Vocabulary of the Airline Reservation System (§2.3, §3.5).

    Flights are numbered, dates are day numbers, passengers are named by
    strings.  The reply sets are the paper's: reserve answers
    [ok | full | wait_list | pre_reserved | no_such_flight]; cancel answers
    [canceled | not_reserved | no_such_flight].

    All request ports speak the RPC convention (request id first), because
    clerks retry after timeouts and need to pair responses with requests. *)

open Dcp_wire

type flight_no = int
type date = int
type passenger = string

type reserve_reply = Ok_reserved | Full | Wait_listed | Pre_reserved | No_such_flight
type cancel_reply = Canceled | Not_reserved | Cancel_no_such_flight

val reserve_reply_command : reserve_reply -> string
val reserve_reply_of_command : string -> reserve_reply option
val cancel_reply_command : cancel_reply -> string
val cancel_reply_of_command : string -> cancel_reply option

val pp_reserve_reply : Format.formatter -> reserve_reply -> unit
val pp_cancel_reply : Format.formatter -> cancel_reply -> unit

(** {1 Port types} *)

val flight_port_type : Vtype.port_type
(** Requests to a flight guardian: [reserve(id, passenger, date)],
    [cancel(id, passenger, date)], [list_passengers(id, date)]. *)

val flight_admin_port_type : Vtype.port_type
(** The flight guardian's second, privately held port: administrative
    functions (§2.3 — "deleting or archiving information about flights that
    have occurred, collecting statistics about flight usage").  Access
    control is capability-style: the admin port's name is simply not
    published to reservation clients. *)

val regional_port_type : Vtype.port_type
(** Requests to a regional manager (Figure 4): the flight guardian's
    vocabulary with a leading [flight_no] argument. *)

val front_desk_port_type : Vtype.port_type
(** [begin_transaction(id, passenger)] replies [transaction(id, port)]. *)

val transaction_port_type : Vtype.port_type
(** The per-transaction conversation of Figure 5: [reserve(id, flight,
    date)], [cancel(id, flight, date)], [undo(id)], [finish(id)]. *)

(** {1 Internal organization of a flight guardian (Figure 1)} *)

type organization =
  | One_at_a_time  (** Fig. 1a: a single process handles requests one at a time *)
  | Serializer  (** Fig. 1b: a synchronizing process hands requests to workers *)
  | Monitor  (** Fig. 1c: fork per request; workers synchronize via a monitor *)

val organization_of_string : string -> organization option
val organization_to_string : organization -> string

(** Seat-accounting discipline — the idempotency ablation of E4. *)
type accounting =
  | Idempotent_set  (** §3.5's design: a set of passengers; retries are harmless *)
  | Naive_counter  (** a bare seat counter: every delivered reserve decrements *)

val accounting_of_string : string -> accounting option
val accounting_to_string : accounting -> string
