(** The user-interface guardian U{_j} and its transaction processes
    (Figure 2 process q, Figure 5 procedure do_trans).

    "The user interface guardians U{_i} create a new process to handle a
    transaction consisting of a set of reservations and cancellations for a
    single customer.  This process accepts requests one at a time.  It does
    each reserve request and reports the result to the clerk.  Cancel
    requests are not done immediately, however, but are processed at the
    time the transaction finishes ...  Cancellations are saved until the
    end of the transaction to permit the customer a late change of mind.
    An unwanted reservation can be undone by a cancel, but the reverse is
    not true since the seat may have been taken in the meantime."

    Protocol, all RPC-style (request id first):
    - to the front-desk port: [begin_transaction(passenger)] replies
      [transaction(port)] with a fresh conversation port;
    - to the transaction port: [reserve(flight, date)] → the reserve reply,
      or [failure("can't communicate")] after a regional timeout (Figure
      5); [cancel(flight, date)] → [deferred]; [undo] →
      [undone | nothing_to_undo] (undoing a reserve schedules a cancel,
      undoing a deferred cancel simply forgets it); [finish] → performs the
      deferred cancels and replies [finished(cancels_done, cancels_failed)],
      then the process terminates.

    The guardian itself recovers after a node crash (so new transactions
    can start), but in-flight transactions are forgotten (§3.5): their
    conversation ports do not survive recovery. *)

open Dcp_wire

val def_name : string
val def : Dcp_core.Runtime.def

val args :
  regionals:Port_name.t list ->
  ?request_timeout:Dcp_sim.Clock.time ->
  ?idle_timeout:Dcp_sim.Clock.time ->
  unit ->
  Value.t list
(** [regionals] is the front desk's routing directory: flight [f] belongs
    to region [f mod List.length regionals].  [request_timeout] bounds each
    regional RPC (Figure 5's expression [e]); [idle_timeout] ends abandoned
    transactions. *)

val create :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  regionals:Port_name.t list ->
  ?request_timeout:Dcp_sim.Clock.time ->
  ?idle_timeout:Dcp_sim.Clock.time ->
  unit ->
  Port_name.t
