open Dcp_wire
module Runtime = Dcp_core.Runtime
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock
module Metrics = Dcp_sim.Metrics
module Rng = Dcp_rng.Rng

type config = {
  transactions : int;
  requests_per_transaction : int;
  think_time : Clock.time;
  flights : int;
  dates : int;
  reserve_fraction : float;
  undo_fraction : float;
  request_timeout : Clock.time;
  attempts : int;
  zipf_flights : bool;
  flight_picker : (Rng.t -> int) option;
}

let default_config =
  {
    transactions = 10;
    requests_per_transaction = 5;
    think_time = Clock.ms 10;
    flights = 8;
    dates = 30;
    reserve_fraction = 0.8;
    undo_fraction = 0.05;
    request_timeout = Clock.ms 500;
    attempts = 3;
    zipf_flights = false;
    flight_picker = None;
  }

let count world name = Metrics.incr (Metrics.counter (Runtime.metrics world) name)

let observe_latency world ~started ctx =
  let elapsed = Clock.diff (Runtime.ctx_now ctx) started in
  Metrics.observe
    (Metrics.histogram (Runtime.metrics world) "clerk.request.latency_us")
    (Clock.to_float_us elapsed)

let think ctx rng config =
  if config.think_time > 0 then
    Runtime.sleep ctx (Clock.of_float_s (Rng.exponential rng ~mean:(Clock.to_float_s config.think_time)))

let pick_flight rng config =
  match config.flight_picker with
  | Some pick -> pick rng
  | None ->
      if config.zipf_flights then Rng.zipf rng ~n:config.flights ~s:1.1
      else Rng.int rng config.flights

(* One transaction session; returns [true] if it ran to a clean finish. *)
let run_session ctx world rng config ~front_desk ~passenger =
  match
    Rpc.call ctx ~to_:front_desk ~timeout:config.request_timeout ~attempts:config.attempts
      "begin_transaction" [ Value.str passenger ]
  with
  | Rpc.Timeout | Rpc.Failure_msg _ ->
      count world "clerk.begin.failed";
      false
  | Rpc.Reply ("transaction", [ Value.Portv trans ]) ->
      let alive = ref true in
      let request () =
        let started = Runtime.ctx_now ctx in
        let outcome =
          if Rng.bernoulli rng config.reserve_fraction then
            Rpc.call ctx ~to_:trans ~timeout:config.request_timeout ~attempts:config.attempts
              "reserve"
              [ Value.int (pick_flight rng config); Value.int (Rng.int rng config.dates) ]
          else
            Rpc.call ctx ~to_:trans ~timeout:config.request_timeout ~attempts:config.attempts
              "cancel"
              [ Value.int (pick_flight rng config); Value.int (Rng.int rng config.dates) ]
        in
        observe_latency world ~started ctx;
        (match outcome with
        | Rpc.Reply ("ok", _) -> count world "clerk.reserve.ok"
        | Rpc.Reply ("full", _) -> count world "clerk.reserve.full"
        | Rpc.Reply ("wait_list", _) -> count world "clerk.reserve.wait_list"
        | Rpc.Reply ("pre_reserved", _) -> count world "clerk.reserve.pre_reserved"
        | Rpc.Reply ("deferred", _) -> count world "clerk.cancel.deferred"
        | Rpc.Reply _ -> count world "clerk.request.other"
        | Rpc.Failure_msg _ | Rpc.Timeout ->
            count world "clerk.request.failed";
            alive := false);
        if !alive && Rng.bernoulli rng config.undo_fraction then begin
          match
            Rpc.call ctx ~to_:trans ~timeout:config.request_timeout ~attempts:config.attempts
              "undo" []
          with
          | Rpc.Reply _ -> count world "clerk.undo"
          | Rpc.Failure_msg _ | Rpc.Timeout ->
              count world "clerk.request.failed";
              alive := false
        end
      in
      let rec requests n = if n > 0 && !alive then (think ctx rng config; request (); requests (n - 1)) in
      requests config.requests_per_transaction;
      if !alive then begin
        match
          Rpc.call ctx ~to_:trans ~timeout:config.request_timeout ~attempts:config.attempts
            "finish" []
        with
        | Rpc.Reply ("finished", _) ->
            count world "clerk.txn.completed";
            true
        | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout ->
            count world "clerk.txn.abandoned";
            false
      end
      else begin
        (* The transaction (or its node) died mid-conversation: forget it
           and let the caller start a fresh one — the paper's recovery
           story for clerks. *)
        count world "clerk.txn.abandoned";
        false
      end
  | Rpc.Reply _ ->
      count world "clerk.begin.failed";
      false

let clerk_body world config rng ctx args =
  match args with
  | [ Value.Portv front_desk ] ->
      let clerk_tag = Runtime.guardian_id (Runtime.ctx_guardian ctx) in
      let rec sessions n =
        if config.transactions = 0 || n < config.transactions then begin
          let passenger = Printf.sprintf "p%d.%d" clerk_tag n in
          ignore (run_session ctx world rng config ~front_desk ~passenger);
          sessions (n + 1)
        end
      in
      sessions 0
  | _ -> invalid_arg "clerk guardian: expected [front_desk_port]"

let install world ~name config =
  let def : Runtime.def =
    {
      Runtime.def_name = name;
      provides = [];
      init =
        (fun ctx args ->
          (* Each clerk instance gets an independent random stream. *)
          let rng = Rng.split (Runtime.world_rng world) in
          clerk_body world config rng ctx args);
      recover = None;
    }
  in
  Runtime.register_def world def

let create_clerk world ~at ~name ~front_desk =
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[ Value.port front_desk ])

type totals = {
  reserves_ok : int;
  reserves_full : int;
  reserves_waitlisted : int;
  reserves_pre_reserved : int;
  cancels_deferred : int;
  undos : int;
  request_failures : int;
  transactions_completed : int;
  transactions_abandoned : int;
}

let totals world =
  let counters = Metrics.counters (Runtime.metrics world) in
  let get name = Option.value (List.assoc_opt name counters) ~default:0 in
  {
    reserves_ok = get "clerk.reserve.ok";
    reserves_full = get "clerk.reserve.full";
    reserves_waitlisted = get "clerk.reserve.wait_list";
    reserves_pre_reserved = get "clerk.reserve.pre_reserved";
    cancels_deferred = get "clerk.cancel.deferred";
    undos = get "clerk.undo";
    request_failures = get "clerk.request.failed";
    transactions_completed = get "clerk.txn.completed";
    transactions_abandoned = get "clerk.txn.abandoned";
  }
