module Crc32 = Dcp_net.Crc32

type lsn = int

type record = { lsn : lsn; payload : string; crc : int32 }

type t = {
  mutable entries : record list;  (** newest first *)
  mutable first : lsn;
  mutable next : lsn;
}

let create () = { entries = []; first = 0; next = 0 }

let append t payload =
  let lsn = t.next in
  t.next <- lsn + 1;
  t.entries <- { lsn; payload; crc = Crc32.digest_string payload } :: t.entries;
  lsn

let intact r = Int32.equal r.crc (Crc32.digest_string r.payload)

let intact_in_order t =
  let rec take_while_intact acc = function
    | [] -> acc
    | r :: rest -> if intact r then take_while_intact (r :: acc) rest else acc
  in
  (* entries are newest-first; a damaged record hides everything after it,
     so scan oldest-first and stop at the first bad CRC. *)
  List.rev (take_while_intact [] (List.rev t.entries))

let length t = List.length (intact_in_order t)
let replay t f = List.iter (fun r -> f r.lsn r.payload) (intact_in_order t)
let records t = List.map (fun r -> r.payload) (intact_in_order t)

let truncate_prefix t ~upto =
  t.entries <- List.filter (fun r -> r.lsn >= upto) t.entries;
  t.first <- Int.max t.first upto

let first_lsn t = t.first
let next_lsn t = t.next

let repair t =
  let intact = intact_in_order t in
  let dropped = List.length t.entries - List.length intact in
  if dropped > 0 then t.entries <- List.rev intact;
  dropped

let tear_tail t rng ~p =
  match t.entries with
  | [] -> false
  | newest :: rest ->
      if Dcp_rng.Rng.bernoulli rng p then begin
        t.entries <- { newest with crc = Int32.lognot newest.crc } :: rest;
        true
      end
      else false

let storage_bytes t =
  List.fold_left (fun acc r -> acc + String.length r.payload + 12) 0 t.entries
