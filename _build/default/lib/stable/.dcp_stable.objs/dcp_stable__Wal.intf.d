lib/stable/wal.mli: Dcp_rng
