lib/stable/store.mli: Dcp_rng
