lib/stable/wal.ml: Dcp_net Dcp_rng Int Int32 List String
