lib/stable/store.ml: Hashtbl List Printf String Wal
