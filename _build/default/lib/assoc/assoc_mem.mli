(** The associative memory of §3.3.

    "Consider an associative memory abstract type, which provides lookup of
    items in an associative memory on the basis of a key ...  Suppose that
    on node A the representation makes use of a hash table, while on node B
    the representation uses a tree.  A possible external rep might be a
    sequence of items with associated keys.  Then encode on node A would
    build a sequence of key-item pairs from the hash table representation,
    and decode on node B would construct a tree representation from such a
    sequence."

    Both representations are implemented here — a hash table and an AVL
    tree — with one {!external_rep} shared system-wide.  {!transmit_hash}
    and {!transmit_tree} are the per-node implementations of the same
    transmittable type. *)

open Dcp_wire

type t

type rep_kind = Hash | Tree

val create : rep:rep_kind -> t
val rep_kind : t -> rep_kind

val add_item : t -> key:string -> Value.t -> unit
(** Insert or replace the item under [key]. *)

val get_item : t -> key:string -> Value.t option
val remove_item : t -> key:string -> unit
val size : t -> int
val mem : t -> key:string -> bool

val to_alist : t -> (string * Value.t) list
(** Pairs in ascending key order, whatever the representation. *)

val of_alist : rep:rep_kind -> (string * Value.t) list -> t

val equal : t -> t -> bool
(** Representation-independent: equal contents. *)

val tree_is_balanced : t -> bool
(** AVL invariant check for property tests; [true] for hash reps. *)

(** {1 Transmission} *)

val type_name : string
val external_rep : Vtype.t
(** A list of (key, item) tuples — the paper's "sequence of items with
    associated keys". *)

val transmit_hash : t Transmit.impl
(** Node-A implementation: decodes into a hash table. *)

val transmit_tree : t Transmit.impl
(** Node-B implementation: decodes into an AVL tree. *)

val register : Transmit.registry -> unit
(** Record the (single, system-wide) external rep in a world's registry. *)
