open Dcp_wire

(* AVL tree keyed by string. *)
module Avl = struct
  type 'a t = Leaf | Node of { left : 'a t; key : string; value : 'a; right : 'a t; height : int }

  let height = function Leaf -> 0 | Node { height; _ } -> height

  let node left key value right =
    Node { left; key; value; right; height = 1 + Int.max (height left) (height right) }

  let balance_factor = function Leaf -> 0 | Node { left; right; _ } -> height left - height right

  let rotate_left = function
    | Node { left; key; value; right = Node r; _ } -> node (node left key value r.left) r.key r.value r.right
    | t -> t

  let rotate_right = function
    | Node { left = Node l; key; value; right; _ } -> node l.left l.key l.value (node l.right key value right)
    | t -> t

  let rebalance t =
    match t with
    | Leaf -> t
    | Node { left; right; _ } ->
        let bf = balance_factor t in
        if bf > 1 then
          let t =
            if balance_factor left < 0 then
              match t with
              | Node n -> node (rotate_left n.left) n.key n.value n.right
              | Leaf -> t
            else t
          in
          rotate_right t
        else if bf < -1 then
          let t =
            if balance_factor right > 0 then
              match t with
              | Node n -> node n.left n.key n.value (rotate_right n.right)
              | Leaf -> t
            else t
          in
          rotate_left t
        else t

  let rec insert t key value =
    match t with
    | Leaf -> node Leaf key value Leaf
    | Node n ->
        let c = String.compare key n.key in
        if c = 0 then node n.left key value n.right
        else if c < 0 then rebalance (node (insert n.left key value) n.key n.value n.right)
        else rebalance (node n.left n.key n.value (insert n.right key value))

  let rec find t key =
    match t with
    | Leaf -> None
    | Node n ->
        let c = String.compare key n.key in
        if c = 0 then Some n.value else if c < 0 then find n.left key else find n.right key

  let rec min_binding = function
    | Leaf -> None
    | Node { left = Leaf; key; value; _ } -> Some (key, value)
    | Node { left; _ } -> min_binding left

  let rec remove t key =
    match t with
    | Leaf -> Leaf
    | Node n ->
        let c = String.compare key n.key in
        if c < 0 then rebalance (node (remove n.left key) n.key n.value n.right)
        else if c > 0 then rebalance (node n.left n.key n.value (remove n.right key))
        else (
          match (n.left, n.right) with
          | Leaf, r -> r
          | l, Leaf -> l
          | l, r -> (
              match min_binding r with
              | None -> l
              | Some (k, v) -> rebalance (node l k v (remove r k))))

  let rec fold t ~init ~f =
    match t with
    | Leaf -> init
    | Node n -> fold n.right ~init:(f (fold n.left ~init ~f) n.key n.value) ~f

  let size t = fold t ~init:0 ~f:(fun acc _ _ -> acc + 1)
  let to_alist t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

  let rec is_balanced = function
    | Leaf -> true
    | Node { left; right; _ } as t ->
        abs (balance_factor t) <= 1 && is_balanced left && is_balanced right
end

type rep_kind = Hash | Tree

type rep = Hash_rep of (string, Value.t) Hashtbl.t | Tree_rep of Value.t Avl.t

type t = { mutable rep : rep }

let create ~rep =
  match rep with
  | Hash -> { rep = Hash_rep (Hashtbl.create 16) }
  | Tree -> { rep = Tree_rep Avl.Leaf }

let rep_kind t = match t.rep with Hash_rep _ -> Hash | Tree_rep _ -> Tree

let add_item t ~key value =
  match t.rep with
  | Hash_rep h -> Hashtbl.replace h key value
  | Tree_rep tree -> t.rep <- Tree_rep (Avl.insert tree key value)

let get_item t ~key =
  match t.rep with Hash_rep h -> Hashtbl.find_opt h key | Tree_rep tree -> Avl.find tree key

let remove_item t ~key =
  match t.rep with
  | Hash_rep h -> Hashtbl.remove h key
  | Tree_rep tree -> t.rep <- Tree_rep (Avl.remove tree key)

let size t = match t.rep with Hash_rep h -> Hashtbl.length h | Tree_rep tree -> Avl.size tree
let mem t ~key = Option.is_some (get_item t ~key)

let to_alist t =
  match t.rep with
  | Tree_rep tree -> Avl.to_alist tree
  | Hash_rep h ->
      List.sort
        (fun (k1, _) (k2, _) -> String.compare k1 k2)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])

let of_alist ~rep pairs =
  let t = create ~rep in
  List.iter (fun (key, value) -> add_item t ~key value) pairs;
  t

let equal a b = List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && Value.equal v1 v2) (to_alist a) (to_alist b)

let tree_is_balanced t =
  match t.rep with Hash_rep _ -> true | Tree_rep tree -> Avl.is_balanced tree

let type_name = "assoc_mem"
let external_rep = Vtype.Tlist (Vtype.Ttuple [ Vtype.Tstr; Vtype.Tany ])

let encode_common t =
  Value.list (List.map (fun (k, v) -> Value.tuple [ Value.str k; v ]) (to_alist t))

let decode_common ~rep v =
  let pair_of = function
    | Value.Tuple [ Value.Str k; item ] -> (k, item)
    | _ -> raise (Transmit.Decode_failure "assoc_mem: malformed pair")
  in
  of_alist ~rep (List.map pair_of (Value.get_list v))

let make_impl rep : t Transmit.impl =
  (module struct
    type nonrec t = t

    let type_name = type_name
    let external_rep = external_rep
    let encode = encode_common
    let decode v = decode_common ~rep v
  end)

let transmit_hash = make_impl Hash
let transmit_tree = make_impl Tree
let register registry = Transmit.register registry ~type_name ~external_rep
