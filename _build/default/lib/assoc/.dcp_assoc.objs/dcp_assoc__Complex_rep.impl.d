lib/assoc/complex_rep.ml: Dcp_wire Float Transmit Value Vtype
