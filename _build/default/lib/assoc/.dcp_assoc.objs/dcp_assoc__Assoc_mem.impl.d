lib/assoc/assoc_mem.ml: Dcp_wire Hashtbl Int List Option String Transmit Value Vtype
