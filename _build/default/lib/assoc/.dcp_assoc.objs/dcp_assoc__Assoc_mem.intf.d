lib/assoc/assoc_mem.mli: Dcp_wire Transmit Value Vtype
