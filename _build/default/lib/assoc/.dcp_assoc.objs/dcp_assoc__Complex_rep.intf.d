lib/assoc/complex_rep.mli: Dcp_wire Transmit Vtype
