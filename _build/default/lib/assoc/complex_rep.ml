open Dcp_wire

type t = Cartesian of { re : float; im : float } | Polar of { modulus : float; arg : float }

let cartesian ~re ~im = Cartesian { re; im }
let polar ~modulus ~arg = Polar { modulus; arg }

let re = function Cartesian { re; _ } -> re | Polar { modulus; arg } -> modulus *. cos arg
let im = function Cartesian { im; _ } -> im | Polar { modulus; arg } -> modulus *. sin arg

let modulus = function
  | Polar { modulus; _ } -> modulus
  | Cartesian { re; im } -> Float.hypot re im

let arg = function Polar { arg; _ } -> arg | Cartesian { re; im } -> Float.atan2 im re
let is_cartesian = function Cartesian _ -> true | Polar _ -> false

let add a b =
  let sum_re = re a +. re b and sum_im = im a +. im b in
  match a with
  | Cartesian _ -> Cartesian { re = sum_re; im = sum_im }
  | Polar _ -> Polar { modulus = Float.hypot sum_re sum_im; arg = Float.atan2 sum_im sum_re }

let mul a b =
  match a with
  | Polar _ -> Polar { modulus = modulus a *. modulus b; arg = arg a +. arg b }
  | Cartesian _ ->
      Cartesian { re = (re a *. re b) -. (im a *. im b); im = (re a *. im b) +. (im a *. re b) }

let approx_equal ?(eps = 1e-9) a b =
  Float.abs (re a -. re b) <= eps && Float.abs (im a -. im b) <= eps

let type_name = "complex"
let external_rep = Vtype.Ttuple [ Vtype.Treal; Vtype.Treal ]

let encode_common c = Value.tuple [ Value.real (re c); Value.real (im c) ]

let decode_parts v =
  match v with
  | Value.Tuple [ Value.Real x; Value.Real y ] -> (x, y)
  | _ -> raise (Transmit.Decode_failure "complex: malformed external rep")

let transmit_cartesian : t Transmit.impl =
  (module struct
    type nonrec t = t

    let type_name = type_name
    let external_rep = external_rep
    let encode = encode_common

    let decode v =
      let x, y = decode_parts v in
      Cartesian { re = x; im = y }
  end)

let transmit_polar : t Transmit.impl =
  (module struct
    type nonrec t = t

    let type_name = type_name
    let external_rep = external_rep
    let encode = encode_common

    let decode v =
      let x, y = decode_parts v in
      Polar { modulus = Float.hypot x y; arg = Float.atan2 y x }
  end)

let register registry = Transmit.register registry ~type_name ~external_rep
