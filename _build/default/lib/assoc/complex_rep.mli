(** The complex-number example of §3.3.

    "A simple example is complex numbers, where on one node the
    representation might be real/imaginary coordinates, while on another
    polar coordinates might be used; the external rep might be the
    real/imaginary coordinates." *)

open Dcp_wire

type t

val cartesian : re:float -> im:float -> t
(** A complex number held in cartesian representation. *)

val polar : modulus:float -> arg:float -> t
(** The same abstract type held in polar representation. *)

val re : t -> float
val im : t -> float
val modulus : t -> float
val arg : t -> float
val add : t -> t -> t
(** Result uses the left operand's representation. *)

val mul : t -> t -> t
val approx_equal : ?eps:float -> t -> t -> bool
val is_cartesian : t -> bool

val type_name : string
val external_rep : Vtype.t

val transmit_cartesian : t Transmit.impl
val transmit_polar : t Transmit.impl
(** Two node-local implementations sharing the cartesian external rep. *)

val register : Transmit.registry -> unit
