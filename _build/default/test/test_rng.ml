(* Determinism and distribution sanity for the PRNG substrate. *)

module Splitmix = Dcp_rng.Splitmix
module Rng = Dcp_rng.Rng

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  let xs = List.init 100 (fun _ -> Rng.bits64 a) in
  let ys = List.init 100 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys)

let test_different_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 16 (fun _ -> Rng.bits64 a) in
  let ys = List.init 16 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "different streams" false (xs = ys)

let test_split_independence () =
  let root = Rng.create ~seed:7 in
  let child = Rng.split root in
  let xs = List.init 32 (fun _ -> Rng.bits64 root) in
  let ys = List.init 32 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "parent and child disagree" false (xs = ys)

let test_split_deterministic () =
  let mk () =
    let root = Rng.create ~seed:99 in
    let child = Rng.split root in
    List.init 16 (fun _ -> Rng.bits64 child)
  in
  Alcotest.(check bool) "split is reproducible" true (mk () = mk ())

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of bounds"
  done

let test_int_in_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.fail "Rng.int_in out of bounds"
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:5 in
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_uniformity_rough () =
  let rng = Rng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket count %d too far from %d" c expected)
    buckets

let test_bernoulli_extremes () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 100 do
    if Rng.bernoulli rng 0.0 then Alcotest.fail "p=0 returned true";
    if not (Rng.bernoulli rng 1.0) then Alcotest.fail "p=1 returned false"
  done

let test_bernoulli_rate () =
  let rng = Rng.create ~seed:3 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_exponential_mean () =
  let rng = Rng.create ~seed:13 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential rng ~mean:5.0 in
    if x < 0.0 then Alcotest.fail "exponential draw negative";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.0) < 0.2)

let test_normal_moments () =
  let rng = Rng.create ~seed:17 in
  let n = 100_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.normal rng ~mean:2.0 ~stddev:3.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 2" true (Float.abs (mean -. 2.0) < 0.1);
  Alcotest.(check bool) "variance near 9" true (Float.abs (var -. 9.0) < 0.5)

let test_geometric_support () =
  let rng = Rng.create ~seed:19 in
  for _ = 1 to 10_000 do
    if Rng.geometric rng ~p:0.5 < 0 then Alcotest.fail "geometric below 0"
  done;
  Alcotest.(check int) "p=1 is always 0" 0 (Rng.geometric rng ~p:1.0)

let test_zipf_skew () =
  let rng = Rng.create ~seed:23 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let i = Rng.zipf rng ~n:10 ~s:1.2 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (buckets.(0) > buckets.(9) * 3)

let test_pareto_scale () =
  let rng = Rng.create ~seed:29 in
  for _ = 1 to 10_000 do
    if Rng.pareto rng ~shape:2.0 ~scale:1.5 < 1.5 then Alcotest.fail "pareto below scale"
  done

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:31 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:37 in
  let sample = Rng.sample_without_replacement rng 10 100 in
  Alcotest.(check int) "ten values" 10 (List.length sample);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq Int.compare sample));
  List.iter (fun v -> if v < 0 || v >= 100 then Alcotest.fail "out of range") sample

let test_splitmix_state_roundtrip () =
  let g = Splitmix.of_int 42 in
  ignore (Splitmix.next g);
  let restored = Splitmix.of_state (Splitmix.state g) in
  Alcotest.(check int64) "same next output" (Splitmix.next (Splitmix.copy g)) (Splitmix.next restored)

(* qcheck: Rng.int stays in range for arbitrary positive bounds and seeds. *)
let prop_int_in_range =
  QCheck2.Test.make ~name:"Rng.int always in [0, n)" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000) int)
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let prop_choice_member =
  QCheck2.Test.make ~name:"Rng.choice returns a member" ~count:200
    QCheck2.Gen.(pair (array_size (int_range 1 40) int) int)
    (fun (a, seed) ->
      let rng = Rng.create ~seed in
      Array.exists (Int.equal (Rng.choice rng a)) a)

let tests =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "split determinism" `Quick test_split_deterministic;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int rejects n<=0" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "rough uniformity" `Slow test_uniformity_rough;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "normal moments" `Slow test_normal_moments;
    Alcotest.test_case "geometric support" `Quick test_geometric_support;
    Alcotest.test_case "zipf skew" `Slow test_zipf_skew;
    Alcotest.test_case "pareto scale bound" `Quick test_pareto_scale;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sampling without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "splitmix state roundtrip" `Quick test_splitmix_state_roundtrip;
    QCheck_alcotest.to_alcotest prop_int_in_range;
    QCheck_alcotest.to_alcotest prop_choice_member;
  ]
