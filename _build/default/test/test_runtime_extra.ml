(* Further runtime semantics: self-destruction, tokens as capabilities,
   partitions, buffer overflow failures, primordial ping, tracing. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Primordial = Dcp_core.Primordial
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Trace = Dcp_sim.Trace
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Network = Dcp_net.Network
module Link = Dcp_net.Link

let make_world ?(n = 2) ?(link = Link.perfect) () =
  Runtime.create_world ~seed:43 ~topology:(Topology.full_mesh ~n link) ()

let fresh_driver_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "extra_driver_%d" !i

let driver world ~at body =
  let name = fresh_driver_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* ---- self-destruct ---- *)

let test_self_destruct () =
  let world = make_world () in
  let stopped_after = ref false in
  let ephemeral_def =
    {
      Runtime.def_name = "ephemeral";
      provides = [ ([ Vtype.signature "poke" [] ], 8) ];
      init =
        (fun ctx _ ->
          match Runtime.receive ctx [ Runtime.port ctx 0 ] with
          | `Msg _ ->
              Runtime.self_destruct ctx;
              (* execution continues until the next suspension point *)
              stopped_after := true;
              (match Runtime.receive ctx ~timeout:(Clock.s 10) [ Runtime.port ctx 0 ] with
              | `Msg _ | `Timeout -> Alcotest.fail "dead process resumed")
          | `Timeout -> ());
      recover = None;
    }
  in
  Runtime.register_def world ephemeral_def;
  let g = Runtime.create_guardian world ~at:0 ~def_name:"ephemeral" ~args:[] in
  let port0 = List.hd (Runtime.guardian_ports g) in
  let failure_seen = ref false in
  driver world ~at:1 (fun ctx ->
      Runtime.send ctx ~to_:port0 "poke" [];
      Runtime.sleep ctx (Clock.ms 10);
      (* second poke: the guardian is gone, so failure(...) comes back *)
      let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
      Runtime.send ctx ~to_:port0 ~reply_to:(Port.name reply) "poke" [];
      match Runtime.receive ctx ~timeout:(Clock.ms 500) [ reply ] with
      | `Msg (_, msg) -> failure_seen := Message.is_failure msg
      | `Timeout -> ());
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check bool) "guardian is dead" false (Runtime.guardian_alive g);
  Alcotest.(check bool) "code after self_destruct still ran" true !stopped_after;
  Alcotest.(check bool) "second poke bounced" true !failure_seen

(* ---- tokens through the runtime ---- *)

let test_tokens_across_guardians () =
  let world = make_world () in
  let issued = ref None and owner_view = ref None and thief_view = ref (Some 0) in
  let issuer_def =
    {
      Runtime.def_name = "issuer";
      provides = [ ([ Vtype.wildcard ], 8) ];
      init =
        (fun ctx _ ->
          let token = Runtime.seal_token ctx ~obj:4242 in
          issued := Some token;
          (* a token travels through a message and comes back *)
          match Runtime.receive ctx [ Runtime.port ctx 0 ] with
          | `Msg (_, { Message.args = [ Value.Tokenv returned ]; _ }) ->
              owner_view := Runtime.unseal_token ctx returned
          | `Msg _ | `Timeout -> ());
      recover = None;
    }
  in
  Runtime.register_def world issuer_def;
  let g = Runtime.create_guardian world ~at:0 ~def_name:"issuer" ~args:[] in
  let issuer_port = List.hd (Runtime.guardian_ports g) in
  Runtime.run_for world (Clock.ms 1);
  driver world ~at:1 (fun ctx ->
      match !issued with
      | None -> Alcotest.fail "no token issued"
      | Some token ->
          (* the holder cannot unseal it *)
          thief_view := Runtime.unseal_token ctx token;
          Runtime.send ctx ~to_:issuer_port "redeem" [ Value.token token ]);
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check (option int)) "owner recovers the object id" (Some 4242) !owner_view;
  Alcotest.(check (option int)) "non-owner cannot" None !thief_view

(* ---- partitions at runtime level ---- *)

let test_partition_then_heal () =
  let world = make_world ~link:Link.lan () in
  let echo_def =
    {
      Runtime.def_name = "p_echo";
      provides = [ ([ Vtype.wildcard ], 16) ];
      init =
        (fun ctx _ ->
          let rec loop () =
            (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
            | `Msg (_, msg) -> (
                match msg.Message.reply_to with
                | Some reply -> Runtime.send ctx ~to_:reply "pong" []
                | None -> ())
            | `Timeout -> ());
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world echo_def;
  let g = Runtime.create_guardian world ~at:1 ~def_name:"p_echo" ~args:[] in
  let echo_port = List.hd (Runtime.guardian_ports g) in
  let during = ref "" and after = ref "" in
  driver world ~at:0 (fun ctx ->
      let ask () =
        let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
        Runtime.send ctx ~to_:echo_port ~reply_to:(Port.name reply) "ping" [];
        let outcome =
          match Runtime.receive ctx ~timeout:(Clock.ms 300) [ reply ] with
          | `Msg (_, msg) -> msg.Message.command
          | `Timeout -> "timeout"
        in
        Runtime.remove_port ctx reply;
        outcome
      in
      Network.partition (Runtime.network world) [ [ 0 ]; [ 1 ] ];
      during := ask ();
      Network.heal (Runtime.network world);
      after := ask ());
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check string) "partitioned: silence" "timeout" !during;
  Alcotest.(check string) "healed: answers" "pong" !after

(* ---- port buffer overflow generates failures ---- *)

let test_port_overflow_failure () =
  let world = make_world () in
  (* a guardian that never receives: its 2-slot buffer fills instantly *)
  let lazy_def =
    {
      Runtime.def_name = "lazybones";
      provides = [ ([ Vtype.wildcard ], 2) ];
      init = (fun ctx _ -> Runtime.sleep ctx (Clock.s 100));
      recover = None;
    }
  in
  Runtime.register_def world lazy_def;
  let g = Runtime.create_guardian world ~at:1 ~def_name:"lazybones" ~args:[] in
  let port0 = List.hd (Runtime.guardian_ports g) in
  let failures = ref 0 in
  driver world ~at:0 (fun ctx ->
      let reply = Runtime.new_port ctx ~capacity:16 [ Vtype.wildcard ] in
      for i = 1 to 5 do
        Runtime.send ctx ~to_:port0 ~reply_to:(Port.name reply) "spam" [ Value.int i ]
      done;
      let rec drain () =
        match Runtime.receive ctx ~timeout:(Clock.ms 300) [ reply ] with
        | `Msg (_, msg) ->
            if Message.is_failure msg then incr failures;
            drain ()
        | `Timeout -> ()
      in
      drain ());
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check int) "three of five bounced" 3 !failures

(* ---- primordial ping ---- *)

let test_primordial_ping () =
  let world = make_world () in
  Primordial.install world;
  let got = ref "" in
  driver world ~at:0 (fun ctx ->
      let target = Primordial.port_of world 1 in
      let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
      Runtime.send ctx ~to_:target ~reply_to:(Port.name reply) "ping" [];
      match Runtime.receive ctx ~timeout:(Clock.ms 500) [ reply ] with
      | `Msg (_, msg) -> got := msg.Message.command
      | `Timeout -> got := "timeout");
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check string) "pong" "pong" !got

(* ---- the trace records the story ---- *)

let test_trace_has_send_and_discard () =
  let world = make_world () in
  driver world ~at:0 (fun ctx ->
      let bogus = Port_name.make ~node:1 ~guardian:12345 ~index:0 ~uid:54321 in
      Runtime.send ctx ~to_:bogus "into_the_void" []);
  Runtime.run_for world (Clock.s 1);
  let trace = Runtime.trace world in
  Alcotest.(check bool) "send recorded" true (Trace.find trace ~category:"send" <> []);
  Alcotest.(check bool) "discard recorded" true (Trace.find trace ~category:"discard" <> [])

(* ---- messages between processes of one guardian ---- *)

let test_intra_guardian_ports () =
  (* Two processes of one guardian talk through the guardian's own port:
     allowed and cheap (local path). *)
  let world = make_world () in
  let heard = ref false in
  let dual_def =
    {
      Runtime.def_name = "dual";
      provides = [ ([ Vtype.wildcard ], 8) ];
      init =
        (fun ctx _ ->
          ignore
            (Runtime.spawn ctx ~name:"speaker" (fun () ->
                 Runtime.send ctx ~to_:(Port.name (Runtime.port ctx 0)) "hello" []));
          match Runtime.receive ctx ~timeout:(Clock.s 1) [ Runtime.port ctx 0 ] with
          | `Msg (_, { Message.command = "hello"; _ }) -> heard := true
          | `Msg _ | `Timeout -> ());
      recover = None;
    }
  in
  Runtime.register_def world dual_def;
  ignore (Runtime.create_guardian world ~at:0 ~def_name:"dual" ~args:[]);
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check bool) "self-send via port" true !heard

let test_receive_foreign_port_rejected () =
  let world = make_world () in
  Primordial.install world;
  let raised = ref false in
  (* Try to receive on another guardian's port object: must be refused. *)
  let snoop_def =
    {
      Runtime.def_name = "snoop";
      provides = [ ([ Vtype.wildcard ], 8) ];
      init = (fun ctx _ -> Runtime.sleep ctx (Clock.s 10) |> fun () -> ignore ctx);
      recover = None;
    }
  in
  Runtime.register_def world snoop_def;
  let victim = Runtime.create_guardian world ~at:0 ~def_name:"snoop" ~args:[] in
  ignore victim;
  (* We cannot even obtain another guardian's Port.t through the public
     API — only its Port_name.  The runtime enforces the rest; simulate an
     attempt using our own ctx with a foreign-looking check: receive with a
     port we own works, and this test documents that the API surface makes
     cross-guardian receive inexpressible (names, not port objects, travel).
     What remains checkable is that receive on our own ports succeeds: *)
  driver world ~at:0 (fun ctx ->
      let mine = Runtime.new_port ctx [ Vtype.wildcard ] in
      match Runtime.receive ctx ~timeout:(Clock.ms 10) [ mine ] with
      | `Timeout -> raised := true (* expected: nothing arrives; no exception *)
      | `Msg _ -> ());
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check bool) "own-port receive fine; foreign Port.t unobtainable" true !raised

(* ---- primordial guardian survives crashes ---- *)

let test_primordial_recovers () =
  let world = make_world () in
  Primordial.install world;
  Runtime.register_def world
    {
      Runtime.def_name = "late_arrival";
      provides = [];
      init = (fun _ _ -> ());
      recover = None;
    };
  Runtime.run_for world (Clock.ms 1);
  Runtime.crash_node world 1;
  Runtime.restart_node world 1;
  (* The primordial guardian recovered: remote creation still works. *)
  let outcome = ref None in
  driver world ~at:0 (fun ctx ->
      outcome :=
        Some
          (Primordial.request_create ctx ~at:1 ~def_name:"late_arrival" ~args:[]
             ~timeout:(Clock.s 1)));
  Runtime.run_for world (Clock.s 2);
  match !outcome with
  | Some (`Created _) -> ()
  | _ -> Alcotest.fail "primordial did not recover"

(* ---- a send from a self-destructed guardian is dropped quietly ---- *)

let test_send_after_self_destruct_dropped () =
  let world = make_world () in
  let sent = ref false in
  let kamikaze =
    {
      Runtime.def_name = "kamikaze";
      provides = [];
      init =
        (fun ctx _ ->
          Runtime.self_destruct ctx;
          (* still running until the next suspension point: this send must
             be swallowed, not crash the runtime *)
          let bogus = Port_name.make ~node:0 ~guardian:1 ~index:0 ~uid:1 in
          Runtime.send ctx ~to_:bogus "last_words" [];
          sent := true);
      recover = None;
    }
  in
  Runtime.register_def world kamikaze;
  ignore (Runtime.create_guardian world ~at:0 ~def_name:"kamikaze" ~args:[]);
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check bool) "code after the dead send ran" true !sent;
  let counters = Dcp_sim.Metrics.counters (Runtime.metrics world) in
  Alcotest.(check (option int)) "counted as dead-guardian send" (Some 1)
    (List.assoc_opt "send.dead_guardian" counters)

let tests =
  [
    Alcotest.test_case "self destruct" `Quick test_self_destruct;
    Alcotest.test_case "primordial recovers" `Quick test_primordial_recovers;
    Alcotest.test_case "dead guardian send dropped" `Quick test_send_after_self_destruct_dropped;
    Alcotest.test_case "tokens across guardians" `Quick test_tokens_across_guardians;
    Alcotest.test_case "partition then heal" `Quick test_partition_then_heal;
    Alcotest.test_case "port overflow failure" `Quick test_port_overflow_failure;
    Alcotest.test_case "primordial ping" `Quick test_primordial_ping;
    Alcotest.test_case "trace send+discard" `Quick test_trace_has_send_and_discard;
    Alcotest.test_case "intra-guardian port messaging" `Quick test_intra_guardian_ports;
    Alcotest.test_case "foreign ports unobtainable" `Quick test_receive_foreign_port_rejected;
  ]
