(* Availability through redundancy: §1 lists "potential for better
   reliability and higher availability" among the advantages of
   distribution.  A client keeps service alive across a primary's crash by
   failing over to a replica at another node, switching on the heartbeat
   detector's verdict. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Primordial = Dcp_core.Primordial
module Message = Dcp_core.Message
module Heartbeat = Dcp_primitives.Heartbeat
module Replica = Dcp_primitives.Replica
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let test_failover_keeps_service_alive () =
  let world =
    Runtime.create_world ~seed:59 ~topology:(Topology.full_mesh ~n:3 Link.lan) ()
  in
  Primordial.install world;
  (* A replicated register group provides the redundant service: writes
     reach whichever replica the client currently trusts and propagate. *)
  let replicas = Replica.create_group world ~nodes:[ 0; 1 ] ~sync_every:(Clock.ms 100) () in
  let primary = List.nth replicas 0 and backup = List.nth replicas 1 in
  let served = ref 0 and failed = ref 0 and switched_at = ref None in
  let client : Runtime.def =
    {
      Runtime.def_name = "failover_client";
      provides = [];
      init =
        (fun ctx _ ->
          let notify = Runtime.new_port ctx ~capacity:16 [ Vtype.wildcard ] in
          let watcher =
            Heartbeat.watch_node ctx ~node:0
              ~notify:(Dcp_core.Port.name notify)
              ~period:(Clock.ms 50) ~ping_timeout:(Clock.ms 30) ~misses:2 ()
          in
          let target = ref primary in
          (* Drain detector notifications opportunistically between writes. *)
          let poll_detector () =
            let rec drain () =
              match Runtime.receive ctx ~timeout:0 [ notify ] with
              | `Msg (_, { Message.command = "peer_down"; _ }) ->
                  target := backup;
                  if !switched_at = None then switched_at := Some (Runtime.ctx_now ctx);
                  drain ()
              | `Msg _ -> drain ()
              | `Timeout -> ()
            in
            drain ()
          in
          for i = 0 to 99 do
            poll_detector ();
            let ok =
              Replica.write ctx ~replica:!target ~key:"counter" ~value:(Value.int i)
                ~timeout:(Clock.ms 100)
            in
            if ok then incr served else incr failed;
            Runtime.sleep ctx (Clock.ms 20)
          done;
          Heartbeat.stop watcher);
      recover = None;
    }
  in
  Runtime.register_def world client;
  ignore (Runtime.create_guardian world ~at:2 ~def_name:"failover_client" ~args:[]);
  (* The primary's node dies mid-run and never comes back. *)
  ignore
    (Dcp_sim.Engine.schedule (Runtime.engine world) ~at:(Clock.ms 800) (fun () ->
         Runtime.crash_node world 0));
  Runtime.run_for world (Clock.s 30);
  Alcotest.(check bool)
    (Printf.sprintf "switched to the backup (at %s)"
       (Option.value (Option.map string_of_int !switched_at) ~default:"never"))
    true (!switched_at <> None);
  (* Only the writes issued between the crash and the detector's verdict
     may fail: a couple of detection periods' worth, not the rest of the
     run. *)
  Alcotest.(check bool)
    (Printf.sprintf "service continued (%d ok, %d failed)" !served !failed)
    true
    (!served >= 90 && !failed <= 10);
  (* And the value survived on the backup. *)
  let final = ref None in
  let probe : Runtime.def =
    {
      Runtime.def_name = "probe";
      provides = [];
      init =
        (fun ctx _ ->
          final := Replica.read ctx ~replica:backup ~key:"counter" ~timeout:(Clock.s 1));
      recover = None;
    }
  in
  Runtime.register_def world probe;
  ignore (Runtime.create_guardian world ~at:2 ~def_name:"probe" ~args:[]);
  Runtime.run_for world (Clock.s 2);
  match !final with
  | Some (Value.Int n) ->
      Alcotest.(check int) "last write visible on the backup" 99 n
  | _ -> Alcotest.fail "backup lost the data"

let tests =
  [ Alcotest.test_case "failover keeps service alive" `Quick test_failover_keeps_service_alive ]
