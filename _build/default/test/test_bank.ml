(* The banking system: branch guardians, exactly-once execution, the
   transfer saga, and conservation of money under crashes. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Rpc = Dcp_primitives.Rpc
module Branch = Dcp_bank.Branch
module Transfer = Dcp_bank.Transfer
module Audit = Dcp_bank.Audit
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let make_world ?(n = 3) ?(link = Link.perfect) () =
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  Runtime.create_world ~seed:31 ~topology:(Topology.full_mesh ~n link) ~config ()

let fresh_driver_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "bank_driver_%d" !i

let driver world ~at body =
  let name = fresh_driver_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

let call ctx port command args =
  match Rpc.call ctx ~to_:port ~timeout:(Clock.ms 500) ~attempts:3 command args with
  | Rpc.Reply (command, args) -> (command, args)
  | Rpc.Failure_msg reason -> ("failure", [ Value.str reason ])
  | Rpc.Timeout -> ("timeout", [])

(* ---- Branch ---- *)

let test_branch_operations () =
  let world = make_world () in
  let branch = Branch.create world ~at:0 ~accounts:[ ("alice", 100); ("bob", 50) ] () in
  let log = ref [] in
  driver world ~at:1 (fun ctx ->
      let note x = log := x :: !log in
      note (call ctx branch "balance" [ Value.str "alice" ]);
      note (call ctx branch "deposit" [ Value.str "alice"; Value.int 25 ]);
      note (call ctx branch "withdraw" [ Value.str "alice"; Value.int 200 ]);
      note (call ctx branch "withdraw" [ Value.str "bob"; Value.int 20 ]);
      note (call ctx branch "balance" [ Value.str "nobody" ]);
      note (call ctx branch "total" []));
  Runtime.run_for world (Clock.s 2);
  let commands = List.rev_map fst !log in
  Alcotest.(check (list string))
    "replies"
    [ "balance"; "ok"; "insufficient"; "ok"; "no_account"; "total" ]
    commands;
  match List.hd !log with
  | "total", [ Value.Int total ] -> Alcotest.(check int) "100+25+50-20" 155 total
  | _ -> Alcotest.fail "expected total"

let test_branch_exactly_once_on_duplicates () =
  let world = make_world () in
  let branch = Branch.create world ~at:0 ~accounts:[ ("acct", 100) ] () in
  let balance = ref 0 in
  driver world ~at:1 (fun ctx ->
      (* Send the same deposit request id twice, then read the balance. *)
      let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
      let send () =
        Runtime.send ctx ~to_:branch
          ~reply_to:(Dcp_core.Port.name reply)
          "deposit"
          [ Value.int 555001; Value.str "acct"; Value.int 10 ]
      in
      send ();
      send ();
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]);
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]);
      match call ctx branch "balance" [ Value.str "acct" ] with
      | "balance", [ Value.Int b ] -> balance := b
      | _ -> ());
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check int) "deposited exactly once" 110 !balance

let test_branch_exactly_once_across_crash () =
  let world = make_world () in
  let branch = Branch.create world ~at:0 ~accounts:[ ("acct", 100) ] () in
  let balance = ref 0 in
  driver world ~at:1 (fun ctx ->
      match call ctx branch "deposit" [ Value.str "acct"; Value.int 10 ] with
      | "ok", _ -> ()
      | _ -> Alcotest.fail "deposit failed");
  Runtime.run_for world (Clock.s 1);
  Runtime.crash_node world 0;
  Runtime.restart_node world 0;
  driver world ~at:1 (fun ctx ->
      match call ctx branch "balance" [ Value.str "acct" ] with
      | "balance", [ Value.Int b ] -> balance := b
      | _ -> ());
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check int) "state durable" 110 !balance

(* ---- Transfer saga ---- *)

let bank_fixture world =
  let b0 = Branch.create world ~at:0 ~accounts:[ ("a0", 1000); ("a1", 1000) ] () in
  let b1 = Branch.create world ~at:1 ~accounts:[ ("b0", 1000); ("b1", 1000) ] () in
  let coordinator = Transfer.create world ~at:2 ~branches:[ b0; b1 ] () in
  (b0, b1, coordinator)

let transfer ctx coordinator ~from_branch ~from_account ~to_branch ~to_account ~amount =
  match
    Rpc.call ctx ~to_:coordinator ~timeout:(Clock.s 2) "transfer"
      [
        Value.int from_branch;
        Value.str from_account;
        Value.int to_branch;
        Value.str to_account;
        Value.int amount;
      ]
  with
  | Rpc.Reply (command, _) -> command
  | Rpc.Failure_msg _ -> "failure"
  | Rpc.Timeout -> "timeout"

let test_transfer_moves_money () =
  let world = make_world () in
  let b0, b1, coordinator = bank_fixture world in
  let outcome = ref "" and bal_from = ref 0 and bal_to = ref 0 in
  driver world ~at:2 (fun ctx ->
      outcome :=
        transfer ctx coordinator ~from_branch:0 ~from_account:"a0" ~to_branch:1
          ~to_account:"b0" ~amount:250;
      (match Audit.balance_of ctx ~branch:b0 ~account:"a0" () with
      | Ok b -> bal_from := b
      | Error _ -> ());
      match Audit.balance_of ctx ~branch:b1 ~account:"b0" () with
      | Ok b -> bal_to := b
      | Error _ -> ());
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check string) "ok" "ok" !outcome;
  Alcotest.(check int) "debited" 750 !bal_from;
  Alcotest.(check int) "credited" 1250 !bal_to

let test_transfer_insufficient () =
  let world = make_world () in
  let _, _, coordinator = bank_fixture world in
  let outcome = ref "" in
  driver world ~at:2 (fun ctx ->
      outcome :=
        transfer ctx coordinator ~from_branch:0 ~from_account:"a0" ~to_branch:1
          ~to_account:"b0" ~amount:99999);
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check string) "insufficient" "insufficient" !outcome

let test_transfer_refund_on_missing_dest () =
  let world = make_world () in
  let b0, _, coordinator = bank_fixture world in
  let outcome = ref "" and bal = ref 0 in
  driver world ~at:2 (fun ctx ->
      outcome :=
        transfer ctx coordinator ~from_branch:0 ~from_account:"a0" ~to_branch:1
          ~to_account:"ghost" ~amount:100;
      match Audit.balance_of ctx ~branch:b0 ~account:"a0" () with
      | Ok b -> bal := b
      | Error _ -> ());
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check string) "reported missing account" "no_account" !outcome;
  Alcotest.(check int) "refunded" 1000 !bal

let total_money world ~branches =
  let result = ref (Error "never ran") in
  driver world ~at:2 (fun ctx -> result := Audit.total_balance ctx ~branches ());
  Runtime.run_for world (Clock.s 2);
  !result

let test_conservation_simple () =
  let world = make_world () in
  let b0, b1, coordinator = bank_fixture world in
  driver world ~at:2 (fun ctx ->
      for i = 1 to 10 do
        ignore
          (transfer ctx coordinator ~from_branch:(i mod 2) ~from_account:(if i mod 2 = 0 then "a0" else "b0")
             ~to_branch:((i + 1) mod 2)
             ~to_account:(if (i + 1) mod 2 = 0 then "a1" else "b1")
             ~amount:(10 * i))
      done);
  Runtime.run_for world (Clock.s 10);
  match total_money world ~branches:[ b0; b1 ] with
  | Ok total -> Alcotest.(check int) "money conserved" 4000 total
  | Error reason -> Alcotest.fail reason

let test_conservation_with_coordinator_crash () =
  let world = make_world () in
  let b0, b1, coordinator = bank_fixture world in
  (* Start transfers, crash the coordinator mid-flight, restart, let its
     recovery re-drive the saga, then audit. *)
  driver world ~at:2 (fun ctx ->
      for _ = 1 to 5 do
        ignore
          (transfer ctx coordinator ~from_branch:0 ~from_account:"a0" ~to_branch:1
             ~to_account:"b0" ~amount:50)
      done);
  (* Crash while sagas may be between withdraw and deposit. *)
  Dcp_sim.Engine.run_until (Runtime.engine world) (Clock.ms 1);
  Runtime.crash_node world 2;
  Runtime.restart_node world 2;
  Runtime.run_for world (Clock.s 30);
  Alcotest.(check int) "no transfer left hanging" 0 (Transfer.incomplete_transfers world);
  match total_money world ~branches:[ b0; b1 ] with
  | Ok total -> Alcotest.(check int) "money conserved across crash" 4000 total
  | Error reason -> Alcotest.fail reason

let test_conservation_with_branch_crash () =
  let world = make_world () in
  let b0, b1, coordinator = bank_fixture world in
  driver world ~at:2 (fun ctx ->
      for _ = 1 to 5 do
        ignore
          (transfer ctx coordinator ~from_branch:0 ~from_account:"a1" ~to_branch:1
             ~to_account:"b1" ~amount:30)
      done);
  (* The destination branch dies while deposits are in flight; the saga
     parks and retries until the branch recovers. *)
  Dcp_sim.Engine.run_until (Runtime.engine world) (Clock.ms 1);
  Runtime.crash_node world 1;
  ignore
    (Dcp_sim.Engine.schedule (Runtime.engine world) ~at:(Clock.s 3) (fun () ->
         Runtime.restart_node world 1));
  Runtime.run_for world (Clock.s 60);
  Alcotest.(check int) "sagas settled" 0 (Transfer.incomplete_transfers world);
  match total_money world ~branches:[ b0; b1 ] with
  | Ok total -> Alcotest.(check int) "money conserved across branch crash" 4000 total
  | Error reason -> Alcotest.fail reason

let tests =
  [
    Alcotest.test_case "branch operations" `Quick test_branch_operations;
    Alcotest.test_case "exactly-once on duplicates" `Quick test_branch_exactly_once_on_duplicates;
    Alcotest.test_case "exactly-once across crash" `Quick test_branch_exactly_once_across_crash;
    Alcotest.test_case "transfer moves money" `Quick test_transfer_moves_money;
    Alcotest.test_case "transfer insufficient" `Quick test_transfer_insufficient;
    Alcotest.test_case "refund on missing destination" `Quick test_transfer_refund_on_missing_dest;
    Alcotest.test_case "conservation (calm)" `Quick test_conservation_simple;
    Alcotest.test_case "conservation (coordinator crash)" `Quick test_conservation_with_coordinator_crash;
    Alcotest.test_case "conservation (branch crash)" `Quick test_conservation_with_branch_crash;
  ]
