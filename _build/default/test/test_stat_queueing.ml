(* The Stat module and the network's bandwidth-queueing mode. *)

module Stat = Dcp_sim.Stat
module Engine = Dcp_sim.Engine
module Clock = Dcp_sim.Clock
module Network = Dcp_net.Network
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link
module Rng = Dcp_rng.Rng

(* ---- Stat ---- *)

let test_stat_summary_basics () =
  let s = Stat.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check int) "n" 8 s.Stat.n;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stat.mean;
  Alcotest.(check (float 1e-6)) "unbiased variance" (32.0 /. 7.0) s.Stat.variance;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Stat.minimum;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Stat.maximum;
  Alcotest.(check (float 1e-9)) "median" 4.5 s.Stat.median

let test_stat_single_sample () =
  let s = Stat.summarize [ 3.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stat.mean;
  Alcotest.(check (float 1e-9)) "no variance" 0.0 s.Stat.variance;
  Alcotest.(check (float 1e-9)) "no ci" 0.0 s.Stat.ci95

let test_stat_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stat.summarize: empty sample") (fun () ->
      ignore (Stat.summarize []))

let test_stat_quantiles () =
  let sample = List.init 101 (fun i -> float_of_int i) in
  Alcotest.(check (float 1e-9)) "q0" 0.0 (Stat.quantile sample 0.0);
  Alcotest.(check (float 1e-9)) "q50" 50.0 (Stat.quantile sample 0.5);
  Alcotest.(check (float 1e-9)) "q100" 100.0 (Stat.quantile sample 1.0);
  Alcotest.(check (float 1e-9)) "interpolated" 25.0 (Stat.quantile sample 0.25)

let test_stat_ci_shrinks_with_n () =
  let rng = Rng.create ~seed:3 in
  let sample n = List.init n (fun _ -> Rng.normal rng ~mean:10.0 ~stddev:2.0) in
  let small = (Stat.summarize (sample 5)).Stat.ci95 in
  let large = (Stat.summarize (sample 500)).Stat.ci95 in
  Alcotest.(check bool) "more data, tighter CI" true (large < small)

let test_stat_of_trials () =
  let s = Stat.of_trials ~trials:10 (fun ~seed -> float_of_int (seed * 2)) in
  Alcotest.(check int) "n" 10 s.Stat.n;
  Alcotest.(check (float 1e-9)) "mean of 0,2,..18" 9.0 s.Stat.mean

let prop_stat_mean_bounds =
  QCheck2.Test.make ~name:"mean lies within [min, max]" ~count:300
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1e6) 1e6))
    (fun sample ->
      let s = Stat.summarize sample in
      s.Stat.minimum <= s.Stat.mean +. 1e-6 && s.Stat.mean <= s.Stat.maximum +. 1e-6)

(* ---- bandwidth queueing ---- *)

let queued_net ~queueing =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:7 in
  (* 10 KB/s, zero latency: transfer time is purely serialization. *)
  let link = { Link.perfect with bandwidth = Some 10_000 } in
  let net =
    Network.create ~engine ~rng ~topology:(Topology.full_mesh ~n:2 link) ~mtu:1_000_000
      ~queueing ()
  in
  (engine, net)

let arrival_times ~queueing ~messages ~size =
  let engine, net = queued_net ~queueing in
  let arrivals = ref [] in
  Network.set_handler net 1 (fun ~src:_ _body -> arrivals := Engine.now engine :: !arrivals);
  for _ = 1 to messages do
    Network.send net ~src:0 ~dst:1 (String.make size 'x')
  done;
  Engine.run engine;
  List.rev !arrivals

let test_queueing_serializes_concurrent_sends () =
  (* Three 1000-byte messages (1024B with header) at 10KB/s ~ 102.4ms each.
     Queued: arrivals stack ~102, ~205, ~307ms.  Unqueued: all ~102ms. *)
  let unqueued = arrival_times ~queueing:false ~messages:3 ~size:1000 in
  let queued = arrival_times ~queueing:true ~messages:3 ~size:1000 in
  (match unqueued with
  | [ a; b; c ] ->
      Alcotest.(check bool) "unqueued overlap" true (a = b && b = c)
  | _ -> Alcotest.fail "expected three arrivals");
  match queued with
  | [ a; b; c ] ->
      Alcotest.(check bool) "queued spread out" true (b - a > Clock.ms 90 && c - b > Clock.ms 90);
      Alcotest.(check bool) "first unaffected" true (abs (a - (b - a)) < Clock.ms 5)
  | _ -> Alcotest.fail "expected three arrivals"

let test_queueing_idle_link_no_penalty () =
  (* A single transfer pays serialization once, queued or not. *)
  let t1 = arrival_times ~queueing:false ~messages:1 ~size:2000 in
  let t2 = arrival_times ~queueing:true ~messages:1 ~size:2000 in
  Alcotest.(check bool) "same time when idle" true (t1 = t2)

let test_queueing_per_direction () =
  (* Opposite directions have independent transmitters. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:9 in
  let link = { Link.perfect with bandwidth = Some 10_000 } in
  let net =
    Network.create ~engine ~rng ~topology:(Topology.full_mesh ~n:2 link) ~mtu:1_000_000
      ~queueing:true ()
  in
  let arrivals = ref [] in
  Network.set_handler net 0 (fun ~src:_ _ -> arrivals := ("to0", Engine.now engine) :: !arrivals);
  Network.set_handler net 1 (fun ~src:_ _ -> arrivals := ("to1", Engine.now engine) :: !arrivals);
  Network.send net ~src:0 ~dst:1 (String.make 1000 'x');
  Network.send net ~src:1 ~dst:0 (String.make 1000 'x');
  Engine.run engine;
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] -> Alcotest.(check bool) "full duplex" true (t1 = t2)
  | _ -> Alcotest.fail "expected two arrivals"

let tests =
  [
    Alcotest.test_case "summary basics" `Quick test_stat_summary_basics;
    Alcotest.test_case "single sample" `Quick test_stat_single_sample;
    Alcotest.test_case "empty rejected" `Quick test_stat_empty_rejected;
    Alcotest.test_case "quantiles" `Quick test_stat_quantiles;
    Alcotest.test_case "CI shrinks with n" `Quick test_stat_ci_shrinks_with_n;
    Alcotest.test_case "of_trials" `Quick test_stat_of_trials;
    QCheck_alcotest.to_alcotest prop_stat_mean_bounds;
    Alcotest.test_case "queueing serializes" `Quick test_queueing_serializes_concurrent_sends;
    Alcotest.test_case "queueing idle no penalty" `Quick test_queueing_idle_link_no_penalty;
    Alcotest.test_case "queueing per direction" `Quick test_queueing_per_direction;
  ]
