(* End-to-end tests of the guardian runtime: send/receive semantics,
   failure messages, guardian creation rules, crash and recovery. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Primordial = Dcp_core.Primordial
module Port = Dcp_core.Port
module Message = Dcp_core.Message
module Process = Dcp_core.Process
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let echo_port_type =
  [
    Vtype.signature "echo" [ Vtype.Tstr ] ~replies:[ Vtype.reply "echoed" [ Vtype.Tstr ] ];
    Vtype.signature "stop" [];
  ]

(* A guardian that echoes strings back to the reply port. *)
let echo_def : Runtime.def =
  {
    Runtime.def_name = "echo";
    provides = [ (echo_port_type, 16) ];
    init =
      (fun ctx _args ->
        let rec loop () =
          match Runtime.receive ctx [ Runtime.port ctx 0 ] with
          | `Timeout -> loop ()
          | `Msg (_, msg) -> (
              match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
              | "echo", [ Value.Str s ], Some reply ->
                  Runtime.send ctx ~to_:reply "echoed" [ Value.str s ];
                  loop ()
              | "stop", _, _ -> ()
              | _ -> loop ())
        in
        loop ());
    recover = None;
  }

let make_world ?(n = 2) ?(link = Link.perfect) ?config () =
  let topology = Topology.full_mesh ~n link in
  let world = Runtime.create_world ~seed:42 ~topology ?config () in
  world

(* Run a driver body inside a fresh single-port guardian at [at]; the test
   observes results through the [result] ref. *)
let driver_def body : Runtime.def =
  {
    Runtime.def_name = "driver";
    provides = [];
    init = (fun ctx _args -> body ctx);
    recover = None;
  }

let with_driver world ~at body =
  Runtime.register_def world (driver_def body);
  ignore (Runtime.create_guardian world ~at ~def_name:"driver" ~args:[])

let test_echo_roundtrip () =
  let world = make_world () in
  Runtime.register_def world echo_def;
  let echo = Runtime.create_guardian world ~at:0 ~def_name:"echo" ~args:[] in
  let echo_port = List.hd (Runtime.guardian_ports echo) in
  let result = ref None in
  with_driver world ~at:1 (fun ctx ->
      let reply = Runtime.new_port ctx [ Vtype.signature "echoed" [ Vtype.Tstr ] ] in
      Runtime.send ctx ~to_:echo_port ~reply_to:(Port.name reply) "echo"
        [ Value.str "hello" ];
      match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
      | `Msg (_, msg) -> result := Some msg.Message.args
      | `Timeout -> result := None);
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check (option (list string)))
    "echoed back"
    (Some [ "\"hello\"" ])
    (Option.map (List.map Value.to_string) !result)

let test_unknown_port_failure () =
  let world = make_world () in
  let got = ref None in
  with_driver world ~at:0 (fun ctx ->
      let reply = Runtime.new_port ctx [ Vtype.signature "never" [] ] in
      let bogus = Port_name.make ~node:1 ~guardian:999 ~index:0 ~uid:12345 in
      Runtime.send ctx ~to_:bogus ~reply_to:(Port.name reply) "anything" [];
      match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
      | `Msg (_, msg) -> got := Some msg.Message.command
      | `Timeout -> got := Some "timeout");
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check (option string)) "failure message" (Some "failure") !got

let test_receive_timeout () =
  let world = make_world () in
  let got = ref None in
  with_driver world ~at:0 (fun ctx ->
      let p = Runtime.new_port ctx [ Vtype.signature "never" [] ] in
      match Runtime.receive ctx ~timeout:(Clock.ms 50) [ p ] with
      | `Msg _ -> got := Some "msg"
      | `Timeout -> got := Some "timeout");
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check (option string)) "timed out" (Some "timeout") !got;
  Alcotest.(check bool)
    "timeout happened at ~50ms" true
    (Runtime.now world >= Clock.ms 50)

let test_primordial_remote_create () =
  let world = make_world () in
  Primordial.install world;
  Runtime.register_def world echo_def;
  let outcome = ref None in
  with_driver world ~at:0 (fun ctx ->
      outcome :=
        Some
          (Primordial.request_create ctx ~at:1 ~def_name:"echo" ~args:[]
             ~timeout:(Clock.s 1)));
  Runtime.run_for world (Clock.s 2);
  (match !outcome with
  | Some (`Created [ port ]) ->
      Alcotest.(check int) "created at node 1" 1 port.Port_name.node
  | Some (`Created _) -> Alcotest.fail "unexpected port count"
  | Some (`Refused r) -> Alcotest.fail ("refused: " ^ r)
  | Some `Timeout -> Alcotest.fail "timed out"
  | None -> Alcotest.fail "driver did not run");
  (* The new echo guardian must actually live at node 1. *)
  let echoes = Runtime.find_guardians world ~def_name:"echo" in
  Alcotest.(check (list int)) "guardian node" [ 1 ] (List.map Runtime.guardian_node echoes)

let test_primordial_refuses_unknown_def () =
  let world = make_world () in
  Primordial.install world;
  let outcome = ref None in
  with_driver world ~at:0 (fun ctx ->
      outcome :=
        Some
          (Primordial.request_create ctx ~at:1 ~def_name:"no_such_def" ~args:[]
             ~timeout:(Clock.s 1)));
  Runtime.run_for world (Clock.s 2);
  match !outcome with
  | Some (`Refused _) -> ()
  | _ -> Alcotest.fail "expected a refusal"

let test_crash_kills_and_failure_generated () =
  let world = make_world () in
  Runtime.register_def world echo_def;
  let echo = Runtime.create_guardian world ~at:1 ~def_name:"echo" ~args:[] in
  let echo_port = List.hd (Runtime.guardian_ports echo) in
  Runtime.run_for world (Clock.ms 1);
  Runtime.crash_node world 1;
  let got = ref None in
  with_driver world ~at:0 (fun ctx ->
      let reply = Runtime.new_port ctx [ Vtype.signature "echoed" [ Vtype.Tstr ] ] in
      Runtime.send ctx ~to_:echo_port ~reply_to:(Port.name reply) "echo" [ Value.str "x" ];
      match Runtime.receive ctx ~timeout:(Clock.ms 200) [ reply ] with
      | `Msg (_, msg) -> got := Some msg.Message.command
      | `Timeout -> got := Some "timeout");
  Runtime.run_for world (Clock.s 1);
  (* Node down: message vanishes, no failure message can come back (the
     whole node is unreachable), so the client times out — exactly the
     uncertainty §3.5 describes. *)
  Alcotest.(check (option string)) "client times out" (Some "timeout") !got;
  Alcotest.(check bool) "guardian dead" false (Runtime.guardian_alive echo)

let test_dead_guardian_failure_message () =
  let world = make_world () in
  Runtime.register_def world echo_def;
  let echo = Runtime.create_guardian world ~at:1 ~def_name:"echo" ~args:[] in
  let echo_port = List.hd (Runtime.guardian_ports echo) in
  Runtime.run_for world (Clock.ms 1);
  (* Crash and restart: echo has no recover procedure, so the node comes
     back but the guardian stays dead; now sends get failure replies. *)
  Runtime.crash_node world 1;
  Runtime.restart_node world 1;
  let got = ref None in
  with_driver world ~at:0 (fun ctx ->
      let reply = Runtime.new_port ctx [ Vtype.signature "echoed" [ Vtype.Tstr ] ] in
      Runtime.send ctx ~to_:echo_port ~reply_to:(Port.name reply) "echo" [ Value.str "x" ];
      match Runtime.receive ctx ~timeout:(Clock.ms 500) [ reply ] with
      | `Msg (_, msg) -> got := Some (msg.Message.command, Value.to_string (List.hd msg.Message.args))
      | `Timeout -> got := None);
  Runtime.run_for world (Clock.s 1);
  let contains_substring s sub =
    let n = String.length s and m = String.length sub in
    let rec scan i = i + m <= n && (String.equal (String.sub s i m) sub || scan (i + 1)) in
    scan 0
  in
  match !got with
  | Some ("failure", reason) ->
      Alcotest.(check bool) "mentions guardian" true (contains_substring reason "guardian")
  | _ -> Alcotest.fail "expected failure(guardian does not exist)"

let test_local_creation_rule () =
  let world = make_world () in
  Runtime.register_def world echo_def;
  let where = ref None in
  with_driver world ~at:1 (fun ctx ->
      let g = Runtime.ctx_create_guardian ctx ~def_name:"echo" ~args:[] in
      where := Some (Runtime.guardian_node g));
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check (option int)) "created at creator's node" (Some 1) !where

let test_port_type_checking () =
  let world = make_world () in
  Runtime.register_def world echo_def;
  let echo = Runtime.create_guardian world ~at:1 ~def_name:"echo" ~args:[] in
  let echo_port = List.hd (Runtime.guardian_ports echo) in
  let got = ref None in
  with_driver world ~at:0 (fun ctx ->
      let reply = Runtime.new_port ctx [ Vtype.signature "echoed" [ Vtype.Tstr ] ] in
      (* Wrong argument type: int instead of string. *)
      Runtime.send ctx ~to_:echo_port ~reply_to:(Port.name reply) "echo" [ Value.int 3 ];
      match Runtime.receive ctx ~timeout:(Clock.ms 500) [ reply ] with
      | `Msg (_, msg) -> got := Some msg.Message.command
      | `Timeout -> got := None);
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check (option string)) "rejected with failure" (Some "failure") !got

let test_sends_are_unordered_but_deliverable () =
  (* With a jittery link, messages can overtake each other; all arrive. *)
  let link = { Link.perfect with base_latency = Clock.ms 1; jitter = Clock.ms 5 } in
  let world = make_world ~link () in
  let received = ref [] in
  let sink_def : Runtime.def =
    {
      Runtime.def_name = "sink";
      provides = [ ([ Vtype.signature "item" [ Vtype.Tint ] ], 64) ];
      init =
        (fun ctx _args ->
          let rec loop () =
            match Runtime.receive ctx ~timeout:(Clock.s 1) [ Runtime.port ctx 0 ] with
            | `Msg (_, msg) ->
                received := Value.get_int (List.hd msg.Message.args) :: !received;
                loop ()
            | `Timeout -> ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world sink_def;
  let sink = Runtime.create_guardian world ~at:1 ~def_name:"sink" ~args:[] in
  let sink_port = List.hd (Runtime.guardian_ports sink) in
  with_driver world ~at:0 (fun ctx ->
      for i = 1 to 20 do
        Runtime.send ctx ~to_:sink_port "item" [ Value.int i ]
      done);
  Runtime.run_for world (Clock.s 3);
  let got = List.sort Int.compare !received in
  Alcotest.(check (list int)) "all 20 arrived" (List.init 20 (fun i -> i + 1)) got

let test_encode_bounds_raise_at_sender () =
  let config = { Runtime.default_config with codec = Codec.config_1979 } in
  let world = make_world ~config () in
  Runtime.register_def world echo_def;
  let echo = Runtime.create_guardian world ~at:1 ~def_name:"echo" ~args:[] in
  let echo_port = List.hd (Runtime.guardian_ports echo) in
  let raised = ref false in
  let sink_def : Runtime.def =
    {
      Runtime.def_name = "bounds_driver";
      provides = [];
      init =
        (fun ctx _args ->
          match
            Runtime.send ctx ~to_:echo_port "echo_int" [ Value.int 99_999_999 ]
          with
          | () -> ()
          | exception Runtime.Send_failed _ -> raised := true
          | exception Codec.Codec_error _ -> raised := true);
      recover = None;
    }
  in
  Runtime.register_def world sink_def;
  ignore (Runtime.create_guardian world ~at:0 ~def_name:"bounds_driver" ~args:[]);
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check bool) "24-bit bound enforced at sender" true !raised

let test_recovery_restores_store () =
  (* The crash-tear probability is set to 0 so the logged record is intact;
     torn-tail behaviour is covered by the stable-storage tests. *)
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  let world = make_world ~config () in
  let observed = ref None in
  let keeper_def : Runtime.def =
    {
      Runtime.def_name = "keeper";
      provides = [ ([ Vtype.signature "put" [ Vtype.Tstr; Vtype.Tstr ] ], 16) ];
      init =
        (fun ctx _args ->
          let rec loop () =
            match Runtime.receive ctx [ Runtime.port ctx 0 ] with
            | `Msg (_, { Message.command = "put"; args = [ Value.Str k; Value.Str v ]; _ }) ->
                Dcp_stable.Store.set (Runtime.store ctx) ~key:k v;
                loop ()
            | _ -> loop ()
          in
          loop ());
      recover =
        Some (fun ctx -> observed := Dcp_stable.Store.get (Runtime.store ctx) ~key:"city");
    }
  in
  Runtime.register_def world keeper_def;
  let keeper = Runtime.create_guardian world ~at:1 ~def_name:"keeper" ~args:[] in
  let keeper_port = List.hd (Runtime.guardian_ports keeper) in
  with_driver world ~at:0 (fun ctx ->
      Runtime.send ctx ~to_:keeper_port "put" [ Value.str "city"; Value.str "cambridge" ]);
  Runtime.run_for world (Clock.ms 10);
  Runtime.crash_node world 1;
  Runtime.restart_node world 1;
  Runtime.run_for world (Clock.ms 10);
  Alcotest.(check (option string))
    "logged value survives the crash" (Some "cambridge") !observed;
  Alcotest.(check bool) "guardian recovered" true (Runtime.guardian_alive keeper)

let tests =
  [
    Alcotest.test_case "echo roundtrip across nodes" `Quick test_echo_roundtrip;
    Alcotest.test_case "failure(...) for unknown port" `Quick test_unknown_port_failure;
    Alcotest.test_case "receive timeout fires" `Quick test_receive_timeout;
    Alcotest.test_case "primordial creates remotely" `Quick test_primordial_remote_create;
    Alcotest.test_case "primordial refuses unknown defs" `Quick test_primordial_refuses_unknown_def;
    Alcotest.test_case "crashed node: silence, not failure" `Quick test_crash_kills_and_failure_generated;
    Alcotest.test_case "dead guardian: failure message" `Quick test_dead_guardian_failure_message;
    Alcotest.test_case "creation pinned to creator's node" `Quick test_local_creation_rule;
    Alcotest.test_case "port signatures enforced" `Quick test_port_type_checking;
    Alcotest.test_case "unordered delivery, none lost" `Quick test_sends_are_unordered_but_deliverable;
    Alcotest.test_case "integer bounds raise at sender" `Quick test_encode_bounds_raise_at_sender;
    Alcotest.test_case "recovery replays the stable store" `Quick test_recovery_restores_store;
  ]
