(* The derived send primitives of §3: synchronization send, RPC, patterns. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Sync_send = Dcp_primitives.Sync_send
module Rpc = Dcp_primitives.Rpc
module Patterns = Dcp_primitives.Patterns
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link
module Network = Dcp_net.Network

let make_world ?(link = Link.perfect) () =
  Runtime.create_world ~seed:11 ~topology:(Topology.full_mesh ~n:2 link) ()

let driver world ~at body =
  let name = Printf.sprintf "driver%d" (Hashtbl.hash body) in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* A server that echoes RPC requests; [work] lets tests tweak behaviour. *)
let rpc_server world ~at ~name handler =
  let def =
    {
      Runtime.def_name = name;
      provides = [ ([ Vtype.wildcard ], 64) ];
      init =
        (fun ctx _ ->
          let rec loop () =
            (match Runtime.receive ctx [ Runtime.port ctx 0 ] with
            | `Timeout -> ()
            | `Msg (_, msg) -> handler ctx msg);
            loop ()
          in
          loop ());
      recover = None;
    }
  in
  Runtime.register_def world def;
  let g = Runtime.create_guardian world ~at ~def_name:name ~args:[] in
  List.hd (Runtime.guardian_ports g)

(* ---- Sync_send ---- *)

let test_sync_send_ack () =
  let world = make_world () in
  let server =
    rpc_server world ~at:1 ~name:"acker" (fun ctx msg -> Sync_send.acknowledge ctx msg)
  in
  let outcome = ref None in
  driver world ~at:0 (fun ctx ->
      outcome := Some (Sync_send.send ctx ~to_:server "ping" [ Value.int 1 ]));
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check bool) "received" true (!outcome = Some Sync_send.Received)

let test_sync_send_timeout_when_ignored () =
  let world = make_world () in
  let server = rpc_server world ~at:1 ~name:"ignorer" (fun _ _ -> ()) in
  let outcome = ref None in
  driver world ~at:0 (fun ctx ->
      outcome := Some (Sync_send.send ctx ~to_:server ~timeout:(Clock.ms 100) "ping" []));
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check bool) "timed out" true (!outcome = Some Sync_send.Timed_out)

let test_sync_send_failure_on_dead_port () =
  let world = make_world () in
  let outcome = ref None in
  driver world ~at:0 (fun ctx ->
      let bogus = Port_name.make ~node:1 ~guardian:424242 ~index:0 ~uid:777 in
      outcome := Some (Sync_send.send ctx ~to_:bogus ~timeout:(Clock.s 1) "ping" []));
  Runtime.run_for world (Clock.s 2);
  match !outcome with
  | Some (Sync_send.Failed _) -> ()
  | _ -> Alcotest.fail "expected Failed"

let test_sync_send_costs_two_messages () =
  let world = make_world () in
  let server =
    rpc_server world ~at:1 ~name:"acker2" (fun ctx msg -> Sync_send.acknowledge ctx msg)
  in
  driver world ~at:0 (fun ctx -> ignore (Sync_send.send ctx ~to_:server "ping" []));
  Runtime.run_for world (Clock.s 1);
  let net = Network.stats (Runtime.network world) in
  Alcotest.(check int) "request + ack" 2 net.Network.messages_sent

(* ---- Rpc ---- *)

let counting_server world ~at ~name =
  let executions = ref 0 in
  let port =
    rpc_server world ~at ~name (fun ctx msg ->
        Rpc.serve_always ctx msg ~f:(fun _ _ ->
            incr executions;
            ("done", [ Value.int !executions ])))
  in
  (port, executions)

let test_rpc_roundtrip () =
  let world = make_world () in
  let server, _ = counting_server world ~at:1 ~name:"srv" in
  let got = ref None in
  driver world ~at:0 (fun ctx ->
      got := Some (Rpc.call ctx ~to_:server "work" [ Value.int 9 ]));
  Runtime.run_for world (Clock.s 1);
  match !got with
  | Some (Rpc.Reply ("done", [ Value.Int 1 ])) -> ()
  | _ -> Alcotest.fail "expected done(1)"

let test_rpc_timeout_no_server () =
  let world = make_world () in
  let got = ref None in
  driver world ~at:0 (fun ctx ->
      let bogus = Port_name.make ~node:1 ~guardian:999999 ~index:0 ~uid:31337 in
      (* No reply port on failure messages; bogus guardian generates
         failure() which counts as Failure_msg. *)
      got := Some (Rpc.call ctx ~to_:bogus ~timeout:(Clock.ms 100) "work" []));
  Runtime.run_for world (Clock.s 1);
  match !got with
  | Some (Rpc.Failure_msg _) -> ()
  | Some Rpc.Timeout -> ()
  | _ -> Alcotest.fail "expected failure or timeout"

let test_rpc_retry_on_loss () =
  (* 30% loss each way: one attempt succeeds ~half the time; eight attempts
     essentially always (p_fail ~ 0.51^8 < 0.5%). *)
  let world = make_world ~link:(Link.lossy 0.3) () in
  let server, _ = counting_server world ~at:1 ~name:"srv" in
  let successes = ref 0 in
  driver world ~at:0 (fun ctx ->
      for _ = 1 to 20 do
        match Rpc.call ctx ~to_:server ~timeout:(Clock.ms 200) ~attempts:8 "work" [] with
        | Rpc.Reply _ -> incr successes
        | Rpc.Failure_msg _ | Rpc.Timeout -> ()
      done);
  Runtime.run_for world (Clock.s 60);
  Alcotest.(check bool)
    (Printf.sprintf "most calls succeed (%d/20)" !successes)
    true (!successes >= 18)

let test_rpc_dedup_suppresses_duplicates () =
  let world = make_world () in
  let executions = ref 0 in
  let dedup = Rpc.dedup () in
  let server =
    rpc_server world ~at:1 ~name:"once" (fun ctx msg ->
        Rpc.serve ctx ~dedup msg ~f:(fun _ _ ->
            incr executions;
            ("done", [])))
  in
  driver world ~at:0 (fun ctx ->
      (* Same request id sent twice: server must execute once, reply twice. *)
      let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
      Runtime.send ctx ~to_:server ~reply_to:(Port.name reply) "work" [ Value.int 12345 ];
      Runtime.send ctx ~to_:server ~reply_to:(Port.name reply) "work" [ Value.int 12345 ];
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]);
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]));
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check int) "executed once" 1 !executions

let test_rpc_serve_always_executes_duplicates () =
  let world = make_world () in
  let executions = ref 0 in
  let server =
    rpc_server world ~at:1 ~name:"every" (fun ctx msg ->
        Rpc.serve_always ctx msg ~f:(fun _ _ ->
            incr executions;
            ("done", [])))
  in
  driver world ~at:0 (fun ctx ->
      let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
      Runtime.send ctx ~to_:server ~reply_to:(Port.name reply) "work" [ Value.int 777 ];
      Runtime.send ctx ~to_:server ~reply_to:(Port.name reply) "work" [ Value.int 777 ];
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]);
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]));
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check int) "executed twice" 2 !executions

let test_rpc_stale_response_ignored () =
  (* A server that answers the FIRST request very late and others fast:
     the late answer to request A must not satisfy request B. *)
  let world = make_world () in
  let first = ref true in
  let server =
    rpc_server world ~at:1 ~name:"laggy" (fun ctx msg ->
        match (msg.Message.args, msg.Message.reply_to) with
        | Value.Int id :: _, Some reply ->
            if !first then begin
              first := false;
              ignore
                (Runtime.spawn ctx ~name:"late" (fun () ->
                     Runtime.sleep ctx (Clock.ms 300);
                     Runtime.send ctx ~to_:reply "done" [ Value.int id; Value.str "late" ]))
            end
            else Runtime.send ctx ~to_:reply "done" [ Value.int id; Value.str "fast" ]
        | _ -> ())
  in
  let outcomes = ref [] in
  driver world ~at:0 (fun ctx ->
      let r1 = Rpc.call ctx ~to_:server ~timeout:(Clock.ms 100) "work" [] in
      let r2 = Rpc.call ctx ~to_:server ~timeout:(Clock.ms 100) "work" [] in
      outcomes := [ r1; r2 ]);
  Runtime.run_for world (Clock.s 2);
  match !outcomes with
  | [ Rpc.Timeout; Rpc.Reply (_, [ Value.Str "fast" ]) ] -> ()
  | _ -> Alcotest.fail "first times out; second must get its own (fast) answer"

let test_rpc_request_signature () =
  let s = Rpc.request_signature "op" [ Vtype.Tstr ] ~replies:[ Vtype.reply "ok" [] ] in
  Alcotest.(check int) "id prepended" 2 (List.length s.Vtype.args);
  Alcotest.(check bool) "first is int" true (List.hd s.Vtype.args = Vtype.Tint)

(* ---- Patterns ---- *)

let test_pattern_request_response () =
  let world = make_world () in
  let server =
    rpc_server world ~at:1 ~name:"rr" (fun ctx msg ->
        match msg.Message.reply_to with
        | Some reply -> Runtime.send ctx ~to_:reply "answer" [ Value.int 42 ]
        | None -> ())
  in
  let got = ref None in
  driver world ~at:0 (fun ctx ->
      match Patterns.request_response ctx ~to_:server "ask" [] with
      | `Reply m -> got := Some m.Message.command
      | `Timeout -> ());
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check (option string)) "reply" (Some "answer") !got

let test_pattern_stream_then_confirm_message_count () =
  let world = make_world () in
  let received = ref 0 in
  let server =
    rpc_server world ~at:1 ~name:"sink" (fun ctx msg ->
        match msg.Message.command with
        | "item" -> incr received
        | "commit" -> (
            match msg.Message.reply_to with
            | Some reply -> Runtime.send ctx ~to_:reply "committed" [ Value.int !received ]
            | None -> ())
        | _ -> ())
  in
  let confirmed = ref None in
  driver world ~at:0 (fun ctx ->
      let items = List.init 10 (fun i -> ("item", [ Value.int i ])) in
      match Patterns.stream_then_confirm ctx ~to_:server ~items ~confirm:"commit" () with
      | `Confirmed m -> confirmed := Some m.Message.args
      | `Timeout -> ());
  Runtime.run_for world (Clock.s 1);
  (match !confirmed with
  | Some [ Value.Int 10 ] -> ()
  | _ -> Alcotest.fail "expected committed(10)");
  let net = Network.stats (Runtime.network world) in
  (* N items + 1 confirm + 1 response = N + 2, the no-wait advantage. *)
  Alcotest.(check int) "N+2 messages" 12 net.Network.messages_sent

let test_pattern_delegate () =
  let world = make_world () in
  (* worker answers; broker forwards to worker preserving the reply port. *)
  let worker =
    rpc_server world ~at:1 ~name:"worker" (fun ctx msg ->
        match msg.Message.reply_to with
        | Some reply -> Runtime.send ctx ~to_:reply "result" [ Value.str "from-worker" ]
        | None -> ())
  in
  let broker =
    rpc_server world ~at:1 ~name:"broker" (fun ctx msg ->
        Patterns.delegate ctx ~to_:worker msg)
  in
  let got = ref None in
  driver world ~at:0 (fun ctx ->
      match Patterns.request_response ctx ~to_:broker "job" [] with
      | `Reply m -> got := Some (Value.get_str (List.hd m.Message.args))
      | `Timeout -> ());
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check (option string)) "response bypassed the broker" (Some "from-worker") !got

let tests =
  [
    Alcotest.test_case "sync send acked" `Quick test_sync_send_ack;
    Alcotest.test_case "sync send timeout" `Quick test_sync_send_timeout_when_ignored;
    Alcotest.test_case "sync send failure" `Quick test_sync_send_failure_on_dead_port;
    Alcotest.test_case "sync send costs 2 msgs" `Quick test_sync_send_costs_two_messages;
    Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip;
    Alcotest.test_case "rpc failure/timeout" `Quick test_rpc_timeout_no_server;
    Alcotest.test_case "rpc retry on loss" `Slow test_rpc_retry_on_loss;
    Alcotest.test_case "rpc dedup" `Quick test_rpc_dedup_suppresses_duplicates;
    Alcotest.test_case "rpc serve_always duplicates" `Quick test_rpc_serve_always_executes_duplicates;
    Alcotest.test_case "rpc stale response ignored" `Quick test_rpc_stale_response_ignored;
    Alcotest.test_case "rpc request signature" `Quick test_rpc_request_signature;
    Alcotest.test_case "pattern request/response" `Quick test_pattern_request_response;
    Alcotest.test_case "pattern stream+confirm" `Quick test_pattern_stream_then_confirm_message_count;
    Alcotest.test_case "pattern delegate" `Quick test_pattern_delegate;
  ]
