(* Distributed simultaneous update (§3's protocol family): replicated
   registers with Lamport-stamped last-writer-wins and anti-entropy. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Replica = Dcp_primitives.Replica
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Network = Dcp_net.Network
module Link = Dcp_net.Link

let make_world ?(n = 3) ?(link = Link.lan) () =
  Runtime.create_world ~seed:73 ~topology:(Topology.full_mesh ~n link) ()

let fresh_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "replica_driver_%d" !i

let driver world ~at body =
  let name = fresh_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* Read replica i from a driver co-located at node i, so the observation
   itself neither crosses partitions nor suffers link loss. *)
let read_all world replicas ~key =
  let results = Array.make (List.length replicas) None in
  List.iteri
    (fun i replica ->
      driver world ~at:i (fun ctx ->
          results.(i) <-
            Option.map Value.to_string (Replica.read ctx ~replica ~key ~timeout:(Clock.s 1))))
    replicas;
  Runtime.run_for world (Clock.s 5);
  Array.to_list results

let test_write_propagates () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] () in
  driver world ~at:0 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 50);
      ignore
        (Replica.write ctx ~replica:(List.hd replicas) ~key:"color"
           ~value:(Value.str "red") ~timeout:(Clock.s 1)));
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check (list (option string)))
    "all replicas converge"
    [ Some "\"red\""; Some "\"red\""; Some "\"red\"" ]
    (read_all world replicas ~key:"color")

let test_unknown_key () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] () in
  Alcotest.(check (list (option string)))
    "nothing written"
    [ None; None; None ]
    (read_all world replicas ~key:"ghost")

let test_concurrent_writes_converge_to_one_winner () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] () in
  (* Three clients write different values to three replicas at (nearly)
     the same moment. *)
  List.iteri
    (fun i replica ->
      driver world ~at:i (fun ctx ->
          Runtime.sleep ctx (Clock.ms 50);
          ignore
            (Replica.write ctx ~replica ~key:"leader"
               ~value:(Value.str (Printf.sprintf "candidate%d" i))
               ~timeout:(Clock.s 1))))
    replicas;
  Runtime.run_for world (Clock.s 10);
  match read_all world replicas ~key:"leader" with
  | [ Some a; Some b; Some c ] ->
      Alcotest.(check string) "replica 1 agrees" a b;
      Alcotest.(check string) "replica 2 agrees" b c
  | other ->
      Alcotest.failf "missing values: %s"
        (String.concat "," (List.map (Option.value ~default:"-") other))

let test_partition_then_converge () =
  let world = make_world () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] ~sync_every:(Clock.ms 200) () in
  let network = Runtime.network world in
  (* Let the group form, then split node 2 away. *)
  Runtime.run_for world (Clock.ms 100);
  Network.partition network [ [ 0; 1 ]; [ 2 ] ];
  (* Both sides accept conflicting writes during the partition. *)
  driver world ~at:0 (fun ctx ->
      ignore
        (Replica.write ctx ~replica:(List.nth replicas 0) ~key:"k" ~value:(Value.str "west")
           ~timeout:(Clock.s 1)));
  driver world ~at:2 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 10);
      ignore
        (Replica.write ctx ~replica:(List.nth replicas 2) ~key:"k" ~value:(Value.str "east")
           ~timeout:(Clock.s 1)));
  Runtime.run_for world (Clock.s 2);
  (* Divergence while partitioned. *)
  (match read_all world replicas ~key:"k" with
  | [ Some a; _; Some c ] -> Alcotest.(check bool) "diverged" true (a <> c)
  | _ -> Alcotest.fail "missing values during partition");
  (* Heal; anti-entropy reconciles to a single winner everywhere. *)
  Network.heal network;
  Runtime.run_for world (Clock.s 5);
  match read_all world replicas ~key:"k" with
  | [ Some a; Some b; Some c ] ->
      Alcotest.(check string) "converged 0=1" a b;
      Alcotest.(check string) "converged 1=2" b c
  | _ -> Alcotest.fail "missing values after heal"

let test_lossy_network_still_converges () =
  let world = make_world ~link:(Link.lossy 0.3) () in
  let replicas = Replica.create_group world ~nodes:[ 0; 1; 2 ] ~sync_every:(Clock.ms 100) () in
  driver world ~at:1 (fun ctx ->
      Runtime.sleep ctx (Clock.ms 200);
      for i = 0 to 4 do
        ignore
          (Replica.write ctx
             ~replica:(List.nth replicas 1)
             ~key:(Printf.sprintf "k%d" i)
             ~value:(Value.int i) ~timeout:(Clock.s 1))
      done);
  Runtime.run_for world (Clock.s 30);
  (* every key readable from every replica despite 30% loss *)
  for i = 0 to 4 do
    match read_all world replicas ~key:(Printf.sprintf "k%d" i) with
    | [ Some a; Some b; Some c ] ->
        Alcotest.(check string) "agree" a b;
        Alcotest.(check string) "agree" b c
    | _ -> Alcotest.failf "key k%d missing somewhere" i
  done

let tests =
  [
    Alcotest.test_case "write propagates" `Quick test_write_propagates;
    Alcotest.test_case "unknown key" `Quick test_unknown_key;
    Alcotest.test_case "concurrent writes: one winner" `Quick
      test_concurrent_writes_converge_to_one_winner;
    Alcotest.test_case "partition then converge" `Quick test_partition_then_converge;
    Alcotest.test_case "lossy network converges" `Slow test_lossy_network_still_converges;
  ]
