(* Bank statements streamed over the ordered channel — the §3.4 ordering
   coordination used by an application. *)

module Runtime = Dcp_core.Runtime
module Statement = Dcp_bank.Statement
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let journal =
  [
    ("alice", "opening balance", 100);
    ("alice", "salary", 2500);
    ("bob", "opening balance", 50);
    ("alice", "rent", -900);
    ("alice", "groceries", -120);
    ("bob", "salary", 1800);
    ("alice", "interest", 12);
  ]

let alice_rows =
  [ ("opening balance", 100); ("salary", 2500); ("rent", -900); ("groceries", -120); ("interest", 12) ]

let fresh_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "stmt_driver_%d" !i

let driver world ~at body =
  let name = fresh_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

let run_fetch ~link ~account =
  let world = Runtime.create_world ~seed:67 ~topology:(Topology.full_mesh ~n:2 link) () in
  let statements = Statement.create world ~at:0 ~journal () in
  let result = ref None in
  driver world ~at:1 (fun ctx ->
      result := Statement.fetch_statement ctx ~statements ~account ~timeout:(Clock.s 5));
  Runtime.run_for world (Clock.s 60);
  !result

let test_statement_in_order () =
  match run_fetch ~link:Link.perfect ~account:"alice" with
  | Some rows -> Alcotest.(check (list (pair string int))) "journal order" alice_rows rows
  | None -> Alcotest.fail "no statement"

let test_statement_over_lossy_jittery_link () =
  let link = { (Link.lossy 0.2) with base_latency = Clock.ms 2; jitter = Clock.ms 15 } in
  match run_fetch ~link ~account:"alice" with
  | Some rows ->
      Alcotest.(check (list (pair string int))) "order survives a bad link" alice_rows rows
  | None -> Alcotest.fail "no statement"

let test_statement_unknown_account () =
  match run_fetch ~link:Link.perfect ~account:"nobody" with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "unexpected rows"
  | None -> Alcotest.fail "expected empty statement"

let test_statement_running_balance () =
  match run_fetch ~link:Link.perfect ~account:"alice" with
  | None -> Alcotest.fail "no statement"
  | Some rows ->
      let balance = List.fold_left (fun acc (_, amount) -> acc + amount) 0 rows in
      Alcotest.(check int) "running balance correct because order held" 1592 balance

let tests =
  [
    Alcotest.test_case "statement in order" `Quick test_statement_in_order;
    Alcotest.test_case "statement over lossy link" `Quick test_statement_over_lossy_jittery_link;
    Alcotest.test_case "unknown account" `Quick test_statement_unknown_account;
    Alcotest.test_case "running balance" `Quick test_statement_running_balance;
  ]
