(* Access control: the generic ACL structure, the flight guardian's
   capability-protected admin port, and the §2.3 other-airline policy. *)

open Dcp_wire
module Acl = Dcp_core.Acl
module Runtime = Dcp_core.Runtime
module Rpc = Dcp_primitives.Rpc
module Flight = Dcp_airline.Flight
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

(* ---- the ACL data structure ---- *)

let test_acl_direct_grants () =
  let acl = Acl.create () in
  Acl.grant acl ~principal:"alice" ~permission:"list";
  Alcotest.(check bool) "granted" true (Acl.check acl ~principal:"alice" ~permission:"list");
  Alcotest.(check bool) "not granted" false (Acl.check acl ~principal:"bob" ~permission:"list");
  Alcotest.(check bool) "other permission" false
    (Acl.check acl ~principal:"alice" ~permission:"archive");
  Acl.revoke acl ~principal:"alice" ~permission:"list";
  Alcotest.(check bool) "revoked" false (Acl.check acl ~principal:"alice" ~permission:"list")

let test_acl_public () =
  let acl = Acl.create () in
  Acl.allow_all acl ~permission:"reserve";
  Alcotest.(check bool) "anyone" true (Acl.check acl ~principal:"whoever" ~permission:"reserve");
  Acl.disallow_all acl ~permission:"reserve";
  Alcotest.(check bool) "closed again" false
    (Acl.check acl ~principal:"whoever" ~permission:"reserve")

let test_acl_groups () =
  let acl = Acl.create () in
  Acl.add_to_group acl ~principal:"carol" ~group:"managers";
  Acl.grant_group acl ~group:"managers" ~permission:"list";
  Alcotest.(check bool) "via group" true (Acl.check acl ~principal:"carol" ~permission:"list");
  Acl.remove_from_group acl ~principal:"carol" ~group:"managers";
  Alcotest.(check bool) "left group" false (Acl.check acl ~principal:"carol" ~permission:"list");
  Acl.add_to_group acl ~principal:"dave" ~group:"managers";
  Acl.revoke_group acl ~group:"managers" ~permission:"list";
  Alcotest.(check bool) "group grant revoked" false
    (Acl.check acl ~principal:"dave" ~permission:"list")

let test_acl_permissions_of () =
  let acl = Acl.create () in
  Acl.grant acl ~principal:"eve" ~permission:"b";
  Acl.add_to_group acl ~principal:"eve" ~group:"g";
  Acl.grant_group acl ~group:"g" ~permission:"c";
  Acl.allow_all acl ~permission:"a";
  Alcotest.(check (list string)) "all three sorted" [ "a"; "b"; "c" ]
    (Acl.permissions_of acl ~principal:"eve")

let test_acl_principals_with () =
  let acl = Acl.create () in
  Acl.grant acl ~principal:"zoe" ~permission:"audit";
  Acl.add_to_group acl ~principal:"ann" ~group:"aud";
  Acl.grant_group acl ~group:"aud" ~permission:"audit";
  Alcotest.(check (list string)) "direct + via group" [ "ann"; "zoe" ]
    (Acl.principals_with acl ~permission:"audit")

let prop_acl_grant_check =
  QCheck2.Test.make ~name:"grant implies check; revoke removes it" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 1 8)) (string_size (int_range 1 8)))
    (fun (principal, permission) ->
      let acl = Acl.create () in
      Acl.grant acl ~principal ~permission;
      let held = Acl.check acl ~principal ~permission in
      Acl.revoke acl ~principal ~permission;
      held && not (Acl.check acl ~principal ~permission))

(* ---- the admin port as a capability ---- *)

let make_world () =
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  Runtime.create_world ~seed:61 ~topology:(Topology.full_mesh ~n:2 Link.perfect) ~config ()

let fresh_driver_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "acl_driver_%d" !i

let driver world ~at body =
  let name = fresh_driver_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

let reserve ctx port ~passenger ~date =
  match
    Rpc.call ctx ~to_:port ~timeout:(Clock.ms 500) "reserve"
      [ Value.str passenger; Value.int date ]
  with
  | Rpc.Reply (command, _) -> command
  | Rpc.Failure_msg _ -> "failure"
  | Rpc.Timeout -> "timeout"

let test_admin_stats_and_archive () =
  let world = make_world () in
  let request, admin =
    Flight.create_with_admin world ~at:0 ~flight:9 ~capacity:5 ~service_time:(Clock.us 10) ()
  in
  let stats = ref None and archived = ref None and after = ref None in
  driver world ~at:1 (fun ctx ->
      ignore (reserve ctx request ~passenger:"a" ~date:1);
      ignore (reserve ctx request ~passenger:"b" ~date:1);
      ignore (reserve ctx request ~passenger:"c" ~date:2);
      (match Rpc.call ctx ~to_:admin ~timeout:(Clock.ms 500) "stats" [] with
      | Rpc.Reply ("stats", [ record ]) ->
          stats :=
            Some
              ( Value.get_int (Value.field record "dates"),
                Value.get_int (Value.field record "reserved") )
      | _ -> ());
      (match Rpc.call ctx ~to_:admin ~timeout:(Clock.ms 500) "archive_date" [ Value.int 1 ] with
      | Rpc.Reply ("archived", [ Value.Int n ]) -> archived := Some n
      | _ -> ());
      match Rpc.call ctx ~to_:admin ~timeout:(Clock.ms 500) "stats" [] with
      | Rpc.Reply ("stats", [ record ]) ->
          after := Some (Value.get_int (Value.field record "reserved"))
      | _ -> ());
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check (option (pair int int))) "stats before" (Some (2, 3)) !stats;
  Alcotest.(check (option int)) "archived two seats" (Some 2) !archived;
  Alcotest.(check (option int)) "one seat left" (Some 1) !after

let test_admin_commands_rejected_on_request_port () =
  (* The reservation port's type does not include archive_date: the system
     discards it with a failure message (type checking, §3.2). *)
  let world = make_world () in
  let request, _admin =
    Flight.create_with_admin world ~at:0 ~flight:9 ~capacity:5 ~service_time:(Clock.us 10) ()
  in
  let got = ref "" in
  driver world ~at:1 (fun ctx ->
      match Rpc.call ctx ~to_:request ~timeout:(Clock.ms 500) "archive_date" [ Value.int 1 ] with
      | Rpc.Reply (command, _) -> got := command
      | Rpc.Failure_msg _ -> got := "failure"
      | Rpc.Timeout -> got := "timeout");
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check string) "rejected by port type" "failure" !got

let test_admin_port_unguessable () =
  (* Forging an admin port name with a wrong uid gets failure, not access. *)
  let world = make_world () in
  let _request, admin =
    Flight.create_with_admin world ~at:0 ~flight:9 ~capacity:5 ~service_time:(Clock.us 10) ()
  in
  let got = ref "" in
  driver world ~at:1 (fun ctx ->
      let forged = { admin with Port_name.uid = admin.Port_name.uid + 1000 } in
      match Rpc.call ctx ~to_:forged ~timeout:(Clock.ms 500) "stats" [] with
      | Rpc.Reply (command, _) -> got := command
      | Rpc.Failure_msg _ -> got := "failure"
      | Rpc.Timeout -> got := "timeout");
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check string) "forged name bounces" "failure" !got

(* ---- the other-airline policy ---- *)

let test_partner_cannot_take_last_seat () =
  let world = make_world () in
  let request, _ =
    Flight.create_with_admin world ~at:0 ~flight:9 ~capacity:2 ~partner_floor:1
      ~service_time:(Clock.us 10) ()
  in
  let log = ref [] in
  driver world ~at:1 (fun ctx ->
      let note outcome = log := outcome :: !log in
      note (reserve ctx request ~passenger:"partner:klm" ~date:1);  (* 1 of 2: fine *)
      note (reserve ctx request ~passenger:"partner:sas" ~date:1);  (* last seat: refused *)
      note (reserve ctx request ~passenger:"own-customer" ~date:1);  (* own airline: fine *)
      note (reserve ctx request ~passenger:"partner:klm" ~date:1)  (* idempotent still *));
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check (list string))
    "partner floor enforced"
    [ "ok"; "full"; "ok"; "pre_reserved" ]
    (List.rev !log)

let tests =
  [
    Alcotest.test_case "direct grants" `Quick test_acl_direct_grants;
    Alcotest.test_case "public permissions" `Quick test_acl_public;
    Alcotest.test_case "groups" `Quick test_acl_groups;
    Alcotest.test_case "permissions_of" `Quick test_acl_permissions_of;
    Alcotest.test_case "principals_with" `Quick test_acl_principals_with;
    QCheck_alcotest.to_alcotest prop_acl_grant_check;
    Alcotest.test_case "admin stats and archive" `Quick test_admin_stats_and_archive;
    Alcotest.test_case "admin commands rejected on request port" `Quick
      test_admin_commands_rejected_on_request_port;
    Alcotest.test_case "admin port unguessable" `Quick test_admin_port_unguessable;
    Alcotest.test_case "partner cannot take the last seat" `Quick
      test_partner_cannot_take_last_seat;
  ]
