(* The ordered-delivery channel: FIFO, exactly-once delivery built over
   the no-wait send (§3.4's "processes must coordinate to achieve it"). *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Ordered = Dcp_primitives.Ordered
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Network = Dcp_net.Network
module Link = Dcp_net.Link

let make_world ?(link = Link.perfect) () =
  Runtime.create_world ~seed:83 ~topology:(Topology.full_mesh ~n:2 link) ()

let fresh_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "ordered_%d" !i

let guardian world ~at body =
  let name = fresh_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* Wire a (sender at node 0) -> (receiver at node 1) pipeline carrying
   [count] integers; returns what the receiver delivered in order. *)
let run_pipeline ?link ?(window = 16) ~count () =
  let world = make_world ?link () in
  let received = ref [] in
  let port_cell = ref None in
  guardian world ~at:1 (fun ctx ->
      let receiver = Ordered.receiver ctx ~capacity:128 () in
      port_cell := Some (Ordered.receiver_port receiver);
      let rec pull () =
        match Ordered.recv receiver ~timeout:(Clock.s 2) () with
        | Some (Value.Int n) ->
            received := n :: !received;
            if List.length !received < count then pull ()
        | Some _ -> pull ()
        | None -> ()
      in
      pull ());
  let sent_transmissions = ref 0 in
  guardian world ~at:0 (fun ctx ->
      (* Wait for the receiver to publish its port. *)
      let rec wait_port () =
        match !port_cell with
        | Some port -> port
        | None ->
            Runtime.sleep ctx (Clock.ms 1);
            wait_port ()
      in
      let dest = wait_port () in
      let sender = Ordered.connect ctx ~to_:dest ~window ~retransmit_every:(Clock.ms 50) () in
      for i = 0 to count - 1 do
        Ordered.send sender (Value.int i)
      done;
      ignore (Ordered.flush sender ~timeout:(Clock.s 60));
      sent_transmissions := Ordered.messages_sent sender;
      Ordered.close sender);
  Runtime.run_for world (Clock.s 120);
  (List.rev !received, !sent_transmissions)

let test_fifo_on_perfect_link () =
  let received, transmissions = run_pipeline ~count:50 () in
  Alcotest.(check (list int)) "in order, exactly once" (List.init 50 Fun.id) received;
  Alcotest.(check int) "no retransmissions needed" 50 transmissions

let test_fifo_survives_reordering () =
  (* Heavy jitter: the raw network reorders aggressively; the channel must
     still deliver FIFO. *)
  let link = { Link.perfect with base_latency = Clock.ms 1; jitter = Clock.ms 30 } in
  let received, _ = run_pipeline ~link ~count:60 () in
  Alcotest.(check (list int)) "in order despite jitter" (List.init 60 Fun.id) received

let test_fifo_survives_loss_and_duplication () =
  let link = { (Link.lossy 0.25) with duplicate = 0.1; base_latency = Clock.ms 1 } in
  let received, transmissions = run_pipeline ~link ~count:40 () in
  Alcotest.(check (list int)) "in order despite loss+dup" (List.init 40 Fun.id) received;
  Alcotest.(check bool)
    (Printf.sprintf "retransmissions happened (%d > 40)" transmissions)
    true (transmissions > 40)

let test_window_blocks_sender () =
  (* With a dead receiver the window fills and send blocks; flush times
     out with data still in flight. *)
  let world = make_world () in
  let finished = ref false and in_flight = ref 0 in
  guardian world ~at:0 (fun ctx ->
      let dead = Port_name.make ~node:1 ~guardian:777 ~index:0 ~uid:888 in
      let sender = Ordered.connect ctx ~to_:dead ~window:4 ~retransmit_every:(Clock.ms 20) () in
      for i = 0 to 3 do
        Ordered.send sender (Value.int i)
      done;
      (* window now full; flush can't succeed *)
      let flushed = Ordered.flush sender ~timeout:(Clock.ms 300) in
      in_flight := Ordered.in_flight sender;
      Ordered.close sender;
      finished := not flushed);
  Runtime.run_for world (Clock.s 30);
  Alcotest.(check bool) "flush reported failure" true !finished;
  Alcotest.(check int) "window still full" 4 !in_flight

let test_two_channels_do_not_interfere () =
  let world = make_world () in
  let got_a = ref [] and got_b = ref [] in
  let port_a = ref None and port_b = ref None in
  let receiver_guardian cell out =
    guardian world ~at:1 (fun ctx ->
        let receiver = Ordered.receiver ctx () in
        cell := Some (Ordered.receiver_port receiver);
        let rec pull () =
          match Ordered.recv receiver ~timeout:(Clock.s 1) () with
          | Some (Value.Int n) ->
              out := n :: !out;
              if List.length !out < 10 then pull ()
          | Some _ | None -> ()
        in
        pull ())
  in
  receiver_guardian port_a got_a;
  receiver_guardian port_b got_b;
  guardian world ~at:0 (fun ctx ->
      let rec wait cell =
        match !cell with
        | Some port -> port
        | None ->
            Runtime.sleep ctx (Clock.ms 1);
            wait cell
      in
      let sa = Ordered.connect ctx ~to_:(wait port_a) () in
      let sb = Ordered.connect ctx ~to_:(wait port_b) () in
      for i = 0 to 9 do
        Ordered.send sa (Value.int i);
        Ordered.send sb (Value.int (100 + i))
      done;
      ignore (Ordered.flush sa ~timeout:(Clock.s 10));
      ignore (Ordered.flush sb ~timeout:(Clock.s 10));
      Ordered.close sa;
      Ordered.close sb);
  Runtime.run_for world (Clock.s 30);
  Alcotest.(check (list int)) "channel A" (List.init 10 Fun.id) (List.rev !got_a);
  Alcotest.(check (list int)) "channel B" (List.init 10 (fun i -> 100 + i)) (List.rev !got_b)

let prop_fifo_random_loss =
  QCheck2.Test.make ~name:"ordered channel is FIFO for random loss rates" ~count:8
    QCheck2.Gen.(pair (int_range 1 30) (float_range 0.0 0.4))
    (fun (count, loss) ->
      let link = { (Link.lossy loss) with base_latency = Clock.ms 1; jitter = Clock.ms 5 } in
      let received, _ = run_pipeline ~link ~count () in
      received = List.init count Fun.id)

let tests =
  [
    Alcotest.test_case "FIFO on perfect link" `Quick test_fifo_on_perfect_link;
    Alcotest.test_case "FIFO under jitter" `Quick test_fifo_survives_reordering;
    Alcotest.test_case "FIFO under loss+dup" `Quick test_fifo_survives_loss_and_duplication;
    Alcotest.test_case "window blocks sender" `Quick test_window_blocks_sender;
    Alcotest.test_case "channels independent" `Quick test_two_channels_do_not_interfere;
    QCheck_alcotest.to_alcotest prop_fifo_random_loss;
  ]
