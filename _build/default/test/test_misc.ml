(* Coverage fills: rendering paths, small helpers, and cross-module edges
   not exercised elsewhere. *)

open Dcp_wire
module Metrics = Dcp_sim.Metrics
module Trace = Dcp_sim.Trace
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let test_metrics_report_renders () =
  let r = Metrics.registry () in
  Metrics.incr (Metrics.counter r "events");
  Metrics.set_gauge (Metrics.gauge r "depth") 1.5;
  Metrics.observe (Metrics.histogram r "lat") 42.0;
  let rendered = Format.asprintf "%a" Metrics.pp_report r in
  List.iter
    (fun needle ->
      let found =
        let n = String.length rendered and m = String.length needle in
        let rec scan i =
          i + m <= n && (String.equal (String.sub rendered i m) needle || scan (i + 1))
        in
        scan 0
      in
      if not found then Alcotest.failf "report missing %S in %s" needle rendered)
    [ "events"; "depth"; "lat"; "p95" ]

let test_trace_clear () =
  let t = Trace.create ~capacity:4 () in
  Trace.record t ~at:1 ~category:"x" "one";
  Trace.clear t;
  Alcotest.(check int) "empty" 0 (Trace.size t);
  Alcotest.(check int) "total reset" 0 (Trace.total t);
  Trace.record t ~at:2 ~category:"x" "two";
  Alcotest.(check int) "usable after clear" 1 (Trace.size t)

let test_topology_custom () =
  let slow = { Link.perfect with base_latency = Clock.ms 9 } in
  let t =
    Topology.custom ~nodes:[ 10; 20 ] (fun ~src ~dst ->
        if src < dst then Link.perfect else slow)
  in
  Alcotest.(check bool) "asymmetric links allowed" true
    (Topology.link t ~src:10 ~dst:20 <> Topology.link t ~src:20 ~dst:10);
  Alcotest.(check bool) "membership" true (Topology.mem t 20);
  Alcotest.(check bool) "non-member" false (Topology.mem t 30)

let test_port_name_rendering_and_order () =
  let a = Port_name.make ~node:1 ~guardian:2 ~index:3 ~uid:4 in
  let b = Port_name.make ~node:1 ~guardian:2 ~index:3 ~uid:5 in
  Alcotest.(check string) "to_string" "port<n1.g2.p3#4>" (Port_name.to_string a);
  Alcotest.(check bool) "compare orders by uid last" true (Port_name.compare a b < 0);
  Alcotest.(check bool) "equal self" true (Port_name.equal a a);
  Alcotest.(check bool) "hash stable" true (Port_name.hash a = Port_name.hash a)

let test_vtype_overloaded_command () =
  let pt =
    [ Vtype.signature "ping" []; Vtype.signature "ping" [ Vtype.Tint ] ]
  in
  Alcotest.(check bool) "nullary form" true
    (Result.is_ok (Vtype.check_message pt ~command:"ping" []));
  Alcotest.(check bool) "unary form" true
    (Result.is_ok (Vtype.check_message pt ~command:"ping" [ Value.int 7 ]));
  Alcotest.(check bool) "binary form rejected" true
    (Result.is_error (Vtype.check_message pt ~command:"ping" [ Value.int 7; Value.int 8 ]))

let test_vtype_port_type_rendering () =
  let pt =
    [ Vtype.signature "reserve" [ Vtype.Tint ] ~replies:[ Vtype.reply "ok" [] ] ]
  in
  Alcotest.(check string) "pp_port_type"
    "port [reserve(int) replies (ok())]"
    (Format.asprintf "%a" Vtype.pp_port_type pt)

let test_codec_1979_config_shape () =
  Alcotest.(check bool) "24-bit max in" true (Codec.int_in_bounds Codec.config_1979 8_388_607);
  Alcotest.(check bool) "24-bit min in" true (Codec.int_in_bounds Codec.config_1979 (-8_388_608));
  Alcotest.(check bool) "63-bit config accepts max_int" true
    (Codec.int_in_bounds Codec.default_config max_int)

let test_value_token_port_accessors () =
  let p = Port_name.make ~node:0 ~guardian:1 ~index:0 ~uid:2 in
  let tok = Token.seal ~secret:9L ~owner:1 ~obj:5 in
  Alcotest.(check bool) "port roundtrip" true (Port_name.equal p (Value.get_port (Value.port p)));
  Alcotest.(check bool) "token roundtrip" true (Token.equal tok (Value.get_token (Value.token tok)));
  Alcotest.(check bool) "named accessor" true
    (Value.get_named (Value.Named ("t", Value.unit)) = ("t", Value.Unit))

let tests =
  [
    Alcotest.test_case "metrics report renders" `Quick test_metrics_report_renders;
    Alcotest.test_case "trace clear" `Quick test_trace_clear;
    Alcotest.test_case "topology custom" `Quick test_topology_custom;
    Alcotest.test_case "port name rendering/order" `Quick test_port_name_rendering_and_order;
    Alcotest.test_case "overloaded command" `Quick test_vtype_overloaded_command;
    Alcotest.test_case "port type rendering" `Quick test_vtype_port_type_rendering;
    Alcotest.test_case "1979 codec bounds" `Quick test_codec_1979_config_shape;
    Alcotest.test_case "value port/token accessors" `Quick test_value_token_port_accessors;
  ]
