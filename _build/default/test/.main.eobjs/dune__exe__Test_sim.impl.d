test/test_sim.ml: Alcotest Dcp_sim Float Format Int List QCheck2 QCheck_alcotest
