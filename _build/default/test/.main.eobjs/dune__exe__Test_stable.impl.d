test/test_stable.ml: Alcotest Dcp_rng Dcp_stable Hashtbl List QCheck2 QCheck_alcotest
