test/test_net.ml: Alcotest Bytes Char Dcp_net Dcp_rng Dcp_sim Float Int32 List QCheck2 QCheck_alcotest String
