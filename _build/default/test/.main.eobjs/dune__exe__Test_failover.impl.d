test/test_failover.ml: Alcotest Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire List Option Printf Value Vtype
