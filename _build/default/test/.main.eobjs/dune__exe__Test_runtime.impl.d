test/test_runtime.ml: Alcotest Codec Dcp_core Dcp_net Dcp_sim Dcp_stable Dcp_wire Int List Option Port_name String Value Vtype
