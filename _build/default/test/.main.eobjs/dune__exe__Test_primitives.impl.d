test/test_primitives.ml: Alcotest Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire Hashtbl List Port_name Printf Value Vtype
