test/test_rng.ml: Alcotest Array Dcp_rng Float Fun Int List QCheck2 QCheck_alcotest
