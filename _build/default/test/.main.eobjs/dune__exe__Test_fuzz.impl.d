test/test_fuzz.ml: Alcotest Bytes Char Codec Dcp_airline Dcp_core Dcp_net Dcp_rng Dcp_sim Dcp_wire Format List Option Port_name Printexc Printf String Value Vtype
