test/test_heartbeat.ml: Alcotest Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire List Printf String Vtype
