test/test_compute.ml: Alcotest Dcp_core Dcp_net Dcp_sim List Printf
