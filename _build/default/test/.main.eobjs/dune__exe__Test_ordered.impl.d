test/test_ordered.ml: Alcotest Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire Fun List Port_name Printf QCheck2 QCheck_alcotest Value
