test/test_core.ml: Alcotest Dcp_core Dcp_sim Dcp_wire Int List Option Port_name Vtype
