test/main.mli:
