test/test_misc.ml: Alcotest Codec Dcp_net Dcp_sim Dcp_wire Format List Port_name Result String Token Value Vtype
