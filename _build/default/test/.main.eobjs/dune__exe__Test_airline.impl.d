test/test_airline.ml: Alcotest Dcp_airline Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire List Option Printf String Value Vtype
