test/test_replica.ml: Alcotest Array Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire List Option Printf String Value
