test/test_two_phase.ml: Alcotest Dcp_airline Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_stable Dcp_wire List Printf String Value Vtype
