test/test_message.ml: Alcotest Codec Dcp_core Dcp_wire Format List Port_name QCheck2 QCheck_alcotest String Value
