test/test_chaos.ml: Alcotest Dcp_airline Dcp_bank Dcp_core Dcp_net Dcp_primitives Dcp_rng Dcp_sim Dcp_stable Dcp_wire Hashtbl List Option Printf String Value
