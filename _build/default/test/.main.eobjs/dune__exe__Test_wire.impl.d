test/test_wire.ml: Alcotest Codec Dcp_rng Dcp_wire Float Format Int64 List Option Port_name QCheck2 QCheck_alcotest Result String Token Transmit Value Vtype
