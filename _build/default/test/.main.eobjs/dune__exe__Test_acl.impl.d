test/test_acl.ml: Alcotest Dcp_airline Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire List Port_name Printf QCheck2 QCheck_alcotest Value
