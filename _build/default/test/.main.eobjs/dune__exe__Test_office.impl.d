test/test_office.ml: Alcotest Codec Dcp_core Dcp_net Dcp_office Dcp_primitives Dcp_sim Dcp_wire List Port_name Printf QCheck2 QCheck_alcotest String Value Vtype
