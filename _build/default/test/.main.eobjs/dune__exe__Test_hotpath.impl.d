test/test_hotpath.ml: Alcotest Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire Format Hashtbl List Option Port_name Printf String Value Vtype
