test/test_bank.ml: Alcotest Dcp_bank Dcp_core Dcp_net Dcp_primitives Dcp_sim Dcp_wire List Printf Value Vtype
