test/test_assoc.ml: Alcotest Codec Dcp_assoc Dcp_wire Float Hashtbl List Option QCheck2 QCheck_alcotest Result Transmit Value
