test/test_stat_queueing.ml: Alcotest Dcp_net Dcp_rng Dcp_sim List QCheck2 QCheck_alcotest String
