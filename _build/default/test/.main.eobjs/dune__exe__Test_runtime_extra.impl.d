test/test_runtime_extra.ml: Alcotest Dcp_core Dcp_net Dcp_sim Dcp_wire List Port_name Printf Value Vtype
