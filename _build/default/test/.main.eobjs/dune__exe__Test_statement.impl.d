test/test_statement.ml: Alcotest Dcp_bank Dcp_core Dcp_net Dcp_sim List Printf
