(* Two-phase commit: the protocol itself and the airline's atomic
   multi-leg itineraries built on it. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Rpc = Dcp_primitives.Rpc
module Two_phase = Dcp_primitives.Two_phase
module Flight = Dcp_airline.Flight
module Itinerary = Dcp_airline.Itinerary
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let make_world ?(n = 4) ?(link = Link.perfect) () =
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  Runtime.create_world ~seed:51 ~topology:(Topology.full_mesh ~n link) ~config ()

let fresh_driver_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "tpc_driver_%d" !i

let driver world ~at body =
  let name = fresh_driver_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* Fixture: two flights on two nodes, an itinerary guardian on a third. *)
let trip_fixture ?(capacity = 2) world =
  let f1 = Flight.create world ~at:0 ~flight:1 ~capacity ~service_time:(Clock.us 100) () in
  let f2 = Flight.create world ~at:1 ~flight:2 ~capacity ~service_time:(Clock.us 100) () in
  let itinerary = Itinerary.create world ~at:2 ~directory:[ (1, f1); (2, f2) ] () in
  (f1, f2, itinerary)

let book ctx itinerary ~command ~passenger legs =
  let legs = List.map (fun (f, d) -> Value.tuple [ Value.int f; Value.int d ]) legs in
  match
    Rpc.call ctx ~to_:itinerary ~timeout:(Clock.s 5) command
      [ Value.str passenger; Value.list legs ]
  with
  | Rpc.Reply (reply, args) -> (reply, args)
  | Rpc.Failure_msg reason -> ("failure", [ Value.str reason ])
  | Rpc.Timeout -> ("timeout", [])

let passengers_on ctx flight ~date =
  match Rpc.call ctx ~to_:flight ~timeout:(Clock.ms 500) "list_passengers" [ Value.int date ] with
  | Rpc.Reply ("info", [ Value.Listv names ]) -> List.map Value.get_str names
  | _ -> []

let test_trip_commits_both_legs () =
  let world = make_world () in
  let f1, f2, itinerary = trip_fixture world in
  let outcome = ref "" and on1 = ref [] and on2 = ref [] in
  driver world ~at:3 (fun ctx ->
      let reply, _ = book ctx itinerary ~command:"book_trip" ~passenger:"amy" [ (1, 7); (2, 8) ] in
      outcome := reply;
      on1 := passengers_on ctx f1 ~date:7;
      on2 := passengers_on ctx f2 ~date:8);
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check string) "booked" "booked" !outcome;
  Alcotest.(check (list string)) "leg 1 committed" [ "amy" ] !on1;
  Alcotest.(check (list string)) "leg 2 committed" [ "amy" ] !on2

let test_trip_atomic_when_one_leg_full () =
  let world = make_world () in
  let f1, f2, itinerary = trip_fixture ~capacity:1 world in
  let first = ref "" and second = ref "" and on1 = ref [] in
  driver world ~at:3 (fun ctx ->
      (* Fill flight 2 date 8 directly. *)
      (match
         Rpc.call ctx ~to_:f2 ~timeout:(Clock.ms 500) "reserve"
           [ Value.str "hog"; Value.int 8 ]
       with
      | Rpc.Reply ("ok", _) -> ()
      | _ -> Alcotest.fail "setup reserve failed");
      let reply, _ = book ctx itinerary ~command:"book_trip" ~passenger:"bea" [ (1, 7); (2, 8) ] in
      first := reply;
      (* Flight 1 must NOT hold a seat for bea: a new booking on the same
         (now free) leg succeeds for someone else up to capacity. *)
      on1 := passengers_on ctx f1 ~date:7;
      let reply, _ = book ctx itinerary ~command:"book_trip" ~passenger:"cal" [ (1, 7) ] in
      second := reply);
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check string) "aborted" "unavailable" !first;
  Alcotest.(check (list string)) "no dangling seat on leg 1" [] !on1;
  Alcotest.(check string) "seat still bookable" "booked" !second

let test_naive_baseline_strands () =
  let world = make_world () in
  let f1, f2, itinerary = trip_fixture ~capacity:1 world in
  ignore f1;
  let outcome = ref ("", []) in
  driver world ~at:3 (fun ctx ->
      (match
         Rpc.call ctx ~to_:f2 ~timeout:(Clock.ms 500) "reserve"
           [ Value.str "hog"; Value.int 8 ]
       with
      | Rpc.Reply ("ok", _) -> ()
      | _ -> Alcotest.fail "setup reserve failed");
      outcome := book ctx itinerary ~command:"book_naive" ~passenger:"dot" [ (1, 7); (2, 8) ]);
  Runtime.run_for world (Clock.s 5);
  match !outcome with
  | "stranded", [ Value.Int 1 ] -> ()
  | reply, _ -> Alcotest.failf "expected stranded(1), got %s" reply

let test_contending_trips_no_overbooking () =
  let world = make_world () in
  let f1, _, itinerary = trip_fixture ~capacity:3 world in
  let booked = ref 0 and refused = ref 0 in
  (* Eight passengers race for 3 seats on the shared leg (1, 7). *)
  for i = 1 to 8 do
    driver world ~at:3 (fun ctx ->
        let reply, _ =
          book ctx itinerary ~command:"book_trip"
            ~passenger:(Printf.sprintf "p%d" i)
            [ (1, 7); (2, i) ]
        in
        match reply with
        | "booked" -> incr booked
        | _ -> incr refused)
  done;
  let seats = ref [] in
  Runtime.run_for world (Clock.s 10);
  driver world ~at:3 (fun ctx -> seats := passengers_on ctx f1 ~date:7);
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check int) "exactly capacity booked" 3 !booked;
  Alcotest.(check int) "rest refused" 5 !refused;
  Alcotest.(check int) "no overbooking on the contended leg" 3 (List.length !seats)

let test_coordinator_crash_after_decision () =
  (* Crash the itinerary node right after the decision is logged but
     (likely) before announcements are acked; recovery must re-announce so
     participants converge, and the booking must be visible. *)
  let world = make_world () in
  let f1, f2, itinerary = trip_fixture world in
  let outcome = ref "" in
  driver world ~at:3 (fun ctx ->
      let reply, _ = book ctx itinerary ~command:"book_trip" ~passenger:"eve" [ (1, 7); (2, 8) ] in
      outcome := reply);
  (* Let phase 1 finish and the decision land, then crash. *)
  Runtime.run_for world (Clock.ms 2);
  Runtime.crash_node world 2;
  Runtime.run_for world (Clock.s 1);
  Runtime.restart_node world 2;
  Runtime.run_for world (Clock.s 10);
  let holds_left =
    List.fold_left
      (fun acc g ->
        let store = Runtime.guardian_store g in
        if Dcp_stable.Store.is_crashed store then acc
        else
          Dcp_stable.Store.fold store ~init:acc ~f:(fun ~key _ acc ->
              if String.length key > 2 && String.equal (String.sub key 0 2) "h:" then acc + 1
              else acc))
      0
      (Runtime.find_guardians world ~def_name:Flight.def_name)
  in
  let seats = ref ([], []) in
  driver world ~at:3 (fun ctx ->
      seats := (passengers_on ctx f1 ~date:7, passengers_on ctx f2 ~date:8));
  Runtime.run_for world (Clock.s 1);
  let on1, on2 = !seats in
  Alcotest.(check int) "no dangling holds" 0 holds_left;
  Alcotest.(check bool)
    "both legs agree" true
    ((on1 = [ "eve" ] && on2 = [ "eve" ]) || (on1 = [] && on2 = []));
  (* The coordinator logged and recovered; no decision left unacked. *)
  List.iter
    (fun g ->
      Alcotest.(check int) "all decisions acked" 0
        (Two_phase.pending_decisions (Runtime.guardian_store g)))
    (Runtime.find_guardians world ~def_name:Itinerary.def_name)

let test_participant_crash_holding_seat () =
  (* A participant crashes after prepare; on recovery it still holds the
     tentative seat (logged) and answers the commit. *)
  let world = make_world () in
  let f1, f2, itinerary = trip_fixture world in
  ignore f2;
  let outcome = ref "" in
  driver world ~at:3 (fun ctx ->
      let reply, _ = book ctx itinerary ~command:"book_trip" ~passenger:"fay" [ (1, 7); (2, 8) ] in
      outcome := reply);
  (* Crash flight 1's node in the thick of the protocol, restart quickly;
     the coordinator's announce retries bridge the outage. *)
  Runtime.run_for world (Clock.us 500);
  Runtime.crash_node world 0;
  Runtime.run_for world (Clock.ms 100);
  Runtime.restart_node world 0;
  Runtime.run_for world (Clock.s 10);
  let seats = ref [] in
  driver world ~at:3 (fun ctx -> seats := passengers_on ctx f1 ~date:7);
  Runtime.run_for world (Clock.s 1);
  match !outcome with
  | "booked" -> Alcotest.(check (list string)) "seat survived the crash" [ "fay" ] !seats
  | "unavailable" -> Alcotest.(check (list string)) "clean abort" [] !seats
  | other -> Alcotest.failf "unexpected outcome %s" other

let test_duplicate_prepare_idempotent () =
  let world = make_world ~n:2 () in
  let flight = Flight.create world ~at:0 ~flight:1 ~capacity:5 ~service_time:(Clock.us 10) () in
  let votes = ref [] in
  driver world ~at:1 (fun ctx ->
      let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
      let payload = Value.tuple [ Value.str "gil"; Value.int 3 ] in
      let send_prepare () =
        Runtime.send ctx ~to_:flight
          ~reply_to:(Dcp_core.Port.name reply)
          "prepare"
          [ Value.int 777000; Value.int 424242; payload ]
      in
      send_prepare ();
      send_prepare ();
      for _ = 1 to 2 do
        match Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ] with
        | `Msg (_, msg) -> votes := msg.Dcp_core.Message.command :: !votes
        | `Timeout -> ()
      done;
      (* both votes commit, but only one hold exists *)
      ());
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check (list string)) "same vote twice" [ "vote_commit"; "vote_commit" ] !votes;
  let holds =
    List.fold_left
      (fun acc g ->
        Dcp_stable.Store.fold (Runtime.guardian_store g) ~init:acc ~f:(fun ~key _ acc ->
            if String.length key > 2 && String.equal (String.sub key 0 2) "h:" then acc + 1
            else acc))
      0
      (Runtime.find_guardians world ~def_name:Flight.def_name)
  in
  Alcotest.(check int) "single hold despite duplicate prepare" 1 holds

let tests =
  [
    Alcotest.test_case "trip commits both legs" `Quick test_trip_commits_both_legs;
    Alcotest.test_case "atomic abort when a leg is full" `Quick test_trip_atomic_when_one_leg_full;
    Alcotest.test_case "naive baseline strands passengers" `Quick test_naive_baseline_strands;
    Alcotest.test_case "contention: no overbooking" `Quick test_contending_trips_no_overbooking;
    Alcotest.test_case "coordinator crash after decision" `Quick test_coordinator_crash_after_decision;
    Alcotest.test_case "participant crash while prepared" `Quick test_participant_crash_holding_seat;
    Alcotest.test_case "duplicate prepare idempotent" `Quick test_duplicate_prepare_idempotent;
  ]
