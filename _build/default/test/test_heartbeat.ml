(* The heartbeat failure detector: suspicion after consecutive timeouts,
   recovery notices, and the inherent fallibility under slow links. *)

module Runtime = Dcp_core.Runtime
module Primordial = Dcp_core.Primordial
module Message = Dcp_core.Message
module Heartbeat = Dcp_primitives.Heartbeat
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link
open Dcp_wire

let make_world ?(link = Link.perfect) () =
  let world = Runtime.create_world ~seed:37 ~topology:(Topology.full_mesh ~n:2 link) () in
  Primordial.install world;
  world

let fresh_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "hb_driver_%d" !i

let driver world ~at body =
  let name = fresh_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* Watch node 1 from node 0 and log detector notifications with times. *)
let run_detector world ~script =
  let events = ref [] in
  driver world ~at:0 (fun ctx ->
      let notify = Runtime.new_port ctx ~capacity:32 [ Vtype.wildcard ] in
      let watcher =
        Heartbeat.watch_node ctx ~node:1
          ~notify:(Dcp_core.Port.name notify)
          ~period:(Clock.ms 100) ~ping_timeout:(Clock.ms 50) ~misses:3 ()
      in
      ignore (Runtime.spawn ctx ~name:"script" (fun () -> script ctx watcher));
      let rec listen () =
        match Runtime.receive ctx ~timeout:(Clock.s 20) [ notify ] with
        | `Msg (_, msg) ->
            events := (msg.Message.command, Runtime.ctx_now ctx) :: !events;
            listen ()
        | `Timeout -> ()
      in
      listen ());
  Runtime.run_for world (Clock.s 30);
  List.rev !events

let test_detects_crash_and_recovery () =
  let world = make_world () in
  let events =
    run_detector world ~script:(fun ctx watcher ->
        Runtime.sleep ctx (Clock.s 1);
        Runtime.crash_node world 1;
        Runtime.sleep ctx (Clock.s 2);
        Runtime.restart_node world 1;
        Runtime.sleep ctx (Clock.s 2);
        Heartbeat.stop watcher)
  in
  match events with
  | [ ("peer_down", down_at); ("peer_up", up_at) ] ->
      Alcotest.(check bool) "down detected after the crash" true (down_at > Clock.s 1);
      Alcotest.(check bool) "down within ~5 periods of the crash" true
        (down_at < Clock.s 1 + Clock.ms 600);
      Alcotest.(check bool) "up detected after the restart" true (up_at > Clock.s 3)
  | other ->
      Alcotest.failf "unexpected notifications: %s" (String.concat "," (List.map fst other))

let test_no_false_alarm_on_healthy_peer () =
  let world = make_world () in
  let events =
    run_detector world ~script:(fun ctx watcher ->
        Runtime.sleep ctx (Clock.s 5);
        Heartbeat.stop watcher)
  in
  Alcotest.(check int) "silence" 0 (List.length events)

let test_is_suspected_view () =
  let world = make_world () in
  let verdicts = ref [] in
  driver world ~at:0 (fun ctx ->
      let notify = Runtime.new_port ctx ~capacity:32 [ Vtype.wildcard ] in
      let watcher =
        Heartbeat.watch_node ctx ~node:1
          ~notify:(Dcp_core.Port.name notify)
          ~period:(Clock.ms 100) ~ping_timeout:(Clock.ms 50) ~misses:2 ()
      in
      Runtime.sleep ctx (Clock.ms 500);
      verdicts := Heartbeat.is_suspected watcher :: !verdicts;
      Runtime.crash_node world 1;
      Runtime.sleep ctx (Clock.s 1);
      verdicts := Heartbeat.is_suspected watcher :: !verdicts;
      Heartbeat.stop watcher);
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check (list bool)) "healthy then suspected" [ true; false ] !verdicts

let test_false_suspicion_on_slow_link () =
  (* A link slower than the ping timeout: the detector *wrongly* suspects a
     perfectly healthy peer — §3.5's "nothing is known about the true state
     of affairs", demonstrated. *)
  let slow = { Link.perfect with base_latency = Clock.ms 80 } in
  let world = make_world ~link:slow () in
  let events =
    run_detector world ~script:(fun ctx watcher ->
        Runtime.sleep ctx (Clock.s 3);
        Heartbeat.stop watcher)
  in
  Alcotest.(check bool) "false positive raised" true
    (List.exists (fun (c, _) -> String.equal c "peer_down") events)

let tests =
  [
    Alcotest.test_case "detects crash and recovery" `Quick test_detects_crash_and_recovery;
    Alcotest.test_case "no false alarm when healthy" `Quick test_no_false_alarm_on_healthy_peer;
    Alcotest.test_case "is_suspected view" `Quick test_is_suspected_view;
    Alcotest.test_case "false suspicion on slow link" `Quick test_false_suspicion_on_slow_link;
  ]
