(* Node processors: the semaphore and the compute primitive, §1's
   Advantage 1 (contention) made measurable. *)

module Runtime = Dcp_core.Runtime
module Sync = Dcp_core.Sync
module Process = Dcp_core.Process
module Engine = Dcp_sim.Engine
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

(* ---- semaphore ---- *)

let test_semaphore_counts () =
  let e = Engine.create () in
  let s = Sync.semaphore e 2 in
  Alcotest.(check int) "both free" 2 (Sync.available s);
  let finished = ref [] in
  for i = 1 to 4 do
    ignore
      (Process.spawn e ~name:(string_of_int i) (fun () ->
           Sync.with_unit s (fun () ->
               Process.sleep e (Clock.ms 10);
               finished := (i, Engine.now e) :: !finished)))
  done;
  Engine.run e;
  (* 4 jobs, 2 units, 10ms each: two waves, finishing at 10 and 20. *)
  let times = List.sort compare (List.map snd !finished) in
  Alcotest.(check (list int)) "two waves" [ Clock.ms 10; Clock.ms 10; Clock.ms 20; Clock.ms 20 ] times;
  Alcotest.(check int) "all free after" 2 (Sync.available s)

let test_semaphore_release_over () =
  let e = Engine.create () in
  let s = Sync.semaphore e 1 in
  Alcotest.check_raises "over-release" (Invalid_argument "Sync.release: all units already free")
    (fun () -> Sync.release s)

let test_semaphore_needs_positive () =
  let e = Engine.create () in
  Alcotest.check_raises "zero units" (Invalid_argument "Sync.semaphore: need at least one unit")
    (fun () -> ignore (Sync.semaphore e 0))

(* ---- compute contention ---- *)

let make_world ~processors =
  let config = { Runtime.default_config with processors_per_node = processors } in
  Runtime.create_world ~seed:91 ~topology:(Topology.full_mesh ~n:2 Link.perfect) ~config ()

let fresh_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "compute_%d" !i

let guardian world ~at body =
  let name = fresh_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* [jobs] parallel 10ms computations on a node with [processors] CPUs:
   makespan = ceil(jobs/processors) * 10ms. *)
let makespan ~processors ~jobs =
  let world = make_world ~processors in
  let done_count = ref 0 and finish = ref 0 in
  for _ = 1 to jobs do
    guardian world ~at:0 (fun ctx ->
        Runtime.compute ctx (Clock.ms 10);
        incr done_count;
        if !done_count = jobs then finish := Runtime.now world)
  done;
  Runtime.run_for world (Clock.s 10);
  Alcotest.(check int) "all ran" jobs !done_count;
  !finish

let test_compute_parallel_within_limit () =
  Alcotest.(check int) "4 jobs, 4 cpus: one wave" (Clock.ms 10) (makespan ~processors:4 ~jobs:4)

let test_compute_queues_beyond_limit () =
  Alcotest.(check int) "8 jobs, 2 cpus: four waves" (Clock.ms 40) (makespan ~processors:2 ~jobs:8)

let test_compute_single_processor_serializes () =
  Alcotest.(check int) "3 jobs, 1 cpu" (Clock.ms 30) (makespan ~processors:1 ~jobs:3)

let test_sleep_does_not_use_cpu () =
  (* Sleeps overlap freely even on a single processor. *)
  let world = make_world ~processors:1 in
  let done_count = ref 0 and finish = ref 0 in
  for _ = 1 to 5 do
    guardian world ~at:0 (fun ctx ->
        Runtime.sleep ctx (Clock.ms 10);
        incr done_count;
        if !done_count = 5 then finish := Runtime.now world)
  done;
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check int) "sleeps overlap" (Clock.ms 10) !finish

let test_crash_resets_processors () =
  let world = make_world ~processors:2 in
  guardian world ~at:0 (fun ctx ->
      (* grab a CPU forever *)
      Runtime.compute ctx (Clock.s 100));
  Runtime.run_for world (Clock.ms 1);
  Alcotest.(check int) "one busy" 1 (Runtime.idle_processors world 0);
  Runtime.crash_node world 0;
  Runtime.restart_node world 0;
  Alcotest.(check int) "pool reset after crash" 2 (Runtime.idle_processors world 0)

let test_compute_contention_across_guardians () =
  (* Two different guardians on one node share its processors — the
     centralized layout's hidden coupling. *)
  let world = make_world ~processors:1 in
  let order = ref [] in
  guardian world ~at:0 (fun ctx ->
      Runtime.compute ctx (Clock.ms 10);
      order := "first" :: !order);
  guardian world ~at:0 (fun ctx ->
      Runtime.compute ctx (Clock.ms 10);
      order := ("second@" ^ string_of_int (Runtime.now world / 1_000_000)) :: !order);
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check (list string)) "serialized across guardians"
    [ "second@20"; "first" ]
    !order

let tests =
  [
    Alcotest.test_case "semaphore counts" `Quick test_semaphore_counts;
    Alcotest.test_case "semaphore over-release" `Quick test_semaphore_release_over;
    Alcotest.test_case "semaphore positive" `Quick test_semaphore_needs_positive;
    Alcotest.test_case "parallel within limit" `Quick test_compute_parallel_within_limit;
    Alcotest.test_case "queues beyond limit" `Quick test_compute_queues_beyond_limit;
    Alcotest.test_case "single processor serializes" `Quick test_compute_single_processor_serializes;
    Alcotest.test_case "sleep is not compute" `Quick test_sleep_does_not_use_cpu;
    Alcotest.test_case "crash resets processors" `Quick test_crash_resets_processors;
    Alcotest.test_case "contention across guardians" `Quick test_compute_contention_across_guardians;
  ]
