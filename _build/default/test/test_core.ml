(* Core building blocks below the runtime: processes, ports, sync. *)

open Dcp_wire
module Process = Dcp_core.Process
module Port = Dcp_core.Port
module Sync = Dcp_core.Sync
module Message = Dcp_core.Message
module Engine = Dcp_sim.Engine
module Clock = Dcp_sim.Clock

let msg command = Message.make ~sent_at:0 command []

(* ---- Process ---- *)

let test_process_runs () =
  let e = Engine.create () in
  let ran = ref false in
  let p = Process.spawn e ~name:"t" (fun () -> ran := true) in
  Alcotest.(check bool) "not yet" false !ran;
  Engine.run e;
  Alcotest.(check bool) "ran" true !ran;
  Alcotest.(check bool) "finished" true (Process.state p = Process.Finished)

let test_process_sleep_advances_clock () =
  let e = Engine.create () in
  let woke_at = ref 0 in
  ignore
    (Process.spawn e ~name:"sleeper" (fun () ->
         Process.sleep e (Clock.ms 5);
         woke_at := Engine.now e));
  Engine.run e;
  Alcotest.(check int) "slept 5ms" (Clock.ms 5) !woke_at

let test_process_interleaving () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag = log := tag :: !log in
  ignore
    (Process.spawn e ~name:"a" (fun () ->
         note "a1";
         Process.sleep e (Clock.ms 2);
         note "a2"));
  ignore
    (Process.spawn e ~name:"b" (fun () ->
         note "b1";
         Process.sleep e (Clock.ms 1);
         note "b2"));
  Engine.run e;
  Alcotest.(check (list string)) "interleaved by time" [ "a1"; "b1"; "b2"; "a2" ] (List.rev !log)

let test_process_kill_before_start () =
  let e = Engine.create () in
  let ran = ref false in
  let p = Process.spawn e ~name:"t" (fun () -> ran := true) in
  Process.kill p;
  Engine.run e;
  Alcotest.(check bool) "never ran" false !ran;
  Alcotest.(check bool) "dead" true (Process.state p = Process.Dead)

let test_process_kill_while_blocked () =
  let e = Engine.create () in
  let resumed = ref false in
  let p =
    Process.spawn e ~name:"t" (fun () ->
        Process.sleep e (Clock.ms 10);
        resumed := true)
  in
  ignore (Engine.schedule e ~at:(Clock.ms 1) (fun () -> Process.kill p));
  Engine.run e;
  Alcotest.(check bool) "sleep never returns" false !resumed

let test_process_exception_recorded () =
  let e = Engine.create () in
  let p = Process.spawn e ~name:"t" (fun () -> failwith "boom") in
  Engine.run e;
  Alcotest.(check bool) "finished" true (Process.state p = Process.Finished);
  match Process.failure p with
  | Some (Failure reason) -> Alcotest.(check string) "reason" "boom" reason
  | _ -> Alcotest.fail "expected recorded failure"

let test_process_self () =
  let e = Engine.create () in
  let name = ref "" in
  ignore
    (Process.spawn e ~name:"me" (fun () ->
         match Process.self () with
         | Some p -> name := Process.name p
         | None -> ()));
  Engine.run e;
  Alcotest.(check string) "self visible" "me" !name;
  Alcotest.(check (option string)) "no self outside" None (Option.map Process.name (Process.self ()))

let test_process_double_resume_ignored () =
  let e = Engine.create () in
  let wakeups = ref 0 in
  ignore
    (Process.spawn e ~name:"t" (fun () ->
         Process.suspend (fun resume ->
             ignore (Engine.schedule_after e ~delay:1 (fun () -> resume ()));
             ignore (Engine.schedule_after e ~delay:2 (fun () -> resume ())));
         incr wakeups));
  Engine.run e;
  Alcotest.(check int) "woken exactly once" 1 !wakeups

(* ---- Port ---- *)

let mk_port ?(capacity = 4) () =
  Port.create
    ~name:(Port_name.make ~node:0 ~guardian:0 ~index:0 ~uid:1)
    ~ptype:[ Vtype.wildcard ] ~capacity

let test_port_queueing () =
  let p = mk_port () in
  Alcotest.(check bool) "queued" true (Port.enqueue p (msg "a") = `Queued);
  Alcotest.(check int) "one queued" 1 (Port.queued p)

let test_port_capacity () =
  let p = mk_port ~capacity:2 () in
  ignore (Port.enqueue p (msg "a"));
  ignore (Port.enqueue p (msg "b"));
  Alcotest.(check bool) "full" true (Port.enqueue p (msg "c") = `Full)

let test_port_closed () =
  let p = mk_port () in
  ignore (Port.enqueue p (msg "a"));
  Port.close p;
  Alcotest.(check bool) "closed" true (Port.enqueue p (msg "b") = `Closed);
  Alcotest.(check int) "buffer dropped" 0 (Port.queued p);
  Port.reopen p;
  Alcotest.(check bool) "reopened accepts" true (Port.enqueue p (msg "c") = `Queued)

let test_port_receive_immediate () =
  let e = Engine.create () in
  let p = mk_port () in
  ignore (Port.enqueue p (msg "hello"));
  let got = ref "" in
  ignore
    (Process.spawn e ~name:"r" (fun () ->
         match Port.receive e ~ports:[ p ] ~timeout:None with
         | `Msg (_, m) -> got := m.Message.command
         | `Timeout -> ()));
  Engine.run e;
  Alcotest.(check string) "got queued message" "hello" !got

let test_port_receive_blocks_until_enqueue () =
  let e = Engine.create () in
  let p = mk_port () in
  let got = ref "" in
  ignore
    (Process.spawn e ~name:"r" (fun () ->
         match Port.receive e ~ports:[ p ] ~timeout:None with
         | `Msg (_, m) -> got := m.Message.command
         | `Timeout -> ()));
  ignore
    (Engine.schedule e ~at:(Clock.ms 3) (fun () ->
         Alcotest.(check bool) "handed to waiter" true (Port.enqueue p (msg "late") = `Delivered)));
  Engine.run e;
  Alcotest.(check string) "woke with message" "late" !got

let test_port_priority_order () =
  let e = Engine.create () in
  let high = mk_port () in
  let low =
    Port.create
      ~name:(Port_name.make ~node:0 ~guardian:0 ~index:1 ~uid:2)
      ~ptype:[ Vtype.wildcard ] ~capacity:4
  in
  ignore (Port.enqueue low (msg "low"));
  ignore (Port.enqueue high (msg "high"));
  let got = ref "" in
  ignore
    (Process.spawn e ~name:"r" (fun () ->
         match Port.receive e ~ports:[ high; low ] ~timeout:None with
         | `Msg (_, m) -> got := m.Message.command
         | `Timeout -> ()));
  Engine.run e;
  Alcotest.(check string) "earlier port wins" "high" !got

let test_port_two_waiters_fifo () =
  let e = Engine.create () in
  let p = mk_port () in
  let order = ref [] in
  let receiver tag =
    ignore
      (Process.spawn e ~name:tag (fun () ->
           match Port.receive e ~ports:[ p ] ~timeout:None with
           | `Msg (_, m) -> order := (tag, m.Message.command) :: !order
           | `Timeout -> ()))
  in
  receiver "first";
  ignore (Engine.schedule e ~at:1 (fun () -> receiver "second"));
  ignore (Engine.schedule e ~at:(Clock.ms 1) (fun () -> ignore (Port.enqueue p (msg "m1"))));
  ignore (Engine.schedule e ~at:(Clock.ms 2) (fun () -> ignore (Port.enqueue p (msg "m2"))));
  Engine.run e;
  Alcotest.(check (list (pair string string)))
    "FIFO handoff"
    [ ("first", "m1"); ("second", "m2") ]
    (List.rev !order)

let test_port_timeout_then_late_message_stays () =
  let e = Engine.create () in
  let p = mk_port () in
  let outcome = ref "" in
  ignore
    (Process.spawn e ~name:"r" (fun () ->
         match Port.receive e ~ports:[ p ] ~timeout:(Some (Clock.ms 1)) with
         | `Msg _ -> outcome := "msg"
         | `Timeout -> outcome := "timeout"));
  ignore (Engine.schedule e ~at:(Clock.ms 5) (fun () -> ignore (Port.enqueue p (msg "late"))));
  Engine.run e;
  Alcotest.(check string) "timed out" "timeout" !outcome;
  Alcotest.(check int) "late message buffered for next receive" 1 (Port.queued p)

let test_try_receive () =
  let p = mk_port () in
  Alcotest.(check bool) "empty" true (Port.try_receive ~ports:[ p ] = None);
  ignore (Port.enqueue p (msg "x"));
  match Port.try_receive ~ports:[ p ] with
  | Some (_, m) -> Alcotest.(check string) "popped" "x" m.Message.command
  | None -> Alcotest.fail "expected message"

(* ---- Sync ---- *)

let test_mutex_exclusion () =
  let e = Engine.create () in
  let m = Sync.mutex e in
  let in_critical = ref 0 and max_seen = ref 0 in
  let worker () =
    Sync.with_lock m (fun () ->
        incr in_critical;
        max_seen := Int.max !max_seen !in_critical;
        Process.sleep e (Clock.ms 1);
        decr in_critical)
  in
  for i = 1 to 5 do
    ignore (Process.spawn e ~name:("w" ^ string_of_int i) worker)
  done;
  Engine.run e;
  Alcotest.(check int) "never two inside" 1 !max_seen;
  Alcotest.(check bool) "released at end" false (Sync.locked m)

let test_mutex_unlock_unheld () =
  let e = Engine.create () in
  let m = Sync.mutex e in
  Alcotest.check_raises "unlock unheld" (Invalid_argument "Sync.unlock: mutex not held")
    (fun () -> Sync.unlock m)

let test_condition_signal () =
  let e = Engine.create () in
  let m = Sync.mutex e in
  let c = Sync.condition e in
  let ready = ref false and observed = ref false in
  ignore
    (Process.spawn e ~name:"waiter" (fun () ->
         Sync.lock m;
         while not !ready do
           Sync.wait c m
         done;
         observed := true;
         Sync.unlock m));
  ignore
    (Process.spawn e ~name:"signaller" (fun () ->
         Process.sleep e (Clock.ms 2);
         Sync.lock m;
         ready := true;
         Sync.signal c;
         Sync.unlock m));
  Engine.run e;
  Alcotest.(check bool) "waiter saw the change" true !observed

let test_condition_broadcast () =
  let e = Engine.create () in
  let m = Sync.mutex e in
  let c = Sync.condition e in
  let released = ref 0 in
  for i = 1 to 3 do
    ignore
      (Process.spawn e ~name:("w" ^ string_of_int i) (fun () ->
           Sync.lock m;
           Sync.wait c m;
           incr released;
           Sync.unlock m))
  done;
  ignore
    (Process.spawn e ~name:"b" (fun () ->
         Process.sleep e (Clock.ms 1);
         Sync.broadcast c));
  Engine.run e;
  Alcotest.(check int) "all released" 3 !released

let test_keyed_lock_parallel_keys () =
  let e = Engine.create () in
  let kl = Sync.keyed_lock e in
  let finished_at = ref [] in
  let worker key =
    ignore
      (Process.spawn e ~name:(string_of_int key) (fun () ->
           Sync.with_key kl key (fun () ->
               Process.sleep e (Clock.ms 10);
               finished_at := (key, Engine.now e) :: !finished_at)))
  in
  worker 1;
  worker 2;
  (* different keys overlap: both should finish at 10ms *)
  Engine.run e;
  List.iter
    (fun (_, t) -> Alcotest.(check int) "parallel finish" (Clock.ms 10) t)
    !finished_at

let test_keyed_lock_serializes_same_key () =
  let e = Engine.create () in
  let kl = Sync.keyed_lock e in
  let finished_at = ref [] in
  for _ = 1 to 2 do
    ignore
      (Process.spawn e ~name:"w" (fun () ->
           Sync.with_key kl 42 (fun () ->
               Process.sleep e (Clock.ms 10);
               finished_at := Engine.now e :: !finished_at)))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "serialized finishes" [ Clock.ms 20; Clock.ms 10 ] !finished_at

let test_keyed_lock_end_unheld () =
  let e = Engine.create () in
  let kl = Sync.keyed_lock e in
  Alcotest.check_raises "end unheld" (Invalid_argument "Sync.end_request: key not held")
    (fun () -> Sync.end_request kl 3)

let tests =
  [
    Alcotest.test_case "process runs" `Quick test_process_runs;
    Alcotest.test_case "process sleep" `Quick test_process_sleep_advances_clock;
    Alcotest.test_case "process interleaving" `Quick test_process_interleaving;
    Alcotest.test_case "kill before start" `Quick test_process_kill_before_start;
    Alcotest.test_case "kill while blocked" `Quick test_process_kill_while_blocked;
    Alcotest.test_case "exception recorded" `Quick test_process_exception_recorded;
    Alcotest.test_case "process self" `Quick test_process_self;
    Alcotest.test_case "double resume ignored" `Quick test_process_double_resume_ignored;
    Alcotest.test_case "port queueing" `Quick test_port_queueing;
    Alcotest.test_case "port capacity" `Quick test_port_capacity;
    Alcotest.test_case "port close/reopen" `Quick test_port_closed;
    Alcotest.test_case "receive immediate" `Quick test_port_receive_immediate;
    Alcotest.test_case "receive blocks" `Quick test_port_receive_blocks_until_enqueue;
    Alcotest.test_case "port priority" `Quick test_port_priority_order;
    Alcotest.test_case "waiters FIFO" `Quick test_port_two_waiters_fifo;
    Alcotest.test_case "timeout then late message" `Quick test_port_timeout_then_late_message_stays;
    Alcotest.test_case "try_receive" `Quick test_try_receive;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "mutex unlock unheld" `Quick test_mutex_unlock_unheld;
    Alcotest.test_case "condition signal" `Quick test_condition_signal;
    Alcotest.test_case "condition broadcast" `Quick test_condition_broadcast;
    Alcotest.test_case "keyed lock parallel keys" `Quick test_keyed_lock_parallel_keys;
    Alcotest.test_case "keyed lock same key" `Quick test_keyed_lock_serializes_same_key;
    Alcotest.test_case "keyed lock end unheld" `Quick test_keyed_lock_end_unheld;
  ]
