(* §3.3's worked examples: associative memory and complex numbers. *)

open Dcp_wire
module Assoc_mem = Dcp_assoc.Assoc_mem
module Complex_rep = Dcp_assoc.Complex_rep

let test_assoc_basics_both_reps () =
  List.iter
    (fun rep ->
      let am = Assoc_mem.create ~rep in
      Assoc_mem.add_item am ~key:"b" (Value.int 2);
      Assoc_mem.add_item am ~key:"a" (Value.int 1);
      Assoc_mem.add_item am ~key:"c" (Value.int 3);
      Alcotest.(check int) "size" 3 (Assoc_mem.size am);
      Alcotest.(check bool) "mem" true (Assoc_mem.mem am ~key:"b");
      Alcotest.(check (option string)) "get"
        (Some "2")
        (Option.map Value.to_string (Assoc_mem.get_item am ~key:"b"));
      Assoc_mem.add_item am ~key:"b" (Value.int 20);
      Alcotest.(check (option string)) "replace"
        (Some "20")
        (Option.map Value.to_string (Assoc_mem.get_item am ~key:"b"));
      Assoc_mem.remove_item am ~key:"a";
      Alcotest.(check bool) "removed" false (Assoc_mem.mem am ~key:"a");
      Alcotest.(check (list string)) "sorted keys" [ "b"; "c" ]
        (List.map fst (Assoc_mem.to_alist am)))
    [ Assoc_mem.Hash; Assoc_mem.Tree ]

let test_assoc_cross_rep_transfer () =
  (* Node A (hash) encodes; node B (tree) decodes: §3.3 verbatim. *)
  let on_a = Assoc_mem.create ~rep:Assoc_mem.Hash in
  List.iter
    (fun (k, v) -> Assoc_mem.add_item on_a ~key:k (Value.int v))
    [ ("x", 1); ("y", 2); ("z", 3) ];
  let wire = Transmit.to_value Assoc_mem.transmit_hash on_a in
  let encoded = Codec.encode_exn wire in
  let decoded = Codec.decode_exn encoded in
  let on_b = Transmit.of_value Assoc_mem.transmit_tree decoded in
  Alcotest.(check bool) "tree rep on B" true (Assoc_mem.rep_kind on_b = Assoc_mem.Tree);
  Alcotest.(check bool) "same contents" true (Assoc_mem.equal on_a on_b);
  Alcotest.(check bool) "AVL balanced" true (Assoc_mem.tree_is_balanced on_b)

let test_assoc_external_rep_checked () =
  let reg = Transmit.registry () in
  Assoc_mem.register reg;
  let am = Assoc_mem.of_alist ~rep:Assoc_mem.Hash [ ("k", Value.str "v") ] in
  let wire = Transmit.to_value Assoc_mem.transmit_hash am in
  Alcotest.(check bool) "registry validates" true (Result.is_ok (Transmit.check_named reg wire))

let prop_assoc_model =
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map2 (fun k v -> `Add (string_of_int k, v)) (int_range 0 30) int;
          map (fun k -> `Remove (string_of_int k)) (int_range 0 30);
        ])
  in
  QCheck2.Test.make ~name:"assoc memory (both reps) matches a model map" ~count:200
    QCheck2.Gen.(list_size (int_range 0 80) op_gen)
    (fun ops ->
      let hash = Assoc_mem.create ~rep:Assoc_mem.Hash in
      let tree = Assoc_mem.create ~rep:Assoc_mem.Tree in
      let model = Hashtbl.create 16 in
      List.iter
        (function
          | `Add (k, v) ->
              Assoc_mem.add_item hash ~key:k (Value.int v);
              Assoc_mem.add_item tree ~key:k (Value.int v);
              Hashtbl.replace model k v
          | `Remove k ->
              Assoc_mem.remove_item hash ~key:k;
              Assoc_mem.remove_item tree ~key:k;
              Hashtbl.remove model k)
        ops;
      Assoc_mem.tree_is_balanced tree
      && Assoc_mem.equal hash tree
      && Hashtbl.fold
           (fun k v acc -> acc && Assoc_mem.get_item hash ~key:k = Some (Value.int v))
           model
           (Assoc_mem.size hash = Hashtbl.length model))

let prop_assoc_roundtrip =
  QCheck2.Test.make ~name:"assoc transmit roundtrip preserves contents" ~count:150
    QCheck2.Gen.(list_size (int_range 0 30) (pair (int_range 0 50) int))
    (fun pairs ->
      let am = Assoc_mem.create ~rep:Assoc_mem.Tree in
      List.iter (fun (k, v) -> Assoc_mem.add_item am ~key:(string_of_int k) (Value.int v)) pairs;
      let wire = Codec.encode_exn (Transmit.to_value Assoc_mem.transmit_tree am) in
      let back = Transmit.of_value Assoc_mem.transmit_hash (Codec.decode_exn wire) in
      Assoc_mem.equal am back)

(* ---- Complex numbers ---- *)

let test_complex_reps_agree () =
  let c = Complex_rep.cartesian ~re:3.0 ~im:4.0 in
  let p = Complex_rep.polar ~modulus:5.0 ~arg:(Float.atan2 4.0 3.0) in
  Alcotest.(check bool) "same abstract value" true (Complex_rep.approx_equal ~eps:1e-9 c p);
  Alcotest.(check (float 1e-9)) "modulus of cartesian" 5.0 (Complex_rep.modulus c);
  Alcotest.(check (float 1e-9)) "re of polar" 3.0 (Complex_rep.re p)

let test_complex_cross_rep_transfer () =
  let c = Complex_rep.polar ~modulus:2.0 ~arg:(Float.pi /. 4.0) in
  let wire = Codec.encode_exn (Transmit.to_value Complex_rep.transmit_polar c) in
  let on_cartesian_node = Transmit.of_value Complex_rep.transmit_cartesian (Codec.decode_exn wire) in
  Alcotest.(check bool) "received as cartesian" true (Complex_rep.is_cartesian on_cartesian_node);
  Alcotest.(check bool) "value preserved" true
    (Complex_rep.approx_equal ~eps:1e-9 c on_cartesian_node)

let test_complex_arithmetic () =
  let a = Complex_rep.cartesian ~re:1.0 ~im:2.0 in
  let b = Complex_rep.polar ~modulus:1.0 ~arg:0.0 (* = 1 + 0i *) in
  let sum = Complex_rep.add a b in
  Alcotest.(check (float 1e-9)) "sum re" 2.0 (Complex_rep.re sum);
  Alcotest.(check (float 1e-9)) "sum im" 2.0 (Complex_rep.im sum);
  let prod = Complex_rep.mul a b in
  Alcotest.(check bool) "mul by unit preserves" true (Complex_rep.approx_equal ~eps:1e-9 a prod)

let prop_complex_roundtrip =
  QCheck2.Test.make ~name:"complex transmit roundtrip" ~count:200
    QCheck2.Gen.(pair (float_range (-1e3) 1e3) (float_range (-1e3) 1e3))
    (fun (re, im) ->
      let c = Complex_rep.cartesian ~re ~im in
      let wire = Codec.encode_exn (Transmit.to_value Complex_rep.transmit_cartesian c) in
      let back = Transmit.of_value Complex_rep.transmit_polar (Codec.decode_exn wire) in
      Complex_rep.approx_equal ~eps:1e-6 c back)

let tests =
  [
    Alcotest.test_case "assoc basics (both reps)" `Quick test_assoc_basics_both_reps;
    Alcotest.test_case "assoc hash->tree transfer" `Quick test_assoc_cross_rep_transfer;
    Alcotest.test_case "assoc registry" `Quick test_assoc_external_rep_checked;
    QCheck_alcotest.to_alcotest prop_assoc_model;
    QCheck_alcotest.to_alcotest prop_assoc_roundtrip;
    Alcotest.test_case "complex reps agree" `Quick test_complex_reps_agree;
    Alcotest.test_case "complex polar->cartesian" `Quick test_complex_cross_rep_transfer;
    Alcotest.test_case "complex arithmetic" `Quick test_complex_arithmetic;
    QCheck_alcotest.to_alcotest prop_complex_roundtrip;
  ]
