(* The Airline Reservation System of §2.3/§3.5: flight guardians (all three
   organizations), regional dispatch, front-desk transactions, recovery. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Rpc = Dcp_primitives.Rpc
module Types = Dcp_airline.Types
module Flight = Dcp_airline.Flight
module Regional = Dcp_airline.Regional
module Front_desk = Dcp_airline.Front_desk
module Cluster = Dcp_airline.Cluster
module Workload = Dcp_airline.Workload
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let make_world ?(n = 2) () =
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  Runtime.create_world ~seed:21 ~topology:(Topology.full_mesh ~n Link.perfect) ~config ()

let fresh_driver_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "test_driver_%d" !i

let driver world ~at body =
  let name = fresh_driver_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

let reserve ctx port ~passenger ~date =
  match
    Rpc.call ctx ~to_:port ~timeout:(Clock.ms 500) "reserve"
      [ Value.str passenger; Value.int date ]
  with
  | Rpc.Reply (command, _) -> command
  | Rpc.Failure_msg _ -> "failure"
  | Rpc.Timeout -> "timeout"

let cancel ctx port ~passenger ~date =
  match
    Rpc.call ctx ~to_:port ~timeout:(Clock.ms 500) "cancel"
      [ Value.str passenger; Value.int date ]
  with
  | Rpc.Reply (command, _) -> command
  | Rpc.Failure_msg _ -> "failure"
  | Rpc.Timeout -> "timeout"

let list_passengers ctx port ~date =
  match Rpc.call ctx ~to_:port ~timeout:(Clock.ms 500) "list_passengers" [ Value.int date ] with
  | Rpc.Reply ("info", [ Value.Listv names ]) -> List.map Value.get_str names
  | _ -> []

(* ---- Flight guardian ---- *)

let test_flight_reserve_cancel_cycle () =
  let world = make_world () in
  let flight =
    Flight.create world ~at:0 ~flight:7 ~capacity:2 ~service_time:(Clock.us 10) ()
  in
  let log = ref [] in
  driver world ~at:1 (fun ctx ->
      let note outcome = log := outcome :: !log in
      note (reserve ctx flight ~passenger:"alice" ~date:1);
      note (reserve ctx flight ~passenger:"alice" ~date:1);  (* idempotent *)
      note (reserve ctx flight ~passenger:"bob" ~date:1);
      note (reserve ctx flight ~passenger:"carol" ~date:1);  (* wait-listed *)
      note (cancel ctx flight ~passenger:"alice" ~date:1);   (* promotes carol *)
      note (cancel ctx flight ~passenger:"alice" ~date:1);   (* already gone *)
      log := String.concat "," (list_passengers ctx flight ~date:1) :: !log);
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check (list string))
    "full protocol"
    [ "ok"; "pre_reserved"; "ok"; "wait_list"; "canceled"; "not_reserved"; "bob,carol" ]
    (List.rev !log)

let test_flight_full_when_waitlist_exhausted () =
  let world = make_world () in
  let flight =
    Flight.create world ~at:0 ~flight:1 ~capacity:1 ~waitlist_capacity:1
      ~service_time:(Clock.us 10) ()
  in
  let outcomes = ref [] in
  driver world ~at:1 (fun ctx ->
      outcomes :=
        List.map
          (fun p -> reserve ctx flight ~passenger:p ~date:0)
          [ "a"; "b"; "c" ]);
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check (list string)) "third is full" [ "ok"; "wait_list"; "full" ] !outcomes

let test_flight_dates_independent () =
  let world = make_world () in
  let flight = Flight.create world ~at:0 ~flight:1 ~capacity:1 ~service_time:(Clock.us 10) () in
  let outcomes = ref [] in
  driver world ~at:1 (fun ctx ->
      outcomes :=
        List.map (fun d -> reserve ctx flight ~passenger:"p" ~date:d) [ 0; 1; 2 ]);
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check (list string)) "each date has a seat" [ "ok"; "ok"; "ok" ] !outcomes

(* Throughput shape of the three organizations (Figure 1 / E1): with D
   dates in flight concurrently and service time S, one-at-a-time finishes
   in ~N*S while serializer and monitor finish in ~(N/D)*S. *)
let org_finish_time organization =
  let world = make_world () in
  let service = Clock.ms 10 in
  let flight =
    Flight.create world ~at:0 ~flight:1 ~capacity:100 ~organization ~service_time:service ()
  in
  let done_count = ref 0 in
  let total = 8 in
  let finish_time = ref 0 in
  (* Eight concurrent clerks, one per date: organizations that can work
     dates in parallel finish ~8x faster. *)
  for i = 1 to total do
    driver world ~at:1 (fun ctx ->
        let outcome = reserve ctx flight ~passenger:"p" ~date:i in
        if String.equal outcome "ok" then begin
          incr done_count;
          if !done_count = total then finish_time := Runtime.now world
        end)
  done;
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check int) "all served" total !done_count;
  !finish_time

let test_organizations_concurrency_shape () =
  let t_one = org_finish_time Types.One_at_a_time in
  let t_ser = org_finish_time Types.Serializer in
  let t_mon = org_finish_time Types.Monitor in
  (* 1a must be at least ~4x slower than 1b/1c on this workload. *)
  Alcotest.(check bool)
    (Printf.sprintf "one-at-a-time (%d) >> serializer (%d)" t_one t_ser)
    true
    (t_one > 4 * t_ser);
  Alcotest.(check bool)
    (Printf.sprintf "one-at-a-time (%d) >> monitor (%d)" t_one t_mon)
    true
    (t_one > 4 * t_mon)

let test_same_date_serialized_even_in_monitor_org () =
  let world = make_world () in
  let service = Clock.ms 10 in
  let flight =
    Flight.create world ~at:0 ~flight:1 ~capacity:100 ~organization:Types.Monitor
      ~service_time:service ()
  in
  let finish = ref 0 in
  let done_count = ref 0 in
  for i = 1 to 4 do
    driver world ~at:1 (fun ctx ->
        ignore (reserve ctx flight ~passenger:(Printf.sprintf "p%d" i) ~date:5);
        incr done_count;
        if !done_count = 4 then finish := Runtime.now world)
  done;
  Runtime.run_for world (Clock.s 5);
  (* Four same-date requests at 10ms each must take >= 40ms. *)
  Alcotest.(check bool) "same date serialized" true (!finish >= Clock.ms 40)

let test_flight_permanence_across_crash () =
  let world = make_world () in
  let flight = Flight.create world ~at:0 ~flight:3 ~capacity:5 ~service_time:(Clock.us 10) () in
  let before = ref [] and after = ref [] in
  driver world ~at:1 (fun ctx ->
      ignore (reserve ctx flight ~passenger:"alice" ~date:2);
      ignore (reserve ctx flight ~passenger:"bob" ~date:2);
      ignore (cancel ctx flight ~passenger:"alice" ~date:2);
      before := list_passengers ctx flight ~date:2);
  Runtime.run_for world (Clock.s 1);
  Runtime.crash_node world 0;
  Runtime.restart_node world 0;
  driver world ~at:1 (fun ctx -> after := list_passengers ctx flight ~date:2);
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check (list string)) "state before crash" [ "bob" ] !before;
  Alcotest.(check (list string)) "state recovered" [ "bob" ] !after

let test_flight_naive_counter_double_books_on_duplicates () =
  let world = make_world () in
  let flight =
    Flight.create world ~at:0 ~flight:4 ~capacity:10 ~accounting:Types.Naive_counter
      ~service_time:(Clock.us 10) ()
  in
  let seats = ref [] in
  driver world ~at:1 (fun ctx ->
      (* The same request delivered twice (e.g. a retry after a lost
         response): naive accounting books two seats. *)
      let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
      let send () =
        Runtime.send ctx ~to_:flight
          ~reply_to:(Dcp_core.Port.name reply)
          "reserve"
          [ Value.int 900001; Value.str "dup"; Value.int 0 ]
      in
      send ();
      send ();
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]);
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]);
      seats := list_passengers ctx flight ~date:0);
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check int) "two seats consumed by one passenger" 2 (List.length !seats)

let test_flight_idempotent_set_immune_to_duplicates () =
  let world = make_world () in
  let flight =
    Flight.create world ~at:0 ~flight:4 ~capacity:10 ~accounting:Types.Idempotent_set
      ~service_time:(Clock.us 10) ()
  in
  let seats = ref [] in
  driver world ~at:1 (fun ctx ->
      let reply = Runtime.new_port ctx [ Vtype.wildcard ] in
      let send () =
        Runtime.send ctx ~to_:flight
          ~reply_to:(Dcp_core.Port.name reply)
          "reserve"
          [ Value.int 900002; Value.str "dup"; Value.int 0 ]
      in
      send ();
      send ();
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]);
      ignore (Runtime.receive ctx ~timeout:(Clock.s 1) [ reply ]);
      seats := list_passengers ctx flight ~date:0);
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check int) "one seat despite duplicate" 1 (List.length !seats)

(* ---- Regional manager ---- *)

let regional_fixture world =
  Regional.create world ~at:0
    ~flights:[ { Regional.flight = 10; capacity = 2 }; { Regional.flight = 11; capacity = 2 } ]
    ~service_time:(Clock.us 10) ()

let reserve_via_regional ctx regional ~flight ~passenger ~date =
  match
    Rpc.call ctx ~to_:regional ~timeout:(Clock.ms 500) "reserve"
      [ Value.int flight; Value.str passenger; Value.int date ]
  with
  | Rpc.Reply (command, _) -> command
  | Rpc.Failure_msg _ -> "failure"
  | Rpc.Timeout -> "timeout"

let test_regional_dispatch () =
  let world = make_world () in
  let regional = regional_fixture world in
  let outcomes = ref [] in
  driver world ~at:1 (fun ctx ->
      outcomes :=
        [
          reserve_via_regional ctx regional ~flight:10 ~passenger:"a" ~date:0;
          reserve_via_regional ctx regional ~flight:11 ~passenger:"a" ~date:0;
          reserve_via_regional ctx regional ~flight:99 ~passenger:"a" ~date:0;
        ]);
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check (list string))
    "dispatch + unknown flight"
    [ "ok"; "ok"; "no_such_flight" ]
    !outcomes

let test_regional_creates_flights_locally () =
  let world = make_world () in
  ignore (regional_fixture world);
  Runtime.run_for world (Clock.ms 10);
  let flights = Runtime.find_guardians world ~def_name:Flight.def_name in
  Alcotest.(check int) "two flight guardians" 2 (List.length flights);
  List.iter
    (fun g -> Alcotest.(check int) "at regional node" 0 (Runtime.guardian_node g))
    flights

let test_regional_recovery_end_to_end () =
  let world = make_world () in
  let regional = regional_fixture world in
  let before = ref "" and after = ref "" in
  driver world ~at:1 (fun ctx ->
      before := reserve_via_regional ctx regional ~flight:10 ~passenger:"p" ~date:1);
  Runtime.run_for world (Clock.s 1);
  Runtime.crash_node world 0;
  Runtime.restart_node world 0;
  driver world ~at:1 (fun ctx ->
      (* The same passenger re-reserving shows the original reservation
         survived (pre_reserved), through regional dispatch. *)
      after := reserve_via_regional ctx regional ~flight:10 ~passenger:"p" ~date:1);
  Runtime.run_for world (Clock.s 1);
  Alcotest.(check string) "reserved before crash" "ok" !before;
  Alcotest.(check string) "reservation survived" "pre_reserved" !after

(* ---- Front desk / transactions (Figure 5) ---- *)

let front_desk_fixture world =
  let regional = regional_fixture world in
  (Front_desk.create world ~at:1 ~regionals:[ regional ] (), regional)

let begin_transaction ctx front_desk ~passenger =
  match
    Rpc.call ctx ~to_:front_desk ~timeout:(Clock.ms 500) "begin_transaction"
      [ Value.str passenger ]
  with
  | Rpc.Reply ("transaction", [ Value.Portv port ]) -> Some port
  | _ -> None

let trans_call ctx trans command args =
  match Rpc.call ctx ~to_:trans ~timeout:(Clock.s 1) command args with
  | Rpc.Reply (command, args) -> (command, args)
  | Rpc.Failure_msg reason -> ("failure", [ Value.str reason ])
  | Rpc.Timeout -> ("timeout", [])

let test_transaction_reserve_and_finish () =
  let world = make_world () in
  let front_desk, regional = front_desk_fixture world in
  let log = ref [] in
  driver world ~at:1 (fun ctx ->
      match begin_transaction ctx front_desk ~passenger:"zoe" with
      | None -> log := [ ("begin_failed", []) ]
      | Some trans ->
          let note x = log := x :: !log in
          note (trans_call ctx trans "reserve" [ Value.int 10; Value.int 3 ]);
          note (trans_call ctx trans "reserve" [ Value.int 11; Value.int 3 ]);
          note (trans_call ctx trans "finish" []);
          (* Direct check through the regional manager. *)
          let direct =
            reserve_via_regional ctx regional ~flight:10 ~passenger:"zoe" ~date:3
          in
          note (direct, []));
  Runtime.run_for world (Clock.s 3);
  match List.rev !log with
  | [ ("ok", _); ("ok", _); ("finished", [ Value.Int 0; Value.Int 0 ]); ("pre_reserved", _) ] ->
      ()
  | other ->
      Alcotest.failf "unexpected transcript: %s"
        (String.concat "; " (List.map (fun (c, _) -> c) other))

let test_transaction_deferred_cancel_runs_at_finish () =
  let world = make_world () in
  let front_desk, regional = front_desk_fixture world in
  let seats_mid = ref [] and seats_end = ref "" in
  driver world ~at:1 (fun ctx ->
      (match begin_transaction ctx front_desk ~passenger:"yan" with
      | None -> ()
      | Some trans ->
          ignore (trans_call ctx trans "reserve" [ Value.int 10; Value.int 4 ]);
          ignore (trans_call ctx trans "cancel" [ Value.int 10; Value.int 4 ]);
          (* Cancel is deferred: the seat is still held here. *)
          (match
             Rpc.call ctx ~to_:regional ~timeout:(Clock.ms 500) "list_passengers"
               [ Value.int 10; Value.int 4 ]
           with
          | Rpc.Reply ("info", [ Value.Listv names ]) ->
              seats_mid := List.map Value.get_str names
          | _ -> ());
          ignore (trans_call ctx trans "finish" []));
      (* After finish the deferred cancel has run. *)
      seats_end :=
        reserve_via_regional ctx regional ~flight:10 ~passenger:"other" ~date:4);
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check (list string)) "seat held mid-transaction" [ "yan" ] !seats_mid;
  Alcotest.(check string) "seat free after finish" "ok" !seats_end

let test_transaction_undo () =
  let world = make_world () in
  let front_desk, regional = front_desk_fixture world in
  let outcome = ref "" in
  driver world ~at:1 (fun ctx ->
      (match begin_transaction ctx front_desk ~passenger:"uma" with
      | None -> ()
      | Some trans ->
          ignore (trans_call ctx trans "reserve" [ Value.int 10; Value.int 5 ]);
          ignore (trans_call ctx trans "undo" []);
          ignore (trans_call ctx trans "finish" []));
      outcome := reserve_via_regional ctx regional ~flight:10 ~passenger:"vic" ~date:5;
      (* capacity 2: uma's undone seat must be free, so vic and wes fit *)
      ignore (reserve_via_regional ctx regional ~flight:10 ~passenger:"wes" ~date:5));
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check string) "undone seat reusable" "ok" !outcome

let test_transaction_undo_nothing () =
  let world = make_world () in
  let front_desk, _ = front_desk_fixture world in
  let reply = ref "" in
  driver world ~at:1 (fun ctx ->
      match begin_transaction ctx front_desk ~passenger:"nil" with
      | None -> ()
      | Some trans ->
          let command, _ = trans_call ctx trans "undo" [] in
          reply := command);
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check string) "nothing to undo" "nothing_to_undo" !reply

let test_transactions_forgotten_after_crash () =
  (* Three nodes so the observing clerk survives the front desk's crash. *)
  let world = make_world ~n:3 () in
  let front_desk, _ = front_desk_fixture world in
  let first = ref "" and second = ref None in
  driver world ~at:2 (fun ctx ->
      match begin_transaction ctx front_desk ~passenger:"kim" with
      | None -> first := "begin_failed"
      | Some trans ->
          let command, _ = trans_call ctx trans "reserve" [ Value.int 10; Value.int 6 ] in
          first := command;
          (* The front-desk node crashes mid-transaction. *)
          Runtime.crash_node world 1;
          Runtime.restart_node world 1;
          Runtime.sleep ctx (Clock.ms 10);
          (* The old transaction port is gone: the clerk gets failure, not
             silence, and must start a new transaction (§3.5). *)
          let command, _ = trans_call ctx trans "reserve" [ Value.int 11; Value.int 6 ] in
          second := Some command);
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check string) "first reserve fine" "ok" !first;
  match !second with
  | Some ("failure" | "timeout") -> ()
  | other -> Alcotest.failf "stale transaction should fail, got %s" (Option.value other ~default:"none")

(* ---- Cluster smoke ---- *)

let test_cluster_runs_and_reserves () =
  let params =
    {
      Cluster.default_params with
      regions = 2;
      flights_per_region = 2;
      clerks_per_region = 1;
      service_time = Clock.us 100;
      clerk =
        {
          Workload.default_config with
          transactions = 2;
          requests_per_transaction = 4;
          think_time = Clock.ms 1;
          flights = 4;
          dates = 5;
        };
    }
  in
  let cluster = Cluster.build params in
  let report = Cluster.run cluster ~duration:(Clock.s 10) in
  Alcotest.(check bool)
    (Printf.sprintf "some requests succeeded (%d)" report.Cluster.requests_ok)
    true
    (report.Cluster.requests_ok > 0);
  Alcotest.(check bool)
    (Printf.sprintf "transactions completed (%d)" report.Cluster.transactions_completed)
    true
    (report.Cluster.transactions_completed >= 2)

let tests =
  [
    Alcotest.test_case "reserve/cancel/waitlist cycle" `Quick test_flight_reserve_cancel_cycle;
    Alcotest.test_case "full when waitlist exhausted" `Quick test_flight_full_when_waitlist_exhausted;
    Alcotest.test_case "dates independent" `Quick test_flight_dates_independent;
    Alcotest.test_case "Fig.1 organizations concurrency" `Quick test_organizations_concurrency_shape;
    Alcotest.test_case "same date serialized (monitor)" `Quick test_same_date_serialized_even_in_monitor_org;
    Alcotest.test_case "permanence across crash" `Quick test_flight_permanence_across_crash;
    Alcotest.test_case "naive counter double-books" `Quick test_flight_naive_counter_double_books_on_duplicates;
    Alcotest.test_case "idempotent set immune" `Quick test_flight_idempotent_set_immune_to_duplicates;
    Alcotest.test_case "regional dispatch" `Quick test_regional_dispatch;
    Alcotest.test_case "flights live at regional node" `Quick test_regional_creates_flights_locally;
    Alcotest.test_case "regional recovery" `Quick test_regional_recovery_end_to_end;
    Alcotest.test_case "transaction reserve+finish" `Quick test_transaction_reserve_and_finish;
    Alcotest.test_case "deferred cancel at finish" `Quick test_transaction_deferred_cancel_runs_at_finish;
    Alcotest.test_case "undo frees the seat" `Quick test_transaction_undo;
    Alcotest.test_case "undo with empty history" `Quick test_transaction_undo_nothing;
    Alcotest.test_case "transactions forgotten after crash" `Quick test_transactions_forgotten_after_crash;
    Alcotest.test_case "cluster smoke" `Quick test_cluster_runs_and_reserves;
  ]
