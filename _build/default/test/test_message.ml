(* Message construction and the wire envelope. *)

open Dcp_wire
module Message = Dcp_core.Message

let port_a = Port_name.make ~node:1 ~guardian:2 ~index:0 ~uid:10
let port_b = Port_name.make ~node:3 ~guardian:4 ~index:1 ~uid:11

let test_make_and_fields () =
  let m = Message.make ~reply_to:port_b ~sent_at:42 "reserve" [ Value.int 7 ] in
  Alcotest.(check string) "command" "reserve" m.Message.command;
  Alcotest.(check bool) "reply port" true (m.Message.reply_to = Some port_b);
  Alcotest.(check int) "timestamp" 42 m.Message.sent_at;
  Alcotest.(check bool) "not failure" false (Message.is_failure m)

let test_failure_shape () =
  let f = Message.failure ~reason:"no room" ~sent_at:1 in
  Alcotest.(check bool) "is failure" true (Message.is_failure f);
  Alcotest.(check bool) "no reply port ever" true (f.Message.reply_to = None);
  Alcotest.(check bool) "reason in args" true (f.Message.args = [ Value.str "no room" ])

let test_envelope_roundtrip () =
  let m =
    Message.make ~reply_to:port_b ~sent_at:99 "op"
      [ Value.int 1; Value.str "x"; Value.list [ Value.bool true ] ]
  in
  let env = Message.envelope ~target:port_a m in
  (* through the codec, like the runtime does *)
  let decoded = Codec.decode_exn (Codec.encode_exn env) in
  match Message.of_envelope decoded with
  | Error e -> Alcotest.fail e
  | Ok (target, m') ->
      Alcotest.(check bool) "target" true (Port_name.equal target port_a);
      Alcotest.(check string) "command" "op" m'.Message.command;
      Alcotest.(check bool) "args" true (List.equal Value.equal m.Message.args m'.Message.args);
      Alcotest.(check bool) "reply" true (m'.Message.reply_to = Some port_b);
      Alcotest.(check int) "sent_at travels" 99 m'.Message.sent_at

let test_envelope_no_reply () =
  let m = Message.make ~sent_at:0 "fire" [] in
  match Message.of_envelope (Message.envelope ~target:port_a m) with
  | Ok (_, m') -> Alcotest.(check bool) "no reply port" true (m'.Message.reply_to = None)
  | Error e -> Alcotest.fail e

let test_envelope_malformed () =
  (match Message.of_envelope (Value.int 3) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "an int is not an envelope");
  match Message.of_envelope (Value.record [ ("target", Value.int 1) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fields must fail"

let test_pp () =
  let m = Message.make ~reply_to:port_b ~sent_at:0 "reserve" [ Value.int 12; Value.str "bob" ] in
  Alcotest.(check string) "rendering"
    "reserve(12, \"bob\") replyto port<n3.g4.p1#11>"
    (Format.asprintf "%a" Message.pp m)

let prop_envelope_roundtrip =
  QCheck2.Test.make ~name:"envelope roundtrips arbitrary argument vectors" ~count:200
    QCheck2.Gen.(
      pair (string_size (int_range 1 12)) (list_size (int_range 0 6) (oneof [ map (fun i -> Value.Int i) int; map (fun s -> Value.Str s) (string_size (int_range 0 10)) ])))
    (fun (command, args) ->
      let m = Message.make ~sent_at:5 command args in
      match Message.of_envelope (Message.envelope ~target:port_a m) with
      | Ok (_, m') ->
          String.equal m'.Message.command command
          && List.equal Value.equal m'.Message.args args
      | Error _ -> false)

let tests =
  [
    Alcotest.test_case "make + fields" `Quick test_make_and_fields;
    Alcotest.test_case "failure shape" `Quick test_failure_shape;
    Alcotest.test_case "envelope roundtrip" `Quick test_envelope_roundtrip;
    Alcotest.test_case "envelope no reply" `Quick test_envelope_no_reply;
    Alcotest.test_case "envelope malformed" `Quick test_envelope_malformed;
    Alcotest.test_case "pp" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_envelope_roundtrip;
  ]
