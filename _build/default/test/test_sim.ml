(* The simulation substrate: heap, clock, engine, metrics, trace. *)

module Heap = Dcp_sim.Heap
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine
module Metrics = Dcp_sim.Metrics
module Trace = Dcp_sim.Trace

(* ---- Heap ---- *)

let test_heap_basics () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop min" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop next" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop last" (Some 5) (Heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_heap_pop_exn_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "pop_exn on empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_sorts () =
  let h = Heap.of_list ~cmp:Int.compare [ 9; 2; 7; 2; 0; -3; 100; 55 ] in
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "drains sorted" [ -3; 0; 2; 2; 7; 9; 55; 100 ] (drain [])

let prop_heap_invariant =
  QCheck2.Test.make ~name:"heap invariant after pushes and pops" ~count:300
    QCheck2.Gen.(list (pair bool int))
    (fun ops ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter
        (fun (push, v) -> if push then Heap.push h v else ignore (Heap.pop h))
        ops;
      Heap.check_invariant h)

let prop_heap_sorted_drain =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.of_list ~cmp:Int.compare xs in
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort Int.compare xs)

(* ---- Clock ---- *)

let test_clock_units () =
  Alcotest.(check int) "us" 1_000 (Clock.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Clock.ms 1);
  Alcotest.(check int) "s" 1_000_000_000 (Clock.s 1);
  Alcotest.(check int) "of_float_s" 1_500_000_000 (Clock.of_float_s 1.5);
  Alcotest.(check (float 1e-9)) "to_float_ms" 1.5 (Clock.to_float_ms (Clock.us 1500))

let test_clock_pp () =
  let render t = Format.asprintf "%a" Clock.pp t in
  Alcotest.(check string) "ns" "500ns" (render 500);
  Alcotest.(check string) "us" "1.500us" (render 1500);
  Alcotest.(check string) "ms" "2.000ms" (render (Clock.ms 2));
  Alcotest.(check string) "s" "3.000s" (render (Clock.s 3))

(* ---- Engine ---- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule e ~at:(Clock.ms 5) (note "b"));
  ignore (Engine.schedule e ~at:(Clock.ms 1) (note "a"));
  ignore (Engine.schedule e ~at:(Clock.ms 9) (note "c"));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" (Clock.ms 9) (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~at:(Clock.ms 1) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "ties run in scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let t = Engine.schedule e ~at:(Clock.ms 1) (fun () -> fired := true) in
  Engine.cancel t;
  Engine.run e;
  Alcotest.(check bool) "cancelled timer silent" false !fired;
  Alcotest.(check bool) "marked cancelled" true (Engine.is_cancelled t)

let test_engine_schedule_in_past_clamped () =
  let e = Engine.create () in
  let when_fired = ref (-1) in
  ignore
    (Engine.schedule e ~at:(Clock.ms 10) (fun () ->
         ignore (Engine.schedule e ~at:(Clock.ms 1) (fun () -> when_fired := Engine.now e))));
  Engine.run e;
  Alcotest.(check int) "clamped to now" (Clock.ms 10) !when_fired

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~at:(Clock.ms i) (fun () -> incr count))
  done;
  Engine.run_until e (Clock.ms 5);
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check int) "clock at limit" (Clock.ms 5) (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest run later" 10 !count

let test_engine_cascading () =
  (* Events scheduling events: a chain of N hops lands at t = N. *)
  let e = Engine.create () in
  let hops = ref 0 in
  let rec hop () =
    incr hops;
    if !hops < 100 then ignore (Engine.schedule_after e ~delay:(Clock.us 1) hop)
  in
  ignore (Engine.schedule_after e ~delay:(Clock.us 1) hop);
  Engine.run e;
  Alcotest.(check int) "all hops" 100 !hops;
  Alcotest.(check int) "time advanced linearly" (Clock.us 100) (Engine.now e);
  Alcotest.(check int) "events counted" 100 (Engine.events_executed e)

let test_engine_pending () =
  let e = Engine.create () in
  let t1 = Engine.schedule e ~at:(Clock.ms 1) (fun () -> ()) in
  ignore (Engine.schedule e ~at:(Clock.ms 2) (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Engine.pending e);
  Engine.cancel t1;
  Alcotest.(check int) "one after cancel" 1 (Engine.pending e)

(* ---- Metrics ---- *)

let test_metrics_counters () =
  let r = Metrics.registry () in
  let c = Metrics.counter r "hits" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 3;
  Alcotest.(check int) "count" 5 (Metrics.count c);
  Alcotest.(check int) "same name, same counter" 5 (Metrics.count (Metrics.counter r "hits"));
  Alcotest.(check (list (pair string int))) "report" [ ("hits", 5) ] (Metrics.counters r)

let test_metrics_gauges () =
  let r = Metrics.registry () in
  let g = Metrics.gauge r "depth" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 1e-9)) "gauge" 2.5 (Metrics.gauge_value g)

let test_metrics_histogram_quantiles () =
  let r = Metrics.registry () in
  let h = Metrics.histogram r "lat" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "samples" 1000 (Metrics.samples h);
  Alcotest.(check (float 1.0)) "mean" 500.5 (Metrics.mean h);
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool) "p50 within 10%" true (Float.abs (p50 -. 500.0) < 50.0);
  let p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool) "p99 within 10%" true (Float.abs (p99 -. 990.0) < 99.0);
  Alcotest.(check (float 1e-9)) "max exact" 1000.0 (Metrics.hist_max h);
  Alcotest.(check (float 1e-9)) "min exact" 1.0 (Metrics.hist_min h)

let test_metrics_histogram_empty () =
  let r = Metrics.registry () in
  let h = Metrics.histogram r "empty" in
  Alcotest.(check (float 1e-9)) "mean 0" 0.0 (Metrics.mean h);
  Alcotest.(check (float 1e-9)) "quantile 0" 0.0 (Metrics.quantile h 0.5)

let prop_histogram_quantile_monotone =
  QCheck2.Test.make ~name:"histogram quantiles are monotone" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (float_range 0.1 1e6))
    (fun samples ->
      let r = Metrics.registry () in
      let h = Metrics.histogram r "x" in
      List.iter (Metrics.observe h) samples;
      let q1 = Metrics.quantile h 0.25
      and q2 = Metrics.quantile h 0.5
      and q3 = Metrics.quantile h 0.95 in
      q1 <= q2 && q2 <= q3)

(* ---- Trace ---- *)

let test_trace_records () =
  let t = Trace.create ~capacity:8 () in
  Trace.record t ~at:1 ~category:"send" "hello";
  Trace.recordf t ~at:2 ~category:"recv" "%d of %d" 1 2;
  Alcotest.(check int) "size" 2 (Trace.size t);
  match Trace.events t with
  | [ e1; e2 ] ->
      Alcotest.(check string) "first" "hello" e1.Trace.detail;
      Alcotest.(check string) "formatted" "1 of 2" e2.Trace.detail
  | _ -> Alcotest.fail "expected two events"

let test_trace_ring_overflow () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record t ~at:i ~category:"x" (string_of_int i)
  done;
  Alcotest.(check int) "retains capacity" 4 (Trace.size t);
  Alcotest.(check int) "total counts all" 10 (Trace.total t);
  Alcotest.(check (list string)) "keeps newest"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.detail) (Trace.events t))

let test_trace_find () =
  let t = Trace.create () in
  Trace.record t ~at:1 ~category:"a" "1";
  Trace.record t ~at:2 ~category:"b" "2";
  Trace.record t ~at:3 ~category:"a" "3";
  Alcotest.(check int) "category filter" 2 (List.length (Trace.find t ~category:"a"))

let tests =
  [
    Alcotest.test_case "heap basics" `Quick test_heap_basics;
    Alcotest.test_case "heap pop_exn empty" `Quick test_heap_pop_exn_empty;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_invariant;
    QCheck_alcotest.to_alcotest prop_heap_sorted_drain;
    Alcotest.test_case "clock units" `Quick test_clock_units;
    Alcotest.test_case "clock pp" `Quick test_clock_pp;
    Alcotest.test_case "engine time order" `Quick test_engine_order;
    Alcotest.test_case "engine FIFO ties" `Quick test_engine_fifo_ties;
    Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine past clamped" `Quick test_engine_schedule_in_past_clamped;
    Alcotest.test_case "engine run_until" `Quick test_engine_run_until;
    Alcotest.test_case "engine cascading events" `Quick test_engine_cascading;
    Alcotest.test_case "engine pending" `Quick test_engine_pending;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics gauges" `Quick test_metrics_gauges;
    Alcotest.test_case "histogram quantiles" `Quick test_metrics_histogram_quantiles;
    Alcotest.test_case "histogram empty" `Quick test_metrics_histogram_empty;
    QCheck_alcotest.to_alcotest prop_histogram_quantile_monotone;
    Alcotest.test_case "trace records" `Quick test_trace_records;
    Alcotest.test_case "trace ring overflow" `Quick test_trace_ring_overflow;
    Alcotest.test_case "trace find" `Quick test_trace_find;
  ]
