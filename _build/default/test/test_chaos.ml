(* Chaos suites: randomized fault injection with global invariants.

   These tests drive whole subsystems through seeded random crash/restart
   schedules and then check invariants that must hold whatever the
   interleaving: seat-accounting sanity for the airline, conservation of
   money for the bank, all-or-nothing bookings for 2PC itineraries.  Seeds
   are fixed, so failures are reproducible. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Rpc = Dcp_primitives.Rpc
module Store = Dcp_stable.Store
module Flight = Dcp_airline.Flight
module Itinerary = Dcp_airline.Itinerary
module Cluster = Dcp_airline.Cluster
module Workload = Dcp_airline.Workload
module Branch = Dcp_bank.Branch
module Transfer = Dcp_bank.Transfer
module Audit = Dcp_bank.Audit
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link
module Rng = Dcp_rng.Rng

let fresh_driver_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "chaos_driver_%d" !i

let driver world ~at body =
  let name = fresh_driver_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* Schedule random crash/restart cycles on the given nodes over a horizon;
   outages last [outage]; never crash two nodes at once (the invariants
   hold even for correlated failures, but single-node churn exercises the
   recovery paths harder per unit of virtual time). *)
let schedule_chaos world ~rng ~nodes ~horizon ~every ~outage =
  let engine = Runtime.engine world in
  let rec plan at =
    if at < horizon then begin
      let jittered = at + Rng.int rng (Clock.ms 500) in
      ignore
        (Engine.schedule engine ~at:jittered (fun () ->
             let victim = Rng.choice_list rng nodes in
             if Runtime.node_up world victim then begin
               Runtime.crash_node world victim;
               ignore
                 (Engine.schedule_after engine ~delay:outage (fun () ->
                      Runtime.restart_node world victim))
             end));
      plan (at + every)
    end
  in
  plan every

(* ---- airline seat accounting under churn ---- *)

let airline_invariants world ~capacity ~waitlist_capacity =
  let flights = Runtime.find_guardians world ~def_name:Flight.def_name in
  List.iter
    (fun g ->
      let store = Runtime.guardian_store g in
      if not (Store.is_crashed store) then begin
        (* per-date reserved and waitlisted passenger multisets *)
        let reserved = Hashtbl.create 16 and waitlisted = Hashtbl.create 16 in
        let push tbl date passenger =
          let existing = Option.value (Hashtbl.find_opt tbl date) ~default:[] in
          Hashtbl.replace tbl date (passenger :: existing)
        in
        Store.fold store ~init:() ~f:(fun ~key _ () ->
            match String.split_on_char ':' key with
            | [ "r"; date; passenger ] -> push reserved (int_of_string date) passenger
            | [ "w"; date; passenger ] -> push waitlisted (int_of_string date) passenger
            | _ -> ());
        Hashtbl.iter
          (fun date passengers ->
            if List.length passengers > capacity then
              Alcotest.failf "date %d overbooked: %d seats of %d" date
                (List.length passengers) capacity;
            let uniq = List.sort_uniq String.compare passengers in
            if List.length uniq <> List.length passengers then
              Alcotest.failf "date %d has a duplicated passenger" date)
          reserved;
        Hashtbl.iter
          (fun date passengers ->
            if List.length passengers > waitlist_capacity then
              Alcotest.failf "date %d waitlist overflow" date)
          waitlisted
      end)
    flights

let test_airline_chaos () =
  let params =
    {
      Cluster.default_params with
      regions = 3;
      flights_per_region = 2;
      capacity = 5;
      clerks_per_region = 2;
      seed = 1001;
      clerk =
        {
          Workload.default_config with
          transactions = 0;
          requests_per_transaction = 4;
          think_time = Clock.ms 5;
          dates = 4;
          reserve_fraction = 0.7;
          undo_fraction = 0.1;
          request_timeout = Clock.ms 300;
          attempts = 3;
        };
    }
  in
  let cluster = Cluster.build params in
  let world = cluster.Cluster.world in
  let rng = Rng.create ~seed:2002 in
  schedule_chaos world ~rng ~nodes:[ 0; 1; 2 ] ~horizon:(Clock.s 40) ~every:(Clock.s 5)
    ~outage:(Clock.s 1);
  let report = Cluster.run cluster ~duration:(Clock.s 50) in
  Alcotest.(check bool)
    (Printf.sprintf "made progress (%d ok)" report.Cluster.requests_ok)
    true
    (report.Cluster.requests_ok > 50);
  airline_invariants world ~capacity:5 ~waitlist_capacity:10

(* ---- bank conservation under churn ---- *)

let test_bank_chaos () =
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  let world =
    Runtime.create_world ~seed:1003 ~topology:(Topology.full_mesh ~n:4 Link.lan) ~config ()
  in
  let accounts prefix = List.init 3 (fun i -> (Printf.sprintf "%s%d" prefix i, 500)) in
  let b0 = Branch.create world ~at:0 ~accounts:(accounts "a") () in
  let b1 = Branch.create world ~at:1 ~accounts:(accounts "b") () in
  let coordinator = Transfer.create world ~at:2 ~branches:[ b0; b1 ] () in
  let issued = ref 0 in
  driver world ~at:3 (fun ctx ->
      let rng = Rng.split (Runtime.world_rng world) in
      for i = 1 to 30 do
        let forward = i mod 2 = 0 in
        ignore
          (Rpc.call ctx ~to_:coordinator ~timeout:(Clock.s 2) ~attempts:3 "transfer"
             [
               Value.int (if forward then 0 else 1);
               Value.str (Printf.sprintf "%s%d" (if forward then "a" else "b") (Rng.int rng 3));
               Value.int (if forward then 1 else 0);
               Value.str (Printf.sprintf "%s%d" (if forward then "b" else "a") (Rng.int rng 3));
               Value.int (1 + Rng.int rng 40);
             ]);
        incr issued;
        Runtime.sleep ctx (Clock.ms (20 + Rng.int rng 50))
      done);
  let rng = Rng.create ~seed:2004 in
  schedule_chaos world ~rng ~nodes:[ 0; 1; 2 ] ~horizon:(Clock.s 4) ~every:(Clock.ms 700)
    ~outage:(Clock.ms 400);
  Runtime.run_for world (Clock.s 120);
  Alcotest.(check int) "all transfers issued" 30 !issued;
  Alcotest.(check int) "no saga left open" 0 (Transfer.incomplete_transfers world);
  let total = ref (Error "no audit") in
  driver world ~at:3 (fun ctx -> total := Audit.total_balance ctx ~branches:[ b0; b1 ] ());
  Runtime.run_for world (Clock.s 5);
  match !total with
  | Ok total -> Alcotest.(check int) "money conserved through the storm" 3000 total
  | Error reason -> Alcotest.fail reason

(* ---- 2PC all-or-nothing under churn ---- *)

let test_itinerary_chaos () =
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  let world =
    Runtime.create_world ~seed:1005 ~topology:(Topology.full_mesh ~n:4 Link.lan) ~config ()
  in
  let f1 = Flight.create world ~at:0 ~flight:1 ~capacity:6 ~service_time:(Clock.us 100) () in
  let f2 = Flight.create world ~at:1 ~flight:2 ~capacity:6 ~service_time:(Clock.us 100) () in
  let itinerary = Itinerary.create world ~at:2 ~directory:[ (1, f1); (2, f2) ] () in
  let outcomes = Hashtbl.create 16 in
  for i = 1 to 12 do
    driver world ~at:3 (fun ctx ->
        let passenger = Printf.sprintf "px%d" i in
        let legs =
          Value.list
            [
              Value.tuple [ Value.int 1; Value.int (i mod 3) ];
              Value.tuple [ Value.int 2; Value.int (i mod 3) ];
            ]
        in
        (* Retry with the SAME request id so participant/coordinator logs
           keep retried attempts idempotent across crashes. *)
        let rid = 4_000_000_000 + i in
        let rec attempt tries =
          match
            Rpc.call ctx ~to_:itinerary ~timeout:(Clock.s 3) ~request_id:rid "book_trip"
              [ Value.str passenger; legs ]
          with
          | Rpc.Reply (command, _) -> Hashtbl.replace outcomes passenger command
          | Rpc.Failure_msg _ | Rpc.Timeout ->
              if tries > 1 then begin
                Runtime.sleep ctx (Clock.ms 500);
                attempt (tries - 1)
              end
              else Hashtbl.replace outcomes passenger "gave_up"
        in
        attempt 4)
  done;
  let rng = Rng.create ~seed:2006 in
  schedule_chaos world ~rng ~nodes:[ 0; 1; 2 ] ~horizon:(Clock.s 3) ~every:(Clock.ms 600)
    ~outage:(Clock.ms 300);
  Runtime.run_for world (Clock.s 120);
  (* Invariant: every passenger is on both legs or neither. *)
  let seats_of flight_gid_filter =
    let table = Hashtbl.create 32 in
    List.iter
      (fun g ->
        let store = Runtime.guardian_store g in
        if not (Store.is_crashed store) then
          Store.fold store ~init:() ~f:(fun ~key _ () ->
              match String.split_on_char ':' key with
              | [ "r"; _; passenger ] -> Hashtbl.replace table passenger ()
              | _ -> ()))
      flight_gid_filter;
    table
  in
  let flights = Runtime.find_guardians world ~def_name:Flight.def_name in
  (match flights with
  | [ a; b ] ->
      let on_a = seats_of [ a ] and on_b = seats_of [ b ] in
      Hashtbl.iter
        (fun passenger () ->
          if not (Hashtbl.mem on_b passenger) then
            Alcotest.failf "%s holds leg A but not leg B" passenger)
        on_a;
      Hashtbl.iter
        (fun passenger () ->
          if not (Hashtbl.mem on_a passenger) then
            Alcotest.failf "%s holds leg B but not leg A" passenger)
        on_b;
      (* And every client that was told "booked" is really on both legs. *)
      Hashtbl.iter
        (fun passenger outcome ->
          if String.equal outcome "booked" && not (Hashtbl.mem on_a passenger) then
            Alcotest.failf "%s was told booked but holds no seat" passenger)
        outcomes
  | _ -> Alcotest.fail "expected exactly two flight guardians");
  (* No dangling holds once everything settled. *)
  let holds =
    List.fold_left
      (fun acc g ->
        let store = Runtime.guardian_store g in
        if Store.is_crashed store then acc
        else
          Store.fold store ~init:acc ~f:(fun ~key _ acc ->
              match String.split_on_char ':' key with [ "h"; _ ] -> acc + 1 | _ -> acc))
      0 flights
  in
  Alcotest.(check int) "no dangling holds" 0 holds

let tests =
  [
    Alcotest.test_case "airline invariants under churn" `Slow test_airline_chaos;
    Alcotest.test_case "bank conservation under churn" `Slow test_bank_chaos;
    Alcotest.test_case "itinerary atomicity under churn" `Slow test_itinerary_chaos;
  ]
