(* The office automation system: documents (transmittable abstract type),
   mailboxes (two-capability guardians), the printer device, the
   directory name service, and crash recovery of mail. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Rpc = Dcp_primitives.Rpc
module Document = Dcp_office.Document
module Mailbox = Dcp_office.Mailbox
module Printer = Dcp_office.Printer
module Directory = Dcp_office.Directory
module Clock = Dcp_sim.Clock
module Topology = Dcp_net.Topology
module Link = Dcp_net.Link

let make_world ?(n = 3) () =
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  Runtime.create_world ~seed:71 ~topology:(Topology.full_mesh ~n Link.perfect) ~config ()

let fresh_driver_name =
  let i = ref 0 in
  fun () ->
    incr i;
    Printf.sprintf "office_driver_%d" !i

let driver world ~at body =
  let name = fresh_driver_name () in
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* ---- documents ---- *)

let test_document_representations_agree () =
  let flat = Document.create ~title:"memo" ~author:"liskov" ~body:"line one\nline two" in
  let listy = Document.create_lines ~title:"memo" ~author:"liskov" ~lines:[ "line one"; "line two" ] in
  Alcotest.(check bool) "equal across reps" true (Document.equal flat listy);
  Alcotest.(check int) "word count" 4 (Document.word_count flat);
  Alcotest.(check (list string)) "lines of flat" [ "line one"; "line two" ] (Document.lines flat);
  Alcotest.(check string) "body of lines" "line one\nline two" (Document.body listy)

let test_document_append_bumps_revision () =
  let d = Document.create ~title:"t" ~author:"a" ~body:"start" in
  let d2 = Document.append d "more" in
  Alcotest.(check int) "revision" 2 (Document.revision d2);
  Alcotest.(check string) "body grew" "start\nmore" (Document.body d2);
  Alcotest.(check bool) "flat stays flat" true (Document.is_flat d2)

let test_document_cross_rep_transfer () =
  let d = Document.create ~title:"spec" ~author:"clu" ~body:"a\nb\nc" in
  let wire = Codec.encode_exn (Document.to_value d) in
  let received = Document.of_value_lines (Codec.decode_exn wire) in
  Alcotest.(check bool) "faithful" true (Document.equal d received);
  Alcotest.(check bool) "line rep on the receiving node" true (not (Document.is_flat received))

let prop_document_roundtrip =
  QCheck2.Test.make ~name:"document transmit roundtrip" ~count:200
    QCheck2.Gen.(
      triple (string_size (int_range 0 20)) (string_size (int_range 0 10))
        (list_size (int_range 0 10) (string_size (int_range 0 15))))
    (fun (title, author, raw_lines) ->
      (* newline-free lines, as an editor would store them *)
      let clean = List.map (String.map (fun c -> if c = '\n' then '_' else c)) raw_lines in
      let d = Document.create_lines ~title ~author ~lines:clean in
      let wire = Codec.encode_exn (Document.to_value d) in
      let back = Document.of_value_flat (Codec.decode_exn wire) in
      (* empty lines at the end collapse in the flat body; compare bodies *)
      String.equal (Document.body d) (Document.body back))

(* ---- mailbox ---- *)

let memo n = Document.create ~title:(Printf.sprintf "memo %d" n) ~author:"boss" ~body:"do it"

let send_mail ctx ~delivery doc =
  match
    Rpc.call ctx ~to_:delivery ~timeout:(Clock.ms 500) ~attempts:3 "deliver"
      [ Document.to_value doc ]
  with
  | Rpc.Reply (command, _) -> command
  | Rpc.Failure_msg _ -> "failure"
  | Rpc.Timeout -> "timeout"

let test_mailbox_deliver_and_fetch () =
  let world = make_world () in
  let delivery, owner = Mailbox.create world ~at:0 ~owner:"ann" () in
  let outcome = ref "" and titles = ref [] and fetched = ref None in
  driver world ~at:1 (fun ctx ->
      outcome := send_mail ctx ~delivery (memo 1);
      ignore (send_mail ctx ~delivery (memo 2));
      (match Rpc.call ctx ~to_:owner ~timeout:(Clock.ms 500) "list_mail" [] with
      | Rpc.Reply ("headers", [ Value.Listv headers ]) ->
          titles :=
            List.map
              (fun h -> match h with Value.Tuple [ _; Value.Str t; _ ] -> t | _ -> "?")
              headers
      | _ -> ());
      match Rpc.call ctx ~to_:owner ~timeout:(Clock.ms 500) "fetch" [ Value.int 0 ] with
      | Rpc.Reply ("mail", [ doc_value ]) ->
          fetched := Some (Document.title (Document.of_value_flat doc_value))
      | _ -> ());
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check string) "delivered" "delivered" !outcome;
  Alcotest.(check (list string)) "headers" [ "memo 1"; "memo 2" ] !titles;
  Alcotest.(check (option string)) "fetched" (Some "memo 1") !fetched

let test_mailbox_capacity () =
  let world = make_world () in
  let delivery, _ = Mailbox.create world ~at:0 ~owner:"bea" ~capacity:2 () in
  let outcomes = ref [] in
  driver world ~at:1 (fun ctx ->
      outcomes := List.map (fun n -> send_mail ctx ~delivery (memo n)) [ 1; 2; 3 ]);
  Runtime.run_for world (Clock.s 3);
  Alcotest.(check (list string))
    "third bounces"
    [ "delivered"; "delivered"; "mailbox_full" ]
    !outcomes

let test_mailbox_mail_survives_crash () =
  let world = make_world () in
  let delivery, owner = Mailbox.create world ~at:0 ~owner:"cal" () in
  driver world ~at:1 (fun ctx -> ignore (send_mail ctx ~delivery (memo 7)));
  Runtime.run_for world (Clock.s 1);
  Runtime.crash_node world 0;
  Runtime.restart_node world 0;
  let titles = ref [] in
  driver world ~at:1 (fun ctx ->
      match Rpc.call ctx ~to_:owner ~timeout:(Clock.ms 500) "list_mail" [] with
      | Rpc.Reply ("headers", [ Value.Listv headers ]) ->
          titles :=
            List.map
              (fun h -> match h with Value.Tuple [ _; Value.Str t; _ ] -> t | _ -> "?")
              headers
      | _ -> ());
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check (list string)) "mail survived the crash" [ "memo 7" ] !titles

let test_mailbox_discard () =
  let world = make_world () in
  let delivery, owner = Mailbox.create world ~at:0 ~owner:"dot" () in
  let after = ref (-1) in
  driver world ~at:1 (fun ctx ->
      ignore (send_mail ctx ~delivery (memo 1));
      (match Rpc.call ctx ~to_:owner ~timeout:(Clock.ms 500) "discard" [ Value.int 0 ] with
      | Rpc.Reply ("discarded", _) -> ()
      | _ -> Alcotest.fail "discard failed");
      (match Rpc.call ctx ~to_:owner ~timeout:(Clock.ms 500) "discard" [ Value.int 0 ] with
      | Rpc.Reply ("no_such_mail", _) -> ()
      | _ -> Alcotest.fail "double discard should miss");
      match Rpc.call ctx ~to_:owner ~timeout:(Clock.ms 500) "list_mail" [] with
      | Rpc.Reply ("headers", [ Value.Listv headers ]) -> after := List.length headers
      | _ -> ());
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check int) "empty after discard" 0 !after

(* ---- printer ---- *)

let test_printer_prints_in_order () =
  let world = make_world () in
  let printer = Printer.create world ~at:0 ~line_time:(Clock.ms 10) () in
  let printed = ref [] and queued = ref [] in
  driver world ~at:1 (fun ctx ->
      let notify = Runtime.new_port ctx ~capacity:16 [ Vtype.wildcard ] in
      List.iter
        (fun n ->
          let doc =
            Document.create ~title:(Printf.sprintf "doc%d" n) ~author:"a" ~body:"x\ny"
          in
          match
            Rpc.call ctx ~to_:printer ~timeout:(Clock.ms 500) "print"
              [
                Document.to_value doc;
                Value.option (Some (Value.port (Dcp_core.Port.name notify)));
              ]
          with
          | Rpc.Reply ("queued", [ Value.Int pos ]) -> queued := pos :: !queued
          | _ -> ())
        [ 1; 2; 3 ];
      let rec collect () =
        match Runtime.receive ctx ~timeout:(Clock.s 2) [ notify ] with
        | `Msg (_, { Dcp_core.Message.command = "printed"; args = [ Value.Str t ]; _ }) ->
            printed := t :: !printed;
            if List.length !printed < 3 then collect ()
        | `Msg _ -> collect ()
        | `Timeout -> ()
      in
      collect ());
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check (list string)) "printed in order" [ "doc1"; "doc2"; "doc3" ] (List.rev !printed)

let test_printer_status_and_serialization () =
  let world = make_world () in
  let printer = Printer.create world ~at:0 ~line_time:(Clock.ms 50) () in
  let busy_status = ref "" in
  driver world ~at:1 (fun ctx ->
      let doc = Document.create ~title:"long" ~author:"a" ~body:(String.concat "\n" (List.init 10 string_of_int)) in
      (match
         Rpc.call ctx ~to_:printer ~timeout:(Clock.ms 500) "print"
           [ Document.to_value doc; Value.option None ]
       with
      | Rpc.Reply ("queued", _) -> ()
      | _ -> Alcotest.fail "print not queued");
      Runtime.sleep ctx (Clock.ms 100);
      match Rpc.call ctx ~to_:printer ~timeout:(Clock.ms 500) "status" [] with
      | Rpc.Reply ("status", [ Value.Str current; _; _ ]) -> busy_status := current
      | _ -> ());
  Runtime.run_for world (Clock.s 5);
  Alcotest.(check string) "device busy with the job" "long" !busy_status

let test_printer_queue_limit () =
  let world = make_world () in
  let printer = Printer.create world ~at:0 ~line_time:(Clock.s 1) ~queue_limit:2 () in
  let rejected = ref 0 in
  driver world ~at:1 (fun ctx ->
      for n = 1 to 5 do
        let doc = Document.create ~title:(string_of_int n) ~author:"a" ~body:"b" in
        match
          Rpc.call ctx ~to_:printer ~timeout:(Clock.ms 500) "print"
            [ Document.to_value doc; Value.option None ]
        with
        | Rpc.Reply ("rejected", _) -> incr rejected
        | _ -> ()
      done);
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check bool)
    (Printf.sprintf "some jobs rejected (%d)" !rejected)
    true (!rejected >= 2)

(* ---- directory + end-to-end office flow ---- *)

let test_office_end_to_end () =
  let world = make_world () in
  let directory = Directory.create world ~at:2 () in
  let ann_delivery, ann_owner = Mailbox.create world ~at:0 ~owner:"ann" () in
  let _bob_delivery, _ = Mailbox.create world ~at:1 ~owner:"bob" () in
  let got = ref None in
  driver world ~at:1 (fun ctx ->
      (* bob's node registers ann's mailbox? No: each owner registers its
         own; here the driver stands in for both owners' setup. *)
      Alcotest.(check bool) "register" true
        (Directory.register_user ctx ~directory ~user:"ann" ~port:ann_delivery);
      match Directory.lookup ctx ~directory ~user:"ann" with
      | None -> Alcotest.fail "lookup failed"
      | Some port ->
          let doc = Document.create ~title:"minutes" ~author:"bob" ~body:"..." in
          (match
             Rpc.call ctx ~to_:port ~timeout:(Clock.ms 500) "deliver" [ Document.to_value doc ]
           with
          | Rpc.Reply ("delivered", _) -> ()
          | _ -> Alcotest.fail "delivery failed");
          ());
  Runtime.run_for world (Clock.s 2);
  driver world ~at:0 (fun ctx ->
      match Rpc.call ctx ~to_:ann_owner ~timeout:(Clock.ms 500) "fetch" [ Value.int 0 ] with
      | Rpc.Reply ("mail", [ doc_value ]) ->
          got := Some (Document.author (Document.of_value_flat doc_value))
      | _ -> ());
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check (option string)) "mail from bob arrived via directory" (Some "bob") !got

let test_directory_unknown_user () =
  let world = make_world () in
  let directory = Directory.create world ~at:2 () in
  let result = ref (Some (Port_name.make ~node:0 ~guardian:0 ~index:0 ~uid:0)) in
  driver world ~at:1 (fun ctx -> result := Directory.lookup ctx ~directory ~user:"ghost");
  Runtime.run_for world (Clock.s 2);
  Alcotest.(check bool) "unknown user" true (!result = None)

let tests =
  [
    Alcotest.test_case "document reps agree" `Quick test_document_representations_agree;
    Alcotest.test_case "document append/revision" `Quick test_document_append_bumps_revision;
    Alcotest.test_case "document cross-rep transfer" `Quick test_document_cross_rep_transfer;
    QCheck_alcotest.to_alcotest prop_document_roundtrip;
    Alcotest.test_case "mailbox deliver/fetch" `Quick test_mailbox_deliver_and_fetch;
    Alcotest.test_case "mailbox capacity" `Quick test_mailbox_capacity;
    Alcotest.test_case "mail survives crash" `Quick test_mailbox_mail_survives_crash;
    Alcotest.test_case "mailbox discard" `Quick test_mailbox_discard;
    Alcotest.test_case "printer prints in order" `Quick test_printer_prints_in_order;
    Alcotest.test_case "printer status while busy" `Quick test_printer_status_and_serialization;
    Alcotest.test_case "printer queue limit" `Quick test_printer_queue_limit;
    Alcotest.test_case "office end to end" `Quick test_office_end_to_end;
    Alcotest.test_case "directory unknown user" `Quick test_directory_unknown_user;
  ]
