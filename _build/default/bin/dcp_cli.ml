(* dcp_cli — scenario driver for the guardian runtime.

   Subcommands:
     airline   run the Figure-2 airline cluster with tunable parameters
     bank      run the transfer-saga bank and audit conservation
     office    run the office automation demo (mailbox + printer)
     replica   run the replicated-register demo (LWW + anti-entropy)
     trace     run a small scenario and dump the runtime trace

   Examples:
     dune exec bin/dcp_cli.exe -- airline --regions 4 --duration 30 --crash 10
     dune exec bin/dcp_cli.exe -- airline --org one_at_a_time --centralized
     dune exec bin/dcp_cli.exe -- bank --transfers 20 --crash-coordinator
     dune exec bin/dcp_cli.exe -- office --memos 8
     dune exec bin/dcp_cli.exe -- replica --nodes 5 --writes 20
     dune exec bin/dcp_cli.exe -- trace *)

open Cmdliner
module Runtime = Dcp_core.Runtime
module Cluster = Dcp_airline.Cluster
module Workload = Dcp_airline.Workload
module Types = Dcp_airline.Types
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine

(* ---- airline ---- *)

let run_airline regions flights capacity org centralized clerks duration crash_at seed =
  let organization =
    match Types.organization_of_string org with
    | Some o -> o
    | None -> failwith (Printf.sprintf "unknown organization %S" org)
  in
  let params =
    {
      Cluster.default_params with
      regions;
      flights_per_region = flights;
      capacity;
      organization;
      centralized;
      clerks_per_region = clerks;
      seed;
      clerk = { Workload.default_config with transactions = 0; flights = regions * flights };
    }
  in
  let cluster = Cluster.build params in
  let world = cluster.Cluster.world in
  (match crash_at with
  | None -> ()
  | Some at ->
      let engine = Runtime.engine world in
      ignore
        (Engine.schedule engine ~at:(Clock.s at) (fun () ->
             Printf.printf "[%ds] crashing node 0\n%!" at;
             Runtime.crash_node world 0));
      ignore
        (Engine.schedule engine ~at:(Clock.s (at + 5)) (fun () ->
             Printf.printf "[%ds] restarting node 0\n%!" (at + 5);
             Runtime.restart_node world 0)));
  let report = Cluster.run cluster ~duration:(Clock.s duration) in
  Format.printf "%a@." Cluster.pp_report report;
  `Ok ()

let airline_cmd =
  let regions = Arg.(value & opt int 4 & info [ "regions" ] ~doc:"Number of regions/nodes.") in
  let flights =
    Arg.(value & opt int 4 & info [ "flights" ] ~doc:"Flights per region.")
  in
  let capacity = Arg.(value & opt int 100 & info [ "capacity" ] ~doc:"Seats per flight-date.") in
  let org =
    Arg.(
      value
      & opt string "monitor"
      & info [ "org" ] ~doc:"Flight guardian organization: one_at_a_time, serializer, monitor.")
  in
  let centralized =
    Arg.(value & flag & info [ "centralized" ] ~doc:"Put every regional manager on node 0.")
  in
  let clerks = Arg.(value & opt int 2 & info [ "clerks" ] ~doc:"Clerks per region.") in
  let duration =
    Arg.(value & opt int 30 & info [ "duration" ] ~doc:"Virtual seconds to simulate.")
  in
  let crash_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash" ] ~doc:"Crash node 0 at this virtual second (restarts 5s later).")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "airline" ~doc:"Run the Figure-2 distributed airline")
    Term.(
      ret
        (const run_airline $ regions $ flights $ capacity $ org $ centralized $ clerks
       $ duration $ crash_at $ seed))

(* ---- bank ---- *)

let run_bank transfers crash_coordinator seed =
  let open Dcp_wire in
  let topology = Dcp_net.Topology.full_mesh ~n:4 Dcp_net.Link.lan in
  let config = { Runtime.default_config with crash_tear_p = 0.0 } in
  let world = Runtime.create_world ~seed ~topology ~config () in
  let accounts prefix = List.init 4 (fun i -> (Printf.sprintf "%s%d" prefix i, 1000)) in
  let b0 = Dcp_bank.Branch.create world ~at:0 ~accounts:(accounts "a") () in
  let b1 = Dcp_bank.Branch.create world ~at:1 ~accounts:(accounts "b") () in
  let coordinator = Dcp_bank.Transfer.create world ~at:2 ~branches:[ b0; b1 ] () in
  let teller : Runtime.def =
    {
      Runtime.def_name = "teller";
      provides = [];
      init =
        (fun ctx _ ->
          let ok = ref 0 and failed = ref 0 in
          for i = 1 to transfers do
            (match
               Dcp_primitives.Rpc.call ctx ~to_:coordinator ~timeout:(Clock.s 2) ~attempts:3
                 "transfer"
                 [
                   Value.int 0;
                   Value.str (Printf.sprintf "a%d" (i mod 4));
                   Value.int 1;
                   Value.str (Printf.sprintf "b%d" (i mod 4));
                   Value.int (10 * i);
                 ]
             with
            | Dcp_primitives.Rpc.Reply ("ok", _) -> incr ok
            | _ -> incr failed);
            Runtime.sleep ctx (Clock.ms 50)
          done;
          Runtime.sleep ctx (Clock.s 10);
          Printf.printf "transfers ok/other: %d/%d\n%!" !ok !failed;
          (match Dcp_bank.Audit.total_balance ctx ~branches:[ b0; b1 ] () with
          | Ok total -> Printf.printf "audit total: %d (expected 8000)\n%!" total
          | Error reason -> Printf.printf "audit failed: %s\n%!" reason);
          Printf.printf "incomplete sagas: %d\n%!"
            (Dcp_bank.Transfer.incomplete_transfers world));
      recover = None;
    }
  in
  Runtime.register_def world teller;
  ignore (Runtime.create_guardian world ~at:3 ~def_name:"teller" ~args:[]);
  if crash_coordinator then begin
    let engine = Runtime.engine world in
    ignore
      (Engine.schedule engine ~at:(Clock.ms 300) (fun () ->
           Printf.printf "[0.3s] crashing coordinator\n%!";
           Runtime.crash_node world 2));
    ignore
      (Engine.schedule engine ~at:(Clock.ms 800) (fun () ->
           Printf.printf "[0.8s] restarting coordinator\n%!";
           Runtime.restart_node world 2))
  end;
  Runtime.run_for world (Clock.s 120);
  `Ok ()

let bank_cmd =
  let transfers = Arg.(value & opt int 12 & info [ "transfers" ] ~doc:"Transfers to issue.") in
  let crash =
    Arg.(value & flag & info [ "crash-coordinator" ] ~doc:"Crash the saga coordinator mid-run.")
  in
  let seed = Arg.(value & opt int 5 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "bank" ~doc:"Run the crash-recovering transfer bank")
    Term.(ret (const run_bank $ transfers $ crash $ seed))

(* ---- office ---- *)

let run_office memos seed =
  let open Dcp_wire in
  let world =
    Runtime.create_world ~seed
      ~topology:(Dcp_net.Topology.full_mesh ~n:2 Dcp_net.Link.lan)
      ()
  in
  let delivery, owner = Dcp_office.Mailbox.create world ~at:0 ~owner:"desk" () in
  let printer = Dcp_office.Printer.create world ~at:0 ~line_time:(Clock.ms 5) () in
  let clerk : Runtime.def =
    {
      Runtime.def_name = "office_clerk";
      provides = [];
      init =
        (fun ctx _ ->
          for i = 1 to memos do
            let doc =
              Dcp_office.Document.create
                ~title:(Printf.sprintf "memo %d" i)
                ~author:"clerk"
                ~body:(Printf.sprintf "body of memo %d
second line" i)
            in
            (match
               Dcp_primitives.Rpc.call ctx ~to_:delivery ~timeout:(Clock.ms 500) ~attempts:3
                 "deliver" [ Dcp_office.Document.to_value doc ]
             with
            | Dcp_primitives.Rpc.Reply ("delivered", _) -> ()
            | _ -> Printf.printf "memo %d bounced
%!" i);
            ignore
              (Dcp_primitives.Rpc.call ctx ~to_:printer ~timeout:(Clock.ms 500) "print"
                 [ Dcp_office.Document.to_value doc; Value.option None ])
          done;
          Runtime.sleep ctx (Clock.s 2);
          (match
             Dcp_primitives.Rpc.call ctx ~to_:owner ~timeout:(Clock.ms 500) "list_mail" []
           with
          | Dcp_primitives.Rpc.Reply ("headers", [ Value.Listv headers ]) ->
              Printf.printf "mailbox holds %d memo(s)
%!" (List.length headers)
          | _ -> ());
          match Dcp_primitives.Rpc.call ctx ~to_:printer ~timeout:(Clock.ms 500) "status" [] with
          | Dcp_primitives.Rpc.Reply ("status", [ Value.Str current; Value.Int q; Value.Int done_ ])
            ->
              Printf.printf "printer: %s, queue=%d, printed=%d
%!" current q done_
          | _ -> ());
      recover = None;
    }
  in
  Runtime.register_def world clerk;
  ignore (Runtime.create_guardian world ~at:1 ~def_name:"office_clerk" ~args:[]);
  Runtime.run_for world (Clock.s 30);
  `Ok ()

let office_cmd =
  let memos = Arg.(value & opt int 5 & info [ "memos" ] ~doc:"Memos to circulate.") in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "office" ~doc:"Run the office automation demo (mailbox + printer)")
    Term.(ret (const run_office $ memos $ seed))

(* ---- replica ---- *)

let run_replica nodes writes seed =
  let open Dcp_wire in
  let world =
    Runtime.create_world ~seed
      ~topology:(Dcp_net.Topology.full_mesh ~n:nodes Dcp_net.Link.lan)
      ()
  in
  let replicas =
    Dcp_primitives.Replica.create_group world
      ~nodes:(List.init nodes Fun.id)
      ~sync_every:(Clock.ms 200) ()
  in
  let writer : Runtime.def =
    {
      Runtime.def_name = "replica_writer";
      provides = [];
      init =
        (fun ctx _ ->
          Runtime.sleep ctx (Clock.ms 100);
          let rng = Dcp_rng.Rng.split (Runtime.world_rng world) in
          for i = 1 to writes do
            let replica = List.nth replicas (Dcp_rng.Rng.int rng nodes) in
            ignore
              (Dcp_primitives.Replica.write ctx ~replica ~key:"value" ~value:(Value.int i)
                 ~timeout:(Clock.s 1));
            Runtime.sleep ctx (Clock.ms 50)
          done;
          Runtime.sleep ctx (Clock.s 2);
          List.iteri
            (fun i replica ->
              match
                Dcp_primitives.Replica.read ctx ~replica ~key:"value" ~timeout:(Clock.s 1)
              with
              | Some v -> Printf.printf "replica %d: %s
%!" i (Value.to_string v)
              | None -> Printf.printf "replica %d: (no value)
%!" i)
            replicas);
      recover = None;
    }
  in
  Runtime.register_def world writer;
  ignore (Runtime.create_guardian world ~at:0 ~def_name:"replica_writer" ~args:[]);
  Runtime.run_for world (Clock.s 60);
  `Ok ()

let replica_cmd =
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Replica count.") in
  let writes = Arg.(value & opt int 10 & info [ "writes" ] ~doc:"Writes to random replicas.") in
  let seed = Arg.(value & opt int 13 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "replica" ~doc:"Run the replicated-register demo (LWW + anti-entropy)")
    Term.(ret (const run_replica $ nodes $ writes $ seed))

(* ---- trace ---- *)

let run_trace () =
  let open Dcp_wire in
  let topology = Dcp_net.Topology.full_mesh ~n:2 Dcp_net.Link.lan in
  let world = Runtime.create_world ~seed:3 ~topology () in
  let flight =
    Dcp_airline.Flight.create world ~at:0 ~flight:1 ~capacity:2 ~service_time:(Clock.ms 1) ()
  in
  let probe : Runtime.def =
    {
      Runtime.def_name = "probe";
      provides = [];
      init =
        (fun ctx _ ->
          List.iter
            (fun passenger ->
              ignore
                (Dcp_primitives.Rpc.call ctx ~to_:flight ~timeout:(Clock.ms 500) "reserve"
                   [ Value.str passenger; Value.int 1 ]))
            [ "ada"; "bob"; "cyd" ]);
      recover = None;
    }
  in
  Runtime.register_def world probe;
  ignore (Runtime.create_guardian world ~at:1 ~def_name:"probe" ~args:[]);
  Runtime.run_for world (Clock.s 2);
  Format.printf "%a" Dcp_sim.Trace.pp (Runtime.trace world);
  Format.printf "@.-- metrics --@.%a" Dcp_sim.Metrics.pp_report (Runtime.metrics world);
  `Ok ()

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a tiny scenario and dump the runtime trace and metrics")
    Term.(ret (const run_trace $ const ()))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "dcp_cli" ~doc:"Scenario driver for the 1979 guardian runtime" in
  exit
    (Cmd.eval
       (Cmd.group ~default info [ airline_cmd; bank_cmd; office_cmd; replica_cmd; trace_cmd ]))
