open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Store = Dcp_stable.Store
module Rpc = Dcp_primitives.Rpc
module Two_phase = Dcp_primitives.Two_phase
module Clock = Dcp_sim.Clock

let def_name = "itinerary"

let leg_list = Vtype.Tlist (Vtype.Ttuple [ Vtype.Tint; Vtype.Tint ])

let port_type =
  [
    Rpc.request_signature "book_trip" [ Vtype.Tstr; leg_list ]
      ~replies:[ Vtype.reply "booked" []; Vtype.reply "unavailable" [ Vtype.Tstr ] ];
    Rpc.request_signature "book_naive" [ Vtype.Tstr; leg_list ]
      ~replies:
        [
          Vtype.reply "booked" [];
          Vtype.reply "stranded" [ Vtype.Tint ];
          Vtype.reply "unavailable" [ Vtype.Tstr ];
        ];
  ]

let parse_legs legs =
  List.map
    (fun v ->
      match v with
      | Value.Tuple [ Value.Int flight; Value.Int date ] -> (flight, date)
      | _ -> invalid_arg "itinerary: malformed leg")
    legs

let config_key = "_directory"

let parse_directory args =
  List.map
    (fun v ->
      match v with
      | Value.Tuple [ Value.Int flight; Value.Portv port ] -> (flight, port)
      | _ -> invalid_arg "itinerary: malformed directory entry")
    args

(* Atomic path: one 2PC across the legs' flight guardians. *)
let book_trip ctx directory ~txid ~passenger legs =
  let lookup flight =
    match List.assoc_opt flight directory with
    | Some port -> Ok port
    | None -> Error (Printf.sprintf "no such flight %d" flight)
  in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | (flight, date) :: rest -> (
        match lookup flight with
        | Error e -> Error e
        | Ok port ->
            build ((port, Value.tuple [ Value.str passenger; Value.int date ]) :: acc) rest)
  in
  match build [] legs with
  | Error reason -> ("unavailable", [ Value.str reason ])
  | Ok participants -> (
      match Two_phase.coordinate ctx ~txid ~participants () with
      | Two_phase.Committed -> ("booked", [])
      | Two_phase.Aborted reason -> ("unavailable", [ Value.str reason ]))

(* Baseline: sequential plain reserves, no atomicity. *)
let book_naive ctx directory ~passenger legs =
  let reserve flight date =
    match List.assoc_opt flight directory with
    | None -> `Failed "no such flight"
    | Some port -> (
        match
          Rpc.call ctx ~to_:port ~timeout:(Clock.ms 500) ~attempts:3 "reserve"
            [ Value.str passenger; Value.int date ]
        with
        | Rpc.Reply (("ok" | "pre_reserved"), _) -> `Ok
        | Rpc.Reply (command, _) -> `Failed command
        | Rpc.Failure_msg reason -> `Failed reason
        | Rpc.Timeout -> `Failed "timeout")
  in
  let rec go booked = function
    | [] -> ("booked", [])
    | (flight, date) :: rest -> (
        match reserve flight date with
        | `Ok -> go (booked + 1) rest
        | `Failed reason ->
            if booked = 0 then ("unavailable", [ Value.str reason ])
            else ("stranded", [ Value.int booked ]))
  in
  go 0 legs

(* A coordinator that logged a decision but exhausted its ack rounds (the
   participant was down or partitioned for every round) leaves that
   participant prepared — holding seats — until somebody re-announces.
   Recovery covers the crash case; this covers the no-crash case: whenever
   the intake loop idles, re-announce any still-unacked decisions from a
   side process so prepared participants are eventually released. *)
let redeliver_when_idle ctx redelivering =
  if (not !redelivering) && Two_phase.pending_decisions (Runtime.store ctx) > 0 then begin
    redelivering := true;
    ignore
      (Runtime.spawn ctx ~name:"redeliver" (fun () ->
           ignore (Two_phase.redeliver_decisions ctx);
           redelivering := false))
  end

let serve ctx directory =
  let request_port = Runtime.port ctx 0 in
  let redelivering = ref false in
  let rec loop () =
    (match Runtime.receive ctx ~timeout:(Clock.s 2) [ request_port ] with
    | `Timeout -> redeliver_when_idle ctx redelivering
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
        | "book_trip", [ Value.Int id; Value.Str passenger; Value.Listv legs ], reply ->
            (* Each booking runs in its own process so slow prepares don't
               block the intake loop (Fig. 1c style). *)
            ignore
              (Runtime.spawn ctx ~name:(Printf.sprintf "trip.%d" id) (fun () ->
                   let command, args =
                     book_trip ctx directory ~txid:id ~passenger (parse_legs legs)
                   in
                   match reply with
                   | Some reply -> Runtime.send ctx ~to_:reply command (Value.int id :: args)
                   | None -> ()))
        | "book_naive", [ Value.Int id; Value.Str passenger; Value.Listv legs ], reply ->
            ignore
              (Runtime.spawn ctx ~name:(Printf.sprintf "trip.naive.%d" id) (fun () ->
                   let command, args = book_naive ctx directory ~passenger (parse_legs legs) in
                   match reply with
                   | Some reply -> Runtime.send ctx ~to_:reply command (Value.int id :: args)
                   | None -> ()))
        | _ -> ()));
    loop ()
  in
  loop ()

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 256) ];
    init =
      (fun ctx args ->
        Store.set (Runtime.store ctx) ~key:config_key (Codec.encode_exn (Value.list args));
        serve ctx (parse_directory args));
    recover =
      Some
        (fun ctx ->
          match Store.get (Runtime.store ctx) ~key:config_key with
          | None -> Runtime.self_destruct ctx
          | Some encoded ->
              (* Finish announcing any decision the crash interrupted, then
                 serve new trips.  In-flight *undecided* bookings died with
                 their processes: their participants hold seats until a
                 presumed-abort timeout would release them; clients retry
                 with the same request id and the idempotent participant
                 state answers consistently. *)
              ignore (Two_phase.redeliver_decisions ctx);
              serve ctx (parse_directory (Value.get_list (Codec.decode_exn encoded))));
  }

let create world ~at ~directory () =
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let args =
    List.map (fun (flight, port) -> Value.tuple [ Value.int flight; Value.port port ]) directory
  in
  let g = Runtime.create_guardian world ~at ~def_name ~args in
  List.hd (Runtime.guardian_ports g)
