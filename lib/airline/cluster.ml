module Runtime = Dcp_core.Runtime
module Clock = Dcp_sim.Clock
module Metrics = Dcp_sim.Metrics
module Topology = Dcp_net.Topology
module Network = Dcp_net.Network
module Link = Dcp_net.Link

type params = {
  regions : int;
  flights_per_region : int;
  capacity : int;
  organization : Types.organization;
  accounting : Types.accounting;
  service_time : Clock.time;
  clerks_per_region : int;
  clerk : Workload.config;
  local_fraction : float;
  inter_node : Link.t;
  centralized : bool;
  processors_per_node : int;
  disk : Dcp_stable.Disk.spec option;
  checkpoint_every : int option;
  seed : int;
}

let default_params =
  {
    regions = 4;
    flights_per_region = 4;
    capacity = 50;
    organization = Types.Monitor;
    accounting = Types.Idempotent_set;
    service_time = Clock.ms 1;
    clerks_per_region = 2;
    clerk = { Workload.default_config with flights = 16; transactions = 0 };
    local_fraction = 0.8;
    inter_node = Link.wan;
    centralized = false;
    processors_per_node = 8;
    disk = None;
    checkpoint_every = None;
    seed = 7;
  }

type t = {
  world : Runtime.world;
  front_desks : Dcp_wire.Port_name.t list;
  regionals : Dcp_wire.Port_name.t list;
  params : params;
}

let flights_of_region p r =
  let total = p.regions * p.flights_per_region in
  List.filter_map
    (fun f -> if f mod p.regions = r then Some { Regional.flight = f; capacity = p.capacity } else None)
    (List.init total Fun.id)

let build p =
  if p.regions <= 0 then invalid_arg "Cluster.build: need at least one region";
  let topology = Topology.full_mesh ~n:p.regions p.inter_node in
  let config =
    {
      Runtime.default_config with
      processors_per_node = p.processors_per_node;
      disk = p.disk;
      checkpoint_every = p.checkpoint_every;
    }
  in
  let world = Runtime.create_world ~seed:p.seed ~topology ~config () in
  Dcp_core.Primordial.install world;
  let region_ids = List.init p.regions Fun.id in
  let regionals =
    List.map
      (fun r ->
        let at = if p.centralized then 0 else r in
        Regional.create world ~at ~flights:(flights_of_region p r)
          ~organization:p.organization ~service_time:p.service_time ~accounting:p.accounting ())
      region_ids
  in
  (* The front desk directory is indexed by flight mod regions, matching
     the flight-to-region assignment above. *)
  let front_desks =
    List.map
      (fun r ->
        Front_desk.create world ~at:r ~regionals ~request_timeout:p.clerk.Workload.request_timeout ())
      region_ids
  in
  (* One clerk definition per region, biased towards that region's
     flights: flight f belongs to region f mod regions. *)
  List.iteri
    (fun r _ ->
      let total = p.regions * p.flights_per_region in
      let pick rng =
        if Dcp_rng.Rng.bernoulli rng p.local_fraction then
          r + (p.regions * Dcp_rng.Rng.int rng p.flights_per_region)
        else Dcp_rng.Rng.int rng total
      in
      let config = { p.clerk with Workload.flights = total; flight_picker = Some pick } in
      Workload.install world ~name:(Printf.sprintf "clerk.r%d" r) config)
    region_ids;
  List.iteri
    (fun r front_desk ->
      for _ = 1 to p.clerks_per_region do
        Workload.create_clerk world ~at:r ~name:(Printf.sprintf "clerk.r%d" r) ~front_desk
      done)
    front_desks;
  { world; front_desks; regionals; params = p }

type report = {
  duration : Clock.time;
  requests_ok : int;
  requests_failed : int;
  throughput_per_s : float;
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p95_us : float;
  latency_p99_us : float;
  transactions_completed : int;
  transactions_abandoned : int;
  messages_sent : int;
  totals : Workload.totals;
}

let run t ~duration =
  Runtime.run_for t.world duration;
  let totals = Workload.totals t.world in
  let requests_ok =
    totals.Workload.reserves_ok + totals.reserves_full + totals.reserves_waitlisted
    + totals.reserves_pre_reserved + totals.cancels_deferred
  in
  let latency = Metrics.histogram (Runtime.metrics t.world) "clerk.request.latency_us" in
  let net = Network.stats (Runtime.network t.world) in
  {
    duration;
    requests_ok;
    requests_failed = totals.request_failures;
    throughput_per_s = float_of_int requests_ok /. Clock.to_float_s duration;
    latency_mean_us = Metrics.mean latency;
    latency_p50_us = Metrics.quantile latency 0.5;
    latency_p95_us = Metrics.quantile latency 0.95;
    latency_p99_us = Metrics.quantile latency 0.99;
    transactions_completed = totals.transactions_completed;
    transactions_abandoned = totals.transactions_abandoned;
    messages_sent = net.Network.messages_sent;
    totals;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>requests ok/failed: %d/%d@ throughput: %.1f req/s@ latency us mean/p50/p95/p99: \
     %.0f/%.0f/%.0f/%.0f@ transactions done/abandoned: %d/%d@ messages: %d@]"
    r.requests_ok r.requests_failed r.throughput_per_s r.latency_mean_us r.latency_p50_us
    r.latency_p95_us r.latency_p99_us r.transactions_completed r.transactions_abandoned
    r.messages_sent
