(** The flight guardian: guards the data of a single flight (§2.3).

    "Internally, the airline guardian might make use of a guardian for each
    flight.  The top level guardian simply dispatches a request to the
    appropriate flight guardian, which does the actual work and logs
    results."

    One guardian instance holds the per-date seat data of one flight and
    services [reserve]/[cancel]/[list_passengers].  Its internal structure
    is selectable among the paper's three organizations (Figure 1):

    - {!Types.One_at_a_time}: one process, strictly sequential;
    - {!Types.Serializer}: a synchronizing process that forks a worker per
      request, at most one worker per date at a time;
    - {!Types.Monitor}: fork-per-request, workers serialize per date with a
      keyed monitor ([start_request(date)]/[end_request(date)]).

    Reserve and cancel are atomic and logged to the guardian's stable store
    before the reply is sent, so a completed operation survives a node
    crash (§2.2); the recovery process rebuilds the seat tables from the
    log.  Both are idempotent by design (§3.5) under {!Types.Idempotent_set}
    accounting; {!Types.Naive_counter} is the deliberately unsafe variant
    used to measure what idempotency buys. *)

open Dcp_wire

val def_name : string

(** Read-only parse of a flight guardian's stable store: who holds a seat
    or waitlist slot on each date, and how many transactional holds are
    still open.  This is the surface the {!Dcp_check} seat-ledger and
    2PC-atomicity oracles audit. *)
type ledger = {
  reserved : (int * string) list;  (** (date, passenger) with a seat *)
  waitlisted : (int * string) list;
  open_holds : int;  (** 2PC holds not yet committed or aborted *)
}

val ledger_of_store : Dcp_stable.Store.t -> ledger

val def : Dcp_core.Runtime.def
(** Register once per world.  Creation arguments (as message values):
    [\[Int flight_no; Int capacity; Int waitlist_capacity; Str organization;
    Int service_time_ns; Str accounting\]]. *)

val args :
  flight:Types.flight_no ->
  capacity:int ->
  ?waitlist_capacity:int ->
  ?organization:Types.organization ->
  ?service_time:Dcp_sim.Clock.time ->
  ?accounting:Types.accounting ->
  ?partner_floor:int ->
  unit ->
  Value.t list
(** Build the creation argument list (defaults: waitlist 10, monitor
    organization, 1 ms service time, idempotent accounting, no partner
    floor).  [partner_floor] is §2.3's other-airline policy: passengers
    named ["partner:..."] may not take the last [partner_floor] seats of a
    date, nor its waitlist. *)

val create_with_admin :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  flight:Types.flight_no ->
  capacity:int ->
  ?waitlist_capacity:int ->
  ?organization:Types.organization ->
  ?service_time:Dcp_sim.Clock.time ->
  ?accounting:Types.accounting ->
  ?partner_floor:int ->
  unit ->
  Port_name.t * Port_name.t
(** Like {!create} but also returns the privately held admin port
    (stats / list / archive).  Whoever is given this name holds the
    administrative capability. *)

val create :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  flight:Types.flight_no ->
  capacity:int ->
  ?waitlist_capacity:int ->
  ?organization:Types.organization ->
  ?service_time:Dcp_sim.Clock.time ->
  ?accounting:Types.accounting ->
  unit ->
  Port_name.t
(** Bootstrap helper: create the guardian and return its request port. *)
