(** Whole-system assembly: the distributed airline of Figure 2.

    "Each node belonging to the airline has one guardian P{_j} for the
    region in which it resides, and one guardian U{_j} to provide an
    interface to the airline data base for that node's users."

    A cluster builds one node per region; each node hosts its regional
    manager (with that region's flight guardians), a front desk, and that
    region's clerks.  Flight [f] belongs to region [f mod regions].  The
    [centralized] variant keeps every flight guardian behind a single
    regional manager at node 0 — the §2.3 single-top-level-guardian layout
    — so E2 can compare the two organizations the paper contrasts. *)

module Clock = Dcp_sim.Clock

type params = {
  regions : int;
  flights_per_region : int;
  capacity : int;
  organization : Types.organization;
  accounting : Types.accounting;
  service_time : Clock.time;
  clerks_per_region : int;
  clerk : Workload.config;
  local_fraction : float;
      (** probability a clerk's request concerns a flight of its own
          region — the locality the Figure 2 layout exploits *)
  inter_node : Dcp_net.Link.t;  (** link between airline nodes *)
  centralized : bool;
  processors_per_node : int;  (** CPUs per node ({!Dcp_core.Runtime.compute}) *)
  disk : Dcp_stable.Disk.spec option;
      (** disk-fault injector attached to every guardian store; [None] =
          perfect disks *)
  checkpoint_every : int option;  (** WAL auto-checkpoint period, in appends *)
  seed : int;
}

val default_params : params

type t = {
  world : Dcp_core.Runtime.world;
  front_desks : Dcp_wire.Port_name.t list;  (** one per region/node *)
  regionals : Dcp_wire.Port_name.t list;
  params : params;
}

val build : params -> t
(** Build the world and every guardian; clerks start running when the
    simulation runs. *)

type report = {
  duration : Clock.time;
  requests_ok : int;  (** requests answered with a successful outcome *)
  requests_failed : int;
  throughput_per_s : float;  (** successful clerk requests per virtual second *)
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p95_us : float;
  latency_p99_us : float;
  transactions_completed : int;
  transactions_abandoned : int;
  messages_sent : int;
  totals : Workload.totals;
}

val run : t -> duration:Clock.time -> report
(** Run the cluster for the given virtual duration and summarise. *)

val pp_report : Format.formatter -> report -> unit
