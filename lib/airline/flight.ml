open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Sync = Dcp_core.Sync
module Store = Dcp_stable.Store
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock

let def_name = "flight"

(* ------------------------------------------------------------------ *)
(* Seat data and its stable-store image                                 *)
(* ------------------------------------------------------------------ *)

type seats = { mutable reserved : string list; mutable waitlist : string list }
(* Both lists hold passengers oldest first. *)

type state = {
  flight : int;
  capacity : int;
  waitlist_capacity : int;
  organization : Types.organization;
  service_time : Clock.time;
  accounting : Types.accounting;
  partner_floor : int;
      (* seats per date that outside-airline ("partner:...") requests may
         not take — §2.3's "a reservation request from some other airline
         might not be permitted to reserve the last seat on a flight" *)
  table : (int, seats) Hashtbl.t;  (** date -> seats (idempotent accounting) *)
  counters : (int, int) Hashtbl.t;  (** date -> reserved count (naive accounting) *)
  holds : (int, string * int) Hashtbl.t;  (** 2PC txid -> tentative (passenger, date) *)
  mutable waitlist_seq : int;  (** orders waitlist entries in the store *)
}

let seats_for state date =
  match Hashtbl.find_opt state.table date with
  | Some s -> s
  | None ->
      let s = { reserved = []; waitlist = [] } in
      Hashtbl.replace state.table date s;
      s

let reserved_key date passenger = Printf.sprintf "r:%d:%s" date passenger
let hold_key txid = Printf.sprintf "h:%d" txid

let holds_on state date =
  Hashtbl.fold (fun _ (_, d) acc -> if d = date then acc + 1 else acc) state.holds 0

let held state passenger date =
  Hashtbl.fold
    (fun _ (p, d) acc -> acc || (d = date && String.equal p passenger))
    state.holds false
let waitlist_key date passenger = Printf.sprintf "w:%d:%s" date passenger
let counter_key date = Printf.sprintf "c:%d" date

(* §2.2: log, then mutate, then reply — a completed (replied-to) operation
   is always in the log. *)

let do_reserve state store passenger date =
  match state.accounting with
  | Types.Naive_counter ->
      let current = Option.value (Hashtbl.find_opt state.counters date) ~default:0 in
      if current >= state.capacity then Types.Full
      else begin
        Store.set store ~key:(counter_key date) (string_of_int (current + 1));
        Hashtbl.replace state.counters date (current + 1);
        Types.Ok_reserved
      end
  | Types.Idempotent_set ->
      let seats = seats_for state date in
      let is_partner =
        String.length passenger >= 8 && String.equal (String.sub passenger 0 8) "partner:"
      in
      let taken = List.length seats.reserved + holds_on state date in
      let limit = if is_partner then state.capacity - state.partner_floor else state.capacity in
      if List.mem passenger seats.reserved then Types.Pre_reserved
      else if taken < limit then begin
        Store.set store ~key:(reserved_key date passenger) "1";
        seats.reserved <- seats.reserved @ [ passenger ];
        Types.Ok_reserved
      end
      else if List.mem passenger seats.waitlist then Types.Wait_listed
      else if (not is_partner) && List.length seats.waitlist < state.waitlist_capacity then begin
        state.waitlist_seq <- state.waitlist_seq + 1;
        Store.set store ~key:(waitlist_key date passenger) (string_of_int state.waitlist_seq);
        seats.waitlist <- seats.waitlist @ [ passenger ];
        Types.Wait_listed
      end
      else Types.Full

let promote_from_waitlist store seats date =
  match seats.waitlist with
  | [] -> ()
  | next :: rest ->
      Store.remove store ~key:(waitlist_key date next);
      Store.set store ~key:(reserved_key date next) "1";
      seats.waitlist <- rest;
      seats.reserved <- seats.reserved @ [ next ]

let do_cancel state store passenger date =
  match state.accounting with
  | Types.Naive_counter ->
      let current = Option.value (Hashtbl.find_opt state.counters date) ~default:0 in
      if current <= 0 then Types.Not_reserved
      else begin
        Store.set store ~key:(counter_key date) (string_of_int (current - 1));
        Hashtbl.replace state.counters date (current - 1);
        Types.Canceled
      end
  | Types.Idempotent_set ->
      let seats = seats_for state date in
      if List.mem passenger seats.reserved then begin
        Store.remove store ~key:(reserved_key date passenger);
        seats.reserved <- List.filter (fun p -> not (String.equal p passenger)) seats.reserved;
        promote_from_waitlist store seats date;
        Types.Canceled
      end
      else if List.mem passenger seats.waitlist then begin
        Store.remove store ~key:(waitlist_key date passenger);
        seats.waitlist <- List.filter (fun p -> not (String.equal p passenger)) seats.waitlist;
        Types.Canceled
      end
      else Types.Not_reserved

let do_list state date =
  match state.accounting with
  | Types.Naive_counter ->
      let current = Option.value (Hashtbl.find_opt state.counters date) ~default:0 in
      List.init current (fun i -> Printf.sprintf "seat-%d" i)
  | Types.Idempotent_set -> (seats_for state date).reserved

(* Rebuild the volatile tables from the recovered stable store. *)
let rebuild state store =
  Hashtbl.reset state.table;
  Hashtbl.reset state.counters;
  let waitlisted = ref [] in
  List.iter
    (fun (key, value) ->
      match String.split_on_char ':' key with
      | [ "r"; date; passenger ] ->
          let seats = seats_for state (int_of_string date) in
          seats.reserved <- seats.reserved @ [ passenger ]
      | [ "w"; date; passenger ] ->
          waitlisted := (int_of_string value, int_of_string date, passenger) :: !waitlisted
      | [ "c"; date ] -> Hashtbl.replace state.counters (int_of_string date) (int_of_string value)
      | [ "h"; txid ] -> (
          match Codec.decode_exn value with
          | Value.Tuple [ Value.Str passenger; Value.Int date ] ->
              Hashtbl.replace state.holds (int_of_string txid) (passenger, date)
          | _ -> ())
      | _ -> ())
    (Store.to_alist store);
  (* Waitlists are rebuilt in their original arrival order. *)
  let waitlist_order (s1, d1, p1) (s2, d2, p2) =
    let c = Int.compare s1 s2 in
    if c <> 0 then c
    else
      let c = Int.compare d1 d2 in
      if c <> 0 then c else String.compare p1 p2
  in
  List.iter
    (fun (seq, date, passenger) ->
      state.waitlist_seq <- Int.max state.waitlist_seq seq;
      let seats = seats_for state date in
      seats.waitlist <- seats.waitlist @ [ passenger ])
    (List.sort waitlist_order !waitlisted)

(* ------------------------------------------------------------------ *)
(* Request handling under the three organizations                      *)
(* ------------------------------------------------------------------ *)

let perform ctx state msg =
  let store = Runtime.store ctx in
  Rpc.serve_always ctx msg ~f:(fun command args ->
      match (command, args) with
      | "reserve", [ Value.Str passenger; Value.Int date ] ->
          (Types.reserve_reply_command (do_reserve state store passenger date), [])
      | "cancel", [ Value.Str passenger; Value.Int date ] ->
          (Types.cancel_reply_command (do_cancel state store passenger date), [])
      | "list_passengers", [ Value.Int date ] ->
          ("info", [ Value.list (List.map Value.str (do_list state date)) ])
      | _ -> ("no_such_flight", []))

(* 2PC participant hooks (§3's "recoverable atomic transactions"): prepare
   places a tentative hold on a seat, commit converts it into a real
   reservation, abort releases it.  Holds are logged, so a crashed
   participant recovers still holding them. *)
let participant_hooks ctx state =
  let store = Runtime.store ctx in
  let prepare ~txid payload =
    match payload with
    | Value.Tuple [ Value.Str passenger; Value.Int date ] ->
        let seats = seats_for state date in
        if List.mem passenger seats.reserved || held state passenger date then
          Error "already booked"
        else if List.length seats.reserved + holds_on state date >= state.capacity then
          Error "full"
        else begin
          Store.set store ~key:(hold_key txid)
            (Codec.encode_exn (Value.tuple [ Value.str passenger; Value.int date ]));
          Hashtbl.replace state.holds txid (passenger, date);
          Ok ()
        end
    | _ -> Error "malformed hold request"
  in
  let commit ~txid =
    match Hashtbl.find_opt state.holds txid with
    | None -> ()
    | Some (passenger, date) ->
        Store.remove store ~key:(hold_key txid);
        Store.set store ~key:(reserved_key date passenger) "1";
        Hashtbl.remove state.holds txid;
        let seats = seats_for state date in
        if not (List.mem passenger seats.reserved) then
          seats.reserved <- seats.reserved @ [ passenger ]
  in
  let abort ~txid =
    match Hashtbl.find_opt state.holds txid with
    | None -> ()
    | Some _ ->
        Store.remove store ~key:(hold_key txid);
        Hashtbl.remove state.holds txid
  in
  { Dcp_primitives.Two_phase.prepare; commit; abort }

let date_of_request msg =
  match msg.Message.args with
  | [ Value.Int _id; Value.Str _; Value.Int date ] -> date
  | [ Value.Int _id; Value.Int date ] -> date
  | _ -> 0

(* Administrative requests (second birth port): list, stats, archive.  They
   never sleep, so they are handled inline by the receiving process. *)
let handle_admin ctx state msg =
  let store = Runtime.store ctx in
  Rpc.serve_always ctx msg ~f:(fun command args ->
      match (command, args) with
      | "list_passengers", [ Value.Int date ] ->
          ("info", [ Value.list (List.map Value.str (do_list state date)) ])
      | "stats", [] ->
          let reserved = ref 0 and waitlisted = ref 0 in
          Hashtbl.iter
            (fun _ seats ->
              reserved := !reserved + List.length seats.reserved;
              waitlisted := !waitlisted + List.length seats.waitlist)
            state.table;
          Hashtbl.iter (fun _ count -> reserved := !reserved + count) state.counters;
          ( "stats",
            [
              Value.record
                [
                  ("dates", Value.int (Hashtbl.length state.table + Hashtbl.length state.counters));
                  ("reserved", Value.int !reserved);
                  ("waitlisted", Value.int !waitlisted);
                  ("holds", Value.int (Hashtbl.length state.holds));
                ];
            ] )
      | "archive_date", [ Value.Int date ] ->
          (* §2.3: "deleting or archiving information about flights that
             have occurred" — drop the date's data, including its log. *)
          let removed = ref 0 in
          (match Hashtbl.find_opt state.table date with
          | Some seats ->
              List.iter
                (fun p ->
                  incr removed;
                  Store.remove store ~key:(reserved_key date p))
                seats.reserved;
              List.iter
                (fun p ->
                  incr removed;
                  Store.remove store ~key:(waitlist_key date p))
                seats.waitlist;
              Hashtbl.remove state.table date
          | None -> ());
          (match Hashtbl.find_opt state.counters date with
          | Some count ->
              removed := !removed + count;
              Store.remove store ~key:(counter_key date);
              Hashtbl.remove state.counters date
          | None -> ());
          ("archived", [ Value.int !removed ])
      | _ -> ("failure", [ Value.str "unknown admin request" ]))

(* 2PC control messages are handled immediately in the receiving process
   (they only flip logged hold state and never sleep), whatever the
   organization; data requests go through the organization's machinery. *)
let handle_2pc ctx state msg =
  Dcp_primitives.Two_phase.handle_participant ctx ~hooks:(participant_hooks ctx state) msg

(* Fig. 1a: process p handles requests sequentially.  Admin traffic has
   priority (earlier in the port list) and is served without the data
   service time. *)
let serve_one_at_a_time ctx state =
  let request_port = Runtime.port ctx 0 in
  let admin_port = Runtime.port ctx 1 in
  let rec loop () =
    match Runtime.receive ctx [ admin_port; request_port ] with
    | `Timeout -> loop ()
    | `Msg (p, msg) ->
        if Port_name.equal (Port.name p) (Port.name admin_port) then handle_admin ctx state msg
        else if not (handle_2pc ctx state msg) then begin
          Runtime.compute ctx state.service_time;
          perform ctx state msg
        end;
        loop ()
  in
  loop ()

(* Fig. 1b: process p uses synchronization data S to decide when requests
   may run, forking a worker q_i per request; one worker per date. *)
let serve_serializer ctx state =
  let request_port = Runtime.port ctx 0 in
  let admin_port = Runtime.port ctx 1 in
  let busy : (int, Message.t Queue.t) Hashtbl.t = Hashtbl.create 16 in
  (* date -> queued requests; presence of a binding means a worker owns the
     date.  The dispatcher is the only writer, so no further locking. *)
  let rec fork_worker date msg =
    ignore
      (Runtime.spawn ctx ~name:(Printf.sprintf "flight%d.worker.d%d" state.flight date)
         (fun () ->
           Runtime.compute ctx state.service_time;
           perform ctx state msg;
           finish date))
  and finish date =
    match Hashtbl.find_opt busy date with
    | None -> ()
    | Some q -> (
        match Queue.take_opt q with
        | Some next -> fork_worker date next
        | None -> Hashtbl.remove busy date)
  in
  let dispatch msg =
    let date = date_of_request msg in
    match Hashtbl.find_opt busy date with
    | Some q -> Queue.add msg q
    | None ->
        Hashtbl.replace busy date (Queue.create ());
        fork_worker date msg
  in
  let rec loop () =
    match Runtime.receive ctx [ admin_port; request_port ] with
    | `Timeout -> loop ()
    | `Msg (p, msg) ->
        if Port_name.equal (Port.name p) (Port.name admin_port) then handle_admin ctx state msg
        else if not (handle_2pc ctx state msg) then dispatch msg;
        loop ()
  in
  loop ()

(* Fig. 1c: fork q_i on receipt; the q_i synchronize with each other using
   monitor M (start_request(date) / end_request(date)). *)
let serve_monitor ctx state =
  let request_port = Runtime.port ctx 0 in
  let admin_port = Runtime.port ctx 1 in
  let monitor : int Sync.keyed_lock = Runtime.sync_keyed_lock ctx in
  let rec loop () =
    match Runtime.receive ctx [ admin_port; request_port ] with
    | `Timeout -> loop ()
    | `Msg (p, msg) ->
        if Port_name.equal (Port.name p) (Port.name admin_port) then begin
          handle_admin ctx state msg;
          loop ()
        end
        else if handle_2pc ctx state msg then loop ()
        else begin
          let date = date_of_request msg in
          ignore
            (Runtime.spawn ctx ~name:(Printf.sprintf "flight%d.req" state.flight) (fun () ->
                 Sync.with_key monitor date (fun () ->
                     Runtime.compute ctx state.service_time;
                     perform ctx state msg)));
          loop ()
        end
  in
  loop ()

let serve ctx state =
  match state.organization with
  | Types.One_at_a_time -> serve_one_at_a_time ctx state
  | Types.Serializer -> serve_serializer ctx state
  | Types.Monitor -> serve_monitor ctx state

(* ------------------------------------------------------------------ *)
(* Guardian definition                                                  *)
(* ------------------------------------------------------------------ *)

let state_of_args args =
  match args with
  | [
   Value.Int flight;
   Value.Int capacity;
   Value.Int waitlist_capacity;
   Value.Str org;
   Value.Int service_ns;
   Value.Str accounting;
   Value.Int partner_floor;
  ] ->
      let organization =
        match Types.organization_of_string org with
        | Some o -> o
        | None -> invalid_arg ("flight guardian: unknown organization " ^ org)
      in
      let accounting =
        match Types.accounting_of_string accounting with
        | Some a -> a
        | None -> invalid_arg ("flight guardian: unknown accounting " ^ accounting)
      in
      {
        flight;
        capacity;
        waitlist_capacity;
        organization;
        service_time = service_ns;
        accounting;
        partner_floor;
        table = Hashtbl.create 32;
        counters = Hashtbl.create 32;
        holds = Hashtbl.create 8;
        waitlist_seq = 0;
      }
  | _ -> invalid_arg "flight guardian: bad creation arguments"

(* The creation arguments are re-logged under a reserved key so the
   recovery process can rebuild the same configuration. *)
let config_key = "_config"

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (Types.flight_port_type, 256); (Types.flight_admin_port_type, 64) ];
    init =
      (fun ctx args ->
        let state = state_of_args args in
        let encoded = Codec.encode_exn (Value.list args) in
        Store.set (Runtime.store ctx) ~key:config_key encoded;
        serve ctx state);
    recover =
      Some
        (fun ctx ->
          let store = Runtime.store ctx in
          match Store.get store ~key:config_key with
          | None ->
              (* the crash tore even the config record: nothing recoverable *)
              Runtime.self_destruct ctx
          | Some encoded ->
              let args = Value.get_list (Codec.decode_exn encoded) in
              let state = state_of_args args in
              rebuild state store;
              serve ctx state);
  }

let args ~flight ~capacity ?(waitlist_capacity = 10) ?(organization = Types.Monitor)
    ?(service_time = Clock.ms 1) ?(accounting = Types.Idempotent_set) ?(partner_floor = 0) () =
  [
    Value.int flight;
    Value.int capacity;
    Value.int waitlist_capacity;
    Value.str (Types.organization_to_string organization);
    Value.int service_time;
    Value.str (Types.accounting_to_string accounting);
    Value.int partner_floor;
  ]

let create_with_admin world ~at ~flight ~capacity ?waitlist_capacity ?organization
    ?service_time ?accounting ?partner_floor () =
  let args =
    args ~flight ~capacity ?waitlist_capacity ?organization ?service_time ?accounting
      ?partner_floor ()
  in
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let g = Runtime.create_guardian world ~at ~def_name ~args in
  match Runtime.guardian_ports g with
  | [ request; admin ] -> (request, admin)
  | _ -> invalid_arg "flight guardian: unexpected port layout"

let create world ~at ~flight ~capacity ?waitlist_capacity ?organization ?service_time
    ?accounting () =
  fst
    (create_with_admin world ~at ~flight ~capacity ?waitlist_capacity ?organization
       ?service_time ?accounting ())

(* External, read-only view of a flight store's seat ledger, keyed the way
   the store is.  Invariant oracles (Dcp_check) consume this instead of
   re-parsing the key format themselves.  (Kept at the end of the module:
   its field names overlap the internal seat-table record's.) *)
type ledger = {
  reserved : (int * string) list;
  waitlisted : (int * string) list;
  open_holds : int;
}

let ledger_of_store store =
  let reserved = ref [] and waitlisted = ref [] and open_holds = ref 0 in
  List.iter
    (fun (key, _value) ->
      match String.split_on_char ':' key with
      | [ "r"; date; passenger ] -> reserved := (int_of_string date, passenger) :: !reserved
      | [ "w"; date; passenger ] -> waitlisted := (int_of_string date, passenger) :: !waitlisted
      | [ "h"; _txid ] -> incr open_holds
      | _ -> ())
    (Store.to_alist store);
  { reserved = List.rev !reserved; waitlisted = List.rev !waitlisted; open_holds = !open_holds }
