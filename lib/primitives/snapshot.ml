open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Store = Dcp_stable.Store
module Metrics = Dcp_sim.Metrics
module Clock = Dcp_sim.Clock
module Table = Register.Table

let def_name = "scd_snapshot"

let state_entry_type = Vtype.Ttuple [ Vtype.Tstr; Vtype.Tany ]

let port_type =
  [
    Rpc.request_signature "update" [ Vtype.Tstr; Vtype.Tany ]
      ~replies:[ Vtype.reply "updated" []; Vtype.reply "not_ready" [] ];
    Rpc.request_signature "snapshot" []
      ~replies:
        [ Vtype.reply "state" [ Vtype.Tlist state_entry_type ]; Vtype.reply "not_ready" [] ];
    Scd.members_signature;
  ]
  @ Scd.signatures

let write_payload ~key ~value = Value.tuple [ Value.str "w"; Value.str key; value ]
let sync_payload = Value.tuple [ Value.str "s" ]

(* ---- durable at-most-once request records (same discipline as Register) ---- *)

let rid_key rid = Printf.sprintf "rid:%d" rid
let inflight_marker = "?"

let record_inflight ctx rid = Store.set (Runtime.store ctx) ~key:(rid_key rid) inflight_marker

let record_reply ctx rid ~command args =
  Store.set (Runtime.store ctx) ~key:(rid_key rid)
    (Codec.encode_exn (Value.tuple [ Value.str command; Value.list args ]))

let recorded_reply store rid =
  match Store.get store ~key:(rid_key rid) with
  | None -> None
  | Some data when String.equal data inflight_marker -> Some None
  | Some data -> (
      match Codec.decode data with
      | Ok (Value.Tuple [ Value.Str command; Value.Listv args ]) -> Some (Some (command, args))
      | Ok _ | Error _ -> Some None)

(* ---- member state ---- *)

type action = Reply_updated | Reply_state

type pending = { reply : Port_name.t; rid : int; action : action }

type state = {
  scd : Scd.t;
  table : Table.t;
  pending : (int, pending) Hashtbl.t;
  malformed : Metrics.counter;
}

let send_reply ctx ~reply ~rid command args =
  Runtime.send ctx ~to_:reply command (Value.int rid :: args)

(* The atomic view: the whole table at this member's delivery point,
   key-sorted so identical states always encode identically. *)
let state_value st =
  Value.list
    (List.map
       (fun (key, value, _) -> Value.tuple [ Value.str key; value ])
       (Table.sorted_entries st.table))

let resolve ctx st ~seq =
  match Hashtbl.find_opt st.pending seq with
  | None -> ()
  | Some p ->
      Hashtbl.remove st.pending seq;
      let command, args =
        match p.action with
        | Reply_updated -> ("updated", [])
        | Reply_state -> ("state", [ state_value st ])
      in
      record_reply ctx p.rid ~command args;
      send_reply ctx ~reply:p.reply ~rid:p.rid command args

let apply_deliveries ctx st =
  List.iter
    (fun set ->
      List.iter
        (fun (d : Scd.delivery) ->
          match d.Scd.payload with
          | Value.Tuple [ Value.Str "w"; Value.Str key; value ] ->
              Table.apply ctx st.table ~key ~value ~ts:d.Scd.ts
          | _ -> ())
        set;
      List.iter
        (fun (d : Scd.delivery) ->
          if d.Scd.id.Scd.origin = Scd.self st.scd then resolve ctx st ~seq:d.Scd.id.Scd.seq)
        set)
    (Scd.drain st.scd)

let handle_request ctx st ~reply ~rid command args =
  match recorded_reply (Runtime.store ctx) rid with
  | Some (Some (recorded, recorded_args)) -> send_reply ctx ~reply ~rid recorded recorded_args
  | Some None -> ()
  | None -> (
      match (command, args) with
      | "update", [ Value.Str key; value ] ->
          record_inflight ctx rid;
          let id = Scd.broadcast ctx st.scd (write_payload ~key ~value) in
          Hashtbl.replace st.pending id.Scd.seq { reply; rid; action = Reply_updated }
      | "snapshot", [] ->
          record_inflight ctx rid;
          let id = Scd.broadcast ctx st.scd sync_payload in
          Hashtbl.replace st.pending id.Scd.seq { reply; rid; action = Reply_state }
      | "members", _ -> send_reply ctx ~reply ~rid "members_ok" []
      | _ -> Metrics.incr st.malformed)

let serve ctx st =
  let request_port = Runtime.port ctx 0 in
  Scd.spawn_ticker ctx st.scd;
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> (
        match Scd.handle ctx st.scd msg with
        | `Handled -> apply_deliveries ctx st
        | `Unrelated -> (
            match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
            | "failure", _, _ -> ()
            | command, Value.Int rid :: args, Some reply ->
                handle_request ctx st ~reply ~rid command args;
                apply_deliveries ctx st
            | _ -> Metrics.incr st.malformed)));
    loop ()
  in
  loop ()

let make_state ctx ~scd ~table =
  {
    scd;
    table;
    pending = Hashtbl.create 16;
    malformed =
      Metrics.counter (Runtime.ctx_metrics ctx) Register.metric_malformed;
  }

let await_members ctx ~config =
  let request_port = Runtime.port ctx 0 in
  let rec wait () =
    match Runtime.receive ctx [ request_port ] with
    | `Timeout -> wait ()
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
        | "members", [ Value.Int rid; members_arg ], Some reply -> (
            match Scd.parse_members [ members_arg ] with
            | Some members when members <> [] ->
                let scd = Scd.create ctx ~config ~members () in
                let st = make_state ctx ~scd ~table:(Table.restore (Runtime.store ctx)) in
                send_reply ctx ~reply ~rid "members_ok" [];
                serve ctx st
            | Some _ | None -> wait ())
        | _, Value.Int rid :: _, Some reply ->
            send_reply ctx ~reply ~rid "not_ready" [];
            wait ()
        | _ -> wait ())
  in
  wait ()

let recover ctx =
  let store = Runtime.store ctx in
  match Scd.recover ctx with
  | Some scd -> serve ctx (make_state ctx ~scd ~table:(Table.restore store))
  | None -> await_members ctx ~config:(Scd.config_in_store store)

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 512) ];
    init =
      (fun ctx args ->
        match args with
        | [ Value.Int status_every; Value.Int resend_max ]
          when status_every > 0 && resend_max > 0 ->
            let config = { Scd.status_every; resend_max } in
            Scd.persist_group_config ctx config;
            await_members ctx ~config
        | _ -> invalid_arg "snapshot: bad creation arguments");
    recover = Some recover;
  }

let create_group world ~nodes ?(status_every = Clock.ms 100) ?(resend_max = 32) ~introduce_at
    () =
  if nodes = [] then invalid_arg "Snapshot.create_group: need at least one node";
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let args = [ Value.int status_every; Value.int resend_max ] in
  let ports =
    List.map
      (fun at ->
        let g = Runtime.create_guardian world ~at ~def_name ~args in
        List.hd (Runtime.guardian_ports g))
      nodes
  in
  Scd.introduce world ~group:def_name ~at:introduce_at ~members:ports;
  ports

let update ctx ~snapshot ~key ~value ~timeout =
  match
    Rpc.call ctx ~to_:snapshot ~timeout ~attempts:1 "update" [ Value.str key; value ]
  with
  | Rpc.Reply ("updated", _) -> true
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> false

let scan ctx ~snapshot ~timeout =
  match Rpc.call ctx ~to_:snapshot ~timeout ~attempts:1 "snapshot" [] with
  | Rpc.Reply ("state", [ Value.Listv entries ]) ->
      List.fold_left
        (fun acc v ->
          match (acc, v) with
          | Some parsed, Value.Tuple [ Value.Str key; value ] -> Some ((key, value) :: parsed)
          | _, _ -> None)
        (Some []) entries
      |> Option.map List.rev
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> None
