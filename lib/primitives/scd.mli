(** SCD-broadcast: Set-Constrained Delivery broadcast over no-wait send.

    The abstraction of Imbs, Mostéfaoui, Perrin and Raynal (PAPERS.md):
    processes broadcast messages and deliver {e sets} of messages such that

    - {b Containment/Integrity}: the sets delivered at one process partition
      a subset of the broadcast messages — no duplicates, no inventions;
    - {b MS-Ordering}: no two processes deliver two messages in opposite
      set-orders (if p delivers m strictly before m', no q delivers m'
      strictly before m);
    - {b Termination}: every broadcast by a correct (eventually-recovered)
      member is eventually delivered everywhere, and every delivered message
      is delivered at every member.

    The implementation is a Lamport-frontier construction: every message
    carries a (clock, origin) timestamp, members exchange periodic status
    messages announcing their clock and per-origin contiguous-receive and
    durable delivered watermarks, and a member delivers — as one set —
    everything up to the minimum clock all members have announced safe.
    Receive watermarks drive origin resends; the delivered watermarks —
    monotone across the announcer's crashes — bound own-log pruning, so a
    recovering member can always be refilled.  This actually yields
    totally ordered sets (stronger than SCD requires), which is what the
    register layer above exploits; lost messages are recovered by their
    origin resending on status evidence, so termination holds under the
    crash-{e recovery} model (a member that crashes forever can block the
    frontier — the same liveness caveat as two-phase commit in §3.5).

    An [Scd.t] is embedded inside a guardian: the guardian splices
    {!signatures} into its port type, feeds every received message through
    {!handle}, and pulls newly delivered sets with {!drain}.  All state a
    restart must not lose (clock, own sequence number, delivery frontier,
    per-origin delivered watermarks, the member list, and the member's own
    message log for resends) is persisted in the guardian's stable store
    under ["scd:"] keys; reorder buffers are volatile and refill via
    resends. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Clock = Dcp_sim.Clock

type config = {
  status_every : Clock.time;  (** status gossip period *)
  resend_max : int;  (** max own messages resent per received status *)
}

val default_config : config

type msg_id = { origin : int; seq : int }
(** Identity of a broadcast: the member index that minted it and its
    per-origin sequence number (1-based, contiguous). *)

type ts = int * int
(** Delivery timestamp (Lamport clock, origin index): a unique total order
    over all broadcasts of a group. *)

val ts_compare : ts -> ts -> int

type delivery = { id : msg_id; ts : ts; payload : Value.t }

type t

val signatures : Vtype.signature list
(** The [scd_msg] and [scd_status] signatures to splice into the embedding
    guardian's port type. *)

val create : Runtime.ctx -> ?config:config -> members:Port_name.t list -> unit -> t
(** Join a group: [members] are the request ports of every member
    (including this guardian's own port 0).  Members are sorted internally
    so all of them agree on origin indices.
    @raise Invalid_argument if own port 0 is not among [members]. *)

val recover : Runtime.ctx -> t option
(** Rebuild from the stable store after a crash; [None] if this guardian
    never joined a group (no ["scd:members"] key). *)

val broadcast : Runtime.ctx -> t -> Value.t -> msg_id
(** Timestamp a payload, append it to the durable own-message log, send it
    to every other member (no-wait) and enqueue it locally.  Delivery —
    including self-delivery — is only ever observed through {!drain}. *)

val handle : Runtime.ctx -> t -> Dcp_core.Message.t -> [ `Handled | `Unrelated ]
(** Feed one received message through the protocol.  [`Unrelated] means the
    command is not an SCD message and the caller should interpret it.
    Malformed SCD messages are dropped and counted, never raised. *)

val drain : t -> delivery list list
(** Newly delivered sets since the last drain, oldest first; each set is
    sorted by {!ts}.  Sets are never re-delivered (the frontier is durable),
    so the caller must apply them to durable state before yielding. *)

val tick : Runtime.ctx -> t -> unit
(** Send one status round to every other member.  Usually driven by
    {!spawn_ticker}; exposed for deterministic unit tests. *)

val spawn_ticker : Runtime.ctx -> t -> unit
(** Periodic {!tick} every [config.status_every], phase-staggered
    deterministically from the world RNG split. *)

val introduce :
  Runtime.world -> group:string -> at:Runtime.node_id -> members:Port_name.t list -> unit
(** Bootstrap helper: register and start a ["<group>_bootstrap"] guardian at
    node [at] that repeatedly offers the full member list to every member
    (["members"] request, ["members_ok"] reply, pinned request ids) until
    each has acknowledged, riding out crash-restart cycles.
    @raise Invalid_argument if the group was already introduced. *)

val members_signature : Vtype.signature
(** The ["members"] join RPC served by guardians embedding an SCD member. *)

val persist_group_config : Runtime.ctx -> config -> unit
(** Persist the SCD config before the group is joined, so a member that
    crashes pre-join comes back with the configured cadence. *)

val config_in_store : Dcp_stable.Store.t -> config
(** The persisted config, or {!default_config} when absent/garbled. *)

val parse_members : Value.t list -> Port_name.t list option
(** Strict parse of the ["members"] request's port-list argument. *)

(** {1 Observability} *)

val self : t -> int
(** This member's origin index. *)

val member_count : t -> int
val clock : t -> int
val frontier : t -> int
(** Largest clock delivered so far. *)

val metric_msgs : string
val metric_statuses : string
val metric_resends : string
val metric_malformed : string
val metric_sets : string
val metric_set_msgs : string
