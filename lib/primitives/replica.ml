open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Clock = Dcp_sim.Clock

let def_name = "replica"

let stamp_type = Vtype.Ttuple [ Vtype.Tint; Vtype.Tint ]

let port_type =
  [
    Rpc.request_signature "write" [ Vtype.Tstr; Vtype.Tany ]
      ~replies:[ Vtype.reply "written" [ stamp_type ] ];
    Rpc.request_signature "read" [ Vtype.Tstr ]
      ~replies:[ Vtype.reply "value" [ Vtype.Tany; stamp_type ]; Vtype.reply "unknown_key" [] ];
    Rpc.request_signature "join" [ Vtype.Tlist Vtype.Tport ]
      ~replies:[ Vtype.reply "joined" [] ];
    Vtype.signature "gossip" [ Vtype.Tstr; Vtype.Tany; stamp_type ];
    Vtype.signature "sync_digest" [ Vtype.Tlist (Vtype.Ttuple [ Vtype.Tstr; stamp_type ]) ];
  ]

(* A stamp orders writes totally: Lamport counter first, origin id as the
   tiebreak. *)
type stamp = int * int

let stamp_compare (c1, o1) (c2, o2) =
  let c = Int.compare c1 c2 in
  if c <> 0 then c else Int.compare o1 o2

type state = {
  replica_id : int;
  sync_every : Clock.time;
  table : (string, Value.t * stamp) Hashtbl.t;
  mutable clock : int;
  mutable peers : Port_name.t list;
}

let stamp_value (counter, origin) = Value.tuple [ Value.int counter; Value.int origin ]

let stamp_of_value v =
  match v with
  | Value.Tuple [ Value.Int counter; Value.Int origin ] -> (counter, origin)
  | _ -> invalid_arg "replica: malformed stamp"

let observe_stamp state (counter, _) = state.clock <- Int.max state.clock counter

(* Apply a stamped write; true if it won (newer than what we hold). *)
let apply state ~key ~value ~stamp =
  observe_stamp state stamp;
  match Hashtbl.find_opt state.table key with
  | Some (_, existing) when stamp_compare existing stamp >= 0 -> false
  | Some _ | None ->
      Hashtbl.replace state.table key (value, stamp);
      true

let broadcast_gossip ctx state ~key ~value ~stamp =
  List.iter
    (fun peer ->
      Runtime.send ctx ~to_:peer "gossip" [ Value.str key; value; stamp_value stamp ])
    state.peers

(* Anti-entropy: tell every peer what we hold; a peer answers (via plain
   gossip) with anything it has newer, and applies anything we had newer —
   here simplified to a push of our whole digest, with peers pulling by
   re-gossiping winners.  For the modest registers this guards, shipping
   values with the digest keeps it one round. *)
let send_sync ctx state =
  (* Digest entries in key order: the wire image of the digest is a pure
     function of the table's contents, not of its hash layout. *)
  let digest =
    Hashtbl.fold (fun key (_, stamp) acc -> (key, stamp) :: acc) state.table []
    |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
    |> List.map (fun (key, stamp) -> Value.tuple [ Value.str key; stamp_value stamp ])
  in
  (* reply_to carries our own request port so peers can gossip back what we
     are missing *)
  let own = Dcp_core.Port.name (Runtime.port ctx 0) in
  List.iter
    (fun peer ->
      Runtime.send ctx ~to_:peer ~reply_to:own "sync_digest" [ Value.list digest ])
    state.peers

let handle_sync_digest ctx state ~reply_gossip_to digest =
  (* For every key where we hold something newer than the digest claims —
     or that the digest lacks — gossip our version back to the sender. *)
  let claimed = Hashtbl.create 16 in
  List.iter
    (fun entry ->
      match entry with
      | Value.Tuple [ Value.Str key; stamp ] -> Hashtbl.replace claimed key (stamp_of_value stamp)
      | _ -> ())
    digest;
  Hashtbl.fold (fun key entry acc -> (key, entry) :: acc) state.table []
  |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
  |> List.iter (fun (key, (value, stamp)) ->
         let newer_than_claimed =
           match Hashtbl.find_opt claimed key with
           | None -> true
           | Some theirs -> stamp_compare theirs stamp < 0
         in
         if newer_than_claimed then
           Runtime.send ctx ~to_:reply_gossip_to "gossip"
             [ Value.str key; value; stamp_value stamp ])

let serve ctx state =
  let request_port = Runtime.port ctx 0 in
  (* periodic anti-entropy *)
  ignore
    (Runtime.spawn ctx ~name:"replica.sync" (fun () ->
         let rec tick () =
           Runtime.sleep ctx state.sync_every;
           if state.peers <> [] then send_sync ctx state;
           tick ()
         in
         tick ()));
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args) with
        | "write", [ Value.Int id; Value.Str key; value ] ->
            state.clock <- state.clock + 1;
            let stamp = (state.clock, state.replica_id) in
            ignore (apply state ~key ~value ~stamp);
            broadcast_gossip ctx state ~key ~value ~stamp;
            (match msg.Message.reply_to with
            | Some reply ->
                Runtime.send ctx ~to_:reply "written" [ Value.int id; stamp_value stamp ]
            | None -> ())
        | "read", [ Value.Int id; Value.Str key ] -> (
            match (Hashtbl.find_opt state.table key, msg.Message.reply_to) with
            | Some (value, stamp), Some reply ->
                Runtime.send ctx ~to_:reply "value"
                  [ Value.int id; value; stamp_value stamp ]
            | None, Some reply -> Runtime.send ctx ~to_:reply "unknown_key" [ Value.int id ]
            | _, None -> ())
        | "join", [ Value.Int id; Value.Listv peers ] ->
            state.peers <- List.map Value.get_port peers;
            (match msg.Message.reply_to with
            | Some reply -> Runtime.send ctx ~to_:reply "joined" [ Value.int id ]
            | None -> ())
        | "gossip", [ Value.Str key; value; stamp ] ->
            ignore (apply state ~key ~value ~stamp:(stamp_of_value stamp))
        | "sync_digest", [ Value.Listv digest ] -> (
            match msg.Message.reply_to with
            | Some reply -> handle_sync_digest ctx state ~reply_gossip_to:reply digest
            | None ->
                (* digest without a return path: apply-side only; nothing to
                   answer *)
                ())
        | _ -> ()));
    loop ()
  in
  loop ()

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 512) ];
    init =
      (fun ctx args ->
        match args with
        | [ Value.Int sync_every ] ->
            serve ctx
              {
                replica_id = Runtime.guardian_id (Runtime.ctx_guardian ctx);
                sync_every;
                table = Hashtbl.create 32;
                clock = 0;
                peers = [];
              }
        | _ -> invalid_arg "replica: bad creation arguments");
    (* Replicas hold soft state: a crashed replica rejoins empty and
       anti-entropy refills it from its peers. *)
    recover = None;
  }

let create_group world ~nodes ?(sync_every = Clock.ms 500) () =
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let replicas =
    List.map
      (fun at ->
        let g = Runtime.create_guardian world ~at ~def_name ~args:[ Value.int sync_every ] in
        List.hd (Runtime.guardian_ports g))
      nodes
  in
  (* Introduce everyone to everyone else through a bootstrap guardian. *)
  let bootstrap : Runtime.def =
    {
      Runtime.def_name = "replica_bootstrap";
      provides = [];
      init =
        (fun ctx _ ->
          List.iter
            (fun replica ->
              let peers = List.filter (fun p -> not (Port_name.equal p replica)) replicas in
              match
                Rpc.call ctx ~to_:replica ~timeout:(Clock.s 1) ~attempts:5 "join"
                  [ Value.list (List.map Value.port peers) ]
              with
              | Rpc.Reply ("joined", _) -> ()
              | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ())
            replicas);
      recover = None;
    }
  in
  if Runtime.find_def world "replica_bootstrap" = None then Runtime.register_def world bootstrap;
  (match nodes with
  | at :: _ -> ignore (Runtime.create_guardian world ~at ~def_name:"replica_bootstrap" ~args:[])
  | [] -> invalid_arg "Replica.create_group: need at least one node");
  replicas

let write ctx ~replica ~key ~value ~timeout =
  match Rpc.call ctx ~to_:replica ~timeout ~attempts:3 "write" [ Value.str key; value ] with
  | Rpc.Reply ("written", _) -> true
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> false

let read ctx ~replica ~key ~timeout =
  match Rpc.call ctx ~to_:replica ~timeout ~attempts:3 "read" [ Value.str key ] with
  | Rpc.Reply ("value", [ value; _ ]) -> Some value
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> None
