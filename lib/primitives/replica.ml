open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Store = Dcp_stable.Store
module Metrics = Dcp_sim.Metrics
module Clock = Dcp_sim.Clock
module Rng = Dcp_rng.Rng

let def_name = "replica"

let stamp_type = Vtype.Ttuple [ Vtype.Tint; Vtype.Tint ]
let digest_entry_type = Vtype.Ttuple [ Vtype.Tstr; stamp_type ]
let delta_entry_type = Vtype.Ttuple [ Vtype.Tstr; Vtype.Tany; stamp_type ]

let port_type =
  [
    Rpc.request_signature "write" [ Vtype.Tstr; Vtype.Tany ]
      ~replies:[ Vtype.reply "written" [ stamp_type ] ];
    Rpc.request_signature "read" [ Vtype.Tstr ]
      ~replies:[ Vtype.reply "value" [ Vtype.Tany; stamp_type ]; Vtype.reply "unknown_key" [] ];
    Rpc.request_signature "join" [ Vtype.Tlist Vtype.Tport ]
      ~replies:[ Vtype.reply "joined" [] ];
    Vtype.signature "gossip" [ Vtype.Tstr; Vtype.Tany; stamp_type ];
    (* Anti-entropy round: a digest covers the key window [lo, hi) (hi
       absent = unbounded); the receiver answers with sync_delta for what it
       holds newer and sync_pull for what the sender holds newer or the
       receiver lacks. *)
    Vtype.signature "sync_digest"
      [ Vtype.Tstr; Vtype.Toption Vtype.Tstr; Vtype.Tlist digest_entry_type ];
    Vtype.signature "sync_pull" [ Vtype.Tlist Vtype.Tstr ];
    Vtype.signature "sync_delta" [ Vtype.Tlist delta_entry_type ];
  ]

(* ---- metric names (shared with oracles and benches) ---- *)

let metric_malformed = "replica.malformed"
let metric_sync_msgs = "replica.sync.msgs"
let metric_sync_bytes = "replica.sync.bytes"
let metric_over_budget = "replica.sync.over_budget"
let metric_max_bytes = "replica.sync.max_bytes"
let metric_pulls = "replica.sync.pulls"
let metric_pushes = "replica.sync.pushes"

type meters = {
  malformed : Metrics.counter;
  sync_msgs : Metrics.counter;
  sync_bytes : Metrics.counter;
  over_budget : Metrics.counter;
  max_bytes : Metrics.gauge;
  pulls : Metrics.counter;
  pushes : Metrics.counter;
}

let meters_of ctx =
  let reg = Runtime.ctx_metrics ctx in
  {
    malformed = Metrics.counter reg metric_malformed;
    sync_msgs = Metrics.counter reg metric_sync_msgs;
    sync_bytes = Metrics.counter reg metric_sync_bytes;
    over_budget = Metrics.counter reg metric_over_budget;
    max_bytes = Metrics.gauge reg metric_max_bytes;
    pulls = Metrics.counter reg metric_pulls;
    pushes = Metrics.counter reg metric_pushes;
  }

(* ---- configuration and state ---- *)

type config = { sync_every : Clock.time; fanout : int; byte_budget : int }

let default_config =
  { sync_every = Clock.ms 500; fanout = 2; byte_budget = Reconcile.default_budget }

type state = {
  replica_id : int;
  config : config;
  table : (string, Value.t * Reconcile.stamp) Hashtbl.t;
  mutable clock : int;
  mutable peers : Port_name.t array;  (** sorted, deduped, self excluded *)
  mutable cursor : string;  (** next digest window starts at this key; "" = wrap *)
  rng : Rng.t;  (** peer-selection stream, split from the world RNG *)
  m : meters;
}

let observe_stamp state (counter, _) = state.clock <- Int.max state.clock counter

let malformed state = Metrics.incr state.m.malformed

(* ---- stable-store mirror ----

   The table itself is soft state (a crashed replica rejoins empty and
   anti-entropy refills it), but its key -> stamp shape is mirrored into the
   guardian's stable store so oracles and benches can observe convergence
   from outside without extra protocol traffic — the same store-accessor
   convention the bank and airline oracles use.  Membership and the sync
   configuration are durable for real: they are what a recovered replica
   needs to rejoin the gossip mesh. *)

let mirror_prefix = "r:"
let peers_key = "peers"
let config_key = "config"

let mirror_key key = mirror_prefix ^ key

let is_mirror_key key =
  String.length key >= 2 && String.equal (String.sub key 0 2) mirror_prefix

let table_in_store store =
  List.filter_map
    (fun (key, data) ->
      if is_mirror_key key then
        Option.map
          (fun stamp -> (String.sub key 2 (String.length key - 2), stamp))
          (Reconcile.stamp_of_string data)
      else None)
    (Store.to_alist store)

let peers_in_store store =
  match Store.get store ~key:peers_key with
  | None -> []
  | Some encoded -> (
      match Codec.decode encoded with
      | Ok (Value.Listv ports) ->
          List.filter_map (fun v -> match v with Value.Portv p -> Some p | _ -> None) ports
      | Ok _ | Error _ -> [])

let persist_peers ctx peers =
  Store.set (Runtime.store ctx) ~key:peers_key
    (Codec.encode_exn (Value.list (List.map Value.port (Array.to_list peers))))

(* Duplicate-superblock discipline: the config is written under two keys so
   that losing either record to unsalvageable bit rot (a quarantined log
   record) cannot leave the replica running with default parameters — a
   budget amnesiac would gossip oversized windows. *)
let config_backup_key = "config.b"

let persist_config ctx (c : config) =
  let data = Printf.sprintf "%d %d %d" c.sync_every c.fanout c.byte_budget in
  Store.set (Runtime.store ctx) ~key:config_key data;
  Store.set (Runtime.store ctx) ~key:config_backup_key data

let parse_config data =
  match String.split_on_char ' ' data with
  | [ se; fo; bb ] -> (
      match (int_of_string_opt se, int_of_string_opt fo, int_of_string_opt bb) with
      | Some sync_every, Some fanout, Some byte_budget
        when sync_every > 0 && fanout > 0 && byte_budget > 0 ->
          Some { sync_every; fanout; byte_budget }
      | _ -> None)
  | _ -> None

let config_in_store store =
  let read key = Option.bind (Store.get store ~key) parse_config in
  match read config_key with
  | Some c -> c
  | None -> ( match read config_backup_key with Some c -> c | None -> default_config)

(* ---- applying stamped writes ---- *)

(* Apply a stamped write; true if it won (newer than what we hold). *)
let apply ctx state ~key ~value ~stamp =
  observe_stamp state stamp;
  match Hashtbl.find_opt state.table key with
  | Some (_, existing) when Reconcile.stamp_compare existing stamp >= 0 -> false
  | Some _ | None ->
      Hashtbl.replace state.table key (value, stamp);
      Store.set (Runtime.store ctx) ~key:(mirror_key key) (Reconcile.stamp_to_string stamp);
      true

let sorted_entries state =
  Hashtbl.fold (fun key (_, stamp) acc -> (key, stamp) :: acc) state.table []
  |> List.sort Reconcile.entry_compare

(* ---- sync-message accounting ---- *)

(* Every sync message is sized (command + args, Codec encoding) before it is
   sent: total and per-message maxima feed the bench rows, and a message
   that still exceeds the budget — only possible when one entry alone is
   bigger than the budget — is surfaced as replica.sync.over_budget instead
   of being silently withheld. *)
let note_sync_message state ~command args =
  let size = Reconcile.value_size (Value.tuple (Value.str command :: args)) in
  Metrics.incr state.m.sync_msgs;
  Metrics.add state.m.sync_bytes size;
  if size > state.config.byte_budget then Metrics.incr state.m.over_budget;
  if float_of_int size > Metrics.gauge_value state.m.max_bytes then
    Metrics.set_gauge state.m.max_bytes (float_of_int size)

let digest_entry_size entry = Reconcile.value_size (Reconcile.entry_value entry)
let pull_entry_size key = Reconcile.value_size (Value.str key)

let delta_value (key, value, stamp) =
  Value.tuple [ Value.str key; value; Reconcile.stamp_value stamp ]

let delta_entry_size entry = Reconcile.value_size (delta_value entry)

(* ---- fanout peer selection ---- *)

(* Deterministic from the replica's split of the world RNG: the same seed
   picks the same peers in the same ticks, which is what keeps whole-world
   sweeps bit-identical while avoiding the all-peers-every-tick blowup. *)
let choose_peers state =
  let n = Array.length state.peers in
  if n = 0 then []
  else
    let k = Int.min state.config.fanout n in
    List.map (fun i -> state.peers.(i)) (Rng.sample_without_replacement state.rng k n)

(* ---- outbound sync messages ---- *)

let send_deltas ctx state ~to_ keys =
  let entries =
    List.filter_map
      (fun key ->
        match Hashtbl.find_opt state.table key with
        | Some (value, stamp) -> Some (key, value, stamp)
        | None -> None)
      keys
  in
  if entries <> [] then
    List.iter
      (fun chunk ->
        let args = [ Value.list (List.map delta_value chunk) ] in
        note_sync_message state ~command:"sync_delta" args;
        Metrics.add state.m.pushes (List.length chunk);
        Runtime.send ctx ~to_ "sync_delta" args)
      (Reconcile.chunks ~budget:state.config.byte_budget ~size:delta_entry_size entries)

let send_pulls ctx state ~to_ keys =
  if keys <> [] then begin
    let own = Dcp_core.Port.name (Runtime.port ctx 0) in
    List.iter
      (fun chunk ->
        let args = [ Value.list (List.map Value.str chunk) ] in
        note_sync_message state ~command:"sync_pull" args;
        Metrics.add state.m.pulls (List.length chunk);
        Runtime.send ctx ~to_ ~reply_to:own "sync_pull" args)
      (Reconcile.chunks ~budget:state.config.byte_budget ~size:pull_entry_size keys)
  end

(* One anti-entropy tick: advance the digest cursor by one byte-budgeted
   window and offer that window to [fanout] deterministically chosen peers.
   Rounds with a non-empty remainder leave hi = Some key, so the receiver
   knows absence outside [lo, hi) means "not covered", not "not held". *)
let send_sync ctx state =
  match choose_peers state with
  | [] -> ()
  | chosen ->
      let from_cursor =
        List.filter
          (fun (key, _) -> String.compare state.cursor key <= 0)
          (sorted_entries state)
      in
      let taken, rest =
        Reconcile.take_within ~budget:state.config.byte_budget ~size:digest_entry_size
          from_cursor
      in
      let lo = state.cursor in
      let hi = match rest with [] -> None | (key, _) :: _ -> Some key in
      state.cursor <- (match hi with None -> "" | Some key -> key);
      let args =
        [
          Value.str lo;
          Value.option (Option.map Value.str hi);
          Value.list (List.map Reconcile.entry_value taken);
        ]
      in
      let own = Dcp_core.Port.name (Runtime.port ctx 0) in
      List.iter
        (fun peer ->
          note_sync_message state ~command:"sync_digest" args;
          Runtime.send ctx ~to_:peer ~reply_to:own "sync_digest" args)
        chosen

let broadcast_gossip ctx state ~key ~value ~stamp =
  List.iter
    (fun peer ->
      Runtime.send ctx ~to_:peer "gossip"
        [ Value.str key; value; Reconcile.stamp_value stamp ])
    (choose_peers state)

(* ---- inbound sync messages ---- *)

(* Strict parses: one malformed element poisons the whole message (dropped,
   counted), because a partially applied sync message would leave the
   protocol in a state no honest sender can produce. *)
let parse_digest_entries entries =
  List.fold_left
    (fun acc v ->
      match (acc, Reconcile.entry_of_value v) with
      | Some parsed, Some entry -> Some (entry :: parsed)
      | _, _ -> None)
    (Some []) entries
  |> Option.map (List.sort_uniq Reconcile.entry_compare)

let parse_delta_entries entries =
  List.fold_left
    (fun acc v ->
      match acc with
      | None -> None
      | Some parsed -> (
          match v with
          | Value.Tuple [ Value.Str key; value; stamp ] ->
              Option.map (fun s -> (key, value, s) :: parsed) (Reconcile.stamp_of_value stamp)
          | _ -> None))
    (Some []) entries
  |> Option.map List.rev

let parse_pull_keys keys =
  List.fold_left
    (fun acc v ->
      match (acc, v) with
      | Some parsed, Value.Str key -> Some (key :: parsed)
      | _, _ -> None)
    (Some []) keys
  |> Option.map (List.sort_uniq String.compare)

let handle_sync_digest ctx state ~reply ~lo ~hi entries =
  let window = { Reconcile.lo; hi } in
  if not (Reconcile.window_ok window) then malformed state
  else
    match parse_digest_entries entries with
    | None -> malformed state
    | Some claimed ->
        let held =
          List.filter (fun (key, _) -> Reconcile.in_window window key) (sorted_entries state)
        in
        let d = Reconcile.diff ~claimed ~held in
        (* Observe the largest claimed stamp even for keys we do not pull:
           a crash-rejoined replica must not mint write stamps that lose to
           counters its peers have already told it about. *)
        Option.iter (observe_stamp state) d.Reconcile.max_claimed;
        send_deltas ctx state ~to_:reply d.Reconcile.pushes;
        send_pulls ctx state ~to_:reply d.Reconcile.pulls

let handle_sync_pull ctx state ~reply keys =
  match parse_pull_keys keys with
  | None -> malformed state
  | Some keys -> send_deltas ctx state ~to_:reply keys

let handle_sync_delta ctx state entries =
  match parse_delta_entries entries with
  | None -> malformed state
  | Some entries ->
      List.iter
        (fun (key, value, stamp) -> ignore (apply ctx state ~key ~value ~stamp))
        entries

(* ---- membership ---- *)

let parse_join_peers values =
  List.fold_left
    (fun acc v ->
      match (acc, v) with
      | Some parsed, Value.Portv p -> Some (p :: parsed)
      | _, _ -> None)
    (Some []) values

(* Idempotent membership: union with what we already know, drop our own
   port, dedup.  A retried bootstrap join (Rpc ~attempts:5) or a peer list
   that includes the replica itself can no longer make a replica gossip to
   itself or forget peers. *)
let handle_join ctx state values =
  match parse_join_peers values with
  | None ->
      malformed state;
      false
  | Some ports ->
      let own = Dcp_core.Port.name (Runtime.port ctx 0) in
      let merged =
        Array.to_list state.peers @ ports
        |> List.filter (fun p -> not (Port_name.equal p own))
        |> List.sort_uniq Port_name.compare
      in
      state.peers <- Array.of_list merged;
      persist_peers ctx state.peers;
      true

(* ---- the serve loop ---- *)

let serve ctx state =
  let request_port = Runtime.port ctx 0 in
  (* Periodic anti-entropy, phase-staggered per replica (deterministically,
     from the same split RNG) so a large group does not tick in lockstep. *)
  ignore
    (Runtime.spawn ctx ~name:"replica.sync" (fun () ->
         Runtime.sleep ctx (Rng.int state.rng (Int.max 1 state.config.sync_every));
         let rec tick () =
           send_sync ctx state;
           Runtime.sleep ctx state.config.sync_every;
           tick ()
         in
         tick ()));
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args) with
        | "write", [ Value.Int id; Value.Str key; value ] ->
            state.clock <- state.clock + 1;
            let stamp = (state.clock, state.replica_id) in
            ignore (apply ctx state ~key ~value ~stamp);
            broadcast_gossip ctx state ~key ~value ~stamp;
            (match msg.Message.reply_to with
            | Some reply ->
                Runtime.send ctx ~to_:reply "written"
                  [ Value.int id; Reconcile.stamp_value stamp ]
            | None -> ())
        | "read", [ Value.Int id; Value.Str key ] -> (
            match (Hashtbl.find_opt state.table key, msg.Message.reply_to) with
            | Some (value, stamp), Some reply ->
                Runtime.send ctx ~to_:reply "value"
                  [ Value.int id; value; Reconcile.stamp_value stamp ]
            | None, Some reply -> Runtime.send ctx ~to_:reply "unknown_key" [ Value.int id ]
            | _, None -> ())
        | "join", [ Value.Int id; Value.Listv peer_values ] -> (
            match (handle_join ctx state peer_values, msg.Message.reply_to) with
            | true, Some reply -> Runtime.send ctx ~to_:reply "joined" [ Value.int id ]
            | false, Some reply ->
                (* A malformed peer list used to be dropped silently, leaving
                   the joining side to burn its full timeout x attempts budget
                   on a request that can never succeed; fail fast instead. *)
                Runtime.send ctx ~to_:reply "failure" [ Value.str "join: malformed peer list" ]
            | _, None -> ())
        | "gossip", [ Value.Str key; value; stamp ] -> (
            match Reconcile.stamp_of_value stamp with
            | None -> malformed state
            | Some stamp -> ignore (apply ctx state ~key ~value ~stamp))
        | "sync_digest", [ Value.Str lo; Value.Option hi; Value.Listv entries ] -> (
            match (hi, msg.Message.reply_to) with
            | Some (Value.Str _), Some reply | None, Some reply ->
                let hi = match hi with Some (Value.Str h) -> Some h | _ -> None in
                handle_sync_digest ctx state ~reply ~lo ~hi entries
            | _, Some _ -> malformed state
            | _, None ->
                (* digest without a return path: nothing can be pushed or
                   pulled back, so there is nothing to do *)
                ())
        | "sync_pull", [ Value.Listv keys ] -> (
            match msg.Message.reply_to with
            | Some reply -> handle_sync_pull ctx state ~reply keys
            | None -> ())
        | "sync_delta", [ Value.Listv entries ] -> handle_sync_delta ctx state entries
        | "failure", _ ->
            (* system failure message for a discarded sync (dead peer,
               full port): anti-entropy retries by design *)
            ()
        | _ -> malformed state));
    loop ()
  in
  loop ()

let make_state ctx ~config ~peers =
  {
    replica_id = Runtime.guardian_id (Runtime.ctx_guardian ctx);
    config;
    table = Hashtbl.create 32;
    clock = 0;
    peers;
    cursor = "";
    rng = Rng.split (Runtime.ctx_rng ctx);
    m = meters_of ctx;
  }

(* Recovery: the table is soft state, so the stale mirror is dropped and the
   replica rejoins with whatever membership and configuration it persisted;
   anti-entropy refills the data.  (This is the "rejoin empty and let the
   protocol converge" choice — the §2.2 guardians that keep data durable are
   the bank/airline tier, not this layer.) *)
let recover ctx =
  let store = Runtime.store ctx in
  List.iter
    (fun (key, _) -> if is_mirror_key key then Store.remove store ~key)
    (Store.to_alist store);
  let peers = Array.of_list (List.sort_uniq Port_name.compare (peers_in_store store)) in
  serve ctx (make_state ctx ~config:(config_in_store store) ~peers)

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 512) ];
    init =
      (fun ctx args ->
        match args with
        | [ Value.Int sync_every; Value.Int fanout; Value.Int byte_budget ]
          when sync_every > 0 && fanout > 0 && byte_budget > 0 ->
            let config = { sync_every; fanout; byte_budget } in
            persist_config ctx config;
            serve ctx (make_state ctx ~config ~peers:[||])
        | _ -> invalid_arg "replica: bad creation arguments");
    recover = Some recover;
  }

let create_group world ~nodes ?(sync_every = Clock.ms 500) ?(fanout = 2)
    ?(byte_budget = Reconcile.default_budget) () =
  if fanout <= 0 then invalid_arg "Replica.create_group: fanout must be positive";
  if byte_budget <= 0 then invalid_arg "Replica.create_group: byte_budget must be positive";
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let args = [ Value.int sync_every; Value.int fanout; Value.int byte_budget ] in
  let replicas =
    List.map
      (fun at ->
        let g = Runtime.create_guardian world ~at ~def_name ~args in
        List.hd (Runtime.guardian_ports g))
      nodes
  in
  (* Introduce everyone to everyone else through a bootstrap guardian. *)
  let bootstrap : Runtime.def =
    {
      Runtime.def_name = "replica_bootstrap";
      provides = [];
      init =
        (fun ctx _ ->
          List.iteri
            (fun i replica ->
              let peers = List.filter (fun p -> not (Port_name.equal p replica)) replicas in
              (* Stable request ids: join is idempotent, and a generated id
                 would leak the process-global Rpc counter into message
                 bytes, breaking run-to-run fingerprint determinism. *)
              match
                Rpc.call ctx ~to_:replica ~timeout:(Clock.s 1) ~attempts:5
                  ~request_id:(3_000_000_000 + i) "join"
                  [ Value.list (List.map Value.port peers) ]
              with
              | Rpc.Reply ("joined", _) -> ()
              | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ())
            replicas);
      recover = None;
    }
  in
  if Runtime.find_def world "replica_bootstrap" = None then Runtime.register_def world bootstrap;
  (match nodes with
  | at :: _ -> ignore (Runtime.create_guardian world ~at ~def_name:"replica_bootstrap" ~args:[])
  | [] -> invalid_arg "Replica.create_group: need at least one node");
  replicas

let write ctx ~replica ~key ~value ~timeout =
  match Rpc.call ctx ~to_:replica ~timeout ~attempts:3 "write" [ Value.str key; value ] with
  | Rpc.Reply ("written", _) -> true
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> false

let read ctx ~replica ~key ~timeout =
  match Rpc.call ctx ~to_:replica ~timeout ~attempts:3 "read" [ Value.str key ] with
  | Rpc.Reply ("value", [ value; _ ]) -> Some value
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> None
