open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Store = Dcp_stable.Store
module Metrics = Dcp_sim.Metrics
module Clock = Dcp_sim.Clock

let def_name = "scd_register"
let metric_malformed = "register.malformed"

let port_type =
  [
    Rpc.request_signature "write" [ Vtype.Tstr; Vtype.Tany ]
      ~replies:[ Vtype.reply "written" []; Vtype.reply "not_ready" [] ];
    Rpc.request_signature "read" [ Vtype.Tstr ]
      ~replies:
        [
          Vtype.reply "value" [ Vtype.Tany ];
          Vtype.reply "unknown_key" [];
          Vtype.reply "not_ready" [];
        ];
    Scd.members_signature;
  ]
  @ Scd.signatures

(* ---- the LWW table, durable, shared with Snapshot ---- *)

module Table = struct
  type t = (string, Value.t * Scd.ts) Hashtbl.t

  let prefix = "k:"
  let mirror_key key = prefix ^ key

  let is_mirror_key key =
    String.length key >= 2 && String.equal (String.sub key 0 2) prefix

  (* "<clock> <origin> <payload bytes>"; the payload encoding may contain
     any byte, so only the first two spaces separate. *)
  let encode_entry value (clock, origin) =
    Printf.sprintf "%d %d %s" clock origin (Codec.encode_exn value)

  let decode_entry data =
    match String.index_opt data ' ' with
    | None -> None
    | Some i -> (
        let rest = String.sub data (i + 1) (String.length data - i - 1) in
        match String.index_opt rest ' ' with
        | None -> None
        | Some j -> (
            let clock = int_of_string_opt (String.sub data 0 i) in
            let origin = int_of_string_opt (String.sub rest 0 j) in
            let bytes = String.sub rest (j + 1) (String.length rest - j - 1) in
            match (clock, origin, Codec.decode bytes) with
            | Some clock, Some origin, Ok value when clock > 0 && origin >= 0 ->
                Some (value, (clock, origin))
            | _ -> None))

  let restore store =
    let table = Hashtbl.create 32 in
    List.iter
      (fun (key, data) ->
        if is_mirror_key key then
          match decode_entry data with
          | Some entry ->
              Hashtbl.replace table (String.sub key 2 (String.length key - 2)) entry
          | None -> Store.remove store ~key (* torn record: drop it *))
      (Store.to_alist store);
    table

  let apply ctx table ~key ~value ~ts =
    match Hashtbl.find_opt table key with
    | Some (_, existing) when Scd.ts_compare existing ts >= 0 -> ()
    | Some _ | None ->
        Hashtbl.replace table key (value, ts);
        Store.set (Runtime.store ctx) ~key:(mirror_key key) (encode_entry value ts)

  let get table key = Hashtbl.find_opt table key

  let sorted_entries table =
    Hashtbl.fold (fun key (value, ts) acc -> (key, value, ts) :: acc) table []
    |> List.sort (fun (k1, _, _) (k2, _, _) -> String.compare k1 k2)

  let in_store store =
    List.filter_map
      (fun (key, data) ->
        if is_mirror_key key then
          Option.map
            (fun (_, ts) -> (String.sub key 2 (String.length key - 2), ts))
            (decode_entry data)
        else None)
      (Store.to_alist store)
end

(* ---- payloads ---- *)

let write_payload ~key ~value = Value.tuple [ Value.str "w"; Value.str key; value ]
let sync_payload = Value.tuple [ Value.str "s" ]

(* ---- durable at-most-once request records ---- *)

(* "rid:<id>" holds "?" from the moment a request starts mutating until its
   reply is known, then the encoded reply.  A duplicate (network-duplicated
   or retried) of a finished request gets the recorded reply; a duplicate of
   an in-flight or crash-interrupted one is dropped — re-executing it would
   broadcast the write a second time under a fresh timestamp, which is
   exactly the double-apply that breaks atomicity. *)
let rid_key rid = Printf.sprintf "rid:%d" rid
let inflight_marker = "?"

let record_inflight ctx rid = Store.set (Runtime.store ctx) ~key:(rid_key rid) inflight_marker

let record_reply ctx rid ~command args =
  Store.set (Runtime.store ctx) ~key:(rid_key rid)
    (Codec.encode_exn (Value.tuple [ Value.str command; Value.list args ]))

let recorded_reply store rid =
  match Store.get store ~key:(rid_key rid) with
  | None -> None
  | Some data when String.equal data inflight_marker -> Some None
  | Some data -> (
      match Codec.decode data with
      | Ok (Value.Tuple [ Value.Str command; Value.Listv args ]) -> Some (Some (command, args))
      | Ok _ | Error _ -> Some None)

(* ---- member state ---- *)

type action = Reply_written | Reply_read of string

type pending = { reply : Port_name.t; rid : int; action : action }

type state = {
  scd : Scd.t;
  table : Table.t;
  stale_reads : bool;
  pending : (int, pending) Hashtbl.t;  (** own broadcast seq -> parked request *)
  malformed : Metrics.counter;
}

let mode_key = "cfg:mode"

let persist_mode ctx ~stale_reads =
  Store.set (Runtime.store ctx) ~key:mode_key (if stale_reads then "stale" else "atomic")

let mode_in_store store =
  match Store.get store ~key:mode_key with Some "stale" -> true | Some _ | None -> false

let send_reply ctx ~reply ~rid command args =
  Runtime.send ctx ~to_:reply command (Value.int rid :: args)

(* Resolve one parked request after its own broadcast was delivered: the
   reply (and its durable record) reflects the table at that delivery
   point. *)
let resolve ctx st ~seq =
  match Hashtbl.find_opt st.pending seq with
  | None -> () (* parked pre-crash: the requester's reply is forgotten *)
  | Some p ->
      Hashtbl.remove st.pending seq;
      let command, args =
        match p.action with
        | Reply_written -> ("written", [])
        | Reply_read key -> (
            match Table.get st.table key with
            | Some (value, _) -> ("value", [ value ])
            | None -> ("unknown_key", []))
      in
      record_reply ctx p.rid ~command args;
      send_reply ctx ~reply:p.reply ~rid:p.rid command args

(* Apply every newly delivered set: writes first (in ts order — LWW makes
   the grouping into sets immaterial), then answer the parked requests
   whose own messages are in the set. *)
let apply_deliveries ctx st =
  List.iter
    (fun set ->
      List.iter
        (fun (d : Scd.delivery) ->
          match d.Scd.payload with
          | Value.Tuple [ Value.Str "w"; Value.Str key; value ] ->
              Table.apply ctx st.table ~key ~value ~ts:d.Scd.ts
          | _ -> () (* sync markers carry no effect *))
        set;
      List.iter
        (fun (d : Scd.delivery) ->
          if d.Scd.id.Scd.origin = Scd.self st.scd then resolve ctx st ~seq:d.Scd.id.Scd.seq)
        set)
    (Scd.drain st.scd)

let handle_request ctx st ~reply ~rid command args =
  match recorded_reply (Runtime.store ctx) rid with
  | Some (Some (recorded, recorded_args)) -> send_reply ctx ~reply ~rid recorded recorded_args
  | Some None -> () (* in flight (or lost to a crash): never re-execute *)
  | None -> (
      match (command, args) with
      | "write", [ Value.Str key; value ] ->
          if st.stale_reads then begin
            (* The deliberate mutation, write half: acknowledge on broadcast
               instead of on delivery, so the ack can precede the write
               being readable anywhere — the classic fast-ack atomicity
               bug the linearizability oracle exists to catch. *)
            ignore (Scd.broadcast ctx st.scd (write_payload ~key ~value));
            record_reply ctx rid ~command:"written" [];
            send_reply ctx ~reply ~rid "written" []
          end
          else begin
            record_inflight ctx rid;
            let id = Scd.broadcast ctx st.scd (write_payload ~key ~value) in
            Hashtbl.replace st.pending id.Scd.seq { reply; rid; action = Reply_written }
          end
      | "read", [ Value.Str key ] ->
          if st.stale_reads then begin
            (* The deliberate mutation, read half: no delivery barrier, so
               the reply can predate writes already acknowledged elsewhere. *)
            let command, args =
              match Table.get st.table key with
              | Some (value, _) -> ("value", [ value ])
              | None -> ("unknown_key", [])
            in
            record_reply ctx rid ~command args;
            send_reply ctx ~reply ~rid command args
          end
          else begin
            record_inflight ctx rid;
            let id = Scd.broadcast ctx st.scd sync_payload in
            Hashtbl.replace st.pending id.Scd.seq { reply; rid; action = Reply_read key }
          end
      | "members", _ ->
          (* Idempotent re-join offer from a bootstrap retry. *)
          send_reply ctx ~reply ~rid "members_ok" []
      | _ -> Metrics.incr st.malformed)

let serve ctx st =
  let request_port = Runtime.port ctx 0 in
  Scd.spawn_ticker ctx st.scd;
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> (
        match Scd.handle ctx st.scd msg with
        | `Handled -> apply_deliveries ctx st
        | `Unrelated -> (
            match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
            | "failure", _, _ -> ()
            | command, Value.Int rid :: args, Some reply ->
                handle_request ctx st ~reply ~rid command args;
                apply_deliveries ctx st
            | _ -> Metrics.incr st.malformed)));
    loop ()
  in
  loop ()

let make_state ctx ~scd ~table ~stale_reads =
  {
    scd;
    table;
    stale_reads;
    pending = Hashtbl.create 16;
    malformed = Metrics.counter (Runtime.ctx_metrics ctx) metric_malformed;
  }

(* Before the bootstrap introduces the group there is no Scd yet: park on
   the request port, refuse real operations with not_ready, and switch to
   serving on the first members offer. *)
let await_members ctx ~config ~stale_reads =
  let request_port = Runtime.port ctx 0 in
  let rec wait () =
    match Runtime.receive ctx [ request_port ] with
    | `Timeout -> wait ()
    | `Msg (_, msg) -> (
        match (msg.Message.command, msg.Message.args, msg.Message.reply_to) with
        | "members", [ Value.Int rid; members_arg ], Some reply -> (
            match Scd.parse_members [ members_arg ] with
            | Some members when members <> [] ->
                let scd = Scd.create ctx ~config ~members () in
                let st =
                  make_state ctx ~scd ~table:(Table.restore (Runtime.store ctx)) ~stale_reads
                in
                send_reply ctx ~reply ~rid "members_ok" [];
                serve ctx st
            | Some _ | None -> wait ())
        | _, Value.Int rid :: _, Some reply ->
            send_reply ctx ~reply ~rid "not_ready" [];
            wait ()
        | _ -> wait ())
  in
  wait ()

let recover ctx =
  let store = Runtime.store ctx in
  let stale_reads = mode_in_store store in
  match Scd.recover ctx with
  | Some scd ->
      let st = make_state ctx ~scd ~table:(Table.restore store) ~stale_reads in
      serve ctx st
  | None -> await_members ctx ~config:(Scd.config_in_store store) ~stale_reads

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 512) ];
    init =
      (fun ctx args ->
        match args with
        | [ Value.Int status_every; Value.Int resend_max; Value.Bool stale_reads ]
          when status_every > 0 && resend_max > 0 ->
            persist_mode ctx ~stale_reads;
            let config = { Scd.status_every; resend_max } in
            Scd.persist_group_config ctx config;
            await_members ctx ~config ~stale_reads
        | _ -> invalid_arg "register: bad creation arguments");
    recover = Some recover;
  }

let create_group world ~nodes ?(status_every = Clock.ms 100) ?(resend_max = 32)
    ?(stale_reads = false) ~introduce_at () =
  if nodes = [] then invalid_arg "Register.create_group: need at least one node";
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let args = [ Value.int status_every; Value.int resend_max; Value.bool stale_reads ] in
  let ports =
    List.map
      (fun at ->
        let g = Runtime.create_guardian world ~at ~def_name ~args in
        List.hd (Runtime.guardian_ports g))
      nodes
  in
  Scd.introduce world ~group:def_name ~at:introduce_at ~members:ports;
  ports

let write ctx ~register ~key ~value ~timeout =
  match
    Rpc.call ctx ~to_:register ~timeout ~attempts:1 "write" [ Value.str key; value ]
  with
  | Rpc.Reply ("written", _) -> true
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> false

let read ctx ~register ~key ~timeout =
  match Rpc.call ctx ~to_:register ~timeout ~attempts:1 "read" [ Value.str key ] with
  | Rpc.Reply ("value", [ value ]) -> Some value
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> None
