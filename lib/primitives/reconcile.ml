open Dcp_wire

(* ---- stamps ---- *)

type stamp = int * int

let stamp_compare (c1, o1) (c2, o2) =
  let c = Int.compare c1 c2 in
  if c <> 0 then c else Int.compare o1 o2

let stamp_value (counter, origin) = Value.tuple [ Value.int counter; Value.int origin ]

(* Counters start at 1 (a replica's first write increments its clock from 0)
   and origins are guardian ids, so both components of a well-formed stamp
   are non-negative and the counter strictly positive.  Anything else is
   adversarial or corrupt and must be droppable, not fatal (§3.4: delivery
   is best-effort; a serve loop that can be crashed by one bad message turns
   loss tolerance into a denial of service). *)
let stamp_of_value v =
  match v with
  | Value.Tuple [ Value.Int counter; Value.Int origin ] when counter > 0 && origin >= 0 ->
      Some (counter, origin)
  | _ -> None

let stamp_to_string (counter, origin) = Printf.sprintf "%d.%d" counter origin

let stamp_of_string s =
  match String.index_opt s '.' with
  | None -> None
  | Some dot -> (
      match
        ( int_of_string_opt (String.sub s 0 dot),
          int_of_string_opt (String.sub s (dot + 1) (String.length s - dot - 1)) )
      with
      | Some counter, Some origin when counter > 0 && origin >= 0 -> Some (counter, origin)
      | _ -> None)

(* ---- digest entries and key windows ---- *)

let entry_value (key, stamp) = Value.tuple [ Value.str key; stamp_value stamp ]

let entry_of_value v =
  match v with
  | Value.Tuple [ Value.Str key; stamp ] -> Option.map (fun s -> (key, s)) (stamp_of_value stamp)
  | _ -> None

let entry_compare (k1, _) (k2, _) = String.compare k1 k2

type window = { lo : string; hi : string option }

let everything = { lo = ""; hi = None }

let window_ok { lo; hi } =
  match hi with None -> true | Some hi -> String.compare lo hi < 0

let in_window { lo; hi } key =
  String.compare lo key <= 0
  && match hi with None -> true | Some hi -> String.compare key hi < 0

(* ---- byte budgeting ----

   A sync message must respect a configurable byte budget.  The budget is
   measured against the Codec encoding of the message payload; the fixed
   [header_allowance] reserves room for the command, window bounds, list
   headers and routing envelope so that bounding the *entries* bounds the
   whole message.  Packing always takes at least one entry — a single entry
   whose encoding alone exceeds the budget is sent (oversized) rather than
   silently withheld forever, which would be a divergence bug; callers
   surface that case through a metric. *)

let default_budget = 32 * 1024
let header_allowance = 96

let value_size v =
  match Codec.encoded_size v with Ok n -> n | Error _ -> max_int

let entry_budget ~budget = Int.max 1 (budget - header_allowance)

let take_within ~budget ~size entries =
  let budget = entry_budget ~budget in
  let rec go used acc = function
    | [] -> (List.rev acc, [])
    | entry :: rest ->
        let s = size entry in
        if acc <> [] && used + s > budget then (List.rev acc, entry :: rest)
        else go (used + s) (entry :: acc) rest
  in
  go 0 [] entries

let chunks ~budget ~size entries =
  let rec go acc entries =
    match entries with
    | [] -> List.rev acc
    | _ ->
        let taken, rest = take_within ~budget ~size entries in
        go (taken :: acc) rest
  in
  go [] entries

(* ---- digest diffing ----

   [diff] is the heart of the pull half of anti-entropy.  Both inputs are
   sorted by key and describe the same window: [claimed] is what the digest
   sender says it holds, [held] is what the receiver holds there.  The
   receiver must

   - PULL every key the sender holds newer, or that the receiver lacks
     entirely (the half the one-way push protocol was missing: without it,
     two replicas that each missed different gossips stay divergent until an
     unrelated write), and
   - PUSH every key the receiver holds newer, or that the sender's digest
     lacks inside the window.

   A merge walk keeps it O(|claimed| + |held|) and deterministic. *)

type diff = {
  pulls : string list;  (** keys to request from the digest sender *)
  pushes : string list;  (** keys to send back to the digest sender *)
  max_claimed : stamp option;  (** largest stamp the digest asserted *)
}

(* The max_claimed observation rides the merge walk (one pass, not a
   separate fold over [claimed]), and equal-key/equal-stamp runs — the
   common case between converged replicas — fall through on physical
   equality before any comparison work.  Accumulation is plain cons +
   [List.rev]: an earlier variant kept reusable key arrays as a
   caller-owned scratch, but the write barrier on a long-lived array plus
   rebuilding the result lists measured ~40% slower than minor-heap cons
   on the 1k-entry bench row, so the scratch was dropped. *)
let diff ~claimed ~held =
  let have_max = ref false and max_c = ref 0 and max_o = ref 0 in
  (* Called exactly when the head of [claimed] is consumed, so every
     claimed entry is observed once. *)
  let observe (c, o) =
    if (not !have_max) || c > !max_c || (c = !max_c && o > !max_o) then begin
      have_max := true;
      max_c := c;
      max_o := o
    end
  in
  let rec walk claimed held pulls pushes =
    match (claimed, held) with
    | [], [] -> (List.rev pulls, List.rev pushes)
    | [], (key, _) :: held -> walk [] held pulls (key :: pushes)
    | (key, stamp) :: claimed, [] ->
        observe stamp;
        walk claimed [] (key :: pulls) pushes
    | (ckey, cstamp) :: crest, (hkey, hstamp) :: hrest ->
        let c = if ckey == hkey then 0 else String.compare ckey hkey in
        if c < 0 then begin
          observe cstamp;
          walk crest held (ckey :: pulls) pushes
        end
        else if c > 0 then walk claimed hrest pulls (hkey :: pushes)
        else begin
          observe cstamp;
          if cstamp == hstamp then walk crest hrest pulls pushes
          else
            let cc, co = cstamp and hc, ho = hstamp in
            let cmp = if cc <> hc then Int.compare cc hc else Int.compare co ho in
            if cmp > 0 then walk crest hrest (ckey :: pulls) pushes
            else if cmp < 0 then walk crest hrest pulls (hkey :: pushes)
            else walk crest hrest pulls pushes
        end
  in
  let pulls, pushes = walk claimed held [] [] in
  { pulls; pushes; max_claimed = (if !have_max then Some (!max_c, !max_o) else None) }
