open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Store = Dcp_stable.Store
module Metrics = Dcp_sim.Metrics
module Clock = Dcp_sim.Clock
module Rng = Dcp_rng.Rng

type config = { status_every : Clock.time; resend_max : int }

let default_config = { status_every = Clock.ms 100; resend_max = 32 }

type msg_id = { origin : int; seq : int }
type ts = int * int

let ts_compare (c1, o1) (c2, o2) =
  let c = Int.compare c1 c2 in
  if c <> 0 then c else Int.compare o1 o2

type delivery = { id : msg_id; ts : ts; payload : Value.t }

let signatures =
  [
    (* scd_msg(origin, seq, clock, payload) *)
    Vtype.signature "scd_msg" [ Vtype.Tint; Vtype.Tint; Vtype.Tint; Vtype.Tany ];
    (* scd_status(from, clock, per-origin contiguous-receive watermarks,
       per-origin durable delivered watermarks) *)
    Vtype.signature "scd_status"
      [ Vtype.Tint; Vtype.Tint; Vtype.Tlist Vtype.Tint; Vtype.Tlist Vtype.Tint ];
  ]

let members_signature =
  Rpc.request_signature "members" [ Vtype.Tlist Vtype.Tport ]
    ~replies:[ Vtype.reply "members_ok" [] ]

(* ---- metric names (shared with oracles and benches) ---- *)

let metric_msgs = "scd.msgs"
let metric_statuses = "scd.statuses"
let metric_resends = "scd.resends"
let metric_malformed = "scd.malformed"
let metric_sets = "scd.sets"
let metric_set_msgs = "scd.set_msgs"

type meters = {
  msgs : Metrics.counter;
  statuses : Metrics.counter;
  resends : Metrics.counter;
  malformed : Metrics.counter;
  sets : Metrics.counter;
  set_msgs : Metrics.counter;
}

let meters_of ctx =
  let reg = Runtime.ctx_metrics ctx in
  {
    msgs = Metrics.counter reg metric_msgs;
    statuses = Metrics.counter reg metric_statuses;
    resends = Metrics.counter reg metric_resends;
    malformed = Metrics.counter reg metric_malformed;
    sets = Metrics.counter reg metric_sets;
    set_msgs = Metrics.counter reg metric_set_msgs;
  }

(* ---- state ---- *)

(* Per-member bookkeeping, indexed by origin.  [queue] holds received,
   contiguous, not-yet-delivered messages of that origin in seq order —
   because an origin's clock rises strictly with its seq, the queue is also
   clock-sorted, so frontier delivery only ever pops the front.  [ooo] is
   the out-of-order reorder buffer (a gap below it is still in flight or
   lost).  Both are volatile: after a crash they refill through origin
   resends triggered by our statuses. *)
type origin_state = {
  mutable next_seq : int;  (** all seqs below are received or delivered *)
  mutable delivered_seq : int;  (** durable: highest seq delivered *)
  queue : (int * int * Value.t) Queue.t;  (** (seq, clock, payload) *)
  ooo : (int, int * Value.t) Hashtbl.t;  (** seq -> (clock, payload) *)
  mutable safe_clock : int;  (** largest clock this member announced safe *)
  mutable delivered_mine : int;
      (** highest own seq this member announced {e delivered}.  Durable at
          the peer, hence monotone across its crashes — unlike its receive
          watermark, which regresses when a crash wipes its reorder state.
          Pruning the own-log must key on this one: a pruned entry can
          never be resent. *)
}

type t = {
  config : config;
  members : Port_name.t array;  (** sorted: all members agree on indices *)
  self : int;
  origins : origin_state array;
  own_log : (int, int * Value.t) Hashtbl.t;  (** durable: seq -> (clock, payload) *)
  mutable own_floor : int;  (** own_log pruned through this seq *)
  mutable clock : int;
  mutable seq : int;
  mutable frontier : int;
  delivered : delivery list Queue.t;  (** complete sets awaiting {!drain} *)
  rng : Rng.t;  (** ticker phase stagger, split from the world RNG *)
  m : meters;
}

let self t = t.self
let member_count t = Array.length t.members
let clock t = t.clock
let frontier t = t.frontier
let malformed t = Metrics.incr t.m.malformed

(* ---- persistence ---- *)

let members_key = "scd:members"
let config_key = "scd:config"
let clock_key = "scd:clock"
let seq_key = "scd:seq"
let frontier_key = "scd:frontier"
let dseq_key j = Printf.sprintf "scd:dseq:%d" j
let own_key seq = Printf.sprintf "scd:own:%08d" seq
let own_prefix = "scd:own:"

let persist_int ctx key v = Store.set (Runtime.store ctx) ~key (string_of_int v)

let int_in_store store key =
  Option.bind (Store.get store ~key) int_of_string_opt |> Option.value ~default:0

let persist_members ctx members =
  Store.set (Runtime.store ctx) ~key:members_key
    (Codec.encode_exn (Value.list (List.map Value.port (Array.to_list members))))

let persist_config ctx (c : config) =
  Store.set (Runtime.store ctx) ~key:config_key
    (Printf.sprintf "%d %d" c.status_every c.resend_max)

let persist_group_config = persist_config

let config_in_store store =
  match Store.get store ~key:config_key with
  | None -> default_config
  | Some data -> (
      match String.split_on_char ' ' data with
      | [ se; rm ] -> (
          match (int_of_string_opt se, int_of_string_opt rm) with
          | Some status_every, Some resend_max when status_every > 0 && resend_max > 0 ->
              { status_every; resend_max }
          | _ -> default_config)
      | _ -> default_config)

(* An own-log record is "<clock> <payload bytes>"; the payload's encoding
   may contain any byte, so only the first space separates. *)
let encode_own ~clock payload = Printf.sprintf "%d %s" clock (Codec.encode_exn payload)

let decode_own data =
  match String.index_opt data ' ' with
  | None -> None
  | Some i -> (
      let clock = int_of_string_opt (String.sub data 0 i) in
      let rest = String.sub data (i + 1) (String.length data - i - 1) in
      match (clock, Codec.decode rest) with
      | Some clock, Ok payload when clock > 0 -> Some (clock, payload)
      | _ -> None)

let persist_own ctx ~seq ~clock payload =
  Store.set (Runtime.store ctx) ~key:(own_key seq) (encode_own ~clock payload)

(* ---- delivery ---- *)

(* The frontier rule.  safe_clock.(q) was announced by q only once we held
   every message q itself had broadcast by then, so (inductively, see
   DESIGN.md §12) every existing message with clock <= min safe_clock is
   sitting contiguous in some queue here: delivering queue fronts up to the
   minimum cannot skip a message.  Own clock stands in for our own
   announcement. *)
let try_deliver ctx t =
  let horizon = ref t.clock in
  Array.iteri
    (fun j o -> if j <> t.self && o.safe_clock < !horizon then horizon := o.safe_clock)
    t.origins;
  if !horizon > t.frontier then begin
    let collected = ref [] in
    Array.iteri
      (fun j o ->
        let rec pop () =
          match Queue.peek_opt o.queue with
          | Some (seq, clock, payload) when clock <= !horizon ->
              ignore (Queue.pop o.queue);
              o.delivered_seq <- seq;
              persist_int ctx (dseq_key j) seq;
              collected := { id = { origin = j; seq }; ts = (clock, j); payload } :: !collected;
              pop ()
          | _ -> ()
        in
        pop ())
      t.origins;
    t.frontier <- !horizon;
    persist_int ctx frontier_key t.frontier;
    match List.sort (fun a b -> ts_compare a.ts b.ts) !collected with
    | [] -> ()
    | set ->
        Metrics.incr t.m.sets;
        Metrics.add t.m.set_msgs (List.length set);
        Queue.add set t.delivered
  end

let drain t =
  let rec take acc =
    match Queue.take_opt t.delivered with
    | Some set -> take (set :: acc)
    | None -> List.rev acc
  in
  take []

(* ---- outbound ---- *)

let observe_clock ctx t c =
  if c > t.clock then begin
    t.clock <- c;
    persist_int ctx clock_key t.clock
  end

let broadcast ctx t payload =
  t.clock <- t.clock + 1;
  t.seq <- t.seq + 1;
  persist_int ctx clock_key t.clock;
  persist_int ctx seq_key t.seq;
  Hashtbl.replace t.own_log t.seq (t.clock, payload);
  persist_own ctx ~seq:t.seq ~clock:t.clock payload;
  let o = t.origins.(t.self) in
  Queue.add (t.seq, t.clock, payload) o.queue;
  o.next_seq <- t.seq + 1;
  let args = [ Value.int t.self; Value.int t.seq; Value.int t.clock; payload ] in
  Array.iteri
    (fun j port -> if j <> t.self then Runtime.send ctx ~to_:port "scd_msg" args)
    t.members;
  try_deliver ctx t;
  { origin = t.self; seq = t.seq }

let tick ctx t =
  let n = Array.length t.members in
  if n > 1 then begin
    let acks = List.init n (fun j -> Value.int (t.origins.(j).next_seq - 1)) in
    let dacks = List.init n (fun j -> Value.int (t.origins.(j).delivered_seq)) in
    let args = [ Value.int t.self; Value.int t.clock; Value.list acks; Value.list dacks ] in
    Array.iteri
      (fun j port -> if j <> t.self then Runtime.send ctx ~to_:port "scd_status" args)
      t.members
  end

let spawn_ticker ctx t =
  ignore
    (Runtime.spawn ctx ~name:"scd.ticker" (fun () ->
         Runtime.sleep ctx (Rng.int t.rng (Int.max 1 t.config.status_every));
         let rec loop () =
           tick ctx t;
           Runtime.sleep ctx t.config.status_every;
           loop ()
         in
         loop ()))

(* ---- inbound ---- *)

let receive_msg ctx t ~origin ~seq ~clock payload =
  let n = Array.length t.members in
  if origin < 0 || origin >= n || origin = t.self || seq < 1 || clock < 1 then malformed t
  else begin
    Metrics.incr t.m.msgs;
    observe_clock ctx t clock;
    let o = t.origins.(origin) in
    if seq >= o.next_seq && not (Hashtbl.mem o.ooo seq) then begin
      Hashtbl.replace o.ooo seq (clock, payload);
      let rec advance () =
        match Hashtbl.find_opt o.ooo o.next_seq with
        | Some (c, p) ->
            Hashtbl.remove o.ooo o.next_seq;
            Queue.add (o.next_seq, c, p) o.queue;
            o.next_seq <- o.next_seq + 1;
            advance ()
        | None -> ()
      in
      advance ()
    end;
    try_deliver ctx t
  end

(* Prune the durable own-message log: everything at or below every peer's
   durable {e delivered} watermark AND our own delivery watermark is safe
   to drop.  A peer that delivered seq s restarts its receive cursor at
   s + 1, so it can never ask for s again — whereas its received-but-
   undelivered watermark regresses across a crash, and pruning on that one
   would leave a gap no resend can ever fill (the frontier stall this
   module's chaos sweeps used to hit).  Entries above our own
   delivered_seq must survive even once everyone delivered them: recovery
   re-enqueues our undelivered tail from this log. *)
let prune_own ctx t =
  let floor = ref t.origins.(t.self).delivered_seq in
  Array.iteri
    (fun j o -> if j <> t.self && o.delivered_mine < !floor then floor := o.delivered_mine)
    t.origins;
  if !floor > t.own_floor then begin
    let store = Runtime.store ctx in
    for s = t.own_floor + 1 to !floor do
      Hashtbl.remove t.own_log s;
      Store.remove store ~key:(own_key s)
    done;
    t.own_floor <- !floor
  end

let parse_watermarks n values =
  List.fold_left
    (fun acc v ->
      match (acc, v) with
      | Some parsed, Value.Int a when a >= 0 -> Some (a :: parsed)
      | _, _ -> None)
    (Some []) values
  |> Option.map (fun l -> Array.of_list (List.rev l))
  |> fun parsed ->
  match parsed with Some a when Array.length a = n -> Some a | Some _ | None -> None

let receive_status ctx t ~from ~clock acks dacks =
  let n = Array.length t.members in
  match (parse_watermarks n acks, parse_watermarks n dacks) with
  | Some acks, Some dacks when from >= 0 && from < n && from <> t.self && clock >= 0 -> begin
      Metrics.incr t.m.statuses;
      observe_clock ctx t clock;
      let o = t.origins.(from) in
      (* Safe only if we hold everything the sender itself had broadcast by
         this status: its announced clock then bounds all its in-flight
         messages we have yet to see. *)
      if t.origins.(from).next_seq - 1 >= acks.(from) && clock > o.safe_clock then
        o.safe_clock <- clock;
      if o.delivered_mine < dacks.(t.self) then o.delivered_mine <- dacks.(t.self);
      (* Origin-driven loss recovery: the sender is missing our messages
         above its contiguous ack, so resend a bounded batch. *)
      let missing_from = acks.(t.self) in
      if missing_from < t.seq then begin
        let upto = Int.min t.seq (missing_from + t.config.resend_max) in
        for s = missing_from + 1 to upto do
          match Hashtbl.find_opt t.own_log s with
          | Some (c, payload) ->
              Metrics.incr t.m.resends;
              Runtime.send ctx ~to_:t.members.(from) "scd_msg"
                [ Value.int t.self; Value.int s; Value.int c; payload ]
          | None -> ()
        done
      end;
      prune_own ctx t;
      try_deliver ctx t
    end
  | _, _ -> malformed t

let handle ctx t (msg : Message.t) =
  match (msg.Message.command, msg.Message.args) with
  | "scd_msg", [ Value.Int origin; Value.Int seq; Value.Int clock; payload ] ->
      receive_msg ctx t ~origin ~seq ~clock payload;
      `Handled
  | "scd_msg", _ ->
      malformed t;
      `Handled
  | "scd_status", [ Value.Int from; Value.Int clock; Value.Listv acks; Value.Listv dacks ] ->
      receive_status ctx t ~from ~clock acks dacks;
      `Handled
  | "scd_status", _ ->
      malformed t;
      `Handled
  | _ -> `Unrelated

(* ---- construction and recovery ---- *)

let fresh_origin () =
  {
    next_seq = 1;
    delivered_seq = 0;
    queue = Queue.create ();
    ooo = Hashtbl.create 8;
    safe_clock = 0;
    delivered_mine = 0;
  }

let make ctx ~config ~members ~self =
  {
    config;
    members;
    self;
    origins = Array.init (Array.length members) (fun _ -> fresh_origin ());
    own_log = Hashtbl.create 32;
    own_floor = 0;
    clock = 0;
    seq = 0;
    frontier = 0;
    delivered = Queue.create ();
    rng = Rng.split (Runtime.ctx_rng ctx);
    m = meters_of ctx;
  }

let self_index ctx members =
  let own = Dcp_core.Port.name (Runtime.port ctx 0) in
  let found = ref (-1) in
  Array.iteri (fun i p -> if Port_name.equal p own then found := i) members;
  if !found < 0 then invalid_arg "Scd.create: own port 0 not among the members";
  !found

let create ctx ?(config = default_config) ~members () =
  if config.status_every <= 0 then invalid_arg "Scd.create: status_every must be positive";
  if config.resend_max <= 0 then invalid_arg "Scd.create: resend_max must be positive";
  if members = [] then invalid_arg "Scd.create: empty member list";
  let members = Array.of_list (List.sort_uniq Port_name.compare members) in
  let self = self_index ctx members in
  let t = make ctx ~config ~members ~self in
  persist_members ctx members;
  persist_config ctx config;
  persist_int ctx clock_key 0;
  persist_int ctx seq_key 0;
  persist_int ctx frontier_key 0;
  t

let members_in_store store =
  match Store.get store ~key:members_key with
  | None -> None
  | Some encoded -> (
      match Codec.decode encoded with
      | Ok (Value.Listv ports) ->
          let parsed =
            List.fold_left
              (fun acc v ->
                match (acc, v) with
                | Some parsed, Value.Portv p -> Some (p :: parsed)
                | _, _ -> None)
              (Some []) ports
          in
          Option.map List.rev parsed
      | Ok _ | Error _ -> None)

let recover ctx =
  let store = Runtime.store ctx in
  match members_in_store store with
  | None -> None
  | Some members ->
      let members = Array.of_list members in
      let self = self_index ctx members in
      let t = make ctx ~config:(config_in_store store) ~members ~self in
      t.clock <- int_in_store store clock_key;
      t.seq <- int_in_store store seq_key;
      t.frontier <- int_in_store store frontier_key;
      Array.iteri (fun j o -> o.delivered_seq <- int_in_store store (dseq_key j)) t.origins;
      Array.iter (fun o -> o.next_seq <- o.delivered_seq + 1) t.origins;
      (* Reload the durable own-message log (for resends), and re-enqueue
         our own broadcast-but-undelivered tail: it was sitting in the
         volatile queue when the node died, and no peer will resend our own
         messages to us. *)
      let floor = ref Int.max_int in
      List.iter
        (fun (key, data) ->
          if String.starts_with ~prefix:own_prefix key then
            let seq =
              int_of_string_opt
                (String.sub key (String.length own_prefix)
                   (String.length key - String.length own_prefix))
            in
            match (seq, decode_own data) with
            | Some seq, Some entry ->
                Hashtbl.replace t.own_log seq entry;
                if seq - 1 < !floor then floor := seq - 1
            | _, _ -> Store.remove store ~key (* torn record: drop it *))
        (Store.to_alist store);
      t.own_floor <- (if !floor = Int.max_int then t.origins.(self).delivered_seq else !floor);
      let own = t.origins.(self) in
      for s = own.delivered_seq + 1 to t.seq do
        match Hashtbl.find_opt t.own_log s with
        | Some (c, payload) ->
            Queue.add (s, c, payload) own.queue;
            own.next_seq <- s + 1
        | None -> ()
      done;
      own.next_seq <- Int.max own.next_seq (t.seq + 1);
      Some t

(* ---- membership bootstrap ---- *)

let parse_members values =
  match values with
  | [ Value.Listv ports ] ->
      let parsed =
        List.fold_left
          (fun acc v ->
            match (acc, v) with
            | Some parsed, Value.Portv p -> Some (p :: parsed)
            | _, _ -> None)
          (Some []) ports
      in
      Option.map List.rev parsed
  | _ -> None

(* The bootstrap keeps offering the member list until every member has
   acknowledged: a member crashed through one round joins in a later one
   (its store has nothing yet, so only the join makes it a member).  Request
   ids are pinned — generated ids would leak the process-global Rpc counter
   into message bytes and break fingerprint determinism. *)
let introduce world ~group ~at ~members =
  let def_name = group ^ "_bootstrap" in
  if Runtime.find_def world def_name <> None then
    invalid_arg (Printf.sprintf "Scd.introduce: group %s already introduced" group);
  let n = List.length members in
  let max_rounds = 200 in
  let bootstrap : Runtime.def =
    {
      Runtime.def_name;
      provides = [];
      init =
        (fun ctx _ ->
          let payload = [ Value.list (List.map Value.port members) ] in
          let joined = Array.make n false in
          let round = ref 0 in
          while Array.exists not joined && !round < max_rounds do
            List.iteri
              (fun i member ->
                if not joined.(i) then
                  match
                    Rpc.call ctx ~to_:member ~timeout:(Clock.ms 600)
                      ~request_id:(3_600_000_000 + (!round * n) + i)
                      "members" payload
                  with
                  | Rpc.Reply ("members_ok", _) -> joined.(i) <- true
                  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ())
              members;
            incr round;
            if Array.exists not joined then Runtime.sleep ctx (Clock.ms 250)
          done);
      recover = None;
    }
  in
  Runtime.register_def world bootstrap;
  ignore (Runtime.create_guardian world ~at ~def_name ~args:[])
