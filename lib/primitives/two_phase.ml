open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Store = Dcp_stable.Store
module Clock = Dcp_sim.Clock

(* Request ids for protocol messages live in their own range so they never
   collide with Rpc's counter or the bank's derived ids.  Like Rpc's ids
   they are encoded into message bytes, so a sharded world mints them from
   the per-shard deterministic counter (offset into the same range). *)
let next_rid = ref 0

let fresh_rid ctx =
  if Runtime.ctx_shards ctx = 1 then begin
    incr next_rid;
    2_000_000_000 + !next_rid
  end
  else 2_000_000_000 + Runtime.ctx_mint_id ctx

(* ------------------------------------------------------------------ *)
(* Participant                                                          *)
(* ------------------------------------------------------------------ *)

type participant_hooks = {
  prepare : txid:int -> Value.t -> (unit, string) result;
  commit : txid:int -> unit;
  abort : txid:int -> unit;
}

let participant_signatures =
  [
    Rpc.request_signature "prepare" [ Vtype.Tint; Vtype.Tany ]
      ~replies:
        [ Vtype.reply "vote_commit" [ Vtype.Tint ]; Vtype.reply "vote_abort" [ Vtype.Tint; Vtype.Tstr ] ];
    Rpc.request_signature "commit" [ Vtype.Tint ] ~replies:[ Vtype.reply "acked" [ Vtype.Tint ] ];
    Rpc.request_signature "abort" [ Vtype.Tint ] ~replies:[ Vtype.reply "acked" [ Vtype.Tint ] ];
  ]

let pstate_key txid = Printf.sprintf "2pc:p:%d" txid

(* The per-txid participant state is logged in the guardian's own store, so
   a participant that crashed while prepared still answers duplicates
   consistently after recovery. *)
let handle_participant ctx ~hooks msg =
  let store = Runtime.store ctx in
  let reply command args =
    match msg.Message.reply_to with
    | Some reply -> Runtime.send ctx ~to_:reply command args
    | None -> ()
  in
  match (msg.Message.command, msg.Message.args) with
  | "prepare", [ Value.Int rid; Value.Int txid; payload ] ->
      (match Store.get store ~key:(pstate_key txid) with
      | Some "prepared" | Some "committed" ->
          reply "vote_commit" [ Value.int rid; Value.int txid ]
      | Some _ -> reply "vote_abort" [ Value.int rid; Value.int txid; Value.str "aborted" ]
      | None -> (
          match hooks.prepare ~txid payload with
          | Ok () ->
              Store.set store ~key:(pstate_key txid) "prepared";
              reply "vote_commit" [ Value.int rid; Value.int txid ]
          | Error reason ->
              Store.set store ~key:(pstate_key txid) "refused";
              reply "vote_abort" [ Value.int rid; Value.int txid; Value.str reason ]));
      true
  | "commit", [ Value.Int rid; Value.Int txid ] ->
      (match Store.get store ~key:(pstate_key txid) with
      | Some "prepared" ->
          hooks.commit ~txid;
          Store.set store ~key:(pstate_key txid) "committed"
      | Some _ | None -> () (* duplicate or unknown: answer idempotently *));
      reply "acked" [ Value.int rid; Value.int txid ];
      true
  | "abort", [ Value.Int rid; Value.Int txid ] ->
      (match Store.get store ~key:(pstate_key txid) with
      | Some "prepared" ->
          hooks.abort ~txid;
          Store.set store ~key:(pstate_key txid) "aborted"
      | Some _ | None -> ());
      reply "acked" [ Value.int rid; Value.int txid ];
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Coordinator                                                          *)
(* ------------------------------------------------------------------ *)

type decision = Committed | Aborted of string

let decision_key txid = Printf.sprintf "2pc:c:%d" txid

let encode_decision ~decision ~ports ~acked =
  let committed, reason = match decision with Committed -> (true, "") | Aborted r -> (false, r) in
  Codec.encode_exn
    (Value.record
       [
         ("committed", Value.bool committed);
         ("reason", Value.str reason);
         ("ports", Value.list (List.map Value.port ports));
         ("acked", Value.bool acked);
       ])

let decode_decision encoded =
  let v = Codec.decode_exn encoded in
  let committed = Value.get_bool (Value.field v "committed") in
  let reason = Value.get_str (Value.field v "reason") in
  let ports = List.map Value.get_port (Value.get_list (Value.field v "ports")) in
  let acked = Value.get_bool (Value.field v "acked") in
  ((if committed then Committed else Aborted reason), ports, acked)

(* Send [command(rid, txid)] to every port and collect matching acks until
   the deadline; returns the set of ports that acknowledged. *)
let announce_round ctx ~reply_port ~txid ~command ~ports ~timeout =
  let pending = Hashtbl.create 8 in
  List.iter
    (fun port ->
      let rid = fresh_rid ctx in
      Hashtbl.replace pending rid port;
      Runtime.send ctx ~to_:port ~reply_to:(Port.name reply_port) command
        [ Value.int rid; Value.int txid ])
    ports;
  let deadline = Clock.add (Runtime.ctx_now ctx) timeout in
  let rec collect acked =
    if Hashtbl.length pending = 0 then acked
    else
      let remaining = Clock.diff deadline (Runtime.ctx_now ctx) in
      if remaining <= 0 then acked
      else
        match Runtime.receive ctx ~timeout:remaining [ reply_port ] with
        | `Timeout -> acked
        | `Msg (_, msg) -> (
            match (msg.Message.command, msg.Message.args) with
            | "acked", Value.Int rid :: _ -> (
                match Hashtbl.find_opt pending rid with
                | Some port ->
                    Hashtbl.remove pending rid;
                    collect (port :: acked)
                | None -> collect acked)
            | _ -> collect acked)
  in
  collect []

(* Announce the decision until every participant acked or we run out of
   rounds; returns true when fully acknowledged. *)
let announce_until_acked ctx ~reply_port ~txid ~command ~ports ~timeout ~rounds =
  let rec go remaining ports =
    if ports = [] then true
    else if remaining = 0 then false
    else begin
      let acked = announce_round ctx ~reply_port ~txid ~command ~ports ~timeout in
      let still = List.filter (fun p -> not (List.memq p acked)) ports in
      go (remaining - 1) still
    end
  in
  go rounds ports

let coordinate ctx ~txid ~participants ?(prepare_timeout = Clock.s 1) ?(ack_timeout = Clock.ms 500)
    () =
  let store = Runtime.store ctx in
  let reply_port = Runtime.new_port ctx ~capacity:256 [ Vtype.wildcard ] in
  let ports = List.map fst participants in
  (* Phase 1: prepare everyone in parallel. *)
  let pending = Hashtbl.create 8 in
  List.iter
    (fun (port, payload) ->
      let rid = fresh_rid ctx in
      Hashtbl.replace pending rid port;
      Runtime.send ctx ~to_:port ~reply_to:(Port.name reply_port) "prepare"
        [ Value.int rid; Value.int txid; payload ])
    participants;
  let deadline = Clock.add (Runtime.ctx_now ctx) prepare_timeout in
  let rec gather abort_reason =
    if Hashtbl.length pending = 0 then abort_reason
    else
      let remaining = Clock.diff deadline (Runtime.ctx_now ctx) in
      if remaining <= 0 then Some "participant did not vote in time"
      else
        match Runtime.receive ctx ~timeout:remaining [ reply_port ] with
        | `Timeout -> Some "participant did not vote in time"
        | `Msg (_, msg) -> (
            match (msg.Message.command, msg.Message.args) with
            | "vote_commit", Value.Int rid :: _ ->
                Hashtbl.remove pending rid;
                gather abort_reason
            | "vote_abort", [ Value.Int rid; Value.Int _; Value.Str reason ] ->
                Hashtbl.remove pending rid;
                gather (Some reason)
            | "failure", [ Value.Str reason ] ->
                (* a prepare bounced (dead port etc.) — abort, although we
                   cannot tell whose prepare it was *)
                gather (Some reason)
            | _ -> gather abort_reason)
  in
  let abort_reason = gather None in
  let decision = match abort_reason with None -> Committed | Some r -> Aborted r in
  (* Log the decision (with the participant set) before announcing it. *)
  Store.set store ~key:(decision_key txid) (encode_decision ~decision ~ports ~acked:false);
  let command = match decision with Committed -> "commit" | Aborted _ -> "abort" in
  let all_acked =
    announce_until_acked ctx ~reply_port ~txid ~command ~ports ~timeout:ack_timeout ~rounds:3
  in
  if all_acked then
    Store.set store ~key:(decision_key txid) (encode_decision ~decision ~ports ~acked:true);
  Runtime.remove_port ctx reply_port;
  decision

let unacked_decisions store =
  (* Key-sorted enumeration: recovery redelivers decisions in a
     deterministic order. *)
  List.filter_map
    (fun (key, value) ->
      match String.split_on_char ':' key with
      | [ "2pc"; "c"; txid ] ->
          let decision, ports, acked = decode_decision value in
          if acked then None else Some (int_of_string txid, decision, ports)
      | _ -> None)
    (Store.to_alist store)

let redeliver_decisions ctx =
  let store = Runtime.store ctx in
  let pending = unacked_decisions store in
  let reply_port = Runtime.new_port ctx ~capacity:256 [ Vtype.wildcard ] in
  List.iter
    (fun (txid, decision, ports) ->
      let command = match decision with Committed -> "commit" | Aborted _ -> "abort" in
      let all_acked =
        announce_until_acked ctx ~reply_port ~txid ~command ~ports ~timeout:(Clock.ms 500)
          ~rounds:5
      in
      if all_acked then
        Store.set store ~key:(decision_key txid) (encode_decision ~decision ~ports ~acked:true))
    pending;
  Runtime.remove_port ctx reply_port;
  List.length pending

let pending_decisions store = List.length (unacked_decisions store)
