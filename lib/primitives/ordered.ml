open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Clock = Dcp_sim.Clock

(* Channel ids are stamped into every data packet, so the sharded mint
   rule applies (see Rpc.fresh_id). *)
let next_channel = ref 0

let fresh_channel ctx =
  if Runtime.ctx_shards ctx = 1 then begin
    incr next_channel;
    !next_channel
  end
  else Runtime.ctx_mint_id ctx

let data_signature = Vtype.signature "odata" [ Vtype.Tint; Vtype.Tint; Vtype.Tany ]

(* ------------------------------------------------------------------ *)
(* Receiver                                                             *)
(* ------------------------------------------------------------------ *)

type receiver = {
  rctx : Runtime.ctx;
  rport : Port.t;
  buffer : (int, Value.t) Hashtbl.t;  (** seq -> payload, seq >= expected *)
  mutable expected : int;
  mutable delivered : int;
}

let receiver ctx ?(capacity = 64) () =
  {
    rctx = ctx;
    rport = Runtime.new_port ctx ~capacity [ data_signature ];
    buffer = Hashtbl.create 32;
    expected = 0;
    delivered = 0;
  }

let receiver_port r = Port.name r.rport

let accept r msg =
  match (msg.Message.command, msg.Message.args) with
  | "odata", [ Value.Int _chan; Value.Int seq; payload ] ->
      if seq >= r.expected then Hashtbl.replace r.buffer seq payload;
      (* the cumulative ack reflects the longest in-order prefix present *)
      let rec advance_probe n = if Hashtbl.mem r.buffer n then advance_probe (n + 1) else n in
      let next_expected = advance_probe r.expected in
      (match msg.Message.reply_to with
      | Some ack_port ->
          Runtime.send r.rctx ~to_:ack_port "oack"
            [ Value.int _chan; Value.int next_expected ]
      | None -> ())
  | _ -> ()

let rec recv r ?timeout () =
  match Hashtbl.find_opt r.buffer r.expected with
  | Some payload ->
      Hashtbl.remove r.buffer r.expected;
      r.expected <- r.expected + 1;
      r.delivered <- r.delivered + 1;
      Some payload
  | None -> (
      let started = Runtime.ctx_now r.rctx in
      match Runtime.receive r.rctx ?timeout [ r.rport ] with
      | `Timeout -> None
      | `Msg (_, msg) ->
          accept r msg;
          let timeout =
            Option.map
              (fun t -> Int.max 0 (t - Clock.diff (Runtime.ctx_now r.rctx) started))
              timeout
          in
          recv r ?timeout ())

let received_count r = r.delivered

(* ------------------------------------------------------------------ *)
(* Sender                                                               *)
(* ------------------------------------------------------------------ *)

type sender = {
  sctx : Runtime.ctx;
  channel : int;
  dest : Port_name.t;
  ack_port : Port.t;
  window : int;
  retransmit_every : Clock.time;
  unacked : (int, Value.t) Hashtbl.t;
  mutable next_seq : int;
  mutable transmissions : int;
  mutable closed : bool;
}

let transmit s seq payload =
  s.transmissions <- s.transmissions + 1;
  Runtime.send s.sctx ~to_:s.dest ~reply_to:(Port.name s.ack_port) "odata"
    [ Value.int s.channel; Value.int seq; payload ]

let handle_ack s msg =
  match (msg.Message.command, msg.Message.args) with
  | "oack", [ Value.Int chan; Value.Int next_expected ] when chan = s.channel ->
      Hashtbl.iter
        (fun seq _ -> if seq < next_expected then Hashtbl.remove s.unacked seq)
        (Hashtbl.copy s.unacked)
  | _ -> ()  (* stale acks of other channels, failure notices: ignored *)

(* Drain whatever acknowledgements are waiting without blocking beyond
   [timeout]. *)
let rec pump_acks s ~timeout =
  match Runtime.receive s.sctx ~timeout [ s.ack_port ] with
  | `Timeout -> ()
  | `Msg (_, msg) ->
      handle_ack s msg;
      pump_acks s ~timeout:0

let retransmit_loop s () =
  let rec loop () =
    if not s.closed then begin
      Runtime.sleep s.sctx s.retransmit_every;
      (* Retransmit in sequence order: the receiver sees a deterministic
         packet stream for a given unacked set, whatever the hash layout. *)
      Hashtbl.fold (fun seq payload acc -> (seq, payload) :: acc) s.unacked []
      |> List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2)
      |> List.iter (fun (seq, payload) -> transmit s seq payload);
      loop ()
    end
  in
  loop ()

let connect ctx ~to_ ?(window = 16) ?(retransmit_every = Clock.ms 100) () =
  if window <= 0 then invalid_arg "Ordered.connect: window must be positive";
  let s =
    {
      sctx = ctx;
      channel = fresh_channel ctx;
      dest = to_;
      ack_port = Runtime.new_port ctx ~capacity:256 [ Vtype.wildcard ];
      window;
      retransmit_every;
      unacked = Hashtbl.create 32;
      next_seq = 0;
      transmissions = 0;
      closed = false;
    }
  in
  ignore
    (Runtime.spawn ctx
       ~name:(Printf.sprintf "ordered.retransmit.%d" s.channel)
       (retransmit_loop s));
  s

let send s payload =
  if s.closed then invalid_arg "Ordered.send: channel is closed";
  (* Block while the window is full, living off acknowledgements. *)
  while Hashtbl.length s.unacked >= s.window do
    pump_acks s ~timeout:s.retransmit_every
  done;
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  Hashtbl.replace s.unacked seq payload;
  transmit s seq payload;
  (* opportunistically eat pending acks to keep the window fresh *)
  pump_acks s ~timeout:0

let flush s ~timeout =
  let deadline = Clock.add (Runtime.ctx_now s.sctx) timeout in
  let rec wait () =
    if Hashtbl.length s.unacked = 0 then true
    else
      let remaining = Clock.diff deadline (Runtime.ctx_now s.sctx) in
      if remaining <= 0 then false
      else begin
        pump_acks s ~timeout:(Int.min remaining s.retransmit_every);
        wait ()
      end
  in
  wait ()

let close s = s.closed <- true
let in_flight s = Hashtbl.length s.unacked
let messages_sent s = s.transmissions
