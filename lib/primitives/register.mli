(** Multi-writer multi-reader atomic registers over {!Scd}.

    The SCD-broadcast construction of an atomic read/write memory (Imbs,
    Mostéfaoui, Perrin, Raynal; specification per Aspnes's notes, PAPERS.md):
    a group of guardians each holds a full copy of a key → value table;

    - [write k v] SCD-broadcasts the write and replies only once the member
      has {e delivered} it (applied it at its place in the group-wide
      timestamp order);
    - [read k] SCD-broadcasts a sync marker and replies with the local value
      once that marker is delivered — the delivery barrier is what rules out
      stale reads and new/old inversions.

    Values win by delivery timestamp (last-writer-wins over {!Scd.ts}, a
    total order), so every member's table converges to the same state
    regardless of how deliveries were grouped into sets.  The table is
    durable: the frontier never re-delivers old sets, so a recovered member
    must come back holding everything it had applied.

    Request execution is at-most-once {e across member crashes}: each
    request id's outcome (or an in-progress marker) is recorded durably
    before any effect, and duplicates — network-duplicated or client-retried
    — either get the recorded reply resent or are dropped while the original
    is still in flight.  Clients that want clean linearizability histories
    still call with [~attempts:1]: a timed-out call has unknown effect and
    must be recorded as pending, never reissued under a fresh id.

    The [stale_reads] mode skips the delivery barrier on both paths:
    writes are acknowledged at broadcast time and reads served directly
    from the local table — a deliberately broken register (the classic
    fast-ack bug) for the [register_mutated] harness self-test, which the
    linearizability oracle must catch. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Clock = Dcp_sim.Clock

val def_name : string
(** ["scd_register"] *)

val port_type : Vtype.port_type
val metric_malformed : string

(** The shared LWW table core, reused by {!Snapshot}: a volatile
    key → (value, ts) map mirrored durably into the guardian's store under
    ["k:"] keys. *)
module Table : sig
  type t

  val restore : Dcp_stable.Store.t -> t
  (** Rebuild from the store's ["k:"] entries (empty on a fresh store). *)

  val apply : Runtime.ctx -> t -> key:string -> value:Value.t -> ts:Scd.ts -> unit
  (** Last-writer-wins by {!Scd.ts_compare}; persists winners. *)

  val get : t -> string -> (Value.t * Scd.ts) option

  val sorted_entries : t -> (string * Value.t * Scd.ts) list
  (** Key-sorted, for deterministic snapshot replies. *)

  val in_store : Dcp_stable.Store.t -> (string * Scd.ts) list
  (** Key-sorted (key, winning ts) shape of a member's durable table — the
      convergence-oracle accessor (value agreement follows from ts
      agreement, as with {!Replica.table_in_store}). *)
end

val create_group :
  Runtime.world ->
  nodes:Runtime.node_id list ->
  ?status_every:Clock.time ->
  ?resend_max:int ->
  ?stale_reads:bool ->
  introduce_at:Runtime.node_id ->
  unit ->
  Port_name.t list
(** One register member per node, introduced to each other by a bootstrap
    guardian at [introduce_at] (pick a node outside the crash schedule).
    Returns the members' request ports in [nodes] order. *)

(** {1 Client helpers}

    Single-attempt calls (see the module preamble); [None]/[false] covers
    timeout, failure and not-yet-joined members alike. *)

val write :
  Runtime.ctx -> register:Port_name.t -> key:string -> value:Value.t ->
  timeout:Clock.time -> bool

val read :
  Runtime.ctx -> register:Port_name.t -> key:string -> timeout:Clock.time ->
  Value.t option
