(** Distributed simultaneous update: replicated registers with anti-entropy.

    §3's first example of the protocols the chosen primitive must express
    is "distributed simultaneous updates" — several nodes accepting writes
    to the same logical datum concurrently.  This module implements the
    classic timestamp solution of that literature: every write is stamped
    with a Lamport clock paired with the origin's id; each replica keeps
    the value with the lexicographically largest stamp (last-writer-wins),
    gossips accepted writes to a small deterministic fanout of peers, and
    runs periodic anti-entropy so replicas that missed an update (lost
    message, crash) converge.

    Anti-entropy is a digest/diff/pull exchange over byte-budgeted key
    windows (see {!Reconcile} for the pure half and DESIGN.md §11 for the
    protocol): each tick a replica sends the digest of one window to
    [fanout] peers chosen from its split of the world RNG; the receiver
    answers with [sync_delta] for keys it holds newer and [sync_pull] for
    keys the sender holds newer or the receiver lacks.  Every sync message
    is packed under a configurable byte budget (Codec encoded size,
    32 KiB default), with a cursor carrying reconciliation across rounds
    when the table is bigger than one message.

    Port (RPC convention):
    {v
    write(key, value)            replies (written(stamp))
    read(key)                    replies (value(v, stamp), unknown_key)
    join(peer_ports)             replies (joined)        -- setup, idempotent
    gossip(key, value, stamp)                            -- replica to replica
    sync_digest(lo, hi?, entries)                        -- anti-entropy offer
    sync_pull(keys)                                      -- request newer entries
    sync_delta(entries)                                  -- stamped values
    v}

    Malformed replica-to-replica messages (semantically invalid stamps,
    bad windows, non-port peers) are dropped and counted on the
    [replica.malformed] metric — never raised, per §3.4's best-effort
    delivery.  Replicas recover after a node crash with their membership
    and sync configuration (stable store) but an empty table: the data is
    soft state that anti-entropy refills, and the recovering replica
    adopts the largest Lamport counter its peers claim before accepting
    new writes. *)

open Dcp_wire

val def_name : string
val port_type : Vtype.port_type
val def : Dcp_core.Runtime.def

val create_group :
  Dcp_core.Runtime.world ->
  nodes:Dcp_core.Runtime.node_id list ->
  ?sync_every:Dcp_sim.Clock.time ->
  ?fanout:int ->
  ?byte_budget:int ->
  unit ->
  Port_name.t list
(** Create one replica guardian at each node and introduce them to each
    other.  [sync_every] is the anti-entropy period (default 500 ms);
    [fanout] is how many peers each tick's digest goes to (default 2);
    [byte_budget] bounds every sync message's encoded payload (default
    {!Reconcile.default_budget}).  Returns the replicas' request ports, in
    node order. *)

(** {1 Client helpers} *)

val write :
  Dcp_core.Runtime.ctx ->
  replica:Port_name.t ->
  key:string ->
  value:Value.t ->
  timeout:Dcp_sim.Clock.time ->
  bool
(** Write through one replica; [true] on acknowledgement.  Callers needing
    run-to-run determinism (check scenarios) should issue the RPC
    themselves with a pinned [request_id] — generated ids draw from a
    process-global counter. *)

val read :
  Dcp_core.Runtime.ctx ->
  replica:Port_name.t ->
  key:string ->
  timeout:Dcp_sim.Clock.time ->
  Value.t option

(** {1 Observability}

    Store accessors for oracles and tests (the bank/airline convention:
    guardians mirror oracle-visible state into their stable store; harness
    code reads it through {!Dcp_core.Runtime.guardian_store}). *)

val table_in_store : Dcp_stable.Store.t -> (string * Reconcile.stamp) list
(** The replica's key → stamp table as mirrored in its store, sorted by
    key.  Convergence means: equal on every live replica. *)

val peers_in_store : Dcp_stable.Store.t -> Port_name.t list
(** The persisted membership (what a recovering replica rejoins with). *)

(** {1 Metric names} *)

val metric_malformed : string
val metric_sync_msgs : string
val metric_sync_bytes : string
val metric_over_budget : string
val metric_max_bytes : string
val metric_pulls : string
val metric_pushes : string
