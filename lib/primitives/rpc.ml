open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Clock = Dcp_sim.Clock

let request_signature name args ~replies =
  let prefix_reply r =
    { Vtype.reply_command = r.Vtype.reply_command; reply_args = Vtype.Tint :: r.Vtype.reply_args }
  in
  Vtype.signature name (Vtype.Tint :: args) ~replies:(List.map prefix_reply replies)

type response =
  | Reply of string * Value.t list
  | Failure_msg of string
  | Timeout

(* Request ids only need to be unique per client guardian; a module-global
   counter keeps them unique across the whole world, which also makes
   traces easier to read.  Ids travel inside message bytes, so in a
   sharded world they must come from the per-shard deterministic mint
   (a counter shared across shards would make the bytes depend on
   cross-shard interleaving); one shard keeps the legacy stream. *)
let next_request_id = ref 0

let fresh_id ctx =
  if Runtime.ctx_shards ctx = 1 then begin
    let id = !next_request_id in
    incr next_request_id;
    id
  end
  else Runtime.ctx_mint_id ctx

let call ctx ~to_ ?(timeout = Clock.s 1) ?(attempts = 1) ?request_id command args =
  if attempts <= 0 then invalid_arg "Rpc.call: attempts must be positive";
  let id = match request_id with Some id -> id | None -> fresh_id ctx in
  (* Replies arrive as arbitrary commands prefixed with the request id, so
     the reply port is a wildcard port; the id match below provides the
     pairing the port type cannot. *)
  let any_port = Runtime.new_port ctx [ Vtype.wildcard ] in
  let finish outcome =
    Runtime.remove_port ctx any_port;
    outcome
  in
  let rec attempt remaining =
    Runtime.send ctx ~to_ ~reply_to:(Port.name any_port) command (Value.int id :: args);
    (* One deadline per attempt: stale replies consume the remaining budget
       instead of restarting it, so a flood of strays cannot stretch an
       attempt beyond [timeout]. *)
    let deadline = Clock.add (Runtime.ctx_now ctx) timeout in
    wait_until deadline remaining
  and wait_until deadline remaining =
    let budget = Clock.diff deadline (Runtime.ctx_now ctx) in
    if Clock.compare budget Clock.zero <= 0 then retry_or ~remaining Timeout
    else
      match Runtime.receive ctx ~timeout:budget [ any_port ] with
      | `Timeout -> retry_or ~remaining Timeout
      | `Msg (_, msg) -> (
          match (msg.Message.command, msg.Message.args) with
          | "failure", [ Value.Str reason ] -> retry_or ~remaining (Failure_msg reason)
          | reply_command, Value.Int rid :: rest when rid = id ->
              finish (Reply (reply_command, rest))
          | _ ->
              (* A stale response to a different request id: ignore it and
                 keep waiting within this attempt's remaining budget. *)
              wait_until deadline remaining)
  and retry_or ~remaining outcome =
    if remaining > 1 then attempt (remaining - 1) else finish outcome
  in
  attempt attempts

type dedup = {
  capacity : int;
  table : (int, string * Value.t list) Hashtbl.t;
  order : int Queue.t;  (** insertion order, oldest first — O(1) eviction *)
}

let dedup ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Rpc.dedup: capacity must be positive";
  { capacity; table = Hashtbl.create 64; order = Queue.create () }

let remember d id response =
  if not (Hashtbl.mem d.table id) then begin
    Hashtbl.replace d.table id response;
    Queue.add id d.order;
    if Queue.length d.order > d.capacity then
      match Queue.take_opt d.order with
      | Some oldest -> Hashtbl.remove d.table oldest
      | None -> ()
  end

let split_request msg =
  match (msg.Message.args, msg.Message.reply_to) with
  | Value.Int id :: rest, Some reply -> Some (id, rest, reply)
  | _, _ -> None

let serve ctx ~dedup:d msg ~f =
  match split_request msg with
  | None -> ()
  | Some (id, args, reply) ->
      let reply_command, reply_args =
        match Hashtbl.find_opt d.table id with
        | Some cached -> cached
        | None ->
            let response = f msg.Message.command args in
            remember d id response;
            response
      in
      Runtime.send ctx ~to_:reply reply_command (Value.int id :: reply_args)

let serve_always ctx msg ~f =
  match split_request msg with
  | None -> ()
  | Some (id, args, reply) ->
      let reply_command, reply_args = f msg.Message.command args in
      Runtime.send ctx ~to_:reply reply_command (Value.int id :: reply_args)
