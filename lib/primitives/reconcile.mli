(** Payload-agnostic anti-entropy reconciliation.

    The pure half of the replica's gossip protocol: stamps, digest entries,
    key windows, byte-budgeted packing, and the digest diff that decides
    what a reconciliation round pushes and pulls.  Nothing here touches the
    runtime — the functions are deterministic data transforms, which is what
    lets the replica guardian, the oracles, and the benches share them (and
    what will let higher-order primitives reuse the layer later: entries are
    (key, stamp) pairs regardless of what the values mean).

    Convergence argument (Aspnes, asynchronous message-passing): each
    reconciliation round between two replicas makes their (key → stamp)
    tables equal on the exchanged window, and stamps only grow, so any
    gossip path with eventually-delivered messages drives all tables to the
    pointwise maximum.  The pull half below is what makes a *single* round
    bidirectional — without it convergence relies on the other side
    initiating its own round. *)

open Dcp_wire

(** {1 Stamps} *)

type stamp = int * int
(** Lamport counter, then origin id as the total-order tiebreak. *)

val stamp_compare : stamp -> stamp -> int
val stamp_value : stamp -> Value.t

val stamp_of_value : Value.t -> stamp option
(** [None] for anything but a well-formed stamp (positive counter,
    non-negative origin) — malformed wire input is droppable data, never an
    exception. *)

val stamp_to_string : stamp -> string
val stamp_of_string : string -> stamp option
(** Compact text form used by the stable-store mirror. *)

(** {1 Digest entries} *)

val entry_value : string * stamp -> Value.t
val entry_of_value : Value.t -> (string * stamp) option
val entry_compare : string * stamp -> string * stamp -> int

(** {1 Key windows}

    A digest only covers a contiguous key range [\[lo, hi)] ([hi = None]
    means unbounded), so a table larger than one byte budget is reconciled
    across rounds by a moving cursor. *)

type window = { lo : string; hi : string option }

val everything : window
val window_ok : window -> bool
(** Reject adversarial windows with [hi <= lo]. *)

val in_window : window -> string -> bool

(** {1 Byte budgeting} *)

val default_budget : int
(** 32 KiB, the classic gossip transport cap. *)

val header_allowance : int
(** Bytes reserved out of the budget for command, window bounds and list
    framing, so that budgeting the entries budgets the encoded message. *)

val value_size : Value.t -> int
(** Codec-encoded size; [max_int] when unencodable. *)

val take_within : budget:int -> size:('a -> int) -> 'a list -> 'a list * 'a list
(** Greedy prefix whose sizes fit [budget - header_allowance], plus the
    remainder.  Always takes at least one entry from a non-empty list so an
    oversized single entry cannot stall the cursor forever. *)

val chunks : budget:int -> size:('a -> int) -> 'a list -> 'a list list
(** Split into consecutive runs, each within the budget (modulo the same
    at-least-one-entry progress rule). *)

(** {1 Digest diff} *)

type diff = {
  pulls : string list;  (** keys to request from the digest sender *)
  pushes : string list;  (** keys to send back to the digest sender *)
  max_claimed : stamp option;  (** largest stamp the digest asserted *)
}

val diff : claimed:(string * stamp) list -> held:(string * stamp) list -> diff
(** Merge-walk of two key-sorted entry lists covering the same window:
    [pulls] are keys the sender holds newer or the receiver lacks; [pushes]
    are keys the receiver holds newer or the sender lacks.  [max_claimed]
    feeds Lamport-clock observation (tracked inside the same single pass)
    so a rejoined replica cannot issue writes that lose to stamps it has
    been told about.  One pass, O(|claimed| + |held|), with a physical-
    equality fast path through equal-key/equal-stamp runs — the common
    case between converged replicas. *)
