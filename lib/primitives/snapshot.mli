(** Snapshot objects over {!Scd} — the second classic construction of the
    SCD-broadcast paper (specification per Aspnes's notes, PAPERS.md): a set
    of single-writer-ish components updated individually, read atomically
    as a whole.

    [update k v] is the register write; [snapshot ()] broadcasts a sync
    marker and, once it is delivered, replies with the member's {e entire}
    table — an atomic point-in-time view, totally ordered against every
    update by the delivery timestamp order.  Shares {!Register.Table} (and
    its durable ["k:"] mirror, so the same convergence oracle applies) but
    is its own guardian definition: a snapshot group serves no per-key
    reads, which is what lets the linearizability checker treat register
    histories per key while snapshot histories check whole-state.

    The same durable at-most-once request discipline as {!Register}
    applies; clients use single-attempt calls when a history is being
    recorded. *)

open Dcp_wire
module Runtime = Dcp_core.Runtime
module Clock = Dcp_sim.Clock

val def_name : string
(** ["scd_snapshot"] *)

val port_type : Vtype.port_type

val create_group :
  Runtime.world ->
  nodes:Runtime.node_id list ->
  ?status_every:Clock.time ->
  ?resend_max:int ->
  introduce_at:Runtime.node_id ->
  unit ->
  Port_name.t list

(** {1 Client helpers} *)

val update :
  Runtime.ctx -> snapshot:Port_name.t -> key:string -> value:Value.t ->
  timeout:Clock.time -> bool

val scan :
  Runtime.ctx -> snapshot:Port_name.t -> timeout:Clock.time ->
  (string * Value.t) list option
(** The atomic whole-table view, key-sorted; [None] on timeout/failure. *)
