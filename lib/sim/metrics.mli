(** Measurement primitives for experiments.

    Counters, gauges and log-bucketed histograms.  Histograms store samples
    in exponentially sized buckets (HDR-style, 5% resolution) so latency
    distributions over nine orders of magnitude stay cheap; quantiles are
    estimated at bucket midpoints.  A {!registry} groups the instruments a
    scenario creates so a report can render them all at once.  Get-or-create
    by name is O(1) (hashed), so per-message code may look instruments up by
    name — though hot paths should still resolve the handle once and reuse
    it.  Reports list instruments in creation order. *)

type counter
type gauge
type histogram

type registry

val registry : unit -> registry

(** {1 Counters} *)

val counter : registry -> string -> counter
(** Get-or-create by name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

(** {1 Gauges} *)

val gauge : registry -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

val histogram : registry -> string -> histogram
val observe : histogram -> float -> unit

val samples : histogram -> int
val mean : histogram -> float
(** 0. when empty. *)

val hist_min : histogram -> float
val hist_max : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]; 0. when empty.  Approximate (bucket
    midpoint), with relative error bounded by the bucket width (~5%). *)

val hist_sum : histogram -> float

val merge : registry list -> registry
(** Merge registries into a fresh snapshot: counters sum, gauges keep the
    maximum, histograms add bucket-wise.  Used by the sharded runtime to
    present one world-level view over per-shard registries; mutating the
    result does not touch the inputs. *)

(** {1 Reporting} *)

val counters : registry -> (string * int) list
val gauges : registry -> (string * float) list
val histograms : registry -> (string * histogram) list

val pp_report : Format.formatter -> registry -> unit
(** Render every instrument: counters, gauges, and histogram summaries
    (n / mean / p50 / p95 / p99 / max). *)
