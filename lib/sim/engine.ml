type timer = {
  time : Clock.time;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable fired : bool;
  owner : t;
}

and t = {
  mutable clock : Clock.time;
  mutable next_seq : int;
  mutable executed : int;
  mutable live : int;  (** scheduled, not yet fired or cancelled *)
  queue : timer Heap.t;
}

let compare_timer a b =
  let c = Clock.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { clock = Clock.zero; next_seq = 0; executed = 0; live = 0; queue = Heap.create ~cmp:compare_timer }

let now t = t.clock

let schedule t ~at action =
  let at = if Clock.compare at t.clock < 0 then t.clock else at in
  let timer = { time = at; seq = t.next_seq; action; cancelled = false; fired = false; owner = t } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue timer;
  timer

let schedule_after t ~delay action = schedule t ~at:(Clock.add t.clock delay) action

let cancel timer =
  if not (timer.cancelled || timer.fired) then begin
    timer.cancelled <- true;
    timer.owner.live <- timer.owner.live - 1
  end

let is_cancelled timer = timer.cancelled

(* [live] is kept exact by [schedule]/[cancel]/[step], so this is O(1);
   cancelled timers still occupy the heap until popped but are not counted. *)
let pending t = t.live

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      if ev.cancelled then step t
      else begin
        ev.fired <- true;
        t.live <- t.live - 1;
        t.clock <- ev.time;
        t.executed <- t.executed + 1;
        ev.action ();
        true
      end

let run t = while step t do () done

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev ->
        if Clock.compare ev.time limit > 0 then continue := false
        else if not (step t) then continue := false
  done;
  if Clock.compare t.clock limit < 0 then t.clock <- limit

let run_for t d = run_until t (Clock.add t.clock d)
let events_executed t = t.executed

let next_time t = Option.map (fun ev -> ev.time) (Heap.peek t.queue)
