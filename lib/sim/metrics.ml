type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Buckets are powers of [growth]; bucket i covers [growth^i, growth^(i+1)).
   An extra slot 0 holds non-positive samples. *)
type histogram = {
  growth : float;
  log_growth : float;
  mutable buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable minimum : float;
  mutable maximum : float;
}

(* Each instrument family is a Hashtbl (O(1) get-or-create, so hot paths
   may look instruments up by name without a registry scan) plus a
   newest-first name list that preserves creation order for reports. *)
type registry = {
  counter_tbl : (string, counter) Hashtbl.t;
  mutable counter_order : string list;
  gauge_tbl : (string, gauge) Hashtbl.t;
  mutable gauge_order : string list;
  hist_tbl : (string, histogram) Hashtbl.t;
  mutable hist_order : string list;
}

let registry () =
  {
    counter_tbl = Hashtbl.create 64;
    counter_order = [];
    gauge_tbl = Hashtbl.create 16;
    gauge_order = [];
    hist_tbl = Hashtbl.create 16;
    hist_order = [];
  }

let get_or_add tbl name make note =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace tbl name v;
      note name;
      v

let counter r name =
  get_or_add r.counter_tbl name (fun () -> { c = 0 }) (fun n -> r.counter_order <- n :: r.counter_order)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let count c = c.c

let gauge r name =
  get_or_add r.gauge_tbl name (fun () -> { g = 0.0 }) (fun n -> r.gauge_order <- n :: r.gauge_order)
let set_gauge g x = g.g <- x
let gauge_value g = g.g

let make_histogram () =
  let growth = 1.05 in
  {
    growth;
    log_growth = log growth;
    buckets = Array.make 1 0;
    n = 0;
    sum = 0.0;
    minimum = infinity;
    maximum = neg_infinity;
  }

let histogram r name =
  get_or_add r.hist_tbl name make_histogram (fun n -> r.hist_order <- n :: r.hist_order)

let bucket_index h x = if x <= 1.0 then 0 else 1 + int_of_float (log x /. h.log_growth)

let observe h x =
  let i = bucket_index h x in
  if i >= Array.length h.buckets then begin
    let buckets = Array.make (i + 16) 0 in
    Array.blit h.buckets 0 buckets 0 (Array.length h.buckets);
    h.buckets <- buckets
  end;
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. x;
  if x < h.minimum then h.minimum <- x;
  if x > h.maximum then h.maximum <- x

let samples h = h.n
let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
let hist_min h = if h.n = 0 then 0.0 else h.minimum
let hist_max h = if h.n = 0 then 0.0 else h.maximum
let hist_sum h = h.sum

let bucket_midpoint h i =
  if i = 0 then 1.0
  else
    let lo = Float.pow h.growth (float_of_int (i - 1)) in
    lo *. (1.0 +. h.growth) /. 2.0

let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = int_of_float (Float.round (q *. float_of_int (h.n - 1))) in
    let rec walk i acc =
      if i >= Array.length h.buckets then hist_max h
      else
        let acc = acc + h.buckets.(i) in
        if acc > target then
          (* Clamp the midpoint estimate into the observed range. *)
          Float.max (hist_min h) (Float.min (hist_max h) (bucket_midpoint h i))
        else walk (i + 1) acc
    in
    walk 0 0
  end

let counters r = List.rev_map (fun name -> (name, (Hashtbl.find r.counter_tbl name).c)) r.counter_order
let gauges r = List.rev_map (fun name -> (name, (Hashtbl.find r.gauge_tbl name).g)) r.gauge_order
let histograms r = List.rev_map (fun name -> (name, Hashtbl.find r.hist_tbl name)) r.hist_order

(* Merge shard registries into one snapshot: counters sum, gauges take the
   maximum (the only multi-shard gauges are high-water marks), histograms
   add bucket-wise.  Instruments keep first-seen order across the input
   registries, so a merged report is stable for a fixed shard layout. *)
let merge rs =
  let out = registry () in
  List.iter
    (fun r ->
      List.iter (fun (name, v) -> add (counter out name) v) (counters r);
      List.iter
        (fun (name, v) ->
          let g = gauge out name in
          if v > g.g then g.g <- v)
        (gauges r);
      List.iter
        (fun (name, h) ->
          let m = histogram out name in
          let blen = Array.length h.buckets in
          if blen > Array.length m.buckets then begin
            let buckets = Array.make blen 0 in
            Array.blit m.buckets 0 buckets 0 (Array.length m.buckets);
            m.buckets <- buckets
          end;
          Array.iteri (fun i c -> m.buckets.(i) <- m.buckets.(i) + c) h.buckets;
          m.n <- m.n + h.n;
          m.sum <- m.sum +. h.sum;
          if h.minimum < m.minimum then m.minimum <- h.minimum;
          if h.maximum > m.maximum then m.maximum <- h.maximum)
        (histograms r))
    rs;
  out

let pp_report fmt r =
  List.iter (fun (name, v) -> Format.fprintf fmt "counter %-40s %d@." name v) (counters r);
  List.iter (fun (name, v) -> Format.fprintf fmt "gauge   %-40s %.3f@." name v) (gauges r);
  let pp_hist (name, h) =
    Format.fprintf fmt "hist    %-40s n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f@." name
      (samples h) (mean h) (quantile h 0.5) (quantile h 0.95) (quantile h 0.99) (hist_max h)
  in
  List.iter pp_hist (histograms r)
