(** Array-backed 4-ary min-heap, parameterised by an explicit comparison.

    Used as the event queue of the simulation {!Engine}; also exposed for
    tests and benchmarks.  Sifts use swap-free hole insertion and the
    4-ary layout halves tree depth, which matters because every shard of
    a world pays a push+pop per event.  Not thread safe (each heap is
    owned by exactly one shard, which runs on one domain). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap order, not sorted). *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val check_invariant : 'a t -> bool
(** [check_invariant h] is [true] iff every parent is <= its children.
    Exposed for property tests. *)
