(** Discrete-event simulation engine.

    A single-threaded event loop over a virtual clock.  Events are callbacks
    scheduled at absolute virtual times; ties are broken by scheduling order,
    so a run is fully deterministic.  Timers can be cancelled, which is how
    the runtime implements receive-with-timeout. *)

type t

type timer
(** Handle to a scheduled event, usable for cancellation. *)

val create : unit -> t

val now : t -> Clock.time
(** Current virtual time. *)

val schedule : t -> at:Clock.time -> (unit -> unit) -> timer
(** [schedule t ~at f] runs [f] when the virtual clock reaches [at].
    Scheduling in the past is clamped to [now t]. *)

val schedule_after : t -> delay:Clock.time -> (unit -> unit) -> timer
(** [schedule_after t ~delay f] is [schedule t ~at:(now t + delay) f]. *)

val cancel : timer -> unit
(** Cancelling an already-fired or already-cancelled timer is a no-op. *)

val is_cancelled : timer -> bool

val pending : t -> int
(** Number of scheduled, uncancelled events. *)

val step : t -> bool
(** Execute the next event, advancing the clock. [false] if none remain. *)

val run : t -> unit
(** Run until no events remain. *)

val run_until : t -> Clock.time -> unit
(** Run events with time <= the limit; the clock is left at the limit if the
    queue drains earlier events, otherwise at the last executed event. *)

val run_for : t -> Clock.time -> unit
(** [run_for t d] is [run_until t (now t + d)]. *)

val events_executed : t -> int
(** Total events executed so far (for sanity checks and benchmarks). *)

val next_time : t -> Clock.time option
(** Time of the earliest queued timer, cancelled ones included — a lower
    bound on when the next live event fires.  Lets a sharded driver skip
    empty epoch windows instead of stepping through them. *)
