(* The shard-runtime module: the ONLY place in the tree allowed to touch
   OCaml's domain primitives (Domain, Atomic, Mutex, Condition) — the
   determinism lint enforces that.  Everything above this layer keeps the
   single-writer discipline: a shard's state is touched only by the domain
   currently running that shard, and shards hand data to each other only
   through their owner's sealed outbox exchange at epoch barriers.

   The pool is a classic generation-counted two-phase barrier: the caller
   publishes a round under the mutex (bumping [round_no]), workers run
   their shard's work outside the lock, then report arrival; the caller
   runs shard 0 itself and blocks until every worker has arrived.  The
   mutex acquisitions order each worker's writes before the caller's
   barrier-side reads, so when [round] returns, everything the shards did
   this round happens-before the caller's exchange code. *)

type pool = {
  shards : int;
  mutable work : int -> unit;
  m : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable round_no : int;
  mutable arrived : int;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let worker p i =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock p.m;
    while (not p.stop) && p.round_no = !last do
      Condition.wait p.start p.m
    done;
    if p.stop then begin
      Mutex.unlock p.m;
      running := false
    end
    else begin
      last := p.round_no;
      let work = p.work in
      Mutex.unlock p.m;
      work i;
      Mutex.lock p.m;
      p.arrived <- p.arrived + 1;
      if p.arrived = p.shards - 1 then Condition.signal p.finished;
      Mutex.unlock p.m
    end
  done

let pool ~shards =
  if shards < 1 then invalid_arg "Exec.pool: shards must be positive";
  let p =
    {
      shards;
      work = ignore;
      m = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      round_no = 0;
      arrived = 0;
      stop = false;
      domains = [||];
    }
  in
  p.domains <- Array.init (shards - 1) (fun i -> Domain.spawn (fun () -> worker p (i + 1)));
  p

let round p work =
  if p.shards = 1 then work 0
  else begin
    Mutex.lock p.m;
    p.work <- work;
    p.arrived <- 0;
    p.round_no <- p.round_no + 1;
    Condition.broadcast p.start;
    Mutex.unlock p.m;
    work 0;
    Mutex.lock p.m;
    while p.arrived < p.shards - 1 do
      Condition.wait p.finished p.m
    done;
    Mutex.unlock p.m
  end

let shutdown p =
  if Array.length p.domains > 0 then begin
    Mutex.lock p.m;
    p.stop <- true;
    Condition.broadcast p.start;
    Mutex.unlock p.m;
    Array.iter Domain.join p.domains;
    p.domains <- [||]
  end

let with_pool ~shards f =
  let p = pool ~shards in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

(* ---- domain-local state ---- *)

type 'a domain_local = 'a Domain.DLS.key

let domain_local init = Domain.DLS.new_key init
let local_get key = Domain.DLS.get key
let local_set key v = Domain.DLS.set key v

(* ---- shared counters ---- *)

type counter = int Atomic.t

let counter start = Atomic.make start
let fetch_incr c = Atomic.fetch_and_add c 1
