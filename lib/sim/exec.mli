(** Domain execution for sharded worlds — the shard-runtime module.

    This is the only module in the tree that may use OCaml's domain
    primitives ([Domain], [Atomic], [Mutex], [Condition]); the determinism
    lint flags them anywhere else.  The rest of the runtime keeps a
    single-writer discipline: each shard's engine, network, metrics and RNG
    streams are touched only by the domain running that shard, and data
    crosses shard boundaries only through the epoch-barrier outbox exchange
    that the {!round} caller performs while every worker is parked.

    Determinism argument: within a round no shard reads another shard's
    state, so the result of a round is the product of per-shard sequential
    executions — identical whether the shards run on [n] domains or are
    iterated in order on one.  The barrier (mutex + condition, two phases)
    gives the caller a happens-before edge over every worker's round. *)

type pool
(** [shards - 1] worker domains plus the calling domain, which runs
    shard 0. *)

val pool : shards:int -> pool
(** Spawn the worker domains.  [shards = 1] spawns nothing and {!round}
    degenerates to a direct call. *)

val round : pool -> (int -> unit) -> unit
(** [round p work] runs [work i] for every shard [i] in [0, shards)] —
    concurrently on the pool's domains ([work 0] on the caller) — and
    returns once all have finished.  [work] must touch only shard-[i]
    state. *)

val shutdown : pool -> unit
(** Park-free exit: wakes every worker and joins its domain.  Idempotent. *)

val with_pool : shards:int -> (pool -> 'a) -> 'a
(** Spawn, run, and always shut down (no leaked domains). *)

(** {1 Domain-local state}

    For module-level mutable state that is logically per-execution-thread
    (e.g. the current-process register of the effects scheduler): one value
    per domain, so shards cannot observe each other's. *)

type 'a domain_local

val domain_local : (unit -> 'a) -> 'a domain_local
val local_get : 'a domain_local -> 'a
val local_set : 'a domain_local -> 'a -> unit

(** {1 Shared counters}

    A monotonic counter safe to bump from any domain.  Use only for values
    whose {e uniqueness} matters but whose order does not (process ids in
    log lines); anything that feeds message bytes must come from per-shard
    deterministic streams instead. *)

type counter

val counter : int -> counter
val fetch_incr : counter -> int
(** Returns the pre-increment value. *)
