(* 4-ary min-heap.  Children of [i] live at [4i+1 .. 4i+4], parent at
   [(i-1)/4].  Versus the binary layout this halves the tree depth — a
   push or pop touches ~log4 n levels instead of log2 n — and the four
   children of a node sit adjacent in the array, so the extra
   comparisons per level are nearly free.  Sifts move a *hole* instead
   of swapping: the element being placed is held in a register while
   parents (or minimum children) are shifted one slot, one write per
   level instead of three.

   The pop order depends only on [cmp], never on the internal layout, so
   switching arity cannot change the execution order of an engine whose
   comparison is a total order (time, then sequence number). *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let next = if capacity = 0 then 16 else capacity * 2 in
    let data = Array.make next x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

(* Walk the hole at [i] towards the root until [x] fits, then write [x]
   exactly once. *)
let rec sift_up h i x =
  if i = 0 then h.data.(0) <- x
  else begin
    let parent = (i - 1) / 4 in
    if h.cmp x h.data.(parent) < 0 then begin
      h.data.(i) <- h.data.(parent);
      sift_up h parent x
    end
    else h.data.(i) <- x
  end

(* Index of the smallest of the (at most four) children of [i];
   [first = 4i+1] is known to be < size. *)
let min_child h first =
  let last = Int.min (first + 3) (h.size - 1) in
  let best = ref first in
  for j = first + 1 to last do
    if h.cmp h.data.(j) h.data.(!best) < 0 then best := j
  done;
  !best

(* Walk the hole at [i] towards the leaves until [x] fits. *)
let rec sift_down h i x =
  let first = (4 * i) + 1 in
  if first >= h.size then h.data.(i) <- x
  else begin
    let c = min_child h first in
    if h.cmp h.data.(c) x < 0 then begin
      h.data.(i) <- h.data.(c);
      sift_down h c x
    end
    else h.data.(i) <- x
  end

let push h x =
  grow h x;
  let i = h.size in
  h.size <- i + 1;
  sift_up h i x

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then sift_down h 0 h.data.(h.size);
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.data <- [||];
  h.size <- 0

let to_list h = Array.to_list (Array.sub h.data 0 h.size)

let of_list ~cmp l =
  let h = create ~cmp in
  List.iter (push h) l;
  h

let check_invariant h =
  let ok = ref true in
  for i = 1 to h.size - 1 do
    let parent = (i - 1) / 4 in
    if h.cmp h.data.(parent) h.data.(i) > 0 then ok := false
  done;
  !ok
