open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Port = Dcp_core.Port
module Store = Dcp_stable.Store
module Rpc = Dcp_primitives.Rpc

let def_name = "mailbox"

let delivery_port_type =
  [
    Rpc.request_signature "deliver"
      [ Vtype.Tnamed Document.type_name ]
      ~replies:[ Vtype.reply "delivered" []; Vtype.reply "mailbox_full" [] ];
  ]

let owner_port_type =
  [
    Rpc.request_signature "list_mail" []
      ~replies:[ Vtype.reply "headers" [ Vtype.Tlist (Vtype.Ttuple [ Vtype.Tint; Vtype.Tstr; Vtype.Tstr ]) ] ];
    Rpc.request_signature "fetch" [ Vtype.Tint ]
      ~replies:
        [ Vtype.reply "mail" [ Vtype.Tnamed Document.type_name ]; Vtype.reply "no_such_mail" [] ];
    Rpc.request_signature "discard" [ Vtype.Tint ]
      ~replies:[ Vtype.reply "discarded" []; Vtype.reply "no_such_mail" [] ];
  ]

type state = {
  owner : string;
  capacity : int;
  mail : (int, Value.t) Hashtbl.t;  (** slot -> encoded document value *)
  mutable next_slot : int;
}

let slot_key n = Printf.sprintf "m:%d" n
let meta_key = "_mailbox"

let persist_meta ctx state =
  Store.set (Runtime.store ctx) ~key:meta_key
    (Codec.encode_exn
       (Value.tuple [ Value.str state.owner; Value.int state.capacity; Value.int state.next_slot ]))

let deliver ctx state doc_value =
  if Hashtbl.length state.mail >= state.capacity then ("mailbox_full", [])
  else begin
    let slot = state.next_slot in
    state.next_slot <- slot + 1;
    Store.set (Runtime.store ctx) ~key:(slot_key slot) (Codec.encode_exn doc_value);
    persist_meta ctx state;
    Hashtbl.replace state.mail slot doc_value;
    ("delivered", [])
  end

let headers state =
  Hashtbl.fold
    (fun slot doc_value acc ->
      (* read title/author out of the external rep without decoding into a
         local representation — the mailbox never manipulates documents *)
      match doc_value with
      | Value.Named (_, rep) ->
          (slot, Value.get_str (Value.field rep "title"), Value.get_str (Value.field rep "author"))
          :: acc
      | _ -> acc)
    state.mail []
  |> List.sort (fun (s1, t1, a1) (s2, t2, a2) ->
         let c = Int.compare s1 s2 in
         if c <> 0 then c
         else
           let c = String.compare t1 t2 in
           if c <> 0 then c else String.compare a1 a2)

let handle_delivery ctx state msg =
  Rpc.serve_always ctx msg ~f:(fun command args ->
      match (command, args) with
      | "deliver", [ doc_value ] -> deliver ctx state doc_value
      | _ -> ("failure", [ Value.str "unknown delivery request" ]))

let handle_owner ctx state msg =
  Rpc.serve_always ctx msg ~f:(fun command args ->
      match (command, args) with
      | "list_mail", [] ->
          ( "headers",
            [
              Value.list
                (List.map
                   (fun (slot, title, author) ->
                     Value.tuple [ Value.int slot; Value.str title; Value.str author ])
                   (headers state));
            ] )
      | "fetch", [ Value.Int slot ] -> (
          match Hashtbl.find_opt state.mail slot with
          | Some doc_value -> ("mail", [ doc_value ])
          | None -> ("no_such_mail", []))
      | "discard", [ Value.Int slot ] ->
          if Hashtbl.mem state.mail slot then begin
            Hashtbl.remove state.mail slot;
            Store.remove (Runtime.store ctx) ~key:(slot_key slot);
            ("discarded", [])
          end
          else ("no_such_mail", [])
      | _ -> ("failure", [ Value.str "unknown owner request" ]))

let serve ctx state =
  let delivery = Runtime.port ctx 0 in
  let owner = Runtime.port ctx 1 in
  let rec loop () =
    (match Runtime.receive ctx [ owner; delivery ] with
    | `Timeout -> ()
    | `Msg (p, msg) ->
        if Port_name.equal (Port.name p) (Port.name owner) then handle_owner ctx state msg
        else handle_delivery ctx state msg);
    loop ()
  in
  loop ()

let rebuild ctx =
  let store = Runtime.store ctx in
  match Store.get store ~key:meta_key with
  | None -> None
  | Some encoded ->
      let owner, capacity, next_slot =
        match Codec.decode_exn encoded with
        | Value.Tuple [ Value.Str owner; Value.Int capacity; Value.Int next_slot ] ->
            (owner, capacity, next_slot)
        | _ -> invalid_arg "mailbox: corrupt meta record"
      in
      let state = { owner; capacity; mail = Hashtbl.create 32; next_slot } in
      Store.fold store ~init:() ~f:(fun ~key value () ->
          match String.split_on_char ':' key with
          | [ "m"; slot ] ->
              Hashtbl.replace state.mail (int_of_string slot) (Codec.decode_exn value)
          | _ -> ());
      Some state

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (delivery_port_type, 128); (owner_port_type, 32) ];
    init =
      (fun ctx args ->
        let state =
          match args with
          | [ Value.Str owner; Value.Int capacity ] ->
              { owner; capacity; mail = Hashtbl.create 32; next_slot = 0 }
          | _ -> invalid_arg "mailbox: bad creation arguments"
        in
        persist_meta ctx state;
        serve ctx state);
    recover =
      Some
        (fun ctx ->
          match rebuild ctx with
          | None -> Runtime.self_destruct ctx
          | Some state -> serve ctx state);
  }

let create world ~at ~owner ?(capacity = 100) () =
  Document.register (Runtime.registry world);
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let g =
    Runtime.create_guardian world ~at ~def_name
      ~args:[ Value.str owner; Value.int capacity ]
  in
  match Runtime.guardian_ports g with
  | [ delivery; owner_port ] -> (delivery, owner_port)
  | _ -> invalid_arg "mailbox: unexpected port layout"
