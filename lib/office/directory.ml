open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Store = Dcp_stable.Store
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock

let def_name = "office_directory"

let port_type =
  [
    Rpc.request_signature "register" [ Vtype.Tstr; Vtype.Tport ]
      ~replies:[ Vtype.reply "registered" [] ];
    Rpc.request_signature "lookup" [ Vtype.Tstr ]
      ~replies:[ Vtype.reply "mailbox" [ Vtype.Tport ]; Vtype.reply "unknown_user" [] ];
    Rpc.request_signature "users" []
      ~replies:[ Vtype.reply "users" [ Vtype.Tlist Vtype.Tstr ] ];
  ]

let user_key user = "u:" ^ user

let serve ctx =
  let store = Runtime.store ctx in
  let request_port = Runtime.port ctx 0 in
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) ->
        Rpc.serve_always ctx msg ~f:(fun command args ->
            match (command, args) with
            | "register", [ Value.Str user; Value.Portv port ] ->
                Store.set store ~key:(user_key user) (Codec.encode_exn (Value.port port));
                ("registered", [])
            | "lookup", [ Value.Str user ] -> (
                match Store.get store ~key:(user_key user) with
                | Some encoded -> ("mailbox", [ Codec.decode_exn encoded ])
                | None -> ("unknown_user", []))
            | "users", [] ->
                let users =
                  List.sort String.compare
                    (Store.fold store ~init:[] ~f:(fun ~key _ acc ->
                         match String.split_on_char ':' key with
                         | "u" :: rest -> String.concat ":" rest :: acc
                         | _ -> acc))
                in
                ("users", [ Value.list (List.map Value.str users) ])
            | _ -> ("failure", [ Value.str "unknown directory request" ])));
    loop ()
  in
  loop ()

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 128) ];
    init = (fun ctx _args -> serve ctx);
    recover = Some serve;
  }

let create world ~at () =
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let g = Runtime.create_guardian world ~at ~def_name ~args:[] in
  List.hd (Runtime.guardian_ports g)

let register_user ctx ~directory ~user ~port =
  match
    Rpc.call ctx ~to_:directory ~timeout:(Clock.ms 500) ~attempts:3 "register"
      [ Value.str user; Value.port port ]
  with
  | Rpc.Reply ("registered", _) -> true
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> false

let lookup ctx ~directory ~user =
  match
    Rpc.call ctx ~to_:directory ~timeout:(Clock.ms 500) ~attempts:3 "lookup" [ Value.str user ]
  with
  | Rpc.Reply ("mailbox", [ Value.Portv port ]) -> Some port
  | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> None
