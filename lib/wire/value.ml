type t =
  | Unit
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Listv of t list
  | Tuple of t list
  | Record of (string * t) list
  | Option of t option
  | Portv of Port_name.t
  | Tokenv of Token.t
  | Named of string * t

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Real x, Real y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Listv x, Listv y | Tuple x, Tuple y -> List.equal equal x y
  | Record x, Record y ->
      List.equal (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && equal v1 v2) x y
  | Option x, Option y -> Option.equal equal x y
  | Portv x, Portv y -> Port_name.equal x y
  | Tokenv x, Tokenv y -> Token.equal x y
  | Named (n1, v1), Named (n2, v2) -> String.equal n1 n2 && equal v1 v2
  | ( ( Unit | Bool _ | Int _ | Real _ | Str _ | Listv _ | Tuple _ | Record _ | Option _
      | Portv _ | Tokenv _ | Named _ ),
      _ ) ->
      false

(* Structural, typed comparison.  Constructor ranks follow declaration
   order, so the total order agrees with what Stdlib.compare used to give
   for values of distinct constructors. *)
let rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Real _ -> 3
  | Str _ -> 4
  | Listv _ -> 5
  | Tuple _ -> 6
  | Record _ -> 7
  | Option _ -> 8
  | Portv _ -> 9
  | Tokenv _ -> 10
  | Named _ -> 11

let rec cmp a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Listv x, Listv y | Tuple x, Tuple y -> List.compare cmp x y
  | Record x, Record y ->
      List.compare
        (fun (n1, v1) (n2, v2) ->
          let c = String.compare n1 n2 in
          if c <> 0 then c else cmp v1 v2)
        x y
  | Option x, Option y -> Option.compare cmp x y
  | Portv x, Portv y -> Port_name.compare x y
  | Tokenv x, Tokenv y -> Token.compare x y
  | Named (n1, v1), Named (n2, v2) ->
      let c = String.compare n1 n2 in
      if c <> 0 then c else cmp v1 v2
  | ( ( Unit | Bool _ | Int _ | Real _ | Str _ | Listv _ | Tuple _ | Record _ | Option _
      | Portv _ | Tokenv _ | Named _ ),
      _ ) ->
      Int.compare (rank a) (rank b)

let compare = cmp

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Real r -> Format.fprintf fmt "%g" r
  | Str s -> Format.fprintf fmt "%S" s
  | Listv l -> Format.fprintf fmt "[%a]" (Format.pp_print_list ~pp_sep:pp_semi pp) l
  | Tuple l -> Format.fprintf fmt "(%a)" (Format.pp_print_list ~pp_sep:pp_comma pp) l
  | Record fields ->
      let pp_field fmt (name, v) = Format.fprintf fmt "%s=%a" name pp v in
      Format.fprintf fmt "{%a}" (Format.pp_print_list ~pp_sep:pp_semi pp_field) fields
  | Option None -> Format.pp_print_string fmt "none"
  | Option (Some v) -> Format.fprintf fmt "some(%a)" pp v
  | Portv p -> Port_name.pp fmt p
  | Tokenv tok -> Token.pp fmt tok
  | Named (name, v) -> Format.fprintf fmt "%s:%a" name pp v

and pp_semi fmt () = Format.pp_print_string fmt "; "
and pp_comma fmt () = Format.pp_print_string fmt ", "

let to_string v = Format.asprintf "%a" pp v

let rec size = function
  | Unit | Bool _ -> 1
  | Int _ | Real _ -> 8
  | Str s -> 4 + String.length s
  | Listv l | Tuple l -> List.fold_left (fun acc v -> acc + size v) 4 l
  | Record fields ->
      List.fold_left (fun acc (name, v) -> acc + String.length name + size v) 4 fields
  | Option None -> 1
  | Option (Some v) -> 1 + size v
  | Portv _ -> 16
  | Tokenv _ -> 20
  | Named (name, v) -> String.length name + size v

let rec depth = function
  | Unit | Bool _ | Int _ | Real _ | Str _ | Portv _ | Tokenv _ | Option None -> 1
  | Listv l | Tuple l -> 1 + List.fold_left (fun acc v -> Int.max acc (depth v)) 0 l
  | Record fields -> 1 + List.fold_left (fun acc (_, v) -> Int.max acc (depth v)) 0 fields
  | Option (Some v) | Named (_, v) -> 1 + depth v

let unit = Unit
let bool b = Bool b
let int i = Int i
let real r = Real r
let str s = Str s
let list l = Listv l
let tuple l = Tuple l
let record fields = Record fields
let option o = Option o
let port p = Portv p
let token tok = Tokenv tok

exception Type_mismatch of string

let mismatch expected v = raise (Type_mismatch (expected ^ " expected, got " ^ to_string v))

let get_bool = function Bool b -> b | v -> mismatch "bool" v
let get_int = function Int i -> i | v -> mismatch "int" v
let get_real = function Real r -> r | v -> mismatch "real" v
let get_str = function Str s -> s | v -> mismatch "string" v
let get_list = function Listv l -> l | v -> mismatch "list" v
let get_tuple = function Tuple l -> l | v -> mismatch "tuple" v
let get_record = function Record fields -> fields | v -> mismatch "record" v
let get_option = function Option o -> o | v -> mismatch "option" v
let get_port = function Portv p -> p | v -> mismatch "port" v
let get_token = function Tokenv tok -> tok | v -> mismatch "token" v
let get_named = function Named (name, v) -> (name, v) | v -> mismatch "named" v

let field v name =
  match v with
  | Record fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Type_mismatch ("missing field " ^ name)))
  | v -> mismatch "record" v
