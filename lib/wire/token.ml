type t = { owner : int; body : int64; tag : int64 }

let owner t = t.owner

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL) in
  Int64.(logxor z (shift_right_logical z 31))

(* The body hides the object id; the tag authenticates (secret, owner, body). *)
let make_tag ~secret ~owner ~body =
  mix64 (Int64.logxor secret (mix64 (Int64.logxor body (Int64.of_int (owner * 2654435761)))))

let seal ~secret ~owner ~obj =
  let body = Int64.logxor (mix64 secret) (Int64.of_int obj) in
  { owner; body; tag = make_tag ~secret ~owner ~body }

let unseal ~secret ~owner t =
  if t.owner <> owner then None
  else if not (Int64.equal t.tag (make_tag ~secret ~owner ~body:t.body)) then None
  else Some (Int64.to_int (Int64.logxor (mix64 secret) t.body))

let equal a b = a.owner = b.owner && Int64.equal a.body b.body && Int64.equal a.tag b.tag

let compare a b =
  let c = Int.compare a.owner b.owner in
  if c <> 0 then c
  else
    let c = Int64.compare a.body b.body in
    if c <> 0 then c else Int64.compare a.tag b.tag
let pp fmt t = Format.fprintf fmt "token<g%d:%Lx>" t.owner t.tag
let to_wire t = (t.owner, t.body, t.tag)
let of_wire (owner, body, tag) = { owner; body; tag }
