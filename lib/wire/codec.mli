(** Binary message codec.

    §3.3: "the system can build and decompose messages consisting of objects
    of built-in types", and "within a distributed system, the meaning of a
    type must be fixed and invariant over all the nodes ... the bounds on
    legal integer values must be defined system-wide".

    The codec serialises a {!Value.t} into a compact byte string and back.
    A {!config} fixes the system-wide meaning of types: the signed-integer
    width every node must respect (the paper's 24-bit example), and limits on
    string and total message sizes.  Encoding an out-of-range integer is an
    error — exactly why the paper says "results of integer arithmetic must
    be checked to ensure they are within bounds.  Otherwise it might be
    impossible to send an integer value in a message because it was too
    big." *)

type config = {
  int_bits : int;  (** signed width of transmittable integers, 2..63 *)
  max_string : int;  (** longest transmittable string *)
  max_message : int;  (** largest encoded message body *)
}

val default_config : config
(** 63-bit integers, 1 MiB strings, 4 MiB messages. *)

val config_1979 : config
(** The paper's flavour: 24-bit integers, 4 KiB strings, 64 KiB messages. *)

val int_in_bounds : config -> int -> bool

type error =
  | Int_out_of_bounds of int
  | String_too_long of int
  | Message_too_long of int
  | Malformed of string  (** decode-side: truncated or corrupt input *)

val pp_error : Format.formatter -> error -> unit

exception Codec_error of error

val encode : ?config:config -> Value.t -> (string, error) result
val decode : ?config:config -> string -> (Value.t, error) result

(** {2 Reusable encoders}

    [encode] allocates a fresh scratch buffer per call.  A long-lived
    sender (the runtime encodes every message it routes) should mint one
    {!encoder} and call {!encode_with}: the scratch buffer is reused
    across calls, so steady-state encoding allocates only the output
    string. *)

type encoder

val encoder : ?config:config -> unit -> encoder
val encoder_config : encoder -> config

val encode_with : encoder -> Value.t -> (string, error) result
(** Same contract as {!encode} with the same [config].  Not reentrant:
    the returned string is built in [encoder]'s scratch buffer, which the
    next [encode_with] on the same handle reuses. *)

val encode_with_exn : encoder -> Value.t -> string
(** @raise Codec_error *)

val encode_exn : ?config:config -> Value.t -> string
(** @raise Codec_error *)

val decode_exn : ?config:config -> string -> Value.t
(** @raise Codec_error *)

val encoded_size : ?config:config -> Value.t -> (int, error) result
(** Size of the encoding without materialising it. *)
