type config = { int_bits : int; max_string : int; max_message : int }

let default_config = { int_bits = 63; max_string = 1 lsl 20; max_message = 4 lsl 20 }
let config_1979 = { int_bits = 24; max_string = 4096; max_message = 65536 }

let int_in_bounds config i =
  if config.int_bits >= 63 then true
  else
    let limit = 1 lsl (config.int_bits - 1) in
    i >= -limit && i < limit

type error =
  | Int_out_of_bounds of int
  | String_too_long of int
  | Message_too_long of int
  | Malformed of string

let pp_error fmt = function
  | Int_out_of_bounds i -> Format.fprintf fmt "integer %d exceeds the system-wide bounds" i
  | String_too_long n -> Format.fprintf fmt "string of %d bytes exceeds the system-wide limit" n
  | Message_too_long n -> Format.fprintf fmt "message of %d bytes exceeds the system-wide limit" n
  | Malformed reason -> Format.fprintf fmt "malformed message: %s" reason

exception Codec_error of error

(* Wire format: one tag byte per node, then payload.  Integers are zigzag
   varints; floats are 8-byte IEEE; strings and collections are
   length-prefixed (varint). *)

let tag_unit = 0
let tag_false = 1
let tag_true = 2
let tag_int = 3
let tag_real = 4
let tag_str = 5
let tag_list = 6
let tag_tuple = 7
let tag_record = 8
let tag_none = 9
let tag_some = 10
let tag_port = 11
let tag_token = 12
let tag_named = 13

let zigzag i = (i lsl 1) lxor (i asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

let write_varint buf i =
  let rec loop u =
    if u land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr u)
    else begin
      Buffer.add_char buf (Char.chr ((u land 0x7f) lor 0x80));
      loop (u lsr 7)
    end
  in
  loop (zigzag i)

let write_uvarint buf u =
  let rec loop u =
    if u land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr u)
    else begin
      Buffer.add_char buf (Char.chr ((u land 0x7f) lor 0x80));
      loop (u lsr 7)
    end
  in
  if u < 0 then raise (Codec_error (Malformed "negative length"));
  loop u

let write_int64 buf v =
  for shift = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical v (shift * 8)) land 0xff))
  done

let rec encode_value config buf v =
  match v with
  | Value.Unit -> Buffer.add_char buf (Char.chr tag_unit)
  | Value.Bool false -> Buffer.add_char buf (Char.chr tag_false)
  | Value.Bool true -> Buffer.add_char buf (Char.chr tag_true)
  | Value.Int i ->
      if not (int_in_bounds config i) then raise (Codec_error (Int_out_of_bounds i));
      Buffer.add_char buf (Char.chr tag_int);
      write_varint buf i
  | Value.Real r ->
      Buffer.add_char buf (Char.chr tag_real);
      write_int64 buf (Int64.bits_of_float r)
  | Value.Str s ->
      if String.length s > config.max_string then
        raise (Codec_error (String_too_long (String.length s)));
      Buffer.add_char buf (Char.chr tag_str);
      write_uvarint buf (String.length s);
      Buffer.add_string buf s
  | Value.Listv items ->
      Buffer.add_char buf (Char.chr tag_list);
      write_uvarint buf (List.length items);
      List.iter (encode_value config buf) items
  | Value.Tuple items ->
      Buffer.add_char buf (Char.chr tag_tuple);
      write_uvarint buf (List.length items);
      List.iter (encode_value config buf) items
  | Value.Record fields ->
      Buffer.add_char buf (Char.chr tag_record);
      write_uvarint buf (List.length fields);
      List.iter
        (fun (name, fv) ->
          write_uvarint buf (String.length name);
          Buffer.add_string buf name;
          encode_value config buf fv)
        fields
  | Value.Option None -> Buffer.add_char buf (Char.chr tag_none)
  | Value.Option (Some inner) ->
      Buffer.add_char buf (Char.chr tag_some);
      encode_value config buf inner
  | Value.Portv p ->
      Buffer.add_char buf (Char.chr tag_port);
      write_varint buf p.Port_name.node;
      write_varint buf p.Port_name.guardian;
      write_varint buf p.Port_name.index;
      write_varint buf p.Port_name.uid
  | Value.Tokenv tok ->
      let owner, body, tag = Token.to_wire tok in
      Buffer.add_char buf (Char.chr tag_token);
      write_varint buf owner;
      write_int64 buf body;
      write_int64 buf tag
  | Value.Named (name, rep) ->
      Buffer.add_char buf (Char.chr tag_named);
      write_uvarint buf (String.length name);
      Buffer.add_string buf name;
      encode_value config buf rep

type reader = { input : string; mutable pos : int }

let read_byte r =
  if r.pos >= String.length r.input then raise (Codec_error (Malformed "truncated input"));
  let c = Char.code r.input.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_uvarint r =
  let rec loop shift acc =
    if shift > 62 then raise (Codec_error (Malformed "varint too long"));
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let read_varint r = unzigzag (read_uvarint r)

let read_int64 r =
  let v = ref 0L in
  for shift = 0 to 7 do
    let b = read_byte r in
    v := Int64.logor !v (Int64.shift_left (Int64.of_int b) (shift * 8))
  done;
  !v

let read_string r =
  let len = read_uvarint r in
  (* compare against the space left, never [r.pos + len]: an adversarial
     varint can make that sum wrap negative and slip past the bound *)
  if len < 0 || len > String.length r.input - r.pos then
    raise (Codec_error (Malformed "truncated string"));
  let s = String.sub r.input r.pos len in
  r.pos <- r.pos + len;
  s

let rec decode_value config r =
  let tag = read_byte r in
  if tag = tag_unit then Value.Unit
  else if tag = tag_false then Value.Bool false
  else if tag = tag_true then Value.Bool true
  else if tag = tag_int then begin
    let i = read_varint r in
    if not (int_in_bounds config i) then raise (Codec_error (Int_out_of_bounds i));
    Value.Int i
  end
  else if tag = tag_real then Value.Real (Int64.float_of_bits (read_int64 r))
  else if tag = tag_str then begin
    let s = read_string r in
    if String.length s > config.max_string then
      raise (Codec_error (String_too_long (String.length s)));
    Value.Str s
  end
  else if tag = tag_list then Value.Listv (decode_seq config r)
  else if tag = tag_tuple then Value.Tuple (decode_seq config r)
  else if tag = tag_record then begin
    let n = read_uvarint r in
    Value.Record
      (List.init n (fun _ ->
           let name = read_string r in
           (name, decode_value config r)))
  end
  else if tag = tag_none then Value.Option None
  else if tag = tag_some then Value.Option (Some (decode_value config r))
  else if tag = tag_port then begin
    let node = read_varint r in
    let guardian = read_varint r in
    let index = read_varint r in
    let uid = read_varint r in
    Value.Portv (Port_name.make ~node ~guardian ~index ~uid)
  end
  else if tag = tag_token then begin
    let owner = read_varint r in
    let body = read_int64 r in
    let tag' = read_int64 r in
    Value.Tokenv (Token.of_wire (owner, body, tag'))
  end
  else if tag = tag_named then begin
    let name = read_string r in
    Value.Named (name, decode_value config r)
  end
  else raise (Codec_error (Malformed (Printf.sprintf "unknown tag %d" tag)))

and decode_seq config r =
  let n = read_uvarint r in
  List.init n (fun _ -> decode_value config r)

(* An encoder owns a scratch buffer reused across calls, so hot senders
   (Runtime.route encodes every message in the world) stop allocating and
   growing a fresh Buffer per message; only the final output string is
   allocated. *)
type encoder = { enc_config : config; scratch : Buffer.t }

let encoder ?(config = default_config) () = { enc_config = config; scratch = Buffer.create 256 }
let encoder_config enc = enc.enc_config

let encode_with enc v =
  let buf = enc.scratch in
  Buffer.clear buf;
  match encode_value enc.enc_config buf v with
  | () ->
      if Buffer.length buf > enc.enc_config.max_message then
        Error (Message_too_long (Buffer.length buf))
      else Ok (Buffer.contents buf)
  | exception Codec_error e -> Error e

let encode_with_exn enc v =
  match encode_with enc v with Ok s -> s | Error e -> raise (Codec_error e)

let encode ?config v = encode_with (encoder ?config ()) v

let decode ?(config = default_config) s =
  if String.length s > config.max_message then Error (Message_too_long (String.length s))
  else
    let r = { input = s; pos = 0 } in
    match decode_value config r with
    | v -> if r.pos <> String.length s then Error (Malformed "trailing bytes") else Ok v
    | exception Codec_error e -> Error e

let encode_exn ?config v =
  match encode ?config v with Ok s -> s | Error e -> raise (Codec_error e)

let decode_exn ?config s =
  match decode ?config s with Ok v -> v | Error e -> raise (Codec_error e)

let encoded_size ?config v = Result.map String.length (encode ?config v)
