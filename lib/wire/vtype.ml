type t =
  | Tunit
  | Tbool
  | Tint
  | Treal
  | Tstr
  | Tlist of t
  | Ttuple of t list
  | Trecord of (string * t) list
  | Toption of t
  | Tport
  | Ttoken
  | Tnamed of string
  | Tany

let rec pp fmt = function
  | Tunit -> Format.pp_print_string fmt "unit"
  | Tbool -> Format.pp_print_string fmt "bool"
  | Tint -> Format.pp_print_string fmt "int"
  | Treal -> Format.pp_print_string fmt "real"
  | Tstr -> Format.pp_print_string fmt "string"
  | Tlist t -> Format.fprintf fmt "list[%a]" pp t
  | Ttuple ts ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp)
        ts
  | Trecord fields ->
      let pp_field fmt (name, t) = Format.fprintf fmt "%s: %a" name pp t in
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ") pp_field)
        fields
  | Toption t -> Format.fprintf fmt "option[%a]" pp t
  | Tport -> Format.pp_print_string fmt "port"
  | Ttoken -> Format.pp_print_string fmt "token"
  | Tnamed name -> Format.pp_print_string fmt name
  | Tany -> Format.pp_print_string fmt "any"

let to_string t = Format.asprintf "%a" pp t
let rec equal a b =
  match (a, b) with
  | Tunit, Tunit | Tbool, Tbool | Tint, Tint | Treal, Treal | Tstr, Tstr -> true
  | Tport, Tport | Ttoken, Ttoken | Tany, Tany -> true
  | Tlist x, Tlist y | Toption x, Toption y -> equal x y
  | Ttuple x, Ttuple y -> List.equal equal x y
  | Trecord x, Trecord y ->
      List.equal (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal t1 t2) x y
  | Tnamed x, Tnamed y -> String.equal x y
  | ( ( Tunit | Tbool | Tint | Treal | Tstr | Tlist _ | Ttuple _ | Trecord _ | Toption _
      | Tport | Ttoken | Tnamed _ | Tany ),
      _ ) ->
      false

let rec check t v =
  let fail () =
    Error (Format.asprintf "expected %a, got %a" pp t Value.pp v)
  in
  match (t, v) with
  | Tany, _ -> Ok ()
  | Tunit, Value.Unit -> Ok ()
  | Tbool, Value.Bool _ -> Ok ()
  | Tint, Value.Int _ -> Ok ()
  | Treal, Value.Real _ -> Ok ()
  | Tstr, Value.Str _ -> Ok ()
  | Tlist elt, Value.Listv items -> check_all elt items
  | Ttuple ts, Value.Tuple items ->
      if List.length ts <> List.length items then fail ()
      else check_pairs (List.combine ts items)
  | Trecord fields, Value.Record vfields ->
      if List.length fields <> List.length vfields then fail ()
      else
        let check_field (name, ft) =
          match List.assoc_opt name vfields with
          | None -> Error ("missing field " ^ name)
          | Some fv -> check ft fv
        in
        List.fold_left
          (fun acc f -> match acc with Error _ -> acc | Ok () -> check_field f)
          (Ok ()) fields
  | Toption _, Value.Option None -> Ok ()
  | Toption elt, Value.Option (Some v) -> check elt v
  | Tport, Value.Portv _ -> Ok ()
  | Ttoken, Value.Tokenv _ -> Ok ()
  | Tnamed name, Value.Named (vname, _) ->
      if String.equal name vname then Ok ()
      else Error (Format.asprintf "expected abstract type %s, got %s" name vname)
  | ( ( Tunit | Tbool | Tint | Treal | Tstr | Tlist _ | Ttuple _ | Trecord _ | Toption _
      | Tport | Ttoken | Tnamed _ ),
      _ ) ->
      fail ()

and check_all elt items =
  List.fold_left
    (fun acc v -> match acc with Error _ -> acc | Ok () -> check elt v)
    (Ok ()) items

and check_pairs pairs =
  List.fold_left
    (fun acc (t, v) -> match acc with Error _ -> acc | Ok () -> check t v)
    (Ok ()) pairs

type reply = { reply_command : string; reply_args : t list }
type signature = { command : string; args : t list; replies : reply list }

let signature ?(replies = []) command args = { command; args; replies }
let reply reply_command reply_args = { reply_command; reply_args }

type port_type = signature list

let failure_signature = signature "failure" [ Tstr ]
let wildcard = signature "*" []

let find_signature pt command =
  if String.equal command failure_signature.command then Some failure_signature
  else List.find_opt (fun s -> String.equal s.command command) pt

(* A command may be overloaded (several signatures, e.g. the primordial
   guardian's plain and RPC-style pings): the message is accepted if any
   signature for its command matches. *)
let check_message pt ~command args =
  let candidates =
    if String.equal command failure_signature.command then [ failure_signature ]
    else List.filter (fun s -> String.equal s.command command) pt
  in
  if candidates = [] then
    if List.exists (fun s -> String.equal s.command "*") pt then Ok ()
    else Error (Format.asprintf "port does not accept command %S" command)
  else
    let matches s =
      List.length s.args = List.length args
      && List.for_all2 (fun t v -> Result.is_ok (check t v)) s.args args
    in
    if List.exists matches candidates then Ok ()
    else
      Error
        (Format.asprintf "arguments do not match any %S signature of the port" command)

let pp_signature fmt s =
  let pp_args = Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp in
  Format.fprintf fmt "%s(%a)" s.command pp_args s.args;
  if s.replies <> [] then begin
    let pp_reply fmt r = Format.fprintf fmt "%s(%a)" r.reply_command pp_args r.reply_args in
    Format.fprintf fmt " replies (%a)"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_reply)
      s.replies
  end

let pp_port_type fmt pt =
  Format.fprintf fmt "port [@[<v>%a@]]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_signature)
    pt
