type t = { node : int; guardian : int; index : int; uid : int }

let make ~node ~guardian ~index ~uid = { node; guardian; index; uid }
let equal a b = a.node = b.node && a.guardian = b.guardian && a.index = b.index && a.uid = b.uid

let compare a b =
  let c = Int.compare a.node b.node in
  if c <> 0 then c
  else
    let c = Int.compare a.guardian b.guardian in
    if c <> 0 then c
    else
      let c = Int.compare a.index b.index in
      if c <> 0 then c else Int.compare a.uid b.uid

(* FNV-1a style mix over the four fields: typed, so a change to the record
   layout is a compile error here rather than a silent hash change. *)
let hash t =
  let mix h v = (h * 0x01000193) lxor v in
  mix (mix (mix (mix 0x811c9dc5 t.node) t.guardian) t.index) t.uid land max_int
let pp fmt t = Format.fprintf fmt "port<n%d.g%d.p%d#%d>" t.node t.guardian t.index t.uid
let to_string t = Format.asprintf "%a" pp t
