(** Tokens: sealed capabilities for guardian-local objects.

    §2.1: "It is possible to send a token for an object in a message; a token
    is an external name for the object, which can be returned to the guardian
    that owns the object to request some manipulation of the object.  (A
    token is a sealed capability that can be unsealed only by the creating
    guardian.)"

    The seal is a keyed mix of the owner's secret and the object id; any
    guardian can read [owner] (to know where to send the token back) but only
    the holder of the secret can recover the object id, and a forged or
    tampered token fails to unseal. *)

type t

val owner : t -> int
(** Guardian id of the creator. *)

val seal : secret:int64 -> owner:int -> obj:int -> t
(** Seal object id [obj] under the creator's [secret]. *)

val unseal : secret:int64 -> owner:int -> t -> int option
(** Recover the object id.  [None] if the token was not sealed by
    [owner]/[secret] or was tampered with. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Wire representation (opaque to everyone but the owner). *)

val to_wire : t -> int * int64 * int64
val of_wire : int * int64 * int64 -> t
