(** Whole-program protocol analysis, pass 4: the message-flow graph.

    Joins resolved send sites against handler sites to produce dead-letter
    and unreachable-handler findings, the cross-guardian flow edges, and
    the graphviz export. *)

open Proto_extract

type edge = {
  e_src : string;  (** sender unit id, e.g. ["primitives/replica"] *)
  e_dst : string;  (** handler unit id *)
  e_msgs : SSet.t;  (** message names carried on the edge *)
}

type unit_sends = { us_unit : unit_info; us_sends : Proto_summary.send list }

val handled_names : unit_info list -> SSet.t
(** Every handled/declared name, plus the runtime's ["failure"]. *)

val sent_names : unit_sends list -> SSet.t
(** Every statically-known sent name, plus ["failure"]. *)

val dead_letters : handled:SSet.t -> unit_sends list -> Finding.t list
val unreachable : sent:SSet.t -> unit_info list -> Finding.t list
val edges : unit_info list -> unit_sends list -> edge list
val dot : edge list -> string
(** Graphviz digraph of the flow edges, deterministic. *)
