(** The whole pass: layer graph, hygiene, per-file scans, baseline, report. *)

type outcome = {
  findings : Finding.t list;  (** everything, sorted by {!Finding.order} *)
  active : Finding.t list;  (** findings not covered by the baseline *)
  stale_baseline : string list;  (** baseline entries matching nothing *)
  files_scanned : int;
  layers : Layers.lib list;
  report : Report.json;  (** the [dcp.lint.report/v1] document *)
}

val default_dirs : string list
(** [lib], [bin], [examples]. *)

val run : ?dirs:string list -> root:string -> baseline_path:string -> unit -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
(** Human output: active findings as [file:line:col: [rule] message] lines,
    stale-baseline warnings, and a one-line summary. *)
