(** Whole-program protocol analysis, pass 2: interprocedural summaries.

    Builds fixpoint summaries over every function [Proto_extract] collected —
    command-argument sinks, returned command names, mutable-escape — then
    resolves each transmission site in a unit to the abstract set of message
    names it can send, reporting interprocedural mutable escapes along the
    way. *)

open Proto_extract

(** Where a command name enters a sink function's parameter list. *)
type slot = Spos of int | Slabel of string

type apply_site = {
  a_pair : string * string;
  a_args : (Asttypes.arg_label * Parsetree.expression) list;
  a_line : int;
}

type info = { i_fn : fn; i_unit : unit_info; i_applies : apply_site list }

type env = {
  fns : info list SMap.t;
  mutable sinks : slot list SMap.t;
      (** fn_key -> parameter slots that flow into a send's command *)
  mutable rstr : names SMap.t;  (** fn_key -> names the fn returns directly *)
  mutable rtup : names SMap.t;
      (** fn_key -> names in the first component of a returned tuple *)
  mutable ret_mutable : SSet.t;  (** fns returning a raw mutable value *)
  mutable passthrough : int list SMap.t;
      (** fn_key -> positional params returned unchanged *)
  mutable repliers : SSet.t;
      (** fns that inspect [reply_to] and reach a transmission sink *)
}

val resolve : own:string -> string * string -> string
(** Global summary key for a callee pair, defaulting to the current module. *)

val build : unit_info list -> env
(** Run all summary fixpoints over the program. *)

val sink_slots : env -> string -> slot list
val is_replier : env -> own:string -> string * string -> bool

val call_edges : env -> (string option * string * string) list
(** [(lib, caller_key, callee_key)] edges to in-repo functions, sorted. *)

(** A resolved transmission site. *)
type send = {
  sd_line : int;
  sd_context : string;
  sd_via : string;  (** the syntactic callee, e.g. ["Runtime.send"] *)
  sd_names : names;
}

val collect_sends : env -> unit_info -> send list * Finding.t list
(** All sends of a unit plus its [proto-escape] findings. *)
