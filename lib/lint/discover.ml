type src = { path : string; lib_dir : string option }

let list_dir path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
  else []

let is_ml name = Filename.check_suffix name ".ml" && name.[0] <> '.'

(* [dirs] entries are root-relative ("lib", "bin", "examples"); under "lib"
   every subdirectory is a library whose modules carry layer restrictions.
   Readdir order is unspecified, so everything is sorted: the scan order —
   and therefore the report — is deterministic. *)
let ml_files ~root ~dirs =
  List.concat_map
    (fun dir ->
      let abs = Filename.concat root dir in
      if String.equal dir "lib" then
        List.concat_map
          (fun sub ->
            if sub.[0] = '.' || not (Sys.is_directory (Filename.concat abs sub)) then []
            else
              list_dir (Filename.concat abs sub)
              |> List.filter is_ml
              |> List.map (fun name ->
                     { path = String.concat "/" [ dir; sub; name ]; lib_dir = Some sub }))
          (list_dir abs)
      else
        list_dir abs |> List.filter is_ml
        |> List.map (fun name -> { path = String.concat "/" [ dir; name ]; lib_dir = None }))
    dirs

(* Hygiene: every library module declares its interface.  Implementation
   files without an [.mli] leak representation types across guardian
   boundaries. *)
let missing_mli ~root srcs =
  List.filter_map
    (fun src ->
      match src.lib_dir with
      | None -> None
      | Some _ ->
          let mli = Filename.concat root (Filename.chop_suffix src.path ".ml" ^ ".mli") in
          if Sys.file_exists mli then None
          else
            Some
              (Finding.v ~rule:"mli-missing" ~file:src.path ~line:1 ~col:0 ~context:"module"
                 ~token:(Filename.basename src.path)
                 (Printf.sprintf "library module %s has no .mli interface" src.path)))
    srcs

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents
