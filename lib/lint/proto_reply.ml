(* Whole-program protocol analysis, pass 3: reply obligations.

   Every handler arm that dispatches on a message name declared with a
   non-empty reply set must, on every syntactic control-flow path, either
   transmit a reply or explicitly discard the reply port (matching it
   against [None] is the sanctioned discard).  The walk is
   branch-sensitive over match/if/sequence/let/try and leans on
   [Proto_summary] for interprocedural discharge: calling a replier —
   a function that inspects [reply_to] and reaches a send — or passing
   the bound reply port to anything counts.

   Dispatch sites wrapped in [Rpc.serve]/[serve_always] callbacks are
   skipped outright: serve transmits whatever tuple the callback
   returns, so every non-raising path replies by construction. *)

open Parsetree
open Proto_extract

let obligated_names units =
  List.fold_left
    (fun acc u ->
      List.fold_left
        (fun acc h -> if h.h_obligated then SSet.add h.h_name acc else acc)
        acc u.u_handles)
    SSet.empty units
  |> SSet.remove "failure"

(* Does any subtree transmit using the reply port?  Evidence: a bound
   reply-port variable, a [reply_to] field access, or a call to a
   replier summary. *)
let contains_discharge env ~own rvs e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } when SSet.mem x rvs -> found := true
    | Pexp_field (_, lid) when String.equal (lid_last lid.txt) "reply_to" -> found := true
    | Pexp_apply (f, _) -> (
        match callee_pair f with
        | Some pair when Proto_summary.is_replier env ~own pair -> found := true
        | _ -> ())
    | _ -> ());
    if not !found then super.expr self e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

let is_lambda e =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true | _ -> false

(* How a reply-position sub-pattern constrains an alternative. *)
let classify_reply_pat rp =
  match (strip rp).ppat_desc with
  | Ppat_construct ({ txt; _ }, None) when String.equal (lid_last txt) "None" -> `Exempt
  | Ppat_construct ({ txt; _ }, Some (_, arg)) when String.equal (lid_last txt) "Some" -> (
      match (strip arg).ppat_desc with Ppat_var { txt = v; _ } -> `Bind v | _ -> `Check)
  | Ppat_var { txt = v; _ } -> `Bind v
  | _ -> `Check

(* Must-discharge: true iff every syntactic path through [e] replies or
   explicitly discards.  Lambda bodies are skipped (defining a helper is
   not executing it); an inner match whose scrutinee carries the reply
   port re-applies the per-alternative None exemption. *)
let rec discharges env ~own rvs e =
  match e.pexp_desc with
  | Pexp_sequence (a, b) -> discharges env ~own rvs a || discharges env ~own rvs b
  | Pexp_let (_, vbs, body) ->
      let rvs' =
        List.fold_left
          (fun acc vb ->
            match binding_name vb.pvb_pat with
            | Some x when is_reply_source ~vars:rvs vb.pvb_expr -> SSet.add x acc
            | _ -> acc)
          rvs vbs
      in
      List.exists
        (fun vb -> (not (is_lambda vb.pvb_expr)) && discharges env ~own rvs vb.pvb_expr)
        vbs
      || discharges env ~own rvs' body
  | Pexp_ifthenelse (c, t, Some f) ->
      discharges env ~own rvs c
      || (discharges env ~own rvs t && discharges env ~own rvs f)
  | Pexp_ifthenelse (c, _, None) -> discharges env ~own rvs c
  | Pexp_match (scrut, cases) -> (
      let comps, _, ri = match_positions ~reply_vars:rvs scrut in
      match ri with
      | Some rix ->
          let ncomps = List.length comps in
          List.for_all
            (fun case ->
              List.for_all
                (fun alt ->
                  match sub_at alt ~idx:rix ~ncomps with
                  | Some rp -> (
                      match classify_reply_pat rp with
                      | `Exempt -> true
                      | `Bind v -> discharges env ~own (SSet.add v rvs) case.pc_rhs
                      | `Check -> discharges env ~own rvs case.pc_rhs)
                  | None -> discharges env ~own rvs case.pc_rhs)
                (alternatives case.pc_lhs))
            cases
      | None ->
          discharges env ~own rvs scrut
          || List.for_all (fun case -> discharges env ~own rvs case.pc_rhs) cases)
  | Pexp_try (body, _) -> discharges env ~own rvs body
  | Pexp_constraint (inner, _) | Pexp_open (_, inner) -> discharges env ~own rvs inner
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> false
  | _ -> contains_discharge env ~own rvs e

let check env ~obligated u =
  match u.u_structure with
  | None -> []
  | Some structure ->
      let own = u.u_module in
      let findings = ref [] in
      let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
      let context = ref "-" in
      let rvs = ref SSet.empty in
      let in_serve = ref false in
      let report ~line name =
        let k = !context ^ "/" ^ name in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          findings :=
            Finding.v ~rule:"proto-reply-obligation" ~file:u.u_path ~line ~col:0
              ~context:!context ~token:name
              (Printf.sprintf
                 "handler for %S can drop the reply port on a control-flow path; reply on \
                  every path or discard it explicitly by matching reply_to against None"
                 name)
            :: !findings
        end
      in
      let check_dispatch e scrut cases =
        let comps, ci, ri = match_positions ~reply_vars:!rvs scrut in
        match ci with
        | None -> ()
        | Some cix ->
            let ncomps = List.length comps in
            let gated =
              Option.is_some ri
              || (not (SSet.is_empty !rvs))
              || contains_discharge env ~own !rvs e
            in
            if gated then
              List.iter
                (fun case ->
                  List.iter
                    (fun alt ->
                      let consts =
                        match sub_at alt ~idx:cix ~ncomps with
                        | Some p -> pat_constants p
                        | None -> []
                      in
                      let obl = List.filter (fun c -> SSet.mem c obligated) consts in
                      if obl <> [] then
                        let ok =
                          match ri with
                          | Some rix -> (
                              match sub_at alt ~idx:rix ~ncomps with
                              | Some rp -> (
                                  match classify_reply_pat rp with
                                  | `Exempt -> true
                                  | `Bind v ->
                                      discharges env ~own (SSet.add v !rvs) case.pc_rhs
                                  | `Check -> discharges env ~own !rvs case.pc_rhs)
                              | None -> discharges env ~own !rvs case.pc_rhs)
                          | None -> discharges env ~own !rvs case.pc_rhs
                        in
                        if not ok then
                          List.iter (report ~line:(line_of alt.ppat_loc)) obl)
                    (alternatives case.pc_lhs))
                cases
      in
      let super = Ast_iterator.default_iterator in
      let expr self e =
        match e.pexp_desc with
        | Pexp_apply (f, _)
          when (match callee_pair f with
               | Some (_, ("serve" | "serve_always")) -> true
               | _ -> false)
               && not !in_serve ->
            in_serve := true;
            super.expr self e;
            in_serve := false
        | Pexp_fun (_, _, pat, _) ->
            (match binding_name pat with
            | Some (("reply" | "reply_to") as x) -> rvs := SSet.add x !rvs
            | _ -> ());
            super.expr self e
        | Pexp_let (_, vbs, _) ->
            List.iter
              (fun vb ->
                match binding_name vb.pvb_pat with
                | Some x when is_reply_source ~vars:!rvs vb.pvb_expr -> rvs := SSet.add x !rvs
                | _ -> ())
              vbs;
            super.expr self e
        | Pexp_match (scrut, cases) ->
            if not !in_serve then check_dispatch e scrut cases;
            super.expr self e
        | _ -> super.expr self e
      in
      let structure_item self item =
        match item.pstr_desc with
        | Pstr_value (_, bindings) ->
            List.iter
              (fun vb ->
                let saved_ctx = !context in
                let saved_rvs = !rvs in
                (match binding_name vb.pvb_pat with Some name -> context := name | None -> ());
                self.Ast_iterator.value_binding self vb;
                context := saved_ctx;
                rvs := saved_rvs)
              bindings
        | _ -> super.structure_item self item
      in
      let it = { super with expr; structure_item } in
      it.structure it structure;
      List.rev !findings
