(* Whole-program protocol analysis, pass 1: per-unit extraction.

   Parses every compilation unit once and pulls out the raw protocol facts
   the later passes consume: function definitions (fuel for the
   interprocedural summaries in Proto_summary), declared message signatures
   (Rpc.request_signature / Vtype.signature / Vtype.reply), and handler
   dispatch sites (match cases over a message command).  Like Scan, the
   pass is untyped and syntactic: names are resolved by their written
   [Longident] suffix, which matches the tree's pervasive
   [module Rpc = Dcp_primitives.Rpc] aliasing idiom. *)

open Parsetree
module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* Abstract string set: the lattice every command-name evaluation lives
   in.  [Dynamic] means "some name we cannot resolve statically" and
   poisons unions. *)
type names = Known of SSet.t | Dynamic

let known l = Known (SSet.of_list l)

let nunion a b =
  match (a, b) with Dynamic, _ | _, Dynamic -> Dynamic | Known a, Known b -> Known (SSet.union a b)

let nmem name = function Known s -> SSet.mem name s | Dynamic -> false

(* ---- longident / callee helpers ---- *)

let last2 comps =
  match List.rev comps with
  | last :: prev :: _ -> (prev, last)
  | [ last ] -> ("", last)
  | [] -> ("", "")

let lid_last lid = match List.rev (Longident.flatten lid) with last :: _ -> last | [] -> ""

let rec callee_lid e =
  match e.pexp_desc with
  | Pexp_ident lid -> Some lid.txt
  | Pexp_apply (f, _) -> callee_lid f
  | _ -> None

let callee_pair e =
  match callee_lid e with Some lid -> Some (last2 (Longident.flatten lid)) | None -> None

let pair_string (m, f) = if String.equal m "" then f else m ^ "." ^ f

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

(* ---- application arguments ---- *)

let positional n args =
  let rec go i = function
    | [] -> None
    | (Asttypes.Nolabel, e) :: rest -> if i = n then Some e else go (i + 1) rest
    | _ :: rest -> go i rest
  in
  go 0 args

let labelled name args =
  List.find_map
    (function
      | (Asttypes.Labelled l | Asttypes.Optional l), e when String.equal l name -> Some e
      | _ -> None)
    args

(* ---- patterns ---- *)

let rec strip p =
  match p.ppat_desc with
  | Ppat_alias (inner, _) | Ppat_constraint (inner, _) | Ppat_open (_, inner) -> strip inner
  | _ -> p

(* Flatten a top-level or-pattern into its alternatives. *)
let rec alternatives p =
  let p = strip p in
  match p.ppat_desc with Ppat_or (a, b) -> alternatives a @ alternatives b | _ -> [ p ]

(* Every string constant reachable under or/alias nesting. *)
let rec pat_constants p =
  let p = strip p in
  match p.ppat_desc with
  | Ppat_constant (Pconst_string (s, _, _)) -> [ s ]
  | Ppat_or (a, b) -> pat_constants a @ pat_constants b
  | _ -> []

let rec binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (inner, _) | Ppat_alias (inner, _) -> binding_name inner
  | _ -> None

(* The [idx]-th component of a case alternative matching an [ncomps]-tuple
   scrutinee; [None] when the alternative is a catch-all that covers the
   component without naming it. *)
let sub_at alt ~idx ~ncomps =
  if ncomps = 1 then Some alt
  else
    match (strip alt).ppat_desc with
    | Ppat_tuple comps when List.length comps = ncomps -> List.nth_opt comps idx
    | _ -> None

(* ---- function definitions ---- *)

type param = {
  p_label : string;  (** "" when positional *)
  p_name : string;
  p_pos : int;  (** index among positional params; [-1] for labelled *)
  p_default : expression option;
}

type fn = {
  fn_name : string;
  fn_key : string;  (** ["Module.name"], the global summary key *)
  fn_context : string;  (** enclosing top-level binding *)
  fn_params : param list;
  fn_body : expression;
  fn_line : int;
}

(* Walk a [fun]-chain down to the first non-fun body.  A bare [function]
   keeps its cases as the body: the later tail analyses flatten through
   it, which is what a one-argument dispatch function wants. *)
let decompose_fun e =
  let rec go pos acc e =
    match e.pexp_desc with
    | Pexp_fun (lbl, default, pat, body) ->
        let label =
          match lbl with Asttypes.Nolabel -> "" | Asttypes.Labelled l | Asttypes.Optional l -> l
        in
        let name =
          match binding_name pat with
          | Some n -> n
          | None -> if String.equal label "" then "_" else label
        in
        let p =
          {
            p_label = label;
            p_name = name;
            p_pos = (if String.equal label "" then pos else -1);
            p_default = default;
          }
        in
        go (if String.equal label "" then pos + 1 else pos) (p :: acc) body
    | Pexp_newtype (_, body) -> go pos acc body
    | _ -> (List.rev acc, e)
  in
  go 0 [] e

(* ---- handler / declaration sites ---- *)

type handle_kind =
  | Dispatch  (** a match case over a message command *)
  | Declared  (** Rpc.request_signature / Vtype.signature *)
  | Reply_declared  (** Vtype.reply *)
  | Reply_match  (** an [Rpc.Reply ("name", _)] consumption pattern *)

let kind_name = function
  | Dispatch -> "dispatch"
  | Declared -> "declared"
  | Reply_declared -> "reply-declared"
  | Reply_match -> "reply-match"

type handle = {
  h_name : string;
  h_kind : handle_kind;
  h_line : int;
  h_context : string;
  h_obligated : bool;  (** declared with a non-empty reply set *)
}

(* ---- command / reply scrutinee shapes ---- *)

let is_command_expr e =
  match e.pexp_desc with
  | Pexp_field (_, lid) -> String.equal (lid_last lid.txt) "command"
  | Pexp_ident { txt = Longident.Lident x; _ } -> String.equal x "command"
  | _ -> false

let is_reply_source ~vars e =
  match e.pexp_desc with
  | Pexp_field (_, lid) -> String.equal (lid_last lid.txt) "reply_to"
  | Pexp_ident { txt = Longident.Lident x; _ } -> SSet.mem x vars
  | _ -> false

let index_of pred l =
  let rec go i = function [] -> None | x :: rest -> if pred x then Some i else go (i + 1) rest in
  go 0 l

(* A match scrutinee viewed as components: the component list, plus the
   positions of the command and the reply port when present. *)
let match_positions ?(reply_vars = SSet.empty) scrut =
  let comps = match scrut.pexp_desc with Pexp_tuple l -> l | _ -> [ scrut ] in
  let ci = index_of is_command_expr comps in
  let ri = index_of (is_reply_source ~vars:reply_vars) comps in
  (comps, ci, ri)

(* ---- the per-unit record ---- *)

type unit_info = {
  u_path : string;
  u_module : string;  (** capitalized basename, e.g. ["Branch"] *)
  u_lib : string option;  (** ["bank"] for [lib/bank/branch.ml] *)
  u_id : string;  (** graph node id, e.g. ["bank/branch"] *)
  u_structure : structure option;  (** [None] when the unit fails to parse *)
  u_fns : fn list;
  u_handles : handle list;
}

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let id_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  match String.split_on_char '/' path with
  | "lib" :: dir :: _ -> dir ^ "/" ^ base
  | dir :: _ :: _ -> dir ^ "/" ^ base
  | _ -> base

let lib_of_path path =
  match String.split_on_char '/' path with [ "lib"; dir; _ ] -> Some dir | _ -> None

(* Collect function definitions (top-level and local) and handler /
   declaration sites in one walk. *)
let extract ~path structure =
  let modname = module_of_path path in
  let fns = ref [] in
  let handles = ref [] in
  let context = ref "-" in
  let add_handle ~name ~kind ~line ~obligated =
    handles :=
      { h_name = name; h_kind = kind; h_line = line; h_context = !context; h_obligated = obligated }
      :: !handles
  in
  let super = Ast_iterator.default_iterator in
  let value_binding self vb =
    (match binding_name vb.pvb_pat with
    | Some name -> (
        match decompose_fun vb.pvb_expr with
        | [], _ -> ()
        | params, body ->
            fns :=
              {
                fn_name = name;
                fn_key = modname ^ "." ^ name;
                fn_context = !context;
                fn_params = params;
                fn_body = body;
                fn_line = line_of vb.pvb_loc;
              }
              :: !fns)
    | None -> ());
    super.value_binding self vb
  in
  let record_dispatch_cases scrut cases loc =
    match match_positions scrut with
    | comps, Some ci, _ ->
        List.iter
          (fun case ->
            List.iter
              (fun alt ->
                match sub_at alt ~idx:ci ~ncomps:(List.length comps) with
                | Some sub ->
                    List.iter
                      (fun name ->
                        add_handle ~name ~kind:Dispatch ~line:(line_of loc) ~obligated:false)
                      (pat_constants sub)
                | None -> ())
              (alternatives case.pc_lhs))
          cases
    | _ -> ()
  in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_match (scrut, cases) -> record_dispatch_cases scrut cases e.pexp_loc
    | Pexp_apply (f, args) -> (
        match callee_pair f with
        | Some (_, "request_signature") -> (
            match positional 0 args with
            | Some { pexp_desc = Pexp_constant (Pconst_string (name, _, _)); pexp_loc; _ } ->
                (* RPC requests always carry replies (the labelled argument
                   is mandatory), so the reply obligation always holds. *)
                add_handle ~name ~kind:Declared ~line:(line_of pexp_loc) ~obligated:true
            | _ -> ())
        | Some ("Vtype", "signature") -> (
            match positional 0 args with
            | Some { pexp_desc = Pexp_constant (Pconst_string (name, _, _)); pexp_loc; _ } ->
                let obligated =
                  match labelled "replies" args with
                  | Some { pexp_desc = Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None); _ }
                    ->
                      false
                  | Some _ -> true
                  | None -> false
                in
                add_handle ~name ~kind:Declared ~line:(line_of pexp_loc) ~obligated
            | _ -> ())
        | Some ("Vtype", "reply") -> (
            match positional 0 args with
            | Some { pexp_desc = Pexp_constant (Pconst_string (name, _, _)); pexp_loc; _ } ->
                add_handle ~name ~kind:Reply_declared ~line:(line_of pexp_loc) ~obligated:false
            | _ -> ())
        | _ -> ())
    | _ -> ());
    super.expr self e
  in
  let pat self p =
    (match p.ppat_desc with
    | Ppat_construct (lid, Some (_, arg)) when String.equal (lid_last lid.txt) "Reply" ->
        (* [Rpc.Reply ("name", _)]: the client consumes this reply name. *)
        let first =
          match (strip arg).ppat_desc with Ppat_tuple (c :: _) -> Some c | _ -> None
        in
        Option.iter
          (fun c ->
            List.iter
              (fun name ->
                add_handle ~name ~kind:Reply_match ~line:(line_of p.ppat_loc) ~obligated:false)
              (pat_constants c))
          first
    | Ppat_record (fields, _) ->
        List.iter
          (fun (lid, sub) ->
            if String.equal (lid_last lid.Location.txt) "command" then
              List.iter
                (fun name ->
                  add_handle ~name ~kind:Dispatch ~line:(line_of p.ppat_loc) ~obligated:false)
                (pat_constants sub))
          fields
    | _ -> ());
    super.pat self p
  in
  let structure_item self item =
    match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            let saved = !context in
            (match binding_name vb.pvb_pat with Some name -> context := name | None -> ());
            self.Ast_iterator.value_binding self vb;
            context := saved)
          bindings
    | _ -> super.structure_item self item
  in
  let it = { super with expr; pat; value_binding; structure_item } in
  it.structure it structure;
  (List.rev !fns, List.rev !handles)

let load ~path ~source =
  let structure =
    try
      let lexbuf = Lexing.from_string source in
      Location.init lexbuf path;
      Some (Parse.implementation lexbuf)
    with _ -> None
  in
  let fns, handles =
    match structure with Some s -> extract ~path s | None -> ([], [])
  in
  {
    u_path = path;
    u_module = module_of_path path;
    u_lib = lib_of_path path;
    u_id = id_of_path path;
    u_structure = structure;
    u_fns = fns;
    u_handles = handles;
  }
