(** Orchestration of the whole-program proto tier. *)

val warning_rules : string list
(** Rules that report but do not fail the build (currently
    [proto-unreachable-handler]). *)

type outcome = {
  findings : Finding.t list;  (** all, sorted, baseline-marked *)
  active : Finding.t list;  (** unbaselined, error tier *)
  warnings : Finding.t list;  (** unbaselined, warning tier *)
  stale_baseline : string list;
  units_scanned : int;
  edges : Proto_flow.edge list;
  report : Report.json;
  dot : string;  (** graphviz export of [edges] *)
}

val analyze :
  root:string -> units:(string * string) list -> baseline:Baseline.t -> outcome
(** Pure entry point over in-memory [(path, source)] pairs — the fixture
    tests drive this directly. *)

val run : ?dirs:string list -> root:string -> baseline_path:string -> unit -> outcome
(** Discover sources under [dirs] (default {!Driver.default_dirs}) and
    analyze them against the proto baseline file. *)

val pp_outcome : Format.formatter -> outcome -> unit
