(** A single lint diagnostic.

    Findings carry both an exact source span (for the human report) and a
    line-independent {!key} (for the committed baseline): grandfathering a
    finding must survive unrelated edits that shift line numbers. *)

type t = {
  rule : string;  (** rule name, one of {!rules} *)
  file : string;  (** root-relative path, ['/']-separated *)
  line : int;
  col : int;
  context : string;  (** enclosing top-level binding path, or ["-"] *)
  token : string;  (** the offending token, e.g. ["Hashtbl.fold"] *)
  message : string;
  mutable baselined : bool;  (** set by {!Baseline.apply} *)
}

val v :
  rule:string ->
  file:string ->
  line:int ->
  col:int ->
  context:string ->
  token:string ->
  string ->
  t

val key : t -> string
(** Stable baseline key: [rule file context/token], no line numbers. *)

val order : t -> t -> int
(** Sort by (file, line, col, rule, message) for deterministic reports. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type family = Isolation | Transmittability | Determinism | Hygiene | Protocol

val family_name : family -> string

val rules : (string * family) list
(** Every rule either pass (per-file [Scan] or whole-program proto tier) can
    emit, with its family. *)

val explain : string -> string option
(** The rule's documentation paragraph, printed by [dcp_lint --explain]. *)
