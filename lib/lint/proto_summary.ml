(* Whole-program protocol analysis, pass 2: interprocedural summaries.

   Three summary families are computed to fixpoint over every function
   definition Proto_extract collected:

   - command sinks: the primitive transmission points are
     [Runtime.send] and [Rpc.call] (command = second positional
     argument); any function that forwards one of its own parameters
     into a sink's command slot becomes a sink at that parameter
     (two_phase's local [reply], its announce chain, Sync_send.send,
     transfer's [finish], primordial's [reply_to], ...).

   - returned command names: the abstract string set a function returns
     directly ([rstr]) and as the first component of a returned tuple
     ([rtup]).  These resolve [Rpc.serve ~f] callbacks and the
     [let reply_command, args = apply ... in send ... reply_command]
     idiom.

   - mutable escape: functions whose result is (or passes through to) a
     raw mutable value — array literals, [ref], [Bytes.*] constructors —
     so a mutable payload laundered through helper calls into a send
     argument is still caught ([proto-escape]).

   The final walk, [collect_sends], resolves every send site in a unit to
   its abstract command-name set and reports interprocedural mutable
   escapes.  Everything is a syntactic over/under-approximation in the
   usual lint sense: unresolvable names degrade to [Dynamic] (recorded in
   the tables, never reported), and the committed proto baseline absorbs
   reviewed remainders. *)

open Parsetree
open Proto_extract

type slot = Spos of int | Slabel of string

let slot_equal a b =
  match (a, b) with
  | Spos i, Spos j -> Int.equal i j
  | Slabel x, Slabel y -> String.equal x y
  | _ -> false

type apply_site = {
  a_pair : string * string;
  a_args : (Asttypes.arg_label * expression) list;
  a_line : int;
}

type info = { i_fn : fn; i_unit : unit_info; i_applies : apply_site list }

type env = {
  fns : info list SMap.t;  (* fn_key -> definitions (merged on collision) *)
  mutable sinks : slot list SMap.t;
  mutable rstr : names SMap.t;
  mutable rtup : names SMap.t;
  mutable ret_mutable : SSet.t;
  mutable passthrough : int list SMap.t;
  mutable repliers : SSet.t;
}

(* ---- helpers over the environment ---- *)

let resolve ~own (m, f) = if String.equal m "" then own ^ "." ^ f else m ^ "." ^ f

let primitive_sinks = [ ("Runtime.send", [ Spos 1 ]); ("Rpc.call", [ Spos 1 ]) ]

let sink_slots env key =
  match List.assoc_opt key primitive_sinks with
  | Some slots -> slots
  | None -> Option.value (SMap.find_opt key env.sinks) ~default:[]

let arg_at slot args =
  match slot with Spos n -> positional n args | Slabel l -> labelled l args

let param_slot fn name =
  List.find_map
    (fun p ->
      if String.equal p.p_name name then
        Some (if String.equal p.p_label "" then Spos p.p_pos else Slabel p.p_label)
      else None)
    fn.fn_params

let names_at table key = Option.value (SMap.find_opt key table) ~default:(Known SSet.empty)
let rstr_of env key = names_at env.rstr key
let rtup_of env key = names_at env.rtup key

let names_equal a b =
  match (a, b) with
  | Dynamic, Dynamic -> true
  | Known a, Known b -> SSet.equal a b
  | _ -> false

(* ---- building the environment ---- *)

let collect_applies body =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        match callee_pair f with
        | Some pair -> acc := { a_pair = pair; a_args = args; a_line = line_of e.pexp_loc } :: !acc
        | None -> ())
    | _ -> ());
    super.expr self e
  in
  let it = { super with expr } in
  it.expr it body;
  List.rev !acc

let iter_fns env f = SMap.iter (fun _ infos -> List.iter f infos) env.fns

(* Result positions of a body: every expression a function can return,
   flattened through let/sequence/branches.  A bare [function] body
   flattens through its cases, which is what a one-argument dispatch
   helper wants. *)
let rec tails e acc =
  match e.pexp_desc with
  | Pexp_let (_, _, body)
  | Pexp_sequence (_, body)
  | Pexp_constraint (body, _)
  | Pexp_open (_, body)
  | Pexp_letmodule (_, _, body) ->
      tails body acc
  | Pexp_ifthenelse (_, t, Some f) -> tails t (tails f acc)
  | Pexp_ifthenelse (_, t, None) -> tails t acc
  | Pexp_match (_, cases) | Pexp_try (_, cases) | Pexp_function cases ->
      List.fold_left (fun acc c -> tails c.pc_rhs acc) acc cases
  | _ -> e :: acc

let body_tails e = tails e []

(* ---- sink fixpoint ---- *)

let fixpoint_sinks env =
  let changed = ref true in
  while !changed do
    changed := false;
    iter_fns env (fun info ->
        let own = info.i_unit.u_module in
        List.iter
          (fun site ->
            let slots = sink_slots env (resolve ~own site.a_pair) in
            List.iter
              (fun slot ->
                match arg_at slot site.a_args with
                | Some { pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ } -> (
                    match param_slot info.i_fn x with
                    | Some pslot ->
                        let key = info.i_fn.fn_key in
                        let cur = Option.value (SMap.find_opt key env.sinks) ~default:[] in
                        if not (List.exists (slot_equal pslot) cur) then begin
                          env.sinks <- SMap.add key (pslot :: cur) env.sinks;
                          changed := true
                        end
                    | None -> ())
                | _ -> ())
              slots)
          info.i_applies)
  done

(* ---- returned-name fixpoint ---- *)

let first_comp_names env ~own e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> known [ s ]
  | Pexp_apply (f, _) -> (
      match callee_pair f with Some p -> rstr_of env (resolve ~own p) | None -> Dynamic)
  | _ -> Dynamic

let fixpoint_returns env =
  let changed = ref true in
  while !changed do
    changed := false;
    iter_fns env (fun info ->
        let own = info.i_unit.u_module in
        let key = info.i_fn.fn_key in
        let str = ref (names_at env.rstr key) in
        let tup = ref (names_at env.rtup key) in
        List.iter
          (fun tail ->
            match tail.pexp_desc with
            | Pexp_constant (Pconst_string (s, _, _)) -> str := nunion !str (known [ s ])
            | Pexp_tuple (c :: _) -> tup := nunion !tup (first_comp_names env ~own c)
            | Pexp_apply (f, _) -> (
                match callee_pair f with
                | Some p ->
                    let gk = resolve ~own p in
                    str := nunion !str (rstr_of env gk);
                    tup := nunion !tup (rtup_of env gk)
                | None -> ())
            | _ -> ())
          (body_tails info.i_fn.fn_body);
        if not (names_equal !str (names_at env.rstr key)) then begin
          env.rstr <- SMap.add key !str env.rstr;
          changed := true
        end;
        if not (names_equal !tup (names_at env.rtup key)) then begin
          env.rtup <- SMap.add key !tup env.rtup;
          changed := true
        end)
  done

(* ---- mutable-escape fixpoint ---- *)

let is_mut_primitive (m, f) =
  match (m, f) with
  | "Bytes", ("create" | "make" | "of_string" | "copy" | "unsafe_of_string" | "sub" | "cat") ->
      true
  | "Array", ("make" | "create" | "init" | "copy" | "of_list" | "append" | "sub" | "concat") ->
      true
  | ("" | "Stdlib"), "ref" -> true
  | _ -> false

(* Is this expression (shallowly) a raw mutable value?  [Param i] means
   "whatever arrives as positional parameter i", feeding the passthrough
   relation. *)
let rec mut_shape env ~own params e =
  match e.pexp_desc with
  | Pexp_array _ -> `Mut
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match
        List.find_map (fun p -> if String.equal p.p_name x then Some p.p_pos else None) params
      with
      | Some pos when pos >= 0 -> `Param pos
      | _ -> `Not)
  | Pexp_apply (f, args) -> (
      match callee_pair f with
      | Some pair when is_mut_primitive pair -> `Mut
      | Some pair ->
          let key = resolve ~own pair in
          if SSet.mem key env.ret_mutable then `Mut
          else
            let slots = Option.value (SMap.find_opt key env.passthrough) ~default:[] in
            if
              List.exists
                (fun i ->
                  match positional i args with
                  | Some a -> (
                      match mut_shape env ~own params a with `Mut -> true | _ -> false)
                  | None -> false)
                slots
            then `Mut
            else `Not
      | None -> `Not)
  | Pexp_constraint (inner, _) | Pexp_open (_, inner) -> mut_shape env ~own params inner
  | _ -> `Not

let fixpoint_mutable env =
  let changed = ref true in
  while !changed do
    changed := false;
    iter_fns env (fun info ->
        let own = info.i_unit.u_module in
        let key = info.i_fn.fn_key in
        List.iter
          (fun tail ->
            match mut_shape env ~own info.i_fn.fn_params tail with
            | `Mut ->
                if not (SSet.mem key env.ret_mutable) then begin
                  env.ret_mutable <- SSet.add key env.ret_mutable;
                  changed := true
                end
            | `Param i ->
                let cur = Option.value (SMap.find_opt key env.passthrough) ~default:[] in
                if not (List.mem i cur) then begin
                  env.passthrough <- SMap.add key (i :: cur) env.passthrough;
                  changed := true
                end
            | `Not -> ())
          (body_tails info.i_fn.fn_body))
  done

(* ---- repliers ---- *)

(* A replier discharges the current message's reply obligation: its body
   inspects [reply_to] and reaches a transmission sink (two_phase's local
   [reply], branch/transfer handle helpers).  [Rpc.serve]/[serve_always]
   are seeded: they always answer well-formed requests. *)
let compute_repliers env =
  let contains pred e =
    let found = ref false in
    let super = Ast_iterator.default_iterator in
    let expr self e =
      if pred e then found := true;
      if not !found then super.expr self e
    in
    let it = { super with expr } in
    it.expr it e;
    !found
  in
  iter_fns env (fun info ->
      let own = info.i_unit.u_module in
      let mentions_reply_to =
        contains
          (fun e ->
            match e.pexp_desc with
            | Pexp_field (_, lid) -> String.equal (lid_last lid.txt) "reply_to"
            | _ -> false)
          info.i_fn.fn_body
      in
      let reaches_sink =
        List.exists
          (fun site -> sink_slots env (resolve ~own site.a_pair) <> [])
          info.i_applies
      in
      if mentions_reply_to && reaches_sink then
        env.repliers <- SSet.add info.i_fn.fn_key env.repliers);
  env.repliers <- SSet.add "Rpc.serve" (SSet.add "Rpc.serve_always" env.repliers);
  (* Transitive closure: forwarding a request to a replier (directory-style
     delegation, regional's [forward]) discharges the obligation too. *)
  let changed = ref true in
  while !changed do
    changed := false;
    iter_fns env (fun info ->
        if not (SSet.mem info.i_fn.fn_key env.repliers) then
          let own = info.i_unit.u_module in
          if
            List.exists
              (fun site ->
                (match site.a_pair with _, ("serve" | "serve_always") -> true | _ -> false)
                || SSet.mem (resolve ~own site.a_pair) env.repliers)
              info.i_applies
          then begin
            env.repliers <- SSet.add info.i_fn.fn_key env.repliers;
            changed := true
          end)
  done

let is_replier env ~own pair =
  (match pair with _, ("serve" | "serve_always") -> true | _ -> false)
  || SSet.mem (resolve ~own pair) env.repliers

let build units =
  let fns =
    List.fold_left
      (fun acc u ->
        List.fold_left
          (fun acc fn ->
            let info = { i_fn = fn; i_unit = u; i_applies = collect_applies fn.fn_body } in
            SMap.update fn.fn_key
              (function Some l -> Some (info :: l) | None -> Some [ info ])
              acc)
          acc u.u_fns)
      SMap.empty units
  in
  let env =
    {
      fns;
      sinks = SMap.empty;
      rstr = SMap.empty;
      rtup = SMap.empty;
      ret_mutable = SSet.empty;
      passthrough = SMap.empty;
      repliers = SSet.empty;
    }
  in
  fixpoint_sinks env;
  fixpoint_returns env;
  fixpoint_mutable env;
  compute_repliers env;
  env

(* ---- call graph ---- *)

let compare_edge (l1, a1, b1) (l2, a2, b2) =
  let c = Option.compare String.compare l1 l2 in
  if c <> 0 then c
  else
    let c = String.compare a1 a2 in
    if c <> 0 then c else String.compare b1 b2

(* Edges from each top-level definition to every in-repo function it
   names, per library; duplicates from nested definitions are collapsed. *)
let call_edges env =
  let edges = ref [] in
  iter_fns env (fun info ->
      let own = info.i_unit.u_module in
      List.iter
        (fun site ->
          let key = resolve ~own site.a_pair in
          if SMap.mem key env.fns && not (String.equal key info.i_fn.fn_key) then
            edges := (info.i_unit.u_lib, info.i_fn.fn_key, key) :: !edges)
        info.i_applies);
  List.sort_uniq compare_edge !edges

(* ---- send resolution + escape findings ---- *)

type send = {
  sd_line : int;
  sd_context : string;
  sd_via : string;
  sd_names : names;
}

(* Local bindings the walk tracks: the abstract command names an ident
   may hold, and whether it is bound to a raw mutable value. *)
type lentry = { le_names : names option; le_mut : bool }

let rec eval_names env ~own lenv e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> known [ s ]
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match SMap.find_opt x lenv with Some { le_names = Some n; _ } -> n | _ -> Dynamic)
  | Pexp_apply (f, _) -> (
      match callee_pair f with Some p -> rstr_of env (resolve ~own p) | None -> Dynamic)
  | Pexp_ifthenelse (_, t, Some f) ->
      nunion (eval_names env ~own lenv t) (eval_names env ~own lenv f)
  | Pexp_ifthenelse (_, t, None) -> eval_names env ~own lenv t
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.fold_left
        (fun acc c -> nunion acc (eval_names env ~own lenv c.pc_rhs))
        (Known SSet.empty) cases
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> eval_names env ~own lenv body
  | Pexp_constraint (inner, _) | Pexp_open (_, inner) -> eval_names env ~own lenv inner
  | _ -> Dynamic

let is_mut_value env ~own lenv e =
  match mut_shape env ~own [] e with
  | `Mut -> true
  | _ -> (
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } -> (
          match SMap.find_opt x lenv with Some { le_mut = true; _ } -> true | _ -> false)
      | _ -> false)

(* Escape scan over a send argument: report mutables that arrive through a
   call or a binding.  Direct mutable literals in the argument are Scan's
   per-file [mutable-payload] rule; flagging them again here would
   double-report, so only summarized sources count. *)
let escape_token env ~own lenv arg =
  let verdict = ref None in
  let note t = if !verdict = None then verdict := Some t in
  let super = Ast_iterator.default_iterator in
  let expr self e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "!"; _ }; _ }, _) ->
        (* [!r] transmits the ref's contents, not the ref; the common
           [Value.int !counter] idiom is fine *)
        ()
    | Pexp_apply (f, args) ->
        (match callee_pair f with
        | Some pair when not (is_mut_primitive pair) ->
            let key = resolve ~own pair in
            if SSet.mem key env.ret_mutable then note (pair_string pair)
            else
              let slots = Option.value (SMap.find_opt key env.passthrough) ~default:[] in
              if
                List.exists
                  (fun i ->
                    match positional i args with
                    | Some a -> is_mut_value env ~own lenv a
                    | None -> false)
                  slots
              then note (pair_string pair)
        | _ -> ());
        super.expr self e
    | Pexp_ident { txt = Longident.Lident x; _ } -> (
        match SMap.find_opt x lenv with Some { le_mut = true; _ } -> note x | _ -> ())
    | _ -> super.expr self e
  in
  let it = { super with expr } in
  it.expr it arg;
  !verdict

(* Command names returned by an [Rpc.serve ~f] callback. *)
let callback_reply_names env ~own lenv fexpr =
  match fexpr.pexp_desc with
  | Pexp_ident _ -> (
      match callee_pair fexpr with Some p -> rtup_of env (resolve ~own p) | None -> Dynamic)
  | _ ->
      let _, body = decompose_fun fexpr in
      List.fold_left
        (fun acc tail ->
          match tail.pexp_desc with
          | Pexp_tuple (c :: _) -> nunion acc (first_comp_names env ~own c)
          | Pexp_apply (f, _) -> (
              match callee_pair f with
              | Some p -> nunion acc (rtup_of env (resolve ~own p))
              | None -> Dynamic)
          | _ -> nunion acc (eval_names env ~own lenv tail))
        (Known SSet.empty) (body_tails body)

let collect_sends env u =
  match u.u_structure with
  | None -> ([], [])
  | Some structure ->
      let own = u.u_module in
      let sends = ref [] in
      let escapes = ref [] in
      let context = ref "-" in
      let lenv = ref SMap.empty in
      let super = Ast_iterator.default_iterator in
      let bind_pattern self pat rhs =
        self.Ast_iterator.expr self rhs;
        match (strip pat).ppat_desc with
        | Ppat_var { txt = x; _ } ->
            lenv :=
              SMap.add x
                {
                  le_names = Some (eval_names env ~own !lenv rhs);
                  le_mut = is_mut_value env ~own !lenv rhs;
                }
                !lenv
        | Ppat_tuple comps -> (
            (* [let command, args = apply ... in]: the first component
               holds the callee's returned-tuple command names. *)
            match (comps, rhs.pexp_desc) with
            | { ppat_desc = Ppat_var { txt = x; _ }; _ } :: _, Pexp_apply (f, _) -> (
                match callee_pair f with
                | Some p ->
                    lenv :=
                      SMap.add x
                        { le_names = Some (rtup_of env (resolve ~own p)); le_mut = false }
                        !lenv
                | None -> ())
            | { ppat_desc = Ppat_var { txt = x; _ }; _ } :: _, Pexp_tuple (c :: _) ->
                lenv :=
                  SMap.add x
                    {
                      le_names = Some (eval_names env ~own !lenv c);
                      le_mut = is_mut_value env ~own !lenv c;
                    }
                    !lenv
            | _ -> ())
        | _ -> ()
      in
      let expr self e =
        match e.pexp_desc with
        | Pexp_let (_, vbs, body) ->
            let saved = !lenv in
            List.iter (fun vb -> bind_pattern self vb.pvb_pat vb.pvb_expr) vbs;
            self.Ast_iterator.expr self body;
            lenv := saved
        | Pexp_fun (Asttypes.Optional _, Some default, pat, body) ->
            (* [?(command = "ping")]: the default participates in the
               abstract evaluation of the parameter. *)
            self.Ast_iterator.expr self default;
            (match binding_name pat with
            | Some x ->
                lenv :=
                  SMap.add x
                    { le_names = Some (eval_names env ~own !lenv default); le_mut = false }
                    !lenv
            | None -> ());
            self.Ast_iterator.expr self body
        | Pexp_apply (f, args) ->
            (match callee_pair f with
            | Some pair -> (
                let key = resolve ~own pair in
                (match sink_slots env key with
                | [] -> ()
                | slots ->
                    let names =
                      List.fold_left
                        (fun acc slot ->
                          match arg_at slot args with
                          | Some a -> nunion acc (eval_names env ~own !lenv a)
                          | None -> Dynamic)
                        (Known SSet.empty) slots
                    in
                    sends :=
                      {
                        sd_line = line_of e.pexp_loc;
                        sd_context = !context;
                        sd_via = pair_string pair;
                        sd_names = names;
                      }
                      :: !sends;
                    List.iter
                      (fun (_, a) ->
                        match escape_token env ~own !lenv a with
                        | Some token ->
                            escapes :=
                              Finding.v ~rule:"proto-escape" ~file:u.u_path
                                ~line:(line_of a.pexp_loc) ~col:0 ~context:!context ~token
                                (Printf.sprintf
                                   "mutable value from %s reaches a %s payload through helper \
                                    calls; transmit an external rep built with Value/Codec"
                                   token (pair_string pair))
                              :: !escapes
                        | None -> ())
                      args);
                match pair with
                | _, ("serve" | "serve_always") -> (
                    match labelled "f" args with
                    | Some fexpr ->
                        sends :=
                          {
                            sd_line = line_of e.pexp_loc;
                            sd_context = !context;
                            sd_via = pair_string pair;
                            sd_names = callback_reply_names env ~own !lenv fexpr;
                          }
                          :: !sends
                    | None -> ())
                | _ -> ())
            | None -> ());
            super.expr self e
        | _ -> super.expr self e
      in
      let structure_item self item =
        match item.pstr_desc with
        | Pstr_value (_, bindings) ->
            List.iter
              (fun vb ->
                let saved_ctx = !context in
                let saved_env = !lenv in
                (match binding_name vb.pvb_pat with Some name -> context := name | None -> ());
                self.Ast_iterator.value_binding self vb;
                context := saved_ctx;
                lenv := saved_env)
              bindings
        | _ -> super.structure_item self item
      in
      let it = { super with expr; structure_item } in
      it.structure it structure;
      (List.rev !sends, List.rev !escapes)
