type outcome = {
  findings : Finding.t list;
  active : Finding.t list;
  stale_baseline : string list;
  files_scanned : int;
  layers : Layers.lib list;
  report : Report.json;
}

let default_dirs = [ "lib"; "bin"; "examples" ]

let run ?(dirs = default_dirs) ~root ~baseline_path () =
  let layers = Layers.load ~root in
  let graph = Layers.graph_findings layers in
  let srcs = Discover.ml_files ~root ~dirs in
  let hygiene = Discover.missing_mli ~root srcs in
  let scanned =
    List.concat_map
      (fun src ->
        Scan.file ~path:src.Discover.path
          ~source:(Discover.read_file (Filename.concat root src.Discover.path)))
      srcs
  in
  let findings = List.sort Finding.order (graph @ hygiene @ scanned) in
  let baseline = Baseline.load ~path:baseline_path in
  Baseline.apply baseline findings;
  let stale_baseline = Baseline.stale baseline in
  let active = List.filter (fun f -> not f.Finding.baselined) findings in
  let report =
    Report.build ~root ~files_scanned:(List.length srcs) ~layers ~findings ~stale_baseline
  in
  { findings; active; stale_baseline; files_scanned = List.length srcs; layers; report }

let pp_outcome ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) t.active;
  List.iter
    (fun key -> Format.fprintf ppf "error: stale baseline entry (fixed? prune it): %s@." key)
    t.stale_baseline;
  Format.fprintf ppf "dcp_lint: %d files, %d findings (%d active, %d baselined)@."
    t.files_scanned (List.length t.findings) (List.length t.active)
    (List.length t.findings - List.length t.active)
