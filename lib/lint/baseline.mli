(** The committed allowlist of grandfathered findings.

    One {!Finding.key} per line, [#] comments allowed.  Keys omit line
    numbers so entries survive unrelated edits; one entry covers every
    occurrence with the same (rule, file, context, token). *)

type t

val empty : unit -> t
val load : path:string -> t
(** A missing file loads as the empty baseline. *)

val apply : t -> Finding.t list -> unit
(** Mark matching findings as baselined (in place). *)

val stale : t -> string list
(** Entries that matched no current finding, sorted: the grandfathered
    finding was fixed, so the entry should be pruned. *)

val save : path:string -> Finding.t list -> unit
(** Write the keys of [findings] (sorted, deduplicated) with a header
    comment — the [--update-baseline] path. *)
