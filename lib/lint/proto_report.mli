(** The machine-readable proto-tier report ([dcp.lint.proto/v1]).

    Reuses {!Report.json}, so the document round-trips through
    {!Report.parse}. *)

val schema : string

val build :
  root:string ->
  units:Proto_flow.unit_sends list ->
  flow:Proto_flow.edge list ->
  call_graph:(string option * string * string) list ->
  findings:Finding.t list ->
  stale_baseline:string list ->
  Report.json
(** Assemble the proto report.  [findings] should already be sorted and
    baseline-marked. *)
