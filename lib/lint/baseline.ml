(* The committed allowlist of grandfathered findings, one Finding.key per
   line.  Keys omit line numbers (see Finding.key), so entries survive
   unrelated edits; a key matches every current finding with the same
   (rule, file, context, token), which deliberately collapses multiple
   occurrences inside one binding into one entry. *)

type t = { keys : (string, bool ref) Hashtbl.t }

let empty () = { keys = Hashtbl.create 16 }

let add t key = if not (Hashtbl.mem t.keys key) then Hashtbl.replace t.keys key (ref false)

let load ~path =
  let t = empty () in
  if Sys.file_exists path then begin
    let ic = open_in path in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if String.length line > 0 && line.[0] <> '#' then add t line
       done
     with End_of_file -> ());
    close_in ic
  end;
  t

let apply t findings =
  List.iter
    (fun f ->
      match Hashtbl.find_opt t.keys (Finding.key f) with
      | Some hit ->
          hit := true;
          f.Finding.baselined <- true
      | None -> ())
    findings

(* Entries that matched nothing: the grandfathered finding was fixed (or its
   binding renamed).  Reported as warnings, pruned by --update-baseline. *)
let stale t =
  Hashtbl.fold (fun key hit acc -> if !hit then acc else key :: acc) t.keys []
  |> List.sort String.compare

let header =
  [
    "# dcp_lint baseline: grandfathered findings, one `rule file context/token` key";
    "# per line.  Regenerate with `dcp_lint.exe --update-baseline` after reviewing";
    "# that any new entry really is benign (see DESIGN.md, \"Lint\").";
  ]

let save ~path findings =
  let keys = List.sort_uniq String.compare (List.map Finding.key findings) in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) header;
  List.iter (fun k -> output_string oc (k ^ "\n")) keys;
  close_out oc
