(* The layer DAG from DESIGN.md: every in-repo library sits on a named
   layer, dune dependency edges must point strictly downward, and the four
   guardian application libraries may not reference each other at all (they
   share a layer, so any edge between them is a back-edge).  Ranks are the
   canonical chain wire -> net -> stable -> sim -> core -> primitives ->
   apps, refined by the actual dune graph: sim sits beside wire because net
   is built on the simulator's clock. *)

type lib = { dir : string; lib_name : string; deps : string list; rank : int }

let ranks =
  [
    ("rng", 0);
    ("wire", 1);
    ("sim", 1);
    ("net", 2);
    ("stable", 3);
    ("core", 4);
    ("primitives", 5);
    ("assoc", 6);
    ("bank", 6);
    ("airline", 6);
    ("office", 6);
    ("check", 7);
    ("lint", 8);
  ]

let guardians = [ "assoc"; "bank"; "airline"; "office" ]
let is_guardian dir = List.mem dir guardians
let rank_of_dir dir = List.assoc_opt dir ranks

let dir_of_lib_name name =
  if String.length name > 4 && String.equal (String.sub name 0 4) "dcp_" then
    Some (String.sub name 4 (String.length name - 4))
  else None

let rank_of_module m =
  match dir_of_lib_name (String.lowercase_ascii m) with
  | Some dir -> rank_of_dir dir
  | None -> None

(* ---- minimal s-expression reader, just enough for dune files ---- *)

type sexp = Atom of string | List of sexp list

let parse_sexps source =
  let len = String.length source in
  let pos = ref 0 in
  let peek () = if !pos < len then Some source.[!pos] else None in
  let rec skip_blank () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_blank ()
    | Some ';' ->
        while !pos < len && source.[!pos] <> '\n' do
          incr pos
        done;
        skip_blank ()
    | _ -> ()
  in
  let atom () =
    let start = !pos in
    let stop c = match c with ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> true | _ -> false in
    while !pos < len && not (stop source.[!pos]) do
      incr pos
    done;
    Atom (String.sub source start (!pos - start))
  in
  let rec value () =
    skip_blank ();
    match peek () with
    | Some '(' ->
        incr pos;
        let items = ref [] in
        let rec elements () =
          skip_blank ();
          match peek () with
          | Some ')' -> incr pos
          | Some _ ->
              items := value () :: !items;
              elements ()
          | None -> invalid_arg "unbalanced parenthesis"
        in
        elements ();
        List (List.rev !items)
    | Some '"' ->
        (* dune string atoms: we never need their contents, only to skip them *)
        incr pos;
        let start = !pos in
        while !pos < len && source.[!pos] <> '"' do
          if source.[!pos] = '\\' then incr pos;
          incr pos
        done;
        let s = String.sub source start (Int.min (!pos - start) (len - start)) in
        if !pos < len then incr pos;
        Atom s
    | Some _ -> atom ()
    | None -> invalid_arg "expected a value"
  in
  let sexps = ref [] in
  let rec loop () =
    skip_blank ();
    if !pos < len then begin
      sexps := value () :: !sexps;
      loop ()
    end
  in
  loop ();
  List.rev !sexps

let field name = function
  | List (Atom head :: rest) when String.equal head name -> Some rest
  | _ -> None

let atoms l = List.filter_map (function Atom a -> Some a | List _ -> None) l

(* Parse one lib/<dir>/dune into a [lib]; [None] when the file holds no
   library stanza (or an unknown directory, reported separately). *)
let parse_dune ~dir source =
  let stanzas = parse_sexps source in
  let library =
    List.find_map
      (function List (Atom "library" :: body) -> Some body | _ -> None)
      stanzas
  in
  match library with
  | None -> None
  | Some body ->
      let name =
        match List.find_map (field "name") body with
        | Some [ Atom n ] -> n
        | _ -> "dcp_" ^ dir
      in
      let deps =
        match List.find_map (field "libraries") body with
        | Some l -> atoms l
        | None -> []
      in
      let rank = Option.value (rank_of_dir dir) ~default:(-1) in
      Some { dir; lib_name = name; deps; rank }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

let load ~root =
  let lib_root = Filename.concat root "lib" in
  let dirs =
    Sys.readdir lib_root |> Array.to_list
    |> List.filter (fun d ->
           String.length d > 0 && d.[0] <> '.' && Sys.is_directory (Filename.concat lib_root d))
    |> List.sort String.compare
  in
  List.filter_map
    (fun dir ->
      let dune = Filename.concat (Filename.concat lib_root dir) "dune" in
      if Sys.file_exists dune then parse_dune ~dir (read_file dune) else None)
    dirs

(* Dune-graph rules: unknown layers, and edges that do not point strictly
   downward.  An edge between two guardian libraries is reported as
   guardian-isolation; any other non-descending edge is a layer back-edge. *)
let graph_findings libs =
  let finding ~dir ~rule ~token message =
    Finding.v ~rule ~file:(Printf.sprintf "lib/%s/dune" dir) ~line:1 ~col:0 ~context:"dune"
      ~token message
  in
  List.concat_map
    (fun lib ->
      let unknown =
        if lib.rank < 0 then
          [
            finding ~dir:lib.dir ~rule:"layer-dag" ~token:lib.dir
              (Printf.sprintf
                 "library directory %s has no layer; add it to Dcp_lint.Layers.ranks" lib.dir);
          ]
        else []
      in
      let edges =
        List.filter_map
          (fun dep ->
            match dir_of_lib_name dep with
            | None -> None (* external dependency: fmt, unix, ... *)
            | Some dep_dir -> (
                match rank_of_dir dep_dir with
                | None ->
                    Some
                      (finding ~dir:lib.dir ~rule:"layer-dag" ~token:dep
                         (Printf.sprintf "dependency %s has no layer" dep))
                | Some dep_rank when lib.rank >= 0 && dep_rank >= lib.rank ->
                    if is_guardian lib.dir && is_guardian dep_dir then
                      Some
                        (finding ~dir:lib.dir ~rule:"guardian-isolation" ~token:dep
                           (Printf.sprintf
                              "guardian library %s may not depend on guardian library %s; \
                               talk through Port/Message/Rpc instead"
                              lib.lib_name dep))
                    else
                      Some
                        (finding ~dir:lib.dir ~rule:"layer-dag" ~token:dep
                           (Printf.sprintf
                              "back-edge: %s (layer %d) may not depend on %s (layer %d)"
                              lib.lib_name lib.rank dep dep_rank))
                | Some _ -> None))
          lib.deps
      in
      unknown @ edges)
    libs
