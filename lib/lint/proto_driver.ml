(* Orchestrates the proto tier: extract -> summaries -> sends -> flow /
   reply checks -> baseline -> report.  [analyze] is pure over in-memory
   (path, source) pairs so tests can drive it on fixtures without a
   directory tree; [run] wires it to [Discover] like the per-file tier. *)

(* Rules reported but not build-failing: the proto baseline still
   grandfathers them, and unbaselined ones surface as warnings. *)
let warning_rules = [ "proto-unreachable-handler" ]

type outcome = {
  findings : Finding.t list;
  active : Finding.t list;
  warnings : Finding.t list;
  stale_baseline : string list;
  units_scanned : int;
  edges : Proto_flow.edge list;
  report : Report.json;
  dot : string;
}

let is_warning f = List.exists (String.equal f.Finding.rule) warning_rules

let analyze ~root ~units:pairs ~baseline =
  let units = List.map (fun (path, source) -> Proto_extract.load ~path ~source) pairs in
  let env = Proto_summary.build units in
  let resolved = List.map (fun u -> (u, Proto_summary.collect_sends env u)) units in
  let per_unit =
    List.map (fun (u, (sends, _)) -> { Proto_flow.us_unit = u; us_sends = sends }) resolved
  in
  let escapes = List.concat_map (fun (_, (_, es)) -> es) resolved in
  let handled = Proto_flow.handled_names units in
  let sent = Proto_flow.sent_names per_unit in
  let obligated = Proto_reply.obligated_names units in
  let findings =
    List.sort Finding.order
      (Proto_flow.dead_letters ~handled per_unit
      @ Proto_flow.unreachable ~sent units
      @ List.concat_map (Proto_reply.check env ~obligated) units
      @ escapes)
  in
  Baseline.apply baseline findings;
  let stale_baseline = Baseline.stale baseline in
  let unbaselined = List.filter (fun f -> not f.Finding.baselined) findings in
  let active = List.filter (fun f -> not (is_warning f)) unbaselined in
  let warnings = List.filter is_warning unbaselined in
  let edges = Proto_flow.edges units per_unit in
  let call_graph = Proto_summary.call_edges env in
  let report =
    Proto_report.build ~root ~units:per_unit ~flow:edges ~call_graph ~findings ~stale_baseline
  in
  {
    findings;
    active;
    warnings;
    stale_baseline;
    units_scanned = List.length units;
    edges;
    report;
    dot = Proto_flow.dot edges;
  }

let run ?(dirs = Driver.default_dirs) ~root ~baseline_path () =
  let srcs = Discover.ml_files ~root ~dirs in
  let pairs =
    List.map
      (fun s ->
        (s.Discover.path, Discover.read_file (Filename.concat root s.Discover.path)))
      srcs
  in
  let baseline = Baseline.load ~path:baseline_path in
  analyze ~root ~units:pairs ~baseline

let pp_outcome ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) t.active;
  List.iter (fun f -> Format.fprintf ppf "warning: %a@." Finding.pp f) t.warnings;
  List.iter
    (fun key ->
      Format.fprintf ppf "error: stale proto baseline entry (fixed? prune it): %s@." key)
    t.stale_baseline;
  Format.fprintf ppf
    "dcp_lint[proto]: %d units, %d flow edges, %d findings (%d active, %d warnings, %d \
     baselined)@."
    t.units_scanned (List.length t.edges) (List.length t.findings) (List.length t.active)
    (List.length t.warnings)
    (List.length t.findings - List.length t.active - List.length t.warnings)
