(** The machine-readable lint report ([dcp.lint.report/v1]).

    Self-contained JSON: a renderer plus a parser covering exactly the
    emitted subset, so the schema round-trips without external
    dependencies (same approach as the bench/check emitters). *)

val schema : string

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val render : json -> string

exception Parse_error of string

val parse : string -> json
(** Raises {!Parse_error} on malformed input. *)

val member : string -> json -> json option

val of_finding : Finding.t -> json
(** Shared with the proto-tier report ([Proto_report]). *)

val build :
  root:string ->
  files_scanned:int ->
  layers:Layers.lib list ->
  findings:Finding.t list ->
  stale_baseline:string list ->
  json
(** Assemble the report document.  [findings] should already be sorted and
    baseline-marked; layers are re-sorted by (rank, dir). *)
