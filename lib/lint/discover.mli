(** Source discovery and file-level hygiene. *)

type src = {
  path : string;  (** root-relative, ['/']-separated *)
  lib_dir : string option;  (** [Some dir] for [lib/<dir>/] modules *)
}

val ml_files : root:string -> dirs:string list -> src list
(** Every [.ml] under the given root-relative directories, sorted so the
    scan (and the report) is deterministic.  Under ["lib"] each
    subdirectory is a library; other directories are flat. *)

val missing_mli : root:string -> src list -> Finding.t list
(** [mli-missing] findings for library modules without an interface. *)

val read_file : string -> string
